import numpy as np
import pytest

from repro.core import CellUsage
from repro.signalprob import (
    maximize_mean_leakage,
    sweep_mean_leakage,
    sweep_std_leakage,
)
from repro.exceptions import EstimationError


@pytest.fixture(scope="module")
def usage():
    return CellUsage({"INV_X1": 0.3, "NAND2_X1": 0.4, "NOR2_X1": 0.3})


class TestSweeps:
    def test_mean_curve_shape(self, small_characterization, usage):
        p_values, means = sweep_mean_leakage(small_characterization, usage)
        assert p_values.shape == means.shape
        assert np.all(means > 0)

    def test_endpoints_match_pure_states(self, small_characterization):
        usage = CellUsage({"NAND2_X1": 1.0})
        _, means = sweep_mean_leakage(small_characterization, usage,
                                      np.array([0.0, 1.0]))
        states = {s.state_label: s
                  for s in small_characterization["NAND2_X1"].states}
        assert means[0] == pytest.approx(states["I0=0,I1=0"].mean)
        assert means[1] == pytest.approx(states["I0=1,I1=1"].mean)

    def test_curve_is_smooth_polynomial(self, small_characterization, usage):
        """The mean is a polynomial in p (degree = max fan-in), so a
        quadratic fit over a NAND2/NOR2/INV mix is exact."""
        p_values, means = sweep_mean_leakage(
            small_characterization, usage, np.linspace(0, 1, 11))
        coeffs = np.polyfit(p_values, means, 2)
        np.testing.assert_allclose(np.polyval(coeffs, p_values), means,
                                   rtol=1e-10)

    def test_std_sweep_positive(self, small_characterization, usage):
        _, stds = sweep_std_leakage(small_characterization, usage)
        assert np.all(stds > 0)

    def test_relative_swing_is_moderate(self, characterization):
        """Fig. 3's message: chip-level mean varies with p but within a
        bounded band (nothing like a single gate's 10x spread)."""
        usage = CellUsage.uniform(characterization.cell_names)
        _, means = sweep_mean_leakage(characterization, usage)
        assert means.max() / means.min() < 3.0


class TestMaximize:
    def test_returns_argmax_of_dense_sweep(self, small_characterization,
                                           usage):
        p_star, mean_star = maximize_mean_leakage(small_characterization,
                                                  usage)
        p_values, means = sweep_mean_leakage(
            small_characterization, usage, np.linspace(0, 1, 401))
        assert mean_star >= means.max() * (1 - 1e-9)
        assert abs(p_star - p_values[np.argmax(means)]) < 0.02

    def test_nor_heavy_mix_prefers_low_p(self, small_characterization):
        """NOR gates leak most with inputs low (parallel OFF NMOS and a
        conducting... rather: all-0 inputs put the stacked PMOS ON and
        parallel NMOS OFF at full Vds)."""
        nor_usage = CellUsage({"NOR2_X1": 1.0})
        p_star, _ = maximize_mean_leakage(small_characterization, nor_usage)
        nand_usage = CellUsage({"NAND2_X1": 1.0})
        p_nand, _ = maximize_mean_leakage(small_characterization, nand_usage)
        assert p_star != pytest.approx(p_nand, abs=0.05)

    def test_rejects_tiny_grid(self, small_characterization, usage):
        with pytest.raises(EstimationError):
            maximize_mean_leakage(small_characterization, usage, n_grid=2)
