import pytest

from repro.circuits import GateInstance, Netlist
from repro.signalprob import propagate_probabilities
from repro.signalprob.propagation import gate_pin_probabilities
from repro.exceptions import NetlistError


def chain(depth):
    gates = []
    prev = "pi0"
    for k in range(depth):
        gates.append(GateInstance(f"inv{k}", "INV_X1",
                                  pin_nets={"A": prev},
                                  output_nets={"Y": f"n{k}"}))
        prev = f"n{k}"
    return Netlist("chain", gates, primary_inputs=("pi0",))


class TestPropagation:
    def test_inverter_chain_alternates(self, library):
        net = chain(3)
        probs = propagate_probabilities(net, library, 0.2)
        assert probs["pi0"] == pytest.approx(0.2)
        assert probs["n0"] == pytest.approx(0.8)
        assert probs["n1"] == pytest.approx(0.2)
        assert probs["n2"] == pytest.approx(0.8)

    def test_nand_tree(self, library):
        g0 = GateInstance("g0", "NAND2_X1",
                          pin_nets={"I0": "a", "I1": "b"},
                          output_nets={"Y": "n0"})
        g1 = GateInstance("g1", "NAND2_X1",
                          pin_nets={"I0": "n0", "I1": "c"},
                          output_nets={"Y": "n1"})
        net = Netlist("tree", [g0, g1], primary_inputs=("a", "b", "c"))
        probs = propagate_probabilities(net, library, 0.5)
        assert probs["n0"] == pytest.approx(0.75)
        assert probs["n1"] == pytest.approx(1 - 0.75 * 0.5)

    def test_dff_output_is_half(self, library):
        g = GateInstance("ff", "DFF_X1",
                         pin_nets={"D": "pi0", "CK": "clk"},
                         output_nets={"Q": "q"})
        net = Netlist("seq", [g], primary_inputs=("pi0", "clk"))
        probs = propagate_probabilities(net, library, 0.9)
        assert probs["q"] == pytest.approx(0.5)

    def test_per_net_primary_probabilities(self, library):
        g = GateInstance("g", "NAND2_X1",
                         pin_nets={"I0": "a", "I1": "b"},
                         output_nets={"Y": "y"})
        net = Netlist("x", [g], primary_inputs=("a", "b"))
        probs = propagate_probabilities(net, library, {"a": 1.0, "b": 0.0})
        assert probs["y"] == pytest.approx(1.0)

    def test_missing_driver_raises(self, library):
        g = GateInstance("g", "INV_X1", pin_nets={"A": "ghost"},
                         output_nets={"Y": "y"})
        net = Netlist("x", [g], primary_inputs=())
        with pytest.raises(NetlistError):
            propagate_probabilities(net, library, 0.5)

    def test_out_of_range_probability_rejected(self, library):
        with pytest.raises(NetlistError):
            propagate_probabilities(chain(1), library, 1.5)

    def test_gate_pin_probabilities(self, library):
        net = chain(2)
        probs = propagate_probabilities(net, library, 0.3)
        per_gate = gate_pin_probabilities(net, probs)
        assert per_gate["inv0"] == {"A": pytest.approx(0.3)}
        assert per_gate["inv1"] == {"A": pytest.approx(0.7)}
