"""Oracle contracts of the coupled power–thermal solver.

Three independent checks pin the solver (``docs/THERMAL.md``):

* **Open-loop limit** — with ``feedback=False`` the thermal path must
  be *bit-identical* to the historical isothermal answer: the
  ``temperature_sweep`` point at the same ambient and, at the
  technology's own temperature, the plain ``estimate()``. Equality is
  asserted with ``==``, not a tolerance.
* **Zero-resistance limit** — with feedback enabled but every thermal
  resistance at (or near) zero, the fixed point *is* the uniform
  ambient: one iteration, zero residual, bit-identical moments.
* **Monte Carlo** — a seeded per-sample self-consistent chip MC
  (:func:`repro.thermal.coupled_monte_carlo` draws every site's
  mixture component and channel length, then runs the *same*
  fixed-point iteration per sample) must agree with the analytical
  coupled moments within confidence intervals derived from the sample
  itself (z = 6), never hand-tuned ``rel=`` fudge factors — the
  pattern of ``tests/characterization/test_moment_properties.py``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.temperature import temperature_sweep
from repro.thermal import ThermalConfig, coupled_monte_carlo

#: One seed for the whole module: every draw below is reproducible.
SEED = 20070604


class TestOpenLoopLimit:
    def test_bit_identical_to_plain_estimate(self, make_estimator):
        estimator = make_estimator()
        plain = estimator.estimate("linear")
        thermal = estimator.estimate(
            "linear", thermal=ThermalConfig(feedback=False))
        assert thermal.mean == plain.mean
        assert thermal.std == plain.std
        assert thermal.mean_with_vt == plain.mean_with_vt
        doc = thermal.details["thermal"]
        assert doc["feedback"] is False
        assert doc["iterations"] == 0

    def test_bit_identical_to_temperature_sweep(
            self, library, technology, thermal_usage, make_estimator):
        temperatures = [313.15, 338.15]
        points = temperature_sweep(library, technology, thermal_usage,
                                   2048, 1e-3, 1e-3, temperatures)
        estimator = make_estimator()
        for temperature, point in zip(temperatures, points):
            config = ThermalConfig(feedback=False, ambient=temperature)
            thermal = estimator.estimate("linear", thermal=config)
            assert thermal.mean == point.estimate.mean
            assert thermal.std == point.estimate.std
            assert (thermal.details["thermal"]["ambient"]
                    == temperature)


class TestZeroResistanceLimit:
    def test_exactly_zero_resistance_is_bit_identical(self,
                                                      make_estimator):
        estimator = make_estimator(simplified_correlation=True)
        plain = estimator.estimate("linear")
        config = ThermalConfig(package_resistance=0.0,
                               spreading_resistance=0.0,
                               power_scale=1000.0)
        coupled = estimator.estimate("linear", thermal=config)
        assert coupled.mean == plain.mean
        assert coupled.std == plain.std
        doc = coupled.details["thermal"]
        assert doc["feedback"] is True
        assert doc["converged"] is True
        assert doc["iterations"] == 1
        assert doc["residual"] == 0.0
        assert doc["delta_t_max"] == 0.0

    def test_near_zero_resistance_converges_to_uniform_answer(
            self, make_estimator):
        estimator = make_estimator(simplified_correlation=True)
        plain = estimator.estimate("linear")
        config = ThermalConfig(package_resistance=1e-9,
                               spreading_resistance=1e-9,
                               power_scale=100.0)
        coupled = estimator.estimate("linear", thermal=config)
        doc = coupled.details["thermal"]
        assert doc["converged"] is True
        assert doc["delta_t_max"] < 1e-6
        assert np.isclose(coupled.mean, plain.mean, rtol=1e-6)
        assert np.isclose(coupled.std, plain.std, rtol=1e-6)


class TestMonteCarloOracle:
    """Coupled analytical moments vs the per-sample fixed-point MC."""

    CONFIG = ThermalConfig(package_resistance=120.0,
                           spreading_resistance=40.0,
                           power_scale=800.0,
                           background_power=0.01)
    N_SAMPLES = 600

    def test_coupled_moments_within_sample_ci(self, make_estimator):
        estimator = make_estimator(simplified_correlation=True)
        coupled = estimator.estimate("linear", thermal=self.CONFIG)
        doc = coupled.details["thermal"]
        assert doc["converged"] is True
        # The operating point must exercise real feedback, or the test
        # degenerates into the open-loop check above.
        assert doc["feedback_gain"] > 0.05
        assert doc["delta_t_max"] > 1.0

        mc = coupled_monte_carlo(estimator, self.CONFIG,
                                 n_samples=self.N_SAMPLES,
                                 rng=np.random.default_rng(SEED))
        mean_se = mc.std / np.sqrt(mc.n_samples)
        z_mean = (coupled.mean - mc.mean) / mean_se
        z_std = (coupled.std - mc.std) / mc.std_standard_error()
        assert abs(z_mean) < 6.0, (
            f"coupled mean {coupled.mean:.6e} vs MC {mc.mean:.6e} "
            f"(z = {z_mean:.2f})")
        assert abs(z_std) < 6.0, (
            f"coupled std {coupled.std:.6e} vs MC {mc.std:.6e} "
            f"(z = {z_std:.2f})")

    def test_feedback_amplifies_spread(self, make_estimator):
        """The coupled std must exceed the open-loop std: hotter
        samples leak more, which heats them further — positive
        feedback widens the distribution by ~1/(1-gain)."""
        estimator = make_estimator(simplified_correlation=True)
        open_loop = estimator.estimate("linear")
        coupled = estimator.estimate("linear", thermal=self.CONFIG)
        assert coupled.mean > open_loop.mean
        assert coupled.std > open_loop.std
        amplification = coupled.details["thermal"]["std_amplification"]
        assert amplification > 1.0
