"""Convergence properties of the thermal fixed point.

Randomized-but-seeded operating points across the documented
contraction region (``feedback gain < 1``) must converge with a
monotonically shrinking residual; outside it, or under an iteration
cap, the solver must raise a *typed* :class:`EstimationError` — never
return a silent partial result. The fast piecewise-linear leakage(T)
path must stay within its documented ``FAST_FULL_RTOL`` of the full
per-bin re-characterization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.thermal import FAST_FULL_RTOL, ThermalConfig

#: One seed for the whole module: every draw below is reproducible.
SEED = 20070604


def draw_configs(n_draws):
    """Seeded operating points inside the contraction region.

    Resistances, power scaling, ambient, and damping all vary; the
    ranges are sized (gain scales like ~0.04/K of self-heating for
    this library) so the feedback gain stays well below 1.
    """
    rng = np.random.default_rng(SEED)
    configs = []
    for _ in range(n_draws):
        configs.append(ThermalConfig(
            ambient=float(rng.uniform(300.0, 340.0)),
            package_resistance=float(rng.uniform(20.0, 120.0)),
            spreading_resistance=float(rng.uniform(0.0, 1e5)),
            spreading_length=float(rng.uniform(0.2e-3, 0.8e-3)),
            power_scale=float(rng.uniform(100.0, 600.0)),
            background_power=float(rng.uniform(0.0, 0.02)),
            damping=float(rng.uniform(0.6, 1.0)),
        ))
    return configs


class TestContraction:
    @pytest.mark.parametrize("config", draw_configs(5))
    def test_randomized_operating_points_converge(self, make_estimator,
                                                  config):
        estimator = make_estimator(simplified_correlation=True)
        estimate = estimator.estimate("linear", thermal=config)
        doc = estimate.details["thermal"]
        assert doc["converged"] is True
        assert doc["iterations"] <= config.max_iterations
        assert doc["residual"] < config.tolerance
        assert 0.0 <= doc["feedback_gain"] < 1.0
        if doc["contraction"] is not None:
            assert doc["contraction"] < 1.0
        # Damped contraction: every residual shrinks on the previous.
        residuals = doc["residuals"]
        assert all(later < earlier for earlier, later
                   in zip(residuals, residuals[1:]))

    def test_diagnostics_document(self, make_estimator):
        estimator = make_estimator(simplified_correlation=True)
        config = ThermalConfig(package_resistance=40.0,
                               spreading_resistance=1e4,
                               power_scale=400.0)
        doc = estimator.estimate(
            "linear", thermal=config).details["thermal"]
        assert doc["enabled"] is True
        assert doc["mode"] == "fast"
        assert doc["damping"] == 1.0
        assert len(doc["residuals"]) == doc["iterations"]
        assert doc["t_min"] <= doc["t_mean"] <= doc["t_max"]
        assert doc["delta_t_max"] > 0.0
        assert doc["power_total"] > 0.0
        assert doc["anchors"] >= 2
        np.testing.assert_allclose(
            doc["std_amplification"],
            1.0 / (1.0 - doc["feedback_gain"]))


class TestTypedFailures:
    def test_iteration_cap_raises_never_partial(self, make_estimator):
        estimator = make_estimator(simplified_correlation=True)
        config = ThermalConfig(package_resistance=40.0,
                               power_scale=400.0, max_iterations=1)
        with pytest.raises(EstimationError,
                           match="did not converge within 1"):
            estimator.estimate("linear", thermal=config)

    def test_thermal_runaway_is_typed(self, make_estimator):
        # A huge tolerance lets the loop "converge" in one step even at
        # an absurd power scale; the post-convergence gain check must
        # still reject the operating point as runaway (gain >= 1).
        estimator = make_estimator(simplified_correlation=True)
        config = ThermalConfig(package_resistance=40.0,
                               power_scale=40_000.0, tolerance=100.0)
        with pytest.raises(EstimationError, match="thermal runaway"):
            estimator.estimate("linear", thermal=config)

    def test_iterate_outside_technology_range_is_typed(
            self, make_estimator):
        # Unbounded heating drives the iterates past the technology's
        # valid temperature span (a threshold crosses zero); that must
        # surface as a typed error, not a numerics crash.
        estimator = make_estimator(simplified_correlation=True)
        config = ThermalConfig(package_resistance=400.0,
                               power_scale=100_000.0,
                               max_iterations=200)
        with pytest.raises(EstimationError,
                           match="valid range|thermal"):
            estimator.estimate("linear", thermal=config)

    def test_feedback_requires_simplified_correlation(
            self, make_estimator):
        estimator = make_estimator(simplified_correlation=False)
        with pytest.raises(EstimationError,
                           match="simplified_correlation=True"):
            estimator.estimate("linear", thermal=ThermalConfig())

    def test_feedback_rejects_methodless_variants(self, make_estimator):
        estimator = make_estimator(simplified_correlation=True)
        with pytest.raises(EstimationError, match="supports method"):
            estimator.estimate("integral2d", thermal=ThermalConfig())


class TestFastPathAccuracy:
    def test_fast_within_documented_bound_of_full(self, make_estimator):
        estimator = make_estimator(simplified_correlation=True)
        base = dict(package_resistance=40.0, spreading_resistance=3e5,
                    spreading_length=0.3e-3, power_scale=400.0,
                    full_quantization=0.01)
        fast = estimator.estimate(
            "linear", thermal=ThermalConfig(mode="fast", **base))
        full = estimator.estimate(
            "linear", thermal=ThermalConfig(mode="full", **base))
        assert fast.details["thermal"]["mode"] == "fast"
        assert full.details["thermal"]["mode"] == "full"
        np.testing.assert_allclose(fast.mean, full.mean,
                                   rtol=FAST_FULL_RTOL)
        np.testing.assert_allclose(fast.std, full.std,
                                   rtol=FAST_FULL_RTOL)
        np.testing.assert_allclose(fast.mean_with_vt, full.mean_with_vt,
                                   rtol=FAST_FULL_RTOL)
