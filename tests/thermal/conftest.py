"""Fixtures for the thermal suite.

Coupled solves re-characterize the usage-relevant library subset at
solver-chosen temperatures, so the fixtures keep that subset small
(two cells) and share one analytical characterization per session.
"""

from __future__ import annotations

import pytest

from repro.characterization import characterize_library
from repro.core import CellUsage, FullChipLeakageEstimator

#: The usage subset every thermal test runs on — small enough that a
#: per-anchor re-characterization costs ~10 ms.
THERMAL_CELLS = ("INV_X1", "NAND2_X1")


@pytest.fixture(scope="session")
def thermal_characterization(library, technology):
    return characterize_library(library, technology, cells=THERMAL_CELLS)


@pytest.fixture(scope="session")
def thermal_usage():
    return CellUsage({"INV_X1": 0.6, "NAND2_X1": 0.4})


@pytest.fixture
def make_estimator(thermal_characterization, thermal_usage):
    """Estimator factory over the shared two-cell characterization."""

    def build(n_cells=2048, width=1e-3, height=1e-3, **kwargs):
        return FullChipLeakageEstimator(
            thermal_characterization, thermal_usage, n_cells,
            width, height, **kwargs)

    return build
