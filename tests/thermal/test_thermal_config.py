"""Validation and wire-format contracts of :class:`ThermalConfig`.

Every unphysical or out-of-range knob must raise a *typed*
:class:`EstimationError` at construction — the solver never sees a
silent partial setup — and the dict form must round-trip exactly (it is
the service content-hash form). The same ``T <= 0 K`` guard also
applies to the historical ``temperature_sweep`` entry point.
"""

from __future__ import annotations

import pytest

from repro.analysis.temperature import temperature_sweep
from repro.core import CellUsage
from repro.exceptions import EstimationError
from repro.thermal import THERMAL_MODES, ThermalConfig


class TestValidation:
    @pytest.mark.parametrize("ambient", [0.0, -1.0, -273.15, 25.0 - 273.15])
    def test_non_positive_ambient_rejected(self, ambient):
        with pytest.raises(EstimationError, match="absolute kelvin"):
            ThermalConfig(ambient=ambient)

    @pytest.mark.parametrize("field, value", [
        ("package_resistance", -1.0),
        ("spreading_resistance", -0.5),
        ("spreading_length", 0.0),
        ("power_scale", -2.0),
        ("background_power", -1e-3),
        ("vdd", 0.0),
        ("anchor_spacing", 0.0),
        ("tolerance", 0.0),
        ("full_quantization", -0.05),
    ])
    def test_out_of_range_knob_rejected(self, field, value):
        with pytest.raises(EstimationError, match=field):
            ThermalConfig(**{field: value})

    @pytest.mark.parametrize("damping", [0.0, -0.5, 1.5])
    def test_damping_outside_unit_interval_rejected(self, damping):
        with pytest.raises(EstimationError, match="damping"):
            ThermalConfig(damping=damping)

    def test_iteration_cap_below_one_rejected(self):
        with pytest.raises(EstimationError, match="max_iterations"):
            ThermalConfig(max_iterations=0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(EstimationError, match="unknown thermal mode"):
            ThermalConfig(mode="warp")

    def test_modes_registry(self):
        assert THERMAL_MODES == ("fast", "full")
        for mode in THERMAL_MODES:
            assert ThermalConfig(mode=mode).mode == mode


class TestWireFormat:
    def test_round_trip(self):
        config = ThermalConfig(ambient=330.0, package_resistance=12.5,
                               power_scale=3.0, mode="full", damping=0.7)
        assert ThermalConfig.from_dict(config.to_dict()) == config

    def test_from_dict_passes_through_instances(self):
        config = ThermalConfig()
        assert ThermalConfig.from_dict(config) is config

    def test_unknown_fields_rejected(self):
        with pytest.raises(EstimationError, match="unknown thermal config"):
            ThermalConfig.from_dict({"packge_resistance": 2.0})

    def test_non_mapping_rejected(self):
        with pytest.raises(EstimationError, match="JSON object"):
            ThermalConfig.from_dict([("ambient", 300.0)])

    def test_with_ambient_and_power_scale(self):
        config = ThermalConfig()
        assert config.with_ambient(340.0).ambient == 340.0
        assert config.with_power_scale(7.0).power_scale == 7.0
        # ...and the overrides still validate.
        with pytest.raises(EstimationError, match="absolute kelvin"):
            config.with_ambient(-40.0)
        with pytest.raises(EstimationError, match="power_scale"):
            config.with_power_scale(-1.0)

    def test_resolution_defaults_to_technology(self, technology):
        config = ThermalConfig()
        assert config.resolve_ambient(technology) == float(
            technology.temperature)
        assert config.resolve_vdd(technology) == float(technology.vdd)
        pinned = ThermalConfig(ambient=350.0, vdd=0.9)
        assert pinned.resolve_ambient(technology) == 350.0
        assert pinned.resolve_vdd(technology) == 0.9


class TestTemperatureSweepGuard:
    """The historical sweep entry point shares the ``> 0 K`` contract."""

    @pytest.mark.parametrize("bad", [0.0, -10.0, 25.0 - 273.15])
    def test_non_positive_temperature_rejected(
            self, library, technology, bad):
        usage = CellUsage.uniform(["INV_X1"])
        with pytest.raises(EstimationError, match="absolute kelvin"):
            temperature_sweep(library, technology, usage, 1024,
                              1e-3, 1e-3, temperatures=[300.0, bad])

    def test_empty_sweep_rejected(self, library, technology):
        usage = CellUsage.uniform(["INV_X1"])
        with pytest.raises(EstimationError, match="at least one"):
            temperature_sweep(library, technology, usage, 1024,
                              1e-3, 1e-3, temperatures=[])
