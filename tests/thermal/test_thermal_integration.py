"""Thermal wiring through the sweep engine and the service layer.

The thermal configuration must ride every existing transport
unchanged: sweep axes over ambient temperature and power scale cross
with the other axes (and each sweep point is bit-identical to the
direct ``estimate(..., thermal=...)`` call), and the service request
carries/validates/hashes the config — with isothermal requests keeping
their historical content hashes byte-for-byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import estimate_sweep
from repro.core.sweep import (
    ambient_temperature_axis,
    cell_count_axis,
    power_scale_axis,
)
from repro.exceptions import ConfigurationError, EstimationError
from repro.service.jobs import EstimateRequest
from repro.service.metrics import MetricsRegistry
from repro.service.pipeline import EstimationPipeline
from repro.thermal import ThermalConfig


class TestSweepAxes:
    def test_axis_validation(self):
        with pytest.raises(EstimationError, match="> 0 K"):
            ambient_temperature_axis([300.0, -10.0])
        with pytest.raises(EstimationError, match="power scale"):
            power_scale_axis([1.0, -1.0])

    def test_ambient_crosses_power_scale(self, thermal_characterization,
                                         thermal_usage):
        base = ThermalConfig(package_resistance=40.0, power_scale=1.0)
        sweep = estimate_sweep(
            thermal_characterization, thermal_usage, 1024, 1e-3, 1e-3,
            axes=[
                ambient_temperature_axis([313.15, 333.15]),
                power_scale_axis([100.0, 400.0]),
            ],
            method="linear", simplified_correlation=True, thermal=base)
        assert sweep.shape == (2, 2)
        for (ambient, scale), estimate in zip(
                np.array(np.meshgrid(*sweep.values,
                                     indexing="ij")).reshape(2, -1).T,
                sweep):
            doc = estimate.details["thermal"]
            assert doc["converged"] is True
            assert doc["ambient"] == ambient
        # Hotter ambient and stronger power coupling both raise the
        # mean: the grid must be strictly increasing along both axes.
        grid = np.reshape([e.mean for e in sweep], sweep.shape)
        assert (np.diff(grid, axis=0) > 0).all()
        assert (np.diff(grid, axis=1) > 0).all()

    def test_sweep_point_bit_identical_to_direct_estimate(
            self, thermal_characterization, thermal_usage,
            make_estimator):
        base = ThermalConfig(package_resistance=40.0)
        sweep = estimate_sweep(
            thermal_characterization, thermal_usage, 2048, 1e-3, 1e-3,
            axes=[power_scale_axis([100.0, 400.0])],
            method="linear", simplified_correlation=True, thermal=base)
        estimator = make_estimator(simplified_correlation=True)
        for scale, from_sweep in zip([100.0, 400.0], sweep):
            direct = estimator.estimate(
                "linear", thermal=base.with_power_scale(scale))
            assert from_sweep.mean == direct.mean
            assert from_sweep.std == direct.std

    def test_thermal_crosses_structural_axes(
            self, thermal_characterization, thermal_usage):
        sweep = estimate_sweep(
            thermal_characterization, thermal_usage, 1024, 1e-3, 1e-3,
            axes=[
                cell_count_axis([1024, 4096]),
                ambient_temperature_axis([313.15]),
            ],
            method="linear", simplified_correlation=True,
            thermal=ThermalConfig(package_resistance=40.0,
                                  power_scale=100.0))
        assert sweep.shape == (2, 1)
        assert all(e.details["thermal"]["converged"] for e in sweep)


class TestTracing:
    def test_traced_solve_emits_thermal_spans(self, make_estimator):
        estimator = make_estimator(n_cells=1024,
                                   simplified_correlation=True)
        thermal = ThermalConfig(package_resistance=40.0,
                                power_scale=400.0)
        traced = estimator.estimate("linear", thermal=thermal,
                                    trace=True)
        plain = estimator.estimate("linear", thermal=thermal)
        # Tracing never perturbs the solve.
        assert traced.mean == plain.mean
        assert traced.std == plain.std
        stages = traced.details["trace"]["stages"]
        assert any(name.startswith("thermal.solve")
                   for name in stages), sorted(stages)
        assert any(name.split("/")[-1].startswith("thermal.operator")
                   for name in stages), sorted(stages)


class TestServiceTransport:
    BASE = dict(n_cells=1024, width_mm=1.0, height_mm=1.0,
                usage={"INV_X1": 0.6, "NAND2_X1": 0.4},
                cells=("INV_X1", "NAND2_X1"), method="linear",
                simplified_correlation=True)

    def test_isothermal_hash_has_no_thermal_key(self):
        request = EstimateRequest(**self.BASE)
        assert "thermal" not in request.canonical_dict()

    def test_thermal_requests_hash_distinctly(self):
        plain = EstimateRequest(**self.BASE)
        defaults = EstimateRequest(**self.BASE, thermal={})
        tuned = EstimateRequest(**self.BASE,
                                thermal={"power_scale": 2.0})
        assert len({plain.key(), defaults.key(), tuned.key()}) == 3
        # ...but the dict and dataclass spellings coalesce.
        spelled = EstimateRequest(
            **self.BASE, thermal=ThermalConfig(power_scale=2.0))
        assert spelled.key() == tuned.key()

    @pytest.mark.parametrize("overrides, match", [
        (dict(thermal={"ambient": -3.0}), "absolute kelvin"),
        (dict(thermal={"unknown_knob": 1.0}), "unknown thermal"),
        (dict(thermal={}, simplified_correlation=None),
         "simplified_correlation"),
        (dict(thermal={}, method="exact"), "method"),
        (dict(thermal={}, mode="montecarlo"), "analytical"),
    ])
    def test_invalid_thermal_requests_rejected_at_construction(
            self, overrides, match):
        fields = dict(self.BASE)
        fields.update(overrides)
        with pytest.raises(ConfigurationError, match=match):
            EstimateRequest(**fields)

    def test_open_loop_passes_without_simplified_correlation(self):
        fields = dict(self.BASE, simplified_correlation=None,
                      thermal={"feedback": False})
        request = EstimateRequest(**fields)
        assert request.thermal.feedback is False

    def test_pipeline_runs_thermal_and_observes_metrics(self):
        registry = MetricsRegistry()
        pipeline = EstimationPipeline(metrics=registry)
        coupled = pipeline(EstimateRequest(
            **self.BASE, thermal={"package_resistance": 40.0,
                                  "power_scale": 400.0}))
        doc = coupled.details["thermal"]
        assert doc["converged"] is True
        open_loop = pipeline(EstimateRequest(
            **self.BASE, thermal={"feedback": False}))
        assert open_loop.details["thermal"]["iterations"] == 0
        rendered = registry.render()
        assert ('repro_thermal_requests_total{outcome="coupled"} 1'
                in rendered)
        assert ('repro_thermal_requests_total{outcome="open_loop"} 1'
                in rendered)
        assert "repro_thermal_iterations" in rendered

    def test_thermal_results_cache_and_coalesce(self):
        pipeline = EstimationPipeline()
        request = EstimateRequest(
            **self.BASE, thermal={"package_resistance": 40.0,
                                  "power_scale": 400.0})
        first = pipeline(request)
        again = pipeline(EstimateRequest(
            **self.BASE, thermal={"package_resistance": 40.0,
                                  "power_scale": 400.0}))
        assert again.mean == first.mean
        assert again.details["thermal"] == first.details["thermal"]
