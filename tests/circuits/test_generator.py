import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import random_circuit
from repro.core import CellUsage
from repro.exceptions import NetlistError


@pytest.fixture(scope="module")
def usage():
    return CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.3, "NOR2_X1": 0.2,
                      "DFF_X1": 0.1})


class TestRandomCircuit:
    def test_exact_histogram(self, library, usage, rng):
        net = random_circuit(library, usage, 1000, rng=rng)
        counts = net.cell_counts()
        assert counts == {"INV_X1": 400, "NAND2_X1": 300, "NOR2_X1": 200,
                          "DFF_X1": 100}

    def test_sampled_histogram_fluctuates(self, library, usage):
        counts = []
        for seed in range(3):
            net = random_circuit(library, usage, 500,
                                 rng=np.random.default_rng(seed),
                                 exact_histogram=False)
            counts.append(net.cell_counts().get("INV_X1", 0))
        assert len(set(counts)) > 1  # i.i.d. sampling varies

    def test_valid_topological_netlist(self, library, usage, rng):
        net = random_circuit(library, usage, 300, rng=rng)
        net.validate()

    def test_every_input_pin_wired(self, library, usage, rng):
        net = random_circuit(library, usage, 200, rng=rng)
        for gate in net:
            cell = library[gate.cell_name]
            assert set(gate.pin_nets) == set(cell.netlist.inputs)

    def test_primary_input_count_default(self, library, usage, rng):
        net = random_circuit(library, usage, 500, rng=rng)
        assert len(net.primary_inputs) == 50

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=1, max_value=400))
    def test_gate_count_always_exact(self, library, usage, n):
        net = random_circuit(library, usage, n,
                             rng=np.random.default_rng(n))
        assert net.n_gates == n

    def test_rejects_unknown_cell(self, library, rng):
        with pytest.raises(NetlistError):
            random_circuit(library, CellUsage({"GHOST": 1.0}), 10, rng=rng)

    def test_rejects_non_positive_count(self, library, usage, rng):
        with pytest.raises(NetlistError):
            random_circuit(library, usage, 0, rng=rng)

    def test_reproducible_with_seed(self, library, usage):
        a = random_circuit(library, usage, 100,
                           rng=np.random.default_rng(9))
        b = random_circuit(library, usage, 100,
                           rng=np.random.default_rng(9))
        assert [g.cell_name for g in a] == [g.cell_name for g in b]
        assert [g.pin_nets for g in a] == [g.pin_nets for g in b]
