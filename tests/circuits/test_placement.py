import numpy as np
import pytest

from repro.circuits import (
    clustered_placement,
    die_dimensions,
    grid_placement,
    random_circuit,
)
from repro.core import CellUsage
from repro.exceptions import NetlistError


@pytest.fixture
def netlist(library, rng):
    usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})
    return random_circuit(library, usage, 200, rng=rng)


class TestDieDimensions:
    def test_area_accounts_for_utilization(self, netlist, library):
        width, height = die_dimensions(netlist, library, utilization=0.5)
        cell_area = sum(library[g.cell_name].area for g in netlist)
        assert width * height == pytest.approx(cell_area / 0.5, rel=1e-9)

    def test_aspect(self, netlist, library):
        width, height = die_dimensions(netlist, library, aspect=2.0)
        assert width / height == pytest.approx(2.0)

    def test_rejects_bad_utilization(self, netlist, library):
        with pytest.raises(NetlistError):
            die_dimensions(netlist, library, utilization=0.0)


class TestGridPlacement:
    def test_places_every_gate(self, netlist, rng):
        chip = grid_placement(netlist, 1e-4, 1e-4, rng=rng)
        assert netlist.is_placed
        assert chip.n_sites >= netlist.n_gates

    def test_positions_unique_sites(self, netlist, rng):
        grid_placement(netlist, 1e-4, 1e-4, rng=rng)
        positions = netlist.positions()
        unique = {tuple(p) for p in positions}
        assert len(unique) == netlist.n_gates

    def test_positions_inside_die(self, netlist, rng):
        grid_placement(netlist, 1e-4, 2e-4, rng=rng)
        positions = netlist.positions()
        assert positions[:, 0].max() < 1e-4
        assert positions[:, 1].max() < 2e-4

    def test_random_assignment_varies_with_seed(self, library):
        usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})
        nets = [random_circuit(library, usage, 100,
                               rng=np.random.default_rng(1))
                for _ in range(2)]
        grid_placement(nets[0], 1e-4, 1e-4, np.random.default_rng(2))
        grid_placement(nets[1], 1e-4, 1e-4, np.random.default_rng(3))
        assert not np.allclose(nets[0].positions(), nets[1].positions())


class TestClusteredPlacement:
    def test_same_type_gates_tighter_than_random(self, library):
        usage = CellUsage({"INV_X1": 0.25, "NAND2_X1": 0.25,
                           "NOR2_X1": 0.25, "XOR2_X1": 0.25})
        clustered = random_circuit(library, usage, 400,
                                   rng=np.random.default_rng(1))
        shuffled = random_circuit(library, usage, 400,
                                  rng=np.random.default_rng(1))
        clustered_placement(clustered, 1e-4, 1e-4,
                            rng=np.random.default_rng(2))
        grid_placement(shuffled, 1e-4, 1e-4, rng=np.random.default_rng(2))

        def within_type(net, name):
            positions = net.positions()
            types = np.array([g.cell_name for g in net])
            return _mean_pairwise(positions[types == name][:80])

        # Clustering packs same-type gates: their mean pairwise distance
        # must be well below the random-placement value.
        assert within_type(clustered, "INV_X1") < \
            0.7 * within_type(shuffled, "INV_X1")


def _mean_pairwise(points):
    delta = points[:, None, :] - points[None, :, :]
    return float(np.sqrt((delta ** 2).sum(-1)).mean())
