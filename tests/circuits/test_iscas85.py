import pytest

from repro.circuits import ISCAS85_GATE_COUNTS, iscas85_circuit, iscas85_names
from repro.circuits.iscas85 import iscas85_cell_counts, iscas85_usage
from repro.exceptions import NetlistError

#: Published total gate counts of the suite.
PUBLISHED_TOTALS = {
    "c432": 160, "c499": 202, "c880": 383, "c1355": 546, "c1908": 880,
    "c2670": 1193, "c5315": 2307, "c6288": 2406, "c7552": 3512,
}


class TestData:
    def test_names_cover_table1(self):
        assert set(iscas85_names()) == set(PUBLISHED_TOTALS)

    @pytest.mark.parametrize("name,total", sorted(PUBLISHED_TOTALS.items()))
    def test_function_counts_sum_to_published_total(self, name, total):
        assert sum(ISCAS85_GATE_COUNTS[name].values()) == total

    @pytest.mark.parametrize("name", sorted(PUBLISHED_TOTALS))
    def test_cell_counts_preserve_totals(self, name):
        counts = iscas85_cell_counts(name)
        assert sum(counts.values()) == PUBLISHED_TOTALS[name]

    def test_c6288_is_nor_dominated(self):
        """The famous 16x16 multiplier is a sea of NOR gates."""
        counts = iscas85_cell_counts("c6288")
        nor = sum(v for k, v in counts.items() if k.startswith("NOR"))
        assert nor / PUBLISHED_TOTALS["c6288"] > 0.8

    def test_c499_is_xor_heavy(self):
        counts = iscas85_cell_counts("c499")
        assert counts.get("XOR2_X1", 0) == 104

    def test_unknown_circuit_rejected(self):
        with pytest.raises(NetlistError):
            iscas85_cell_counts("c9999")


class TestCircuits:
    @pytest.mark.parametrize("name", ["c432", "c880"])
    def test_netlist_matches_counts(self, library, name):
        net = iscas85_circuit(name, library)
        assert net.n_gates == PUBLISHED_TOTALS[name]
        assert net.cell_counts() == iscas85_cell_counts(name)
        net.validate()

    def test_usage_normalized(self):
        usage = iscas85_usage("c432")
        assert usage.fractions.sum() == pytest.approx(1.0)

    def test_deterministic_without_rng(self, library):
        a = iscas85_circuit("c432", library)
        b = iscas85_circuit("c432", library)
        assert [g.cell_name for g in a] == [g.cell_name for g in b]
