import pytest

from repro.circuits import (
    extract_characteristics,
    grid_placement,
    random_circuit,
)
from repro.core import CellUsage


@pytest.fixture
def placed_netlist(library, rng):
    usage = CellUsage({"INV_X1": 0.6, "NAND2_X1": 0.4})
    net = random_circuit(library, usage, 400, rng=rng)
    grid_placement(net, 2e-4, 1e-4, rng=rng)
    return net


class TestExtraction:
    def test_usage_recovered_exactly(self, placed_netlist, library):
        chars = extract_characteristics(placed_netlist, library)
        assert chars.usage["INV_X1"] == pytest.approx(0.6)
        assert chars.usage["NAND2_X1"] == pytest.approx(0.4)
        assert chars.n_cells == 400

    def test_placed_dimensions_cover_die(self, placed_netlist, library):
        chars = extract_characteristics(placed_netlist, library)
        assert chars.width == pytest.approx(2e-4, rel=0.15)
        assert chars.height == pytest.approx(1e-4, rel=0.15)
        assert chars.area == pytest.approx(chars.width * chars.height)

    def test_unplaced_falls_back_to_area_model(self, library, rng):
        usage = CellUsage({"INV_X1": 1.0})
        net = random_circuit(library, usage, 100, rng=rng)
        chars = extract_characteristics(net, library, utilization=0.7)
        expected_area = 100 * library["INV_X1"].area / 0.7
        assert chars.width * chars.height == pytest.approx(expected_area,
                                                           rel=1e-9)
