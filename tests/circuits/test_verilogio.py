import pytest

from repro.circuits.verilogio import load_verilog, parse_verilog, write_verilog
from repro.exceptions import NetlistError
from repro.signalprob import propagate_probabilities

SIMPLE = """
// two-gate example
module tiny (a, b, y);
  input a, b;
  output y;
  wire n1;
  NAND2_X1 u1 (.I0(a), .I1(b), .Y(n1));
  INV_X1 u2 (.A(n1), .Y(y));
endmodule
"""

OUT_OF_ORDER = """
module ooo (a, y);
  input a;
  output y;
  wire n1, n2;
  INV_X1 u3 (.A(n2), .Y(y));
  INV_X1 u2 (.A(n1), .Y(n2));
  INV_X1 u1 (.A(a), .Y(n1));
endmodule
"""

SEQUENTIAL = """
module counterbit (clk, y);
  input clk;
  output y;
  wire d, q;
  INV_X1 u1 (.A(q), .Y(d));   /* toggle feedback */
  DFF_X1 r1 (.D(d), .CK(clk), .Q(q));
  BUF_X1 u2 (.A(q), .Y(y));
endmodule
"""

MULTI_OUTPUT = """
module adder (a, b, s, co);
  input a, b;
  output s, co;
  HA_X1 u1 (.A(a), .B(b), .S(s), .CO(co));
endmodule
"""


class TestParse:
    def test_simple_structure(self, library):
        net = parse_verilog(SIMPLE, library)
        assert net.name == "tiny"
        assert net.cell_counts() == {"NAND2_X1": 1, "INV_X1": 1}
        assert net.primary_inputs == ("a", "b")
        probs = propagate_probabilities(net, library, 0.5)
        assert probs["y"] == pytest.approx(0.25)

    def test_out_of_order_instances_sorted(self, library):
        net = parse_verilog(OUT_OF_ORDER, library)
        assert [g.name for g in net.gates] == ["u1", "u2", "u3"]
        net.validate()

    def test_sequential_feedback_through_dff(self, library):
        net = parse_verilog(SEQUENTIAL, library)
        assert "q" in net.pseudo_inputs
        probs = propagate_probabilities(net, library, 0.5)
        assert probs["y"] == pytest.approx(0.5)

    def test_multi_output_cell(self, library):
        net = parse_verilog(MULTI_OUTPUT, library)
        probs = propagate_probabilities(net, library, 0.5)
        assert probs["s"] == pytest.approx(0.5)
        assert probs["co"] == pytest.approx(0.25)

    def test_unknown_cell_rejected(self, library):
        bad = SIMPLE.replace("NAND2_X1", "MYSTERY9")
        with pytest.raises(NetlistError):
            parse_verilog(bad, library)

    def test_unconnected_input_rejected(self, library):
        bad = SIMPLE.replace(".I1(b), ", "")
        with pytest.raises(NetlistError):
            parse_verilog(bad, library)

    def test_unknown_pin_rejected(self, library):
        bad = SIMPLE.replace(".I1(b)", ".I9(b)")
        with pytest.raises(NetlistError):
            parse_verilog(bad, library)

    def test_combinational_loop_rejected(self, library):
        loop = """
        module l (a, y);
          input a;
          output y;
          wire n1, n2;
          NAND2_X1 u1 (.I0(a), .I1(n2), .Y(n1));
          INV_X1 u2 (.A(n1), .Y(n2));
          BUF_X1 u3 (.A(n2), .Y(y));
        endmodule
        """
        with pytest.raises(NetlistError):
            parse_verilog(loop, library)

    def test_missing_module_rejected(self, library):
        with pytest.raises(NetlistError):
            parse_verilog("wire x;", library)


class TestRoundTrip:
    def test_write_and_reparse(self, library):
        net = parse_verilog(SIMPLE, library)
        text = write_verilog(net, library)
        again = parse_verilog(text, library)
        assert again.cell_counts() == net.cell_counts()
        p1 = propagate_probabilities(net, library, 0.3)
        p2 = propagate_probabilities(again, library, 0.3)
        assert p1["y"] == pytest.approx(p2["y"])

    def test_random_circuit_round_trip(self, library, rng):
        from repro.circuits import random_circuit
        from repro.core import CellUsage
        usage = CellUsage({"INV_X1": 0.3, "NAND2_X1": 0.3, "MUX2_X1": 0.2,
                           "DFF_X1": 0.2})
        net = random_circuit(library, usage, 150, rng=rng)
        text = write_verilog(net, library)
        again = parse_verilog(text, library)
        assert again.cell_counts() == net.cell_counts()
        again.validate()

    def test_load_from_disk(self, library, tmp_path):
        path = tmp_path / "tiny.v"
        path.write_text(SIMPLE)
        net = load_verilog(str(path), library)
        assert net.n_gates == 2
