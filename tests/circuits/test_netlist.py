import numpy as np
import pytest

from repro.circuits import GateInstance, Netlist
from repro.exceptions import NetlistError


def small_netlist():
    g0 = GateInstance("g0", "INV_X1", pin_nets={"A": "pi0"},
                      output_nets={"Y": "n0"})
    g1 = GateInstance("g1", "NAND2_X1", pin_nets={"I0": "pi0", "I1": "n0"},
                      output_nets={"Y": "n1"})
    return Netlist("small", [g0, g1], primary_inputs=("pi0",))


class TestNetlist:
    def test_counts(self):
        net = small_netlist()
        assert net.n_gates == 2
        assert net.cell_counts() == {"INV_X1": 1, "NAND2_X1": 1}

    def test_validate_passes_topological(self):
        small_netlist().validate()

    def test_validate_rejects_undriven_net(self):
        g = GateInstance("g0", "INV_X1", pin_nets={"A": "ghost"},
                         output_nets={"Y": "n0"})
        with pytest.raises(NetlistError):
            Netlist("bad", [g], primary_inputs=()).validate()

    def test_validate_rejects_non_topological_order(self):
        g0 = GateInstance("g0", "INV_X1", pin_nets={"A": "n1"},
                          output_nets={"Y": "n0"})
        g1 = GateInstance("g1", "INV_X1", pin_nets={"A": "pi0"},
                          output_nets={"Y": "n1"})
        with pytest.raises(NetlistError):
            Netlist("bad", [g0, g1], primary_inputs=("pi0",)).validate()

    def test_duplicate_instance_names_rejected(self):
        g = GateInstance("g", "INV_X1", pin_nets={"A": "pi0"},
                         output_nets={"Y": "n0"})
        h = GateInstance("g", "INV_X1", pin_nets={"A": "pi0"},
                         output_nets={"Y": "n1"})
        with pytest.raises(NetlistError):
            Netlist("bad", [g, h], primary_inputs=("pi0",))

    def test_multiple_drivers_rejected(self):
        g0 = GateInstance("g0", "INV_X1", pin_nets={"A": "pi0"},
                          output_nets={"Y": "n0"})
        g1 = GateInstance("g1", "INV_X1", pin_nets={"A": "pi0"},
                          output_nets={"Y": "n0"})
        with pytest.raises(NetlistError):
            Netlist("bad", [g0, g1], primary_inputs=("pi0",)).driven_nets()

    def test_positions_require_placement(self):
        net = small_netlist()
        assert not net.is_placed
        with pytest.raises(NetlistError):
            net.positions()
        for gate in net:
            gate.position = (1e-6, 2e-6)
        assert net.is_placed
        assert net.positions().shape == (2, 2)

    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("empty", [])
