import pytest

from repro.circuits import parse_bench, write_bench
from repro.circuits.benchio import load_bench
from repro.exceptions import NetlistError
from repro.signalprob import propagate_probabilities

C17 = """
# c17 — the classic 6-gate ISCAS85 example
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""

SEQUENTIAL = """
INPUT(D0)
OUTPUT(Q1)
N1 = NOT(FFQ)
FFQ = DFF(N2)
N2 = AND(D0, N1)
Q1 = BUFF(FFQ)
"""

WIDE = """
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(D)
INPUT(E)
INPUT(F)
OUTPUT(Y)
Y = NAND(A, B, C, D, E, F)
"""


class TestParse:
    def test_c17_structure(self, library):
        net = parse_bench(C17, library, name="c17")
        assert net.n_gates == 6
        assert net.cell_counts() == {"NAND2_X1": 6}
        assert set(net.primary_inputs) == {"G1", "G2", "G3", "G6", "G7"}
        net.validate()

    def test_c17_order_is_topological(self, library):
        net = parse_bench(C17, library)
        seen = set(net.primary_inputs)
        for gate in net.gates:
            assert all(n in seen for n in gate.pin_nets.values())
            seen.update(gate.output_nets.values())

    def test_c17_propagation(self, library):
        net = parse_bench(C17, library)
        probs = propagate_probabilities(net, library, 0.5)
        assert probs["G10"] == pytest.approx(0.75)
        # G16 = NAND(G2, G11); G11 independent of G2 -> exact product.
        assert probs["G16"] == pytest.approx(1 - 0.5 * 0.75)

    def test_sequential_loop_through_dff(self, library):
        net = parse_bench(SEQUENTIAL, library, name="seq")
        assert net.cell_counts()["DFF_X1"] == 1
        assert "FFQ" in net.pseudo_inputs
        assert "clk" in net.primary_inputs
        probs = propagate_probabilities(net, library, 0.5)
        assert probs["FFQ"] == pytest.approx(0.5)
        assert probs["Q1"] == pytest.approx(0.5)

    def test_wide_gate_decomposition_preserves_function(self, library):
        net = parse_bench(WIDE, library, name="wide")
        probs = propagate_probabilities(net, library, 0.9)
        # NAND6 at independent p: 1 - p^6.
        assert probs["Y"] == pytest.approx(1 - 0.9 ** 6, rel=1e-12)

    def test_combinational_loop_rejected(self, library):
        looped = """
        INPUT(A)
        X = NAND(A, Y)
        Y = NOT(X)
        """
        with pytest.raises(NetlistError):
            parse_bench(looped, library)

    def test_undriven_net_rejected(self, library):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(A)\nY = NAND(A, GHOST)\n", library)

    def test_garbage_line_rejected(self, library):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(A)\nthis is not bench\n", library)


class TestWriteRoundTrip:
    def test_c17_round_trip(self, library):
        net = parse_bench(C17, library, name="c17")
        text = write_bench(net, library)
        again = parse_bench(text, library, name="c17rt")
        assert again.cell_counts() == net.cell_counts()
        p1 = propagate_probabilities(net, library, 0.3)
        p2 = propagate_probabilities(again, library, 0.3)
        assert p1["G22"] == pytest.approx(p2["G22"])
        assert p1["G23"] == pytest.approx(p2["G23"])

    def test_unsupported_cell_rejected(self, library, rng):
        from repro.circuits import random_circuit
        from repro.core import CellUsage
        net = random_circuit(library, CellUsage({"MUX2_X1": 1.0}), 5,
                             rng=rng)
        with pytest.raises(NetlistError):
            write_bench(net, library)


class TestLoadFromDisk:
    def test_load_bench(self, library, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        net = load_bench(str(path), library)
        assert net.name == "c17"
        assert net.n_gates == 6
