"""Shared fixtures.

Library construction and analytical characterization are expensive
enough (a couple of seconds) to share at session scope; tests must not
mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import build_library
from repro.characterization import characterize_library
from repro.devices import DeviceModel
from repro.process import synthetic_90nm


@pytest.fixture(scope="session")
def technology():
    return synthetic_90nm(correlation_length=0.5e-3)


@pytest.fixture(scope="session")
def library():
    return build_library()


@pytest.fixture(scope="session")
def device_model(technology):
    return DeviceModel(technology)


@pytest.fixture(scope="session")
def characterization(library, technology):
    """Analytical characterization of the full library."""
    return characterize_library(library, technology)


@pytest.fixture(scope="session")
def small_characterization(library, technology):
    """Analytical characterization of a small representative subset."""
    return characterize_library(
        library, technology,
        cells=["INV_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1", "DFF_X1"])


@pytest.fixture
def rng():
    return np.random.default_rng(20070604)  # DAC 2007 started June 4


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/*.json from the current results "
             "instead of comparing against them")


@pytest.fixture(scope="session")
def update_goldens(request):
    return request.config.getoption("--update-goldens")
