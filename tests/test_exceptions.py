"""The exception hierarchy contract: library errors are catchable as
ReproError without catching programming errors."""

import pytest

from repro import exceptions


ALL_ERRORS = [
    exceptions.ConfigurationError,
    exceptions.CorrelationError,
    exceptions.CharacterizationError,
    exceptions.MomentExistenceError,
    exceptions.SolverError,
    exceptions.NetlistError,
    exceptions.EstimationError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_derives_from_repro_error(error_type):
    assert issubclass(error_type, exceptions.ReproError)


def test_moment_existence_is_characterization_error():
    assert issubclass(exceptions.MomentExistenceError,
                      exceptions.CharacterizationError)


def test_repro_error_is_not_catchall():
    assert not issubclass(TypeError, exceptions.ReproError)
    assert not issubclass(exceptions.ReproError, TypeError)
