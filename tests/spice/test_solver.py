import itertools

import numpy as np
import pytest

from repro.devices import DeviceModel, NMOS, PMOS
from repro.process import synthetic_90nm
from repro.spice import CellNetlist, Transistor, solve_dc, state_leakage

TECH = synthetic_90nm()
MODEL = DeviceModel(TECH)
L_NOM = TECH.length.nominal


def inverter():
    return CellNetlist("INV", (
        Transistor("MN", NMOS, gate="A", drain="Y", source="gnd"),
        Transistor("MP", PMOS, gate="A", drain="Y", source="vdd",
                   width_mult=2.0),
    ), inputs=("A",), logic_nodes=("Y",))


def nmos_stack(depth):
    """NAND-style pull-down stack with parallel PMOS pull-ups."""
    transistors = []
    upper = "Y"
    for k in range(depth):
        lower = "gnd" if k == depth - 1 else f"n{k}"
        transistors.append(Transistor(f"MN{k}", NMOS, gate=f"I{k}",
                                      drain=upper, source=lower))
        upper = lower
    for k in range(depth):
        transistors.append(Transistor(f"MP{k}", PMOS, gate=f"I{k}",
                                      drain="Y", source="vdd",
                                      width_mult=2.0))
    return CellNetlist(f"NAND{depth}", tuple(transistors),
                       inputs=tuple(f"I{k}" for k in range(depth)),
                       logic_nodes=("Y",))


class TestInverter:
    def test_no_free_nodes_shortcut(self):
        sol = solve_dc(inverter(), {"A": 0, "Y": 1}, MODEL, L_NOM)
        assert sol.iterations == 0
        assert sol.leakage.shape == (1,)
        assert sol.leakage[0] > 0

    def test_input_low_leaks_through_nmos(self):
        leak = state_leakage(inverter(), {"A": 0, "Y": 1}, MODEL, L_NOM)
        expected = MODEL.off_current(NMOS, L_NOM, TECH.min_width)
        assert float(leak[0]) == pytest.approx(float(expected), rel=1e-9)


class TestStackEffect:
    def test_all_off_stack_leaks_much_less_than_single_device(self):
        single = float(MODEL.off_current(NMOS, L_NOM, TECH.min_width))
        stack2 = nmos_stack(2)
        pmos_leak = 2 * 2.0 * float(  # two OFF PMOS in parallel at Y=1
            MODEL.off_current(PMOS, L_NOM, TECH.min_width, vds=0.0))
        state = {"I0": 0, "I1": 0, "Y": 1}
        total = float(state_leakage(stack2, state, MODEL, L_NOM)[0])
        # With the output at VDD the PMOS are unbiased; the total is the
        # stack current, which must be several times below one device.
        assert total < single / 3
        assert total > single / 50

    def test_stack_factor_grows_with_depth(self):
        leaks = []
        for depth in (1, 2, 3, 4):
            cell = nmos_stack(depth)
            state = {f"I{k}": 0 for k in range(depth)}
            state["Y"] = 1
            leaks.append(float(state_leakage(cell, state, MODEL, L_NOM)[0]))
        assert all(leaks[k + 1] < leaks[k] for k in range(3))

    def test_intermediate_node_voltage_is_small_positive(self):
        sol = solve_dc(nmos_stack(2), {"I0": 0, "I1": 0, "Y": 1},
                       MODEL, L_NOM)
        vx = float(sol.free_voltages[0, 0])
        assert 0.0 < vx < 0.3

    def test_on_bottom_device_pins_node_to_ground(self):
        sol = solve_dc(nmos_stack(2), {"I0": 0, "I1": 1, "Y": 1},
                       MODEL, L_NOM)
        # gate order: I0 drives the top (Y-side) device.
        vx = float(sol.free_voltages[0, 0])
        assert abs(vx) < 1e-3


class TestKCL:
    @pytest.mark.parametrize("depth", [2, 3, 4])
    def test_residual_is_negligible(self, depth):
        cell = nmos_stack(depth)
        state = {f"I{k}": 0 for k in range(depth)}
        state["Y"] = 1
        sol = solve_dc(cell, state, MODEL, L_NOM)
        leak = float(sol.leakage[0])
        assert sol.max_residual < 1e-6 * leak + 1e-20


class TestVectorization:
    def test_samples_match_scalar_solves(self):
        lengths = np.linspace(0.9, 1.1, 5) * L_NOM
        cell = nmos_stack(2)
        state = {"I0": 0, "I1": 0, "Y": 1}
        vector = state_leakage(cell, state, MODEL, lengths)
        for k, length in enumerate(lengths):
            scalar = float(state_leakage(cell, state, MODEL, length)[0])
            assert vector[k] == pytest.approx(scalar, rel=1e-9)

    def test_vt_shifts_applied_per_transistor(self):
        cell = nmos_stack(1)
        state = {"I0": 0, "Y": 1}
        base = float(state_leakage(cell, state, MODEL, L_NOM)[0])
        shifted = float(state_leakage(
            cell, state, MODEL, L_NOM,
            vt_shifts={"MN0": np.array([0.05])})[0])
        assert shifted < base


class TestAllLibraryStatesSolve:
    @pytest.mark.slow
    def test_every_state_positive_and_finite(self, library, device_model,
                                             technology):
        for cell in library:
            for state in cell.states:
                leak = state_leakage(cell.netlist, state.nodes, device_model,
                                     technology.length.nominal)
                value = float(leak[0])
                assert np.isfinite(value), (cell.name, state.label)
                assert value > 0, (cell.name, state.label)
