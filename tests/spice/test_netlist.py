import pytest

from repro.devices import NMOS, PMOS
from repro.exceptions import NetlistError
from repro.spice import CellNetlist, Transistor, GND, VDD


def inverter():
    return CellNetlist("INV", (
        Transistor("MN", NMOS, gate="A", drain="Y", source=GND),
        Transistor("MP", PMOS, gate="A", drain="Y", source=VDD),
    ), inputs=("A",), logic_nodes=("Y",))


def nand2():
    return CellNetlist("NAND2", (
        Transistor("MN1", NMOS, gate="A", drain="n1", source=GND),
        Transistor("MN2", NMOS, gate="B", drain="Y", source="n1"),
        Transistor("MP1", PMOS, gate="A", drain="Y", source=VDD),
        Transistor("MP2", PMOS, gate="B", drain="Y", source=VDD),
    ), inputs=("A", "B"), logic_nodes=("Y",))


class TestTransistor:
    def test_rejects_unknown_kind(self):
        with pytest.raises(NetlistError):
            Transistor("M1", "jfet", gate="A", drain="Y", source=GND)

    def test_rejects_non_positive_width(self):
        with pytest.raises(NetlistError):
            Transistor("M1", NMOS, gate="A", drain="Y", source=GND,
                       width_mult=0.0)

    def test_rejects_shorted_channel(self):
        with pytest.raises(NetlistError):
            Transistor("M1", NMOS, gate="A", drain="Y", source="Y")


class TestCellNetlist:
    def test_free_nodes_excludes_pinned(self):
        assert nand2().free_nodes == ("n1",)
        assert inverter().free_nodes == ()

    def test_channel_nodes(self):
        assert nand2().channel_nodes == frozenset({"Y", "n1", GND, VDD})

    def test_duplicate_transistor_names_rejected(self):
        with pytest.raises(NetlistError):
            CellNetlist("BAD", (
                Transistor("M", NMOS, gate="A", drain="Y", source=GND),
                Transistor("M", PMOS, gate="A", drain="Y", source=VDD),
            ), inputs=("A",), logic_nodes=("Y",))

    def test_empty_netlist_rejected(self):
        with pytest.raises(NetlistError):
            CellNetlist("EMPTY", (), inputs=(), logic_nodes=())

    def test_input_clashing_with_rail_rejected(self):
        with pytest.raises(NetlistError):
            CellNetlist("BAD", (
                Transistor("M", NMOS, gate=VDD, drain="Y", source=GND),
            ), inputs=(VDD,), logic_nodes=("Y",))

    def test_node_overlap_between_inputs_and_logic_rejected(self):
        with pytest.raises(NetlistError):
            CellNetlist("BAD", (
                Transistor("M", NMOS, gate="A", drain="Y", source=GND),
            ), inputs=("A",), logic_nodes=("A",))


class TestStates:
    def test_validate_state_requires_all_pins(self):
        with pytest.raises(NetlistError):
            nand2().validate_state({"A": 1, "Y": 0})

    def test_validate_state_rejects_non_binary(self):
        with pytest.raises(NetlistError):
            inverter().validate_state({"A": 2, "Y": 0})

    def test_node_voltages(self):
        voltages = inverter().node_voltages({"A": 1, "Y": 0}, vdd=1.2)
        assert voltages == {VDD: 1.2, GND: 0.0, "A": 1.2, "Y": 0.0}
