"""Failure injection and pathological-topology tests for the DC solver."""

import numpy as np
import pytest

from repro.devices import DeviceModel, NMOS, PMOS
from repro.exceptions import SolverError
from repro.process import synthetic_90nm
from repro.spice import CellNetlist, Transistor, solve_dc

TECH = synthetic_90nm()
MODEL = DeviceModel(TECH)
L_NOM = TECH.length.nominal


def two_stack():
    return CellNetlist("STACK2", (
        Transistor("MN1", NMOS, gate="A", drain="Y", source="n1"),
        Transistor("MN2", NMOS, gate="B", drain="n1", source="gnd"),
        Transistor("MP1", PMOS, gate="A", drain="Y", source="vdd"),
        Transistor("MP2", PMOS, gate="B", drain="Y", source="vdd"),
    ), inputs=("A", "B"), logic_nodes=("Y",))


class TestFailureInjection:
    def test_singular_jacobian_raises_solver_error(self, monkeypatch):
        """If every Newton step fails to factor, the solver must raise a
        library error rather than loop forever or return garbage."""
        def explode(*args, **kwargs):
            raise np.linalg.LinAlgError("injected")

        monkeypatch.setattr(np.linalg, "solve", explode)
        with pytest.raises(SolverError):
            solve_dc(two_stack(), {"A": 0, "B": 0, "Y": 1}, MODEL, L_NOM)

    def test_non_convergence_raises_solver_error(self, monkeypatch):
        """Divergent updates (injected) must exhaust the retry ladder."""
        import repro.spice.solver as solver_module

        real_solve = np.linalg.solve

        def noisy(a, b):
            result = real_solve(a, b)
            return result + 1.0  # never settles below the tolerance

        monkeypatch.setattr(np.linalg, "solve", noisy)
        with pytest.raises(SolverError):
            solve_dc(two_stack(), {"A": 0, "B": 0, "Y": 1}, MODEL, L_NOM)


class TestPathologicalTopologies:
    def test_dangling_internal_node(self):
        """A free node with a single device: gmin pins it; no crash."""
        cell = CellNetlist("DANGLE", (
            Transistor("MN", NMOS, gate="A", drain="loose", source="gnd"),
            Transistor("MN2", NMOS, gate="A", drain="Y", source="gnd"),
            Transistor("MP", PMOS, gate="A", drain="Y", source="vdd"),
        ), inputs=("A",), logic_nodes=("Y",))
        solution = solve_dc(cell, {"A": 0, "Y": 1}, MODEL, L_NOM)
        assert np.isfinite(solution.leakage).all()

    def test_deep_stack_converges(self):
        """Six devices in series — deeper than any library cell."""
        transistors = []
        upper = "Y"
        for k in range(6):
            lower = "gnd" if k == 5 else f"n{k}"
            transistors.append(Transistor(f"MN{k}", NMOS, gate=f"I{k}",
                                          drain=upper, source=lower))
            upper = lower
        transistors.append(Transistor("MP", PMOS, gate="I0", drain="Y",
                                      source="vdd"))
        cell = CellNetlist("STACK6", tuple(transistors),
                           inputs=tuple(f"I{k}" for k in range(6)),
                           logic_nodes=("Y",))
        state = {f"I{k}": 0 for k in range(6)}
        state["Y"] = 1
        solution = solve_dc(cell, state, MODEL, L_NOM)
        assert solution.leakage[0] > 0
        # Node voltages ordered monotonically down the stack.
        voltages = solution.free_voltages[0]
        names = cell.free_nodes
        ordered = [voltages[names.index(f"n{k}")] for k in range(5)]
        assert all(ordered[k] >= ordered[k + 1] - 1e-9 for k in range(4))

    def test_extreme_lengths_stay_finite(self):
        """+-6 sigma channel lengths: tails must not overflow."""
        lengths = np.array([0.7, 1.0, 1.3]) * L_NOM
        solution = solve_dc(two_stack(), {"A": 0, "B": 1, "Y": 1}, MODEL,
                            lengths)
        assert np.all(np.isfinite(solution.leakage))
        assert np.all(solution.leakage > 0)

    def test_large_sample_batch(self):
        lengths = np.full(5000, L_NOM)
        solution = solve_dc(two_stack(), {"A": 0, "B": 0, "Y": 1}, MODEL,
                            lengths)
        assert solution.leakage.shape == (5000,)
        np.testing.assert_allclose(solution.leakage,
                                   solution.leakage[0], rtol=1e-9)
