import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import DeviceModel, NMOS, PMOS
from repro.process import synthetic_90nm

TECH = synthetic_90nm()
MODEL = DeviceModel(TECH)
L_NOM = TECH.length.nominal
W_MIN = TECH.min_width


class TestOffCurrent:
    def test_realistic_magnitude(self):
        # 90nm-class minimum device: Ioff in the nA range.
        ioff = float(MODEL.off_current(NMOS, L_NOM, W_MIN))
        assert 1e-10 < ioff < 1e-7

    def test_scales_linearly_with_width(self):
        one = float(MODEL.off_current(NMOS, L_NOM, W_MIN))
        two = float(MODEL.off_current(NMOS, L_NOM, 2 * W_MIN))
        assert two == pytest.approx(2 * one, rel=1e-12)

    def test_decreases_with_length(self):
        lengths = np.linspace(0.85 * L_NOM, 1.15 * L_NOM, 9)
        currents = MODEL.off_current(NMOS, lengths, W_MIN)
        assert np.all(np.diff(currents) < 0)

    def test_log_leakage_convex_in_length(self):
        # The fitted form a*exp(bL + cL^2) expects c > 0.
        lengths = np.linspace(0.85 * L_NOM, 1.15 * L_NOM, 9)
        log_i = np.log(MODEL.off_current(NMOS, lengths, W_MIN))
        curvature = np.diff(log_i, 2)
        assert np.all(curvature > 0)

    def test_pmos_same_order_as_nmos(self):
        n = float(MODEL.off_current(NMOS, L_NOM, W_MIN))
        p = float(MODEL.off_current(PMOS, L_NOM, W_MIN))
        assert 0.1 < p / n < 10

    def test_dibl_increases_leakage_with_vds(self):
        low = float(MODEL.off_current(NMOS, L_NOM, W_MIN, vds=0.5))
        high = float(MODEL.off_current(NMOS, L_NOM, W_MIN, vds=1.0))
        assert high > low

    def test_vt_shift_reduces_leakage(self):
        base = float(MODEL.off_current(NMOS, L_NOM, W_MIN))
        shifted = float(MODEL.off_current(NMOS, L_NOM, W_MIN, vt_shift=0.05))
        assert shifted < base
        # exp(-dVt / n*kT/q) scaling
        n_vt = TECH.subthreshold_swing_factor * TECH.thermal_voltage
        assert shifted / base == pytest.approx(np.exp(-0.05 / n_vt), rel=1e-6)


class TestBranchSymmetry:
    def test_zero_bias_zero_current(self):
        i, _, __ = MODEL.nmos_branch(0.0, 0.3, 0.3, L_NOM, W_MIN)
        assert float(i) == pytest.approx(0.0, abs=1e-30)

    def test_sign_follows_bias_direction(self):
        fwd, _, __ = MODEL.nmos_branch(0.0, 0.0, 1.0, L_NOM, W_MIN)
        rev, _, __ = MODEL.nmos_branch(0.0, 1.0, 0.0, L_NOM, W_MIN)
        assert float(fwd) > 0
        assert float(rev) < 0

    def test_reverse_bias_magnitude_is_physical(self):
        """A reverse-labeled OFF transmission gate must leak about as much
        as the forward-labeled one — the bug the symmetric form fixes."""
        fwd, _, __ = MODEL.nmos_branch(0.0, 0.0, 1.0, L_NOM, W_MIN)
        rev, _, __ = MODEL.nmos_branch(0.0, 1.0, 0.0, L_NOM, W_MIN)
        ratio = abs(float(rev)) / float(fwd)
        assert 0.05 < ratio < 20

    def test_pmos_mirror(self):
        i, _, __ = MODEL.pmos_branch(TECH.vdd, TECH.vdd, 0.0, L_NOM, W_MIN)
        assert float(i) > 0


@settings(max_examples=60, deadline=None)
@given(
    vg=st.floats(min_value=0.0, max_value=1.0),
    vs=st.floats(min_value=0.0, max_value=1.0),
    vd=st.floats(min_value=0.0, max_value=1.0),
    kind=st.sampled_from([NMOS, PMOS]),
)
def test_branch_derivatives_match_finite_differences(vg, vs, vd, kind):
    branch = MODEL.nmos_branch if kind == NMOS else MODEL.pmos_branch
    step = 1e-7
    _, di_dvs, di_dvd = branch(vg, vs, vd, L_NOM, W_MIN)
    i_sp, _, __ = branch(vg, vs + step, vd, L_NOM, W_MIN)
    i_sm, _, __ = branch(vg, vs - step, vd, L_NOM, W_MIN)
    i_dp, _, __ = branch(vg, vs, vd + step, L_NOM, W_MIN)
    i_dm, _, __ = branch(vg, vs, vd - step, L_NOM, W_MIN)
    fd_vs = (float(i_sp) - float(i_sm)) / (2 * step)
    fd_vd = (float(i_dp) - float(i_dm)) / (2 * step)
    scale = max(abs(fd_vs), abs(fd_vd), 1e-12)
    assert float(di_dvs) == pytest.approx(fd_vs, rel=1e-4, abs=1e-6 * scale)
    assert float(di_dvd) == pytest.approx(fd_vd, rel=1e-4, abs=1e-6 * scale)


@settings(max_examples=30, deadline=None)
@given(vg=st.floats(min_value=0.0, max_value=1.0),
       vs=st.floats(min_value=0.0, max_value=0.99))
def test_nmos_current_monotone_in_vd(vg, vs):
    vds = np.linspace(vs, 1.0, 20)
    currents, _, __ = MODEL.nmos_branch(vg, vs, vds, L_NOM, W_MIN)
    assert np.all(np.diff(currents) > -1e-25)


class TestRolloff:
    def test_zero_at_nominal(self):
        assert float(MODEL.rolloff(L_NOM)) == pytest.approx(0.0, abs=1e-15)

    def test_positive_for_short_channel(self):
        assert float(MODEL.rolloff(0.9 * L_NOM)) > 0

    def test_negative_for_long_channel(self):
        assert float(MODEL.rolloff(1.1 * L_NOM)) < 0

    def test_effective_vt_tracks_rolloff(self):
        short = float(MODEL.effective_vt(NMOS, 0.9 * L_NOM, 0.0, 0.0))
        nominal = float(MODEL.effective_vt(NMOS, L_NOM, 0.0, 0.0))
        assert short < nominal


class TestVectorization:
    def test_array_lengths(self):
        lengths = np.linspace(0.9, 1.1, 11) * L_NOM
        currents = MODEL.off_current(NMOS, lengths, W_MIN)
        assert currents.shape == (11,)
        for k, length in enumerate(lengths):
            single = float(MODEL.off_current(NMOS, length, W_MIN))
            assert currents[k] == pytest.approx(single, rel=1e-14)

    def test_subthreshold_current_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            MODEL.subthreshold_current("cmos", 0.0, 1.0, 0.0, L_NOM, W_MIN)
