"""Tests for the optional gate-oxide tunneling extension."""

import dataclasses

import numpy as np
import pytest

from repro.cells import build_library
from repro.characterization import characterize_library
from repro.devices import DeviceModel, NMOS, PMOS
from repro.process import synthetic_90nm
from repro.spice import state_leakage

TECH = synthetic_90nm()
MODEL = DeviceModel(TECH)
L_NOM = TECH.length.nominal
W_MIN = TECH.min_width


class TestGateCurrentModel:
    def test_on_nmos_magnitude_is_nanoamp_class(self):
        current = float(MODEL.gate_current(NMOS, TECH.vdd, 0.0, 0.0, L_NOM,
                                           W_MIN))
        assert 1e-10 < current < 1e-8

    def test_off_device_tunnels_negligibly(self):
        on = float(MODEL.gate_current(NMOS, TECH.vdd, 0.0, 0.0, L_NOM,
                                      W_MIN))
        off = float(MODEL.gate_current(NMOS, 0.0, 0.0, TECH.vdd, L_NOM,
                                       W_MIN))
        assert off < 1e-3 * on

    def test_pmos_polarity(self):
        # PMOS tunnels when the channel is high and the gate low.
        active = float(MODEL.gate_current(PMOS, 0.0, TECH.vdd, TECH.vdd,
                                          L_NOM, W_MIN))
        idle = float(MODEL.gate_current(PMOS, TECH.vdd, TECH.vdd, TECH.vdd,
                                        L_NOM, W_MIN))
        assert active > 100 * idle

    def test_scales_with_area(self):
        one = float(MODEL.gate_current(NMOS, TECH.vdd, 0.0, 0.0, L_NOM,
                                       W_MIN))
        four = float(MODEL.gate_current(NMOS, TECH.vdd, 0.0, 0.0,
                                        2 * L_NOM, 2 * W_MIN))
        assert four == pytest.approx(4 * one, rel=1e-12)

    def test_split_sums_to_total(self):
        i_gs, i_gd = MODEL.gate_current_split(NMOS, 0.7, 0.1, 0.4, L_NOM,
                                              W_MIN)
        total = MODEL.gate_current(NMOS, 0.7, 0.1, 0.4, L_NOM, W_MIN)
        assert float(i_gs + i_gd) == pytest.approx(float(total))

    def test_disabled_when_j0_zero(self):
        tech0 = dataclasses.replace(TECH, gate_j0_per_area=0.0)
        model0 = DeviceModel(tech0)
        assert float(model0.gate_current(NMOS, TECH.vdd, 0.0, 0.0, L_NOM,
                                         W_MIN)) == 0.0

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MODEL.gate_current("finfet", 1.0, 0.0, 0.0, L_NOM, W_MIN)


class TestCellLevelGateLeakage:
    @pytest.fixture(scope="class")
    def inverter(self):
        return build_library()["INV_X1"]

    def test_adds_to_subthreshold(self, inverter):
        for state in inverter.states:
            base = float(state_leakage(inverter.netlist, state.nodes,
                                       MODEL, L_NOM)[0])
            with_gate = float(state_leakage(
                inverter.netlist, state.nodes, MODEL, L_NOM,
                include_gate_leakage=True)[0])
            assert with_gate > base

    def test_contribution_is_same_order_as_subthreshold(self, inverter):
        """At 90 nm, gate leakage is a significant fraction of (but does
        not dwarf) subthreshold leakage."""
        state = inverter.states[1]  # A=1: NMOS on (tunneling), PMOS off
        base = float(state_leakage(inverter.netlist, state.nodes, MODEL,
                                   L_NOM)[0])
        with_gate = float(state_leakage(
            inverter.netlist, state.nodes, MODEL, L_NOM,
            include_gate_leakage=True)[0])
        extra = with_gate - base
        assert 0.01 * base < extra < 2.0 * base

    def test_characterization_flag(self, library, technology):
        base = characterize_library(library, technology, cells=["INV_X1"])
        gated = characterize_library(library, technology, cells=["INV_X1"],
                                     include_gate_leakage=True)
        for state_base, state_gated in zip(base["INV_X1"].states,
                                           gated["INV_X1"].states):
            assert state_gated.mean > state_base.mean
