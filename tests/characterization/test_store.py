import json

import pytest

from repro.characterization import (
    dump_characterization,
    load_characterization,
    parse_characterization,
    save_characterization,
)
from repro.exceptions import CharacterizationError
from repro.process import synthetic_90nm


class TestRoundTrip:
    def test_values_survive(self, small_characterization, library,
                            technology):
        text = dump_characterization(small_characterization)
        loaded = parse_characterization(text, library, technology)
        assert loaded.mode == small_characterization.mode
        assert loaded.cell_names == small_characterization.cell_names
        for name in loaded.cell_names:
            for a, b in zip(loaded[name].states,
                            small_characterization[name].states):
                assert a.mean == b.mean
                assert a.std == b.std
                assert a.fit.b == b.fit.b

    def test_estimates_identical_after_reload(self, small_characterization,
                                              library, technology):
        from repro.core import CellUsage, FullChipLeakageEstimator
        text = dump_characterization(small_characterization)
        loaded = parse_characterization(text, library, technology)
        usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})
        before = FullChipLeakageEstimator(
            small_characterization, usage, 1000, 1e-4, 1e-4
        ).estimate("linear")
        after = FullChipLeakageEstimator(
            loaded, usage, 1000, 1e-4, 1e-4).estimate("linear")
        assert after.mean == before.mean
        assert after.std == before.std

    def test_file_round_trip(self, small_characterization, library,
                             technology, tmp_path):
        path = str(tmp_path / "char.json")
        save_characterization(small_characterization, path)
        loaded = load_characterization(path, library, technology)
        assert len(loaded) == len(small_characterization)

    def test_mc_mode_without_fits(self, library, technology, rng):
        from repro.characterization import characterize_library
        mc = characterize_library(library, technology, mode="montecarlo",
                                  cells=["INV_X1"], n_samples=200, rng=rng)
        loaded = parse_characterization(dump_characterization(mc), library,
                                        technology)
        assert not loaded.has_fits
        assert loaded["INV_X1"].states[0].fit is None


class TestValidation:
    def test_rejects_garbage(self, library, technology):
        with pytest.raises(CharacterizationError):
            parse_characterization("not json {", library, technology)

    def test_rejects_foreign_document(self, library, technology):
        with pytest.raises(CharacterizationError):
            parse_characterization('{"format": "something-else"}', library,
                                   technology)

    def test_rejects_stale_technology(self, small_characterization, library):
        other = synthetic_90nm(relative_sigma_l=0.10)
        text = dump_characterization(small_characterization)
        with pytest.raises(CharacterizationError):
            parse_characterization(text, library, other)

    def test_non_strict_allows_technology_drift(self, small_characterization,
                                                library):
        other = synthetic_90nm(relative_sigma_l=0.10,
                               correlation_length=0.5e-3)
        text = dump_characterization(small_characterization)
        loaded = parse_characterization(text, library, other, strict=False)
        assert len(loaded) == len(small_characterization)

    def test_rejects_unknown_cell(self, small_characterization, library,
                                  technology):
        document = json.loads(dump_characterization(small_characterization))
        document["cells"]["GHOST_X1"] = document["cells"]["INV_X1"]
        with pytest.raises(CharacterizationError):
            parse_characterization(json.dumps(document), library, technology)

    def test_rejects_state_mismatch(self, small_characterization, library,
                                    technology):
        document = json.loads(dump_characterization(small_characterization))
        document["cells"]["INV_X1"] = document["cells"]["INV_X1"][:1]
        with pytest.raises(CharacterizationError):
            parse_characterization(json.dumps(document), library, technology)

    def test_rejects_future_version(self, small_characterization, library,
                                    technology):
        document = json.loads(dump_characterization(small_characterization))
        document["version"] = 99
        with pytest.raises(CharacterizationError):
            parse_characterization(json.dumps(document), library, technology)
