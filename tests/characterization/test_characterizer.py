import numpy as np
import pytest

from repro.characterization import (
    characterize_library,
    mc_state_moments,
)
from repro.characterization.characterizer import ANALYTICAL, MONTECARLO
from repro.devices import DeviceModel
from repro.exceptions import CharacterizationError


class TestAnalyticalMode:
    def test_covers_requested_cells(self, small_characterization):
        assert len(small_characterization) == 5
        assert "INV_X1" in small_characterization
        assert "AND4_X1" not in small_characterization

    def test_state_count_matches_cell(self, small_characterization, library):
        for name in small_characterization.cell_names:
            assert len(small_characterization[name].states) == \
                library[name].n_states

    def test_fits_present(self, small_characterization):
        assert small_characterization.has_fits
        for state in small_characterization.state_table():
            assert state.fit is not None
            assert state.fit.b < 0  # leakage decreases with L
            assert state.mean > 0 and state.std > 0

    def test_unknown_cell_raises(self, small_characterization):
        with pytest.raises(KeyError):
            small_characterization["AND4_X1"]

    def test_fit_quality_is_good(self, characterization):
        """Section 2.1.2: the model-form error is small; our smooth
        device model fits even better than the paper's cells."""
        residuals = [s.fit.rms_log_error
                     for s in characterization.state_table()]
        assert max(residuals) < 0.05

    def test_moments_at_interpolates_states(self, small_characterization):
        cell_char = small_characterization["NAND2_X1"]
        mean_half, std_half = cell_char.moments_at(0.5)
        state_means = [s.mean for s in cell_char.states]
        assert min(state_means) < mean_half < max(state_means)
        assert std_half > 0

    def test_moments_at_extremes_select_single_state(self,
                                                     small_characterization):
        cell_char = small_characterization["INV_X1"]
        mean0, _ = cell_char.moments_at(0.0)
        by_label = {s.state_label: s for s in cell_char.states}
        assert mean0 == pytest.approx(by_label["A=0"].mean)


class TestMonteCarloMode:
    def test_no_fits(self, library, technology, rng):
        char = characterize_library(library, technology, mode=MONTECARLO,
                                    cells=["INV_X1"], n_samples=500, rng=rng)
        assert not char.has_fits
        assert char["INV_X1"].states[0].fit is None

    def test_agrees_with_analytical(self, library, technology, rng,
                                    small_characterization):
        mc = characterize_library(library, technology, mode=MONTECARLO,
                                  cells=["NAND2_X1"], n_samples=8000, rng=rng)
        for mc_state, an_state in zip(mc["NAND2_X1"].states,
                                      small_characterization["NAND2_X1"].states):
            assert mc_state.mean == pytest.approx(an_state.mean, rel=0.05)
            assert mc_state.std == pytest.approx(an_state.std, rel=0.12)

    def test_unknown_mode_rejected(self, library, technology):
        with pytest.raises(CharacterizationError):
            characterize_library(library, technology, mode="quantum",
                                 cells=["INV_X1"])


class TestSection212Numbers:
    """The paper's cell-model accuracy claims, on a library sample:
    mean error well under 2%, std error under ~10%."""

    def test_analytical_vs_mc_errors(self, library, technology,
                                     characterization, rng):
        model = DeviceModel(technology)
        mean_errors, std_errors = [], []
        for name in ("INV_X1", "NAND3_X1", "NOR3_X1", "XOR2_X1"):
            cell = library[name]
            for state, char in zip(cell.states,
                                   characterization[name].states):
                mc_mean, mc_std = mc_state_moments(cell, state, model,
                                                   n_samples=6000, rng=rng)
                mean_errors.append(abs(char.mean - mc_mean) / mc_mean)
                std_errors.append(abs(char.std - mc_std) / mc_std)
        assert np.mean(mean_errors) < 0.02
        assert max(mean_errors) < 0.05
        assert np.mean(std_errors) < 0.05
        assert max(std_errors) < 0.12
