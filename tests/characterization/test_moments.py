import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.characterization import log_mgf, mgf_moments, moments_numeric
from repro.characterization.moments import (
    lognormal_mean_factor,
    paper_mgf_uncorrected,
)
from repro.exceptions import MomentExistenceError

# Realistic parameter ranges for a 90nm leakage fit on L in metres:
# b ~ -1e8..-2e8 per metre, c ~ 1e14..3e15 per metre^2.
MU_L = 50e-9
SIGMA_L = 2.5e-9


class TestAgainstNumericIntegration:
    @pytest.mark.parametrize("a,b,c", [
        (1e-9, -1.6e8, 1.1e15),
        (5e-8, -1.0e8, 0.0),        # pure lognormal limit
        (1e-12, -2.0e8, 3.0e15),
        (3e-10, 1.0e8, 5.0e14),     # increasing leakage (pathological fit)
    ])
    def test_mean_and_std(self, a, b, c):
        mean_a, std_a = mgf_moments(a, b, c, MU_L, SIGMA_L)
        mean_n, std_n = moments_numeric(a, b, c, MU_L, SIGMA_L)
        assert mean_a == pytest.approx(mean_n, rel=1e-8)
        assert std_a == pytest.approx(std_n, rel=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        log_a=st.floats(min_value=-25, max_value=-15),
        b=st.floats(min_value=-2.5e8, max_value=0.0),
        c=st.floats(min_value=0.0, max_value=5e15),
    )
    def test_property_mean_matches_numeric(self, log_a, b, c):
        a = math.exp(log_a)
        mean_a, std_a = mgf_moments(a, b, c, MU_L, SIGMA_L)
        mean_n, std_n = moments_numeric(a, b, c, MU_L, SIGMA_L)
        assert mean_a == pytest.approx(mean_n, rel=1e-7)
        if std_n > 1e-3 * mean_n:  # std is well-conditioned
            assert std_a == pytest.approx(std_n, rel=1e-4)


class TestAgainstMonteCarlo:
    def test_sampled_moments(self, rng):
        a, b, c = 1e-9, -1.6e8, 1.1e15
        lengths = rng.normal(MU_L, SIGMA_L, 400_000)
        x = a * np.exp(b * lengths + c * lengths ** 2)
        mean_a, std_a = mgf_moments(a, b, c, MU_L, SIGMA_L)
        assert mean_a == pytest.approx(x.mean(), rel=0.01)
        assert std_a == pytest.approx(x.std(), rel=0.02)

    def test_paper_printed_form_disagrees_with_monte_carlo(self, rng):
        """The MGF as printed (``+1/2`` exponent) does NOT reproduce the
        sampled mean; the corrected ``-1/2`` form does. Documents the
        typo fix recorded in DESIGN.md."""
        a, b, c = 1e-9, -1.6e8, 1.1e15
        lengths = rng.normal(MU_L, SIGMA_L, 200_000)
        sampled_mean = float(
            (a * np.exp(b * lengths + c * lengths ** 2)).mean())
        corrected = math.exp(log_mgf(1.0, a, b, c, MU_L, SIGMA_L))
        printed = paper_mgf_uncorrected(1.0, a, b, c, MU_L, SIGMA_L)
        assert corrected == pytest.approx(sampled_mean, rel=0.01)
        assert abs(printed - sampled_mean) > abs(corrected - sampled_mean)


class TestMomentExistence:
    def test_second_moment_diverges_for_large_curvature(self):
        c = 0.3 / SIGMA_L ** 2  # c*sigma^2 = 0.3 > 1/4
        with pytest.raises(MomentExistenceError):
            mgf_moments(1e-9, -1e8, c, MU_L, SIGMA_L)

    def test_first_moment_can_exist_when_second_does_not(self):
        c = 0.3 / SIGMA_L ** 2
        value = log_mgf(1.0, 1e-9, -1e8, c, MU_L, SIGMA_L)
        assert math.isfinite(value)

    def test_rejects_non_positive_a(self):
        with pytest.raises(MomentExistenceError):
            log_mgf(1.0, 0.0, -1e8, 1e15, MU_L, SIGMA_L)

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(MomentExistenceError):
            log_mgf(1.0, 1e-9, -1e8, 1e15, MU_L, 0.0)


class TestLognormalLimit:
    def test_c_zero_reduces_to_lognormal(self):
        a, b = 1e-9, -1.5e8
        mean, std = mgf_moments(a, b, 0.0, MU_L, SIGMA_L)
        s = abs(b) * SIGMA_L
        expected_mean = a * math.exp(b * MU_L + 0.5 * s * s)
        expected_var = (a * math.exp(b * MU_L)) ** 2 * math.exp(s * s) \
            * (math.exp(s * s) - 1.0)
        assert mean == pytest.approx(expected_mean, rel=1e-12)
        assert std == pytest.approx(math.sqrt(expected_var), rel=1e-12)

    def test_lognormal_mean_factor(self):
        assert lognormal_mean_factor(0.0) == 1.0
        assert lognormal_mean_factor(0.5) == pytest.approx(math.exp(0.125))
