import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.characterization import (
    CorrelationMap,
    leakage_correlation,
    mgf_moments,
    pair_expectation,
)
from repro.characterization.fitting import LeakageFit
from repro.exceptions import MomentExistenceError

MU_L = 50e-9
SIGMA_L = 2.5e-9

FIT_A = LeakageFit(a=1e-9, b=-1.6e8, c=1.1e15, rms_log_error=0.0)
FIT_B = LeakageFit(a=4e-10, b=-1.2e8, c=8.0e14, rms_log_error=0.0)


class TestPairExpectation:
    def test_independence_factorizes(self):
        mean_a, _ = mgf_moments(*FIT_A.as_tuple(), MU_L, SIGMA_L)
        mean_b, _ = mgf_moments(*FIT_B.as_tuple(), MU_L, SIGMA_L)
        cross = float(pair_expectation(FIT_A, FIT_B, MU_L, SIGMA_L, 0.0))
        assert cross == pytest.approx(mean_a * mean_b, rel=1e-12)

    def test_full_correlation_same_gate_is_second_moment(self):
        mean, std = mgf_moments(*FIT_A.as_tuple(), MU_L, SIGMA_L)
        cross = float(pair_expectation(FIT_A, FIT_A, MU_L, SIGMA_L, 1.0))
        assert cross == pytest.approx(mean ** 2 + std ** 2, rel=1e-10)

    def test_monte_carlo_agreement(self, rng):
        rho = 0.6
        z1 = rng.standard_normal(500_000)
        z2 = rho * z1 + np.sqrt(1 - rho ** 2) * rng.standard_normal(500_000)
        l1 = MU_L + SIGMA_L * z1
        l2 = MU_L + SIGMA_L * z2
        x1 = FIT_A.evaluate(l1)
        x2 = FIT_B.evaluate(l2)
        sampled = float((x1 * x2).mean())
        closed = float(pair_expectation(FIT_A, FIT_B, MU_L, SIGMA_L, rho))
        assert closed == pytest.approx(sampled, rel=0.02)

    def test_vectorized_over_rho(self):
        rhos = np.linspace(-1, 1, 11)
        values = pair_expectation(FIT_A, FIT_B, MU_L, SIGMA_L, rhos)
        assert values.shape == (11,)
        for k, rho in enumerate(rhos):
            single = float(pair_expectation(FIT_A, FIT_B, MU_L, SIGMA_L,
                                            float(rho)))
            assert values[k] == pytest.approx(single, rel=1e-12)

    def test_nonexistent_moment_raises(self):
        fat = LeakageFit(a=1e-9, b=-1e8, c=0.3 / SIGMA_L ** 2,
                         rms_log_error=0.0)
        with pytest.raises(MomentExistenceError):
            pair_expectation(fat, fat, MU_L, SIGMA_L, 1.0)


class TestLeakageCorrelationMapping:
    """The f_mn mapping of Section 2.1.3 / Fig. 2."""

    def test_endpoints(self):
        assert float(leakage_correlation(FIT_A, FIT_A, MU_L, SIGMA_L,
                                         1.0)) == pytest.approx(1.0)
        assert float(leakage_correlation(FIT_A, FIT_B, MU_L, SIGMA_L,
                                         0.0)) == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(rho=st.floats(min_value=-1.0, max_value=1.0))
    def test_bounded_by_one(self, rho):
        value = float(leakage_correlation(FIT_A, FIT_B, MU_L, SIGMA_L, rho))
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    def test_monotone_increasing(self):
        rhos = np.linspace(-1, 1, 101)
        values = leakage_correlation(FIT_A, FIT_B, MU_L, SIGMA_L, rhos)
        assert np.all(np.diff(values) > 0)

    def test_close_to_identity_line(self):
        """The paper's Fig. 2 observation: leakage correlation is near
        the y = x line for realistic fits."""
        rhos = np.linspace(0, 1, 51)
        values = leakage_correlation(FIT_A, FIT_B, MU_L, SIGMA_L, rhos)
        assert np.max(np.abs(values - rhos)) < 0.08

    def test_library_pairs_near_identity(self, characterization):
        """Every pair of real library cells maps near y = x (Fig. 2 for
        the whole library)."""
        fits = [characterization[name].states[0].fit
                for name in ("INV_X1", "NAND4_X1", "NOR4_X1", "DFF_X1",
                             "SRAM6T_X1")]
        rhos = np.linspace(0, 1, 21)
        for fit_m in fits:
            for fit_n in fits:
                values = leakage_correlation(fit_m, fit_n, MU_L, SIGMA_L,
                                             rhos)
                assert np.max(np.abs(values - rhos)) < 0.1


class TestCorrelationMapInterpolation:
    def test_matches_closed_form(self):
        cmap = CorrelationMap(FIT_A, FIT_B, MU_L, SIGMA_L)
        rhos = np.linspace(-0.99, 0.99, 37)
        exact = leakage_correlation(FIT_A, FIT_B, MU_L, SIGMA_L, rhos)
        np.testing.assert_allclose(cmap(rhos), exact, atol=1e-5)

    def test_identity_deviation_metric(self):
        cmap = CorrelationMap(FIT_A, FIT_A, MU_L, SIGMA_L)
        assert 0 <= cmap.identity_deviation < 0.1
