import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.characterization import LeakageFit, fit_leakage, sample_lengths
from repro.exceptions import CharacterizationError

MU_L = 50e-9
SIGMA_L = 2.5e-9


class TestSampleLengths:
    def test_span_and_count(self):
        points = sample_lengths(MU_L, SIGMA_L, n_points=9, span=3.0)
        assert points.shape == (9,)
        assert points[0] == pytest.approx(MU_L - 3 * SIGMA_L)
        assert points[-1] == pytest.approx(MU_L + 3 * SIGMA_L)
        assert np.all(np.diff(points) > 0)

    def test_rejects_too_few_points(self):
        with pytest.raises(CharacterizationError):
            sample_lengths(MU_L, SIGMA_L, n_points=2)


class TestFitLeakage:
    @settings(max_examples=50, deadline=None)
    @given(
        log_a=st.floats(min_value=-25, max_value=-15),
        b=st.floats(min_value=-2.5e8, max_value=-0.5e8),
        c=st.floats(min_value=1e14, max_value=3e15),
    )
    def test_recovers_exact_quadratic(self, log_a, b, c):
        a = math.exp(log_a)
        lengths = sample_lengths(MU_L, SIGMA_L)
        leakages = a * np.exp(b * lengths + c * lengths ** 2)
        fit = fit_leakage(lengths, leakages)
        assert fit.b == pytest.approx(b, rel=1e-6)
        assert fit.c == pytest.approx(c, rel=1e-5)
        assert math.log(fit.a) == pytest.approx(log_a, rel=1e-6)
        assert fit.rms_log_error < 1e-9

    def test_evaluate_roundtrip(self):
        fit = LeakageFit(a=1e-9, b=-1.6e8, c=1.1e15, rms_log_error=0.0)
        lengths = sample_lengths(MU_L, SIGMA_L)
        values = fit.evaluate(lengths)
        refit = fit_leakage(lengths, values)
        assert refit.b == pytest.approx(fit.b, rel=1e-8)

    def test_reports_residual_for_imperfect_model(self, rng):
        lengths = sample_lengths(MU_L, SIGMA_L)
        leakages = 1e-9 * np.exp(-1.6e8 * lengths) \
            * (1.0 + 0.05 * rng.standard_normal(lengths.shape))
        fit = fit_leakage(lengths, leakages)
        assert fit.rms_log_error > 1e-3

    def test_rejects_non_positive_leakage(self):
        lengths = sample_lengths(MU_L, SIGMA_L)
        leakages = np.full_like(lengths, -1e-9)
        with pytest.raises(CharacterizationError):
            fit_leakage(lengths, leakages)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(CharacterizationError):
            fit_leakage(np.arange(5.0), np.arange(4.0))

    def test_rejects_degenerate_points(self):
        with pytest.raises(CharacterizationError):
            fit_leakage(np.full(5, MU_L), np.full(5, 1e-9))

    def test_as_tuple(self):
        fit = LeakageFit(a=1.0, b=2.0, c=3.0, rms_log_error=0.0)
        assert fit.as_tuple() == (1.0, 2.0, 3.0)
