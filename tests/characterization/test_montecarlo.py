import numpy as np
import pytest

from repro.characterization.montecarlo import (
    mc_pair_correlation,
    mc_state_leakage,
    mc_state_moments,
)
from repro.devices import DeviceModel


@pytest.fixture(scope="module")
def nand2(library):
    return library["NAND2_X1"]


class TestStateLeakage:
    def test_shape_and_positivity(self, nand2, device_model, rng):
        samples = mc_state_leakage(nand2, nand2.states[0], device_model,
                                   n_samples=300, rng=rng)
        assert samples.shape == (300,)
        assert np.all(samples > 0)

    def test_reproducible_with_seed(self, nand2, device_model):
        a = mc_state_leakage(nand2, nand2.states[0], device_model, 200,
                             np.random.default_rng(5))
        b = mc_state_leakage(nand2, nand2.states[0], device_model, 200,
                             np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_include_vt_increases_spread(self, nand2, device_model):
        base = mc_state_leakage(nand2, nand2.states[0], device_model, 4000,
                                np.random.default_rng(7), include_vt=False)
        with_vt = mc_state_leakage(nand2, nand2.states[0], device_model,
                                   4000, np.random.default_rng(7),
                                   include_vt=True)
        assert with_vt.std() > base.std()


class TestMoments:
    def test_moments_match_samples(self, nand2, device_model):
        rng = np.random.default_rng(11)
        mean, std = mc_state_moments(nand2, nand2.states[0], device_model,
                                     n_samples=2000, rng=rng)
        assert mean > 0 and std > 0
        assert std < mean  # leakage CV of one gate under 5% L sigma


class TestPairCorrelation:
    """The MC side of the paper's Fig. 2."""

    @pytest.mark.parametrize("rho_l", [0.0, 0.5, 0.9])
    def test_tracks_length_correlation(self, library, device_model, rho_l):
        rng = np.random.default_rng(13)
        inv, nand = library["INV_X1"], library["NAND2_X1"]
        rho_leak = mc_pair_correlation(
            inv, inv.states[0], nand, nand.states[1], device_model,
            rho_l=rho_l, n_samples=6000, rng=rng)
        assert rho_leak == pytest.approx(rho_l, abs=0.08)
