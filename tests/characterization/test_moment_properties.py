"""Statistical property tests for the cell-moment chain (eqs. (1)-(5)).

Unlike the targeted cases in ``test_moments.py`` / ``test_correlation_map.py``,
these tests sweep *randomized but fully seeded* draws of the fit
parameters ``(a, b, c)`` and the process sigma ``sigma_L`` across the
moment-existence region, and assert the closed forms against two
independent oracles:

* **numerical quadrature** (``moments_numeric``) at tight relative
  tolerance — same mathematics, independent evaluation;
* **Monte Carlo** with confidence intervals *derived from the sample*
  (standard error of the mean / of the variance), not hand-tuned
  ``rel=`` fudge factors. With a fixed seed the tests are
  deterministic; the z = 6 acceptance band makes the bound meaningful
  rather than vacuous.

Existence constraints observed by the parameter draws (paper Section
2.1.1): the t-th moment needs ``1 - 2*c*sigma^2*t > 0``, so the mean
needs ``c*sigma^2 < 1/2``, the variance ``< 1/4``, and the Monte Carlo
variance check (which consumes the 4th moment for its own error bar)
``< 1/8``.

The last class closes the chain at eq. (3) / Section 2.1.3: the
leakage-correlation mapping ``f_mn`` evaluated over randomized fit
pairs and a randomized rho grid stays near the identity line, which is
exactly the paper's Fig. 2 justification for the simplified
``rho_leak = rho_L`` model.
"""

import math

import numpy as np
import pytest

from repro.characterization import (
    CorrelationMap,
    leakage_correlation,
    mgf_moments,
    moments_numeric,
    pair_expectation,
)
from repro.characterization.fitting import LeakageFit
from repro.characterization.moments import log_mgf

MU_L = 50e-9

#: One seed for the whole module: every draw below is reproducible.
SEED = 20070604


def draw_params(rng, max_c_sigma2, n_draws):
    """Seeded ``(a, b, c, sigma)`` draws inside the existence region.

    ``log a`` spans realistic leakage prefactors (~1e-11..1e-7 A),
    ``b`` the fitted exponential slopes, ``sigma`` the 90nm-ish channel
    sigma, and ``c`` is drawn through the dimensionless curvature
    ``c * sigma**2`` so the existence margin is explicit.
    """
    draws = []
    for _ in range(n_draws):
        sigma = rng.uniform(1.5e-9, 4.0e-9)
        c_sigma2 = rng.uniform(0.0, max_c_sigma2)
        draws.append((
            math.exp(rng.uniform(-25.0, -16.0)),
            rng.uniform(-2.5e8, -0.5e8),
            c_sigma2 / sigma ** 2,
            sigma,
        ))
    return draws


class TestClosedFormVsQuadrature:
    """Eqs. (1)-(2) against direct numerical integration."""

    @staticmethod
    def _quadrature_span(b, c, sigma):
        """Integration span wide enough to cover the shifted peak.

        The ``X^2 * phi(L)`` integrand peaks where the combined
        exponent's derivative vanishes: ``L* - mu = (2b*sigma^2 +
        4c*sigma^2*mu) / (1 - 4c*sigma^2)``. At high curvature that
        sits tens of sigmas from ``mu``, so the default 12-sigma window
        would silently miss the mass.
        """
        shift = abs(2.0 * b * sigma ** 2 + 4.0 * c * sigma ** 2 * MU_L) \
            / ((1.0 - 4.0 * c * sigma ** 2) * sigma)
        return shift + 15.0

    def test_randomized_sweep(self):
        rng = np.random.default_rng(SEED)
        for a, b, c, sigma in draw_params(rng, max_c_sigma2=0.2,
                                          n_draws=25):
            span = self._quadrature_span(b, c, sigma)
            mean_cf, std_cf = mgf_moments(a, b, c, MU_L, sigma)
            mean_nm, std_nm = moments_numeric(a, b, c, MU_L, sigma,
                                              span=span)
            assert mean_cf == pytest.approx(mean_nm, rel=1e-7)
            if std_nm > 1e-3 * mean_nm:  # well-conditioned variance
                assert std_cf == pytest.approx(std_nm, rel=1e-4)

    def test_existence_region_boundary(self):
        """Between c*sigma^2 = 1/4 and 1/2 the mean exists (finite
        ``log_mgf(1)``) while the second moment diverges."""
        from repro.exceptions import MomentExistenceError

        rng = np.random.default_rng(SEED + 1)
        for _ in range(10):
            sigma = rng.uniform(1.5e-9, 4.0e-9)
            c = rng.uniform(0.30, 0.45) / sigma ** 2
            a, b = 1e-9, rng.uniform(-2.0e8, -1.0e8)
            assert math.isfinite(log_mgf(1.0, a, b, c, MU_L, sigma))
            with pytest.raises(MomentExistenceError):
                log_mgf(2.0, a, b, c, MU_L, sigma)


class TestClosedFormVsMonteCarlo:
    """Eqs. (1)-(2) against sampling, with sample-derived CIs."""

    N_SAMPLES = 200_000
    Z = 6.0  # acceptance band in standard errors

    def test_mean_within_ci(self):
        rng = np.random.default_rng(SEED + 2)
        for a, b, c, sigma in draw_params(rng, max_c_sigma2=0.1,
                                          n_draws=8):
            lengths = rng.normal(MU_L, sigma, self.N_SAMPLES)
            x = a * np.exp(b * lengths + c * lengths ** 2)
            mean_cf, _ = mgf_moments(a, b, c, MU_L, sigma)
            se = x.std(ddof=1) / math.sqrt(self.N_SAMPLES)
            assert abs(mean_cf - x.mean()) < self.Z * se, (
                f"closed-form mean outside the {self.Z:.0f}-sigma CI for "
                f"(a={a:.3g}, b={b:.3g}, c={c:.3g}, sigma={sigma:.3g})")

    def test_variance_within_ci(self):
        # The CI of a sample variance consumes the 4th moment, which
        # exists only while c*sigma^2 < 1/8 — hence the tighter draw.
        rng = np.random.default_rng(SEED + 3)
        for a, b, c, sigma in draw_params(rng, max_c_sigma2=0.08,
                                          n_draws=8):
            lengths = rng.normal(MU_L, sigma, self.N_SAMPLES)
            x = a * np.exp(b * lengths + c * lengths ** 2)
            _, std_cf = mgf_moments(a, b, c, MU_L, sigma)
            var_hat = x.var(ddof=1)
            centered = x - x.mean()
            m4_hat = float((centered ** 4).mean())
            se_var = math.sqrt(
                max(m4_hat - var_hat ** 2, 0.0) / self.N_SAMPLES)
            assert abs(std_cf ** 2 - var_hat) < self.Z * se_var, (
                f"closed-form variance outside the {self.Z:.0f}-sigma CI "
                f"for (a={a:.3g}, b={b:.3g}, c={c:.3g}, sigma={sigma:.3g})")

    def test_pair_cross_moment_within_ci(self):
        """Eq. (3): E[X_m X_n] for bivariate-normal lengths."""
        rng = np.random.default_rng(SEED + 4)
        for _ in range(6):
            (a1, b1, c1, sigma), (a2, b2, c2, _) = draw_params(
                rng, max_c_sigma2=0.05, n_draws=2)
            rho = rng.uniform(-0.95, 0.95)
            fit_m = LeakageFit(a=a1, b=b1, c=c1, rms_log_error=0.0)
            fit_n = LeakageFit(a=a2, b=b2, c=c2, rms_log_error=0.0)
            z1 = rng.standard_normal(self.N_SAMPLES)
            z2 = rho * z1 + math.sqrt(1 - rho ** 2) * rng.standard_normal(
                self.N_SAMPLES)
            prod = (fit_m.evaluate(MU_L + sigma * z1)
                    * fit_n.evaluate(MU_L + sigma * z2))
            closed = float(pair_expectation(fit_m, fit_n, MU_L, sigma, rho))
            se = prod.std(ddof=1) / math.sqrt(self.N_SAMPLES)
            assert abs(closed - prod.mean()) < self.Z * se


class TestCorrelationMapNearIdentity:
    """Section 2.1.3 / Fig. 2: f(rho_L) ~ identity, randomized."""

    @staticmethod
    def _random_fit(rng, sigma):
        # Library-realistic fits, parameterized by the *effective*
        # log-slope at nominal length, s = (b + 2c*mu)*sigma: leakage
        # decreases with L, so s is negative (~[-0.55, -0.15] in the
        # paper's subthreshold regime). Drawing b directly would let
        # the curvature term 2c*mu flip the effective slope positive —
        # a shape no real leakage fit has, for which the identity
        # observation (an empirical claim, not a theorem) fails.
        curvature = rng.uniform(0.0, 0.03)  # c * sigma**2
        c = curvature / sigma ** 2
        s = rng.uniform(-0.55, -0.15)
        return LeakageFit(
            a=math.exp(rng.uniform(-25.0, -16.0)),
            b=s / sigma - 2.0 * c * MU_L,
            c=c,
            rms_log_error=0.0)

    def test_identity_over_randomized_grid(self):
        # Positive correlations only, like the paper's Fig. 2: spatial
        # correlation is non-negative, and the mapping saturates on the
        # negative branch (two positive leakages cannot reach rho = -1).
        rng = np.random.default_rng(SEED + 5)
        for _ in range(12):
            sigma = rng.uniform(1.5e-9, 3.0e-9)
            fit_m = self._random_fit(rng, sigma)
            fit_n = self._random_fit(rng, sigma)
            rhos = np.sort(rng.uniform(0.0, 1.0, 41))
            values = leakage_correlation(fit_m, fit_n, MU_L, sigma, rhos)
            assert np.max(np.abs(values - rhos)) < 0.1, (
                f"f_mn strays from identity for b=({fit_m.b:.3g}, "
                f"{fit_n.b:.3g}), c=({fit_m.c:.3g}, {fit_n.c:.3g})")

    def test_structural_properties(self):
        rng = np.random.default_rng(SEED + 6)
        for _ in range(8):
            sigma = rng.uniform(1.5e-9, 3.5e-9)
            fit_m = self._random_fit(rng, sigma)
            fit_n = self._random_fit(rng, sigma)
            # f(0) = 0 exactly (independence factorizes).
            assert float(leakage_correlation(
                fit_m, fit_n, MU_L, sigma, 0.0)) == pytest.approx(
                    0.0, abs=1e-12)
            # |f| <= 1 (it is a correlation) and f is increasing for
            # same-sign slopes.
            rhos = np.linspace(-1.0, 1.0, 201)
            values = leakage_correlation(fit_m, fit_n, MU_L, sigma, rhos)
            assert np.all(np.abs(values) <= 1.0 + 1e-9)
            # Non-decreasing everywhere (the negative branch can go
            # numerically flat where the mapping saturates).
            assert np.all(np.diff(values) > -1e-12)
            assert np.all(np.diff(values)[rhos[1:] > 0] > 0)
            # Same-fit pairs reach exactly 1 at rho = 1.
            assert float(leakage_correlation(
                fit_m, fit_m, MU_L, sigma, 1.0)) == pytest.approx(1.0)

    def test_interpolated_map_tracks_closed_form(self):
        rng = np.random.default_rng(SEED + 7)
        sigma = 2.5e-9
        fit_m = self._random_fit(rng, sigma)
        fit_n = self._random_fit(rng, sigma)
        cmap = CorrelationMap(fit_m, fit_n, MU_L, sigma)
        rhos = rng.uniform(-0.99, 0.99, 64)
        exact = leakage_correlation(fit_m, fit_n, MU_L, sigma, rhos)
        np.testing.assert_allclose(cmap(rhos), exact, atol=1e-5)
        positive = np.linspace(0.0, 1.0, 41)
        assert np.max(np.abs(cmap(positive) - positive)) < 0.1
