import math

import numpy as np
import pytest

from repro.characterization import vt_mean_multiplier
from repro.process import synthetic_90nm


class TestVtMeanMultiplier:
    def test_greater_than_one(self, technology):
        assert vt_mean_multiplier(technology) > 1.0

    def test_formula(self, technology):
        n_vt = (technology.subthreshold_swing_factor
                * technology.thermal_voltage)
        expected = math.exp(technology.vt.sigma ** 2 / (2 * n_vt ** 2))
        assert vt_mean_multiplier(technology) == pytest.approx(expected)

    def test_matches_sampled_single_device_mean(self, technology, rng):
        """E[exp(-dVt/(n kT/q))] over the RDF ensemble."""
        n_vt = (technology.subthreshold_swing_factor
                * technology.thermal_voltage)
        shifts = rng.normal(0.0, technology.vt.sigma, 1_000_000)
        sampled = float(np.exp(-shifts / n_vt).mean())
        assert vt_mean_multiplier(technology) == pytest.approx(sampled,
                                                               rel=1e-3)

    def test_grows_with_sigma(self):
        import dataclasses

        from repro.process import VtSpec
        small = synthetic_90nm()
        big = dataclasses.replace(
            small, vt=VtSpec(nominal_n=0.26, nominal_p=0.28, sigma=0.05))
        assert vt_mean_multiplier(big) > vt_mean_multiplier(small)
