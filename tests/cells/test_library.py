import itertools

import numpy as np
import pytest

from repro.cells import build_library, StandardCellLibrary
from repro.exceptions import NetlistError


class TestRoster:
    def test_exactly_62_cells(self, library):
        assert len(library) == 62

    def test_paper_required_content(self, library):
        """Section 2.1.1: SRAM cell, various flip-flops, logic cells."""
        names = library.names
        assert "SRAM6T_X1" in names
        flops = [n for n in names if n.startswith(("DFF", "LATCH"))]
        assert len(flops) >= 4
        assert any(n.startswith("NAND") for n in names)
        assert any(n.startswith("XOR") for n in names)

    def test_unique_names(self, library):
        assert len(set(library.names)) == 62

    def test_lookup_by_name_and_index(self, library):
        assert library["INV_X1"].name == "INV_X1"
        assert library[0].name == library.names[0]
        assert "INV_X1" in library
        assert "FOO" not in library

    def test_unknown_name_raises_keyerror(self, library):
        with pytest.raises(KeyError):
            library["NONEXISTENT"]

    def test_families_group_drive_variants(self, library):
        families = library.families()
        assert set(families["INV"]) == {"INV_X1", "INV_X2", "INV_X4",
                                        "INV_X8"}

    def test_subset(self, library):
        sub = library.subset(["INV_X1", "NAND2_X1"])
        assert isinstance(sub, StandardCellLibrary)
        assert sub.names == ("INV_X1", "NAND2_X1")

    def test_duplicate_cells_rejected(self, library):
        with pytest.raises(NetlistError):
            StandardCellLibrary([library["INV_X1"], library["INV_X1"]])

    def test_positive_areas(self, library):
        for cell in library:
            assert cell.area > 0
            assert cell.area < 100e-12  # under 100 um^2

    def test_drive_scales_width(self, library):
        x1 = sum(t.width_mult for t in library["INV_X1"].netlist.transistors)
        x4 = sum(t.width_mult for t in library["INV_X4"].netlist.transistors)
        assert x4 == pytest.approx(4 * x1)


class TestFunctionalCorrectness:
    """Every combinational cell's enumerated states must realize its
    documented boolean function."""

    @pytest.mark.parametrize("name,function", [
        ("INV_X1", lambda a: 1 - a),
        ("BUF_X2", lambda a: a),
    ])
    def test_single_input(self, library, name, function):
        cell = library[name]
        for state in cell.states:
            a = state.nodes[cell.netlist.inputs[0]]
            assert state.nodes[cell.outputs[0]] == function(a), state.label

    @pytest.mark.parametrize("name,function", [
        ("NAND2_X1", lambda a, b: 1 - (a & b)),
        ("NOR2_X1", lambda a, b: 1 - (a | b)),
        ("AND2_X1", lambda a, b: a & b),
        ("OR2_X1", lambda a, b: a | b),
        ("XOR2_X1", lambda a, b: a ^ b),
        ("XNOR2_X1", lambda a, b: 1 - (a ^ b)),
        ("NAND2B_X1", lambda a, b: 1 - ((1 - a) & b)),
        ("NOR2B_X1", lambda a, b: 1 - ((1 - a) | b)),
    ])
    def test_two_input(self, library, name, function):
        cell = library[name]
        for state in cell.states:
            ins = [state.nodes[pin] for pin in cell.netlist.inputs]
            assert state.nodes[cell.outputs[0]] == function(*ins), state.label

    def test_nand4_truth_table(self, library):
        cell = library["NAND4_X1"]
        assert cell.n_states == 16
        for state in cell.states:
            ins = [state.nodes[f"I{k}"] for k in range(4)]
            assert state.nodes["Y"] == (0 if all(ins) else 1)

    def test_aoi22(self, library):
        cell = library["AOI22_X1"]
        for state in cell.states:
            a1, a2, b1, b2 = (state.nodes[p] for p in
                              ("A1", "A2", "B1", "B2"))
            expected = 0 if (a1 and a2) or (b1 and b2) else 1
            assert state.nodes["Y"] == expected

    def test_oai221(self, library):
        cell = library["OAI221_X1"]
        for state in cell.states:
            a1, a2, b1, b2, c = (state.nodes[p] for p in
                                 ("A1", "A2", "B1", "B2", "C"))
            expected = 0 if ((a1 or a2) and (b1 or b2) and c) else 1
            assert state.nodes["Y"] == expected

    def test_mux2(self, library):
        cell = library["MUX2_X1"]
        for state in cell.states:
            a, b, s = (state.nodes[p] for p in ("A", "B", "S"))
            assert state.nodes["Y"] == (b if s else a), state.label

    def test_full_adder(self, library):
        cell = library["FA_X1"]
        for state in cell.states:
            a, b, ci = (state.nodes[p] for p in ("A", "B", "CI"))
            total = a + b + ci
            assert state.nodes["S"] == total % 2
            assert state.nodes["CO"] == total // 2

    def test_half_adder(self, library):
        cell = library["HA_X1"]
        for state in cell.states:
            a, b = state.nodes["A"], state.nodes["B"]
            assert state.nodes["S"] == (a + b) % 2
            assert state.nodes["CO"] == (a + b) // 2


class TestSequentialConsistency:
    def test_dff_q_consistent_with_slave(self, library):
        cell = library["DFF_X1"]
        assert cell.n_states == 8
        for state in cell.states:
            assert state.nodes["Q"] == state.nodes["sq"]
            assert state.nodes["QN"] == 1 - state.nodes["Q"]

    def test_dff_master_transparent_when_clock_low(self, library):
        for state in library["DFF_X1"].states:
            if state.nodes["CK"] == 0:
                assert state.nodes["m"] == state.nodes["D"]
            else:
                assert state.nodes["m"] == state.nodes["Q"]

    def test_dffr_reset_forces_q_zero(self, library):
        states = library["DFFR_X1"].states
        assert len(states) == 12
        for state in states:
            if state.nodes["R"] == 1:
                assert state.nodes["Q"] == 0

    def test_dffs_set_forces_q_one(self, library):
        states = library["DFFS_X1"].states
        assert len(states) == 12
        for state in states:
            if state.nodes["S"] == 1:
                assert state.nodes["Q"] == 1

    def test_latch_transparent_when_enabled(self, library):
        for state in library["LATCH_X1"].states:
            if state.nodes["EN"] == 1:
                assert state.nodes["Q"] == state.nodes["D"]

    def test_sram_standby_states(self, library):
        cell = library["SRAM6T_X1"]
        assert cell.n_states == 2
        for state in cell.states:
            assert state.nodes["WL"] == 0
            assert state.nodes["BL"] == 1 and state.nodes["BLB"] == 1
            assert state.nodes["QB"] == 1 - state.nodes["Q"]

    def test_tristate_hiz_states_cover_both_bus_values(self, library):
        hiz = [s for s in library["TINV_X1"].states if s.nodes["EN"] == 0]
        assert {s.nodes["Y"] for s in hiz} == {0, 1}


class TestStateCounts:
    def test_total_states(self, library):
        assert library.total_states() == sum(c.n_states for c in library)
        # Combinational cells enumerate all 2^k input combos.
        for cell in library:
            k = len(cell.netlist.inputs)
            if cell.family in ("INV", "BUF", "CLKBUF") or \
               cell.family.startswith(("NAND", "NOR", "AND", "OR", "XOR",
                                       "XNOR", "AOI", "OAI", "HA", "FA",
                                       "MUX")):
                assert cell.n_states == 2 ** k, cell.name
