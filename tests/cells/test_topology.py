import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import Leaf, Parallel, Series, conducts, dual
from repro.cells.topology import emit_stage, stage_output
from repro.devices import NMOS, PMOS
from repro.exceptions import NetlistError


def random_expr(draw, depth, signals):
    """Hypothesis-recursive series-parallel expression builder."""
    if depth == 0 or draw(st.booleans()):
        return Leaf(draw(st.sampled_from(signals)))
    ctor = Series if draw(st.booleans()) else Parallel
    n_children = draw(st.integers(min_value=2, max_value=3))
    return ctor(*(random_expr(draw, depth - 1, signals)
                  for _ in range(n_children)))


@st.composite
def sp_expressions(draw):
    return random_expr(draw, depth=3, signals=("A", "B", "C", "D"))


class TestExpressions:
    def test_leaf_conducts_when_high(self):
        assert conducts(Leaf("A"), {"A": 1})
        assert not conducts(Leaf("A"), {"A": 0})

    def test_series_is_and(self):
        expr = Series(Leaf("A"), Leaf("B"))
        for a, b in itertools.product((0, 1), repeat=2):
            assert conducts(expr, {"A": a, "B": b}) == bool(a and b)

    def test_parallel_is_or(self):
        expr = Parallel(Leaf("A"), Leaf("B"))
        for a, b in itertools.product((0, 1), repeat=2):
            assert conducts(expr, {"A": a, "B": b}) == bool(a or b)

    def test_nested_flattening(self):
        expr = Series(Series(Leaf("A"), Leaf("B")), Leaf("C"))
        assert len(expr.children) == 3

    def test_signals_first_appearance_order(self):
        expr = Parallel(Series(Leaf("B"), Leaf("A")), Leaf("B"))
        assert expr.signals() == ("B", "A")

    def test_empty_compound_rejected(self):
        with pytest.raises(NetlistError):
            Series()

    def test_empty_leaf_rejected(self):
        with pytest.raises(NetlistError):
            Leaf("")


@settings(max_examples=80, deadline=None)
@given(expr=sp_expressions())
def test_dual_computes_complement(expr):
    """The structural dual, evaluated active-low, is the complement — the
    property the automatic PUN derivation rests on."""
    signals = expr.signals()
    for bits in itertools.product((0, 1), repeat=len(signals)):
        values = dict(zip(signals, bits))
        pdn = conducts(expr, values)
        pun = conducts(dual(expr), values, active_low=True)
        assert pun == (not pdn)


@settings(max_examples=40, deadline=None)
@given(expr=sp_expressions())
def test_emit_counts_match_leaves(expr):
    def leaves(e):
        if isinstance(e, Leaf):
            return 1
        return sum(leaves(c) for c in e.children)

    transistors = emit_stage("Y", expr, prefix="T", nmos_width=1.0,
                             pmos_width=2.0)
    n_leaves = leaves(expr)
    assert len(transistors) == 2 * n_leaves
    kinds = [t.kind for t in transistors]
    assert kinds.count(NMOS) == n_leaves
    assert kinds.count(PMOS) == n_leaves


class TestEmitStage:
    def test_nand2_structure(self):
        transistors = emit_stage("Y", Series(Leaf("A"), Leaf("B")), "T",
                                 1.0, 2.0)
        nmos = [t for t in transistors if t.kind == NMOS]
        pmos = [t for t in transistors if t.kind == PMOS]
        # NMOS in series: exactly one touches Y, one touches gnd.
        assert sum(1 for t in nmos if "Y" in (t.drain, t.source)) == 1
        assert sum(1 for t in nmos if "gnd" in (t.drain, t.source)) == 1
        # PMOS in parallel: all touch both vdd and Y.
        assert all({"vdd", "Y"} <= {t.drain, t.source} for t in pmos)

    def test_stage_output_is_complementary_function(self):
        pdn = Parallel(Series(Leaf("A"), Leaf("B")), Leaf("C"))  # AOI21
        for a, b, c in itertools.product((0, 1), repeat=3):
            values = {"A": a, "B": b, "C": c}
            assert stage_output(pdn, values) == (0 if (a and b) or c else 1)
