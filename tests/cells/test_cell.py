import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import Cell, CellState, build_library
from repro.cells.cell import Stage, build_combinational
from repro.cells.topology import Leaf, Series
from repro.exceptions import NetlistError

LIB = build_library()


class TestStateProbabilities:
    @pytest.mark.parametrize("cell_name", ["INV_X1", "NAND3_X1", "DFF_X1",
                                           "DFFR_X1", "LATCH_X1",
                                           "SRAM6T_X1", "MUX2_X1"])
    @pytest.mark.parametrize("p", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_normalized_and_non_negative(self, cell_name, p):
        probs = LIB[cell_name].state_probabilities(p)
        assert probs.shape == (LIB[cell_name].n_states,)
        assert np.all(probs >= 0)
        assert probs.sum() == pytest.approx(1.0)

    def test_inverter_probabilities_follow_p(self):
        inv = LIB["INV_X1"]
        probs = inv.state_probabilities(0.3)
        by_label = dict(zip([s.label for s in inv.states], probs))
        assert by_label["A=0"] == pytest.approx(0.7)
        assert by_label["A=1"] == pytest.approx(0.3)

    def test_nand2_joint_probabilities(self):
        nand = LIB["NAND2_X1"]
        probs = nand.state_probabilities(0.8)
        by_label = dict(zip([s.label for s in nand.states], probs))
        assert by_label["I0=1,I1=1"] == pytest.approx(0.64)
        assert by_label["I0=0,I1=0"] == pytest.approx(0.04)

    def test_dff_state_bit_is_fair_coin(self):
        dff = LIB["DFF_X1"]
        probs = dff.state_probabilities(0.9)
        q1 = sum(p for s, p in zip(dff.states, probs) if s.nodes["Q"] == 1)
        assert q1 == pytest.approx(0.5)

    @given(p=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_dffr_pruned_states_still_normalize(self, p):
        probs = LIB["DFFR_X1"].state_probabilities(p)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            LIB["INV_X1"].state_probabilities(1.5)


class TestPerPinProbabilities:
    def test_matches_uniform_when_all_equal(self):
        nand = LIB["NAND2_X1"]
        uniform = nand.state_probabilities(0.3)
        per_pin = nand.state_probabilities_per_pin({"I0": 0.3, "I1": 0.3})
        np.testing.assert_allclose(per_pin, uniform)

    def test_heterogeneous_pins(self):
        nand = LIB["NAND2_X1"]
        probs = nand.state_probabilities_per_pin({"I0": 1.0, "I1": 0.25})
        by_label = dict(zip([s.label for s in nand.states], probs))
        assert by_label["I0=1,I1=1"] == pytest.approx(0.25)
        assert by_label["I0=0,I1=0"] == pytest.approx(0.0)

    def test_missing_pins_default_to_half(self):
        nand = LIB["NAND2_X1"]
        probs = nand.state_probabilities_per_pin({"I0": 1.0})
        by_label = dict(zip([s.label for s in nand.states], probs))
        assert by_label["I0=1,I1=1"] == pytest.approx(0.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LIB["INV_X1"].state_probabilities_per_pin({"A": 1.2})


class TestOutputProbabilities:
    def test_inverter(self):
        out = LIB["INV_X1"].output_probabilities({"A": 0.3})
        assert out["Y"] == pytest.approx(0.7)

    def test_nand2(self):
        out = LIB["NAND2_X1"].output_probabilities({"I0": 0.5, "I1": 0.5})
        assert out["Y"] == pytest.approx(0.75)

    def test_xor2(self):
        out = LIB["XOR2_X1"].output_probabilities({"A": 0.5, "B": 0.5})
        assert out["Y"] == pytest.approx(0.5)

    def test_full_adder_carry(self):
        out = LIB["FA_X1"].output_probabilities({"A": 0.5, "B": 0.5,
                                                 "CI": 0.5})
        assert out["CO"] == pytest.approx(0.5)
        assert out["S"] == pytest.approx(0.5)

    def test_dff_output_is_half_regardless_of_input(self):
        out = LIB["DFF_X1"].output_probabilities({"D": 0.95})
        assert out["Q"] == pytest.approx(0.5)


class TestBuildCombinational:
    def test_non_complementary_explicit_pun_rejected(self):
        with pytest.raises(NetlistError):
            build_combinational(
                "BAD", "BAD", 1.0, ("A", "B"),
                [Stage("Y", Series(Leaf("A"), Leaf("B")),
                       pun=Series(Leaf("A"), Leaf("B")))],
                area=1e-12)

    def test_invalid_output_rejected(self):
        cell = LIB["INV_X1"]
        with pytest.raises(NetlistError):
            Cell(name="X", family="X", drive=1.0, netlist=cell.netlist,
                 states=cell.states, area=1e-12, outputs=("nonexistent",))

    def test_empty_states_rejected(self):
        cell = LIB["INV_X1"]
        with pytest.raises(NetlistError):
            Cell(name="X", family="X", drive=1.0, netlist=cell.netlist,
                 states=(), area=1e-12)
