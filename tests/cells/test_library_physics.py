"""Physical-ordering tests across the characterized library.

These pin down the *relative* leakage structure a real library exhibits
— the relationships the Random-Gate statistics inherit.
"""

import numpy as np
import pytest


def mean_at(characterization, name, p=0.5):
    return characterization[name].moments_at(p)[0]


class TestDriveStrengthScaling:
    @pytest.mark.parametrize("family,drives", [
        ("INV_X", (1, 2, 4, 8)),
        ("NAND2_X", (1, 2, 4)),
        ("NOR2_X", (1, 2, 4)),
        ("BUF_X", (1, 2, 4, 8)),
    ])
    def test_leakage_scales_with_drive(self, characterization, family,
                                       drives):
        means = [mean_at(characterization, f"{family}{d}") for d in drives]
        assert all(means[k + 1] > means[k] for k in range(len(means) - 1))

    def test_scaling_is_linear_in_width(self, characterization):
        """Every device width doubles from X1 to X2, so the mean leakage
        must double exactly (per state, the bias points are identical)."""
        x1 = mean_at(characterization, "INV_X1")
        x2 = mean_at(characterization, "INV_X2")
        assert x2 == pytest.approx(2 * x1, rel=1e-6)


class TestStackDepthOrdering:
    def test_deeper_nand_stacks_leak_less_in_all_off_state(
            self, characterization):
        """All-inputs-low NAND states: deeper NMOS stacks leak less."""
        def all_off_mean(name, fan_in):
            label = ",".join(f"I{k}=0" for k in range(fan_in))
            by_label = {s.state_label: s
                        for s in characterization[name].states}
            return by_label[label].mean

        nand2 = all_off_mean("NAND2_X1", 2)
        nand3 = all_off_mean("NAND3_X1", 3)
        nand4 = all_off_mean("NAND4_X1", 4)
        # NAND3/NAND4 use wider stacked devices (1.5x) than NAND2 (1.0x),
        # so compare within equal widths: NAND4 < NAND3, and both are
        # well below a single OFF device's leakage footprint.
        assert nand4 < nand3
        assert nand3 < 1.5 * nand2

    def test_single_gate_state_spread_is_large(self, characterization):
        """Section 2.1.4: per-gate state spread reaches ~10x for complex
        gates — the contrast to the flat chip-level curve of Fig. 3."""
        states = characterization["NAND4_X1"].states
        means = [s.mean for s in states]
        assert max(means) / min(means) > 10


class TestCellClassOrdering:
    def test_sequential_cells_leak_more_than_simple_gates(
            self, characterization):
        """A 24-transistor flip-flop out-leaks a 4-transistor NAND."""
        dff = mean_at(characterization, "DFF_X1")
        nand = mean_at(characterization, "NAND2_X1")
        assert dff > 3 * nand

    def test_reset_flop_leaks_more_than_plain_flop(self, characterization):
        assert mean_at(characterization, "DFFR_X1") > \
            mean_at(characterization, "DFF_X1")

    def test_sram_bitcell_is_lean(self, characterization):
        """The 6T bitcell (near-minimum devices) sits well below a DFF."""
        assert mean_at(characterization, "SRAM6T_X1") < \
            0.8 * mean_at(characterization, "DFF_X1")

    def test_full_adder_tops_half_adder(self, characterization):
        assert mean_at(characterization, "FA_X1") > \
            mean_at(characterization, "HA_X1")


class TestVariabilityStructure:
    def test_cv_is_similar_across_cells(self, characterization):
        """All cells see the same L distribution through similar
        exponentials, so per-state CVs cluster tightly."""
        cvs = []
        for name in ("INV_X1", "NAND2_X1", "NOR3_X1", "XOR2_X1",
                     "DFF_X1", "SRAM6T_X1"):
            for state in characterization[name].states:
                cvs.append(state.std / state.mean)
        cvs = np.array(cvs)
        # The effective log-slope at nominal is b + 2*c*mu (the fit's
        # curvature cancels part of b), giving CVs near 0.13 under 5% L
        # sigma for every cell.
        assert 0.05 < cvs.min() and cvs.max() < 0.6
        assert cvs.max() / cvs.min() < 3

    def test_fit_b_coefficients_negative_everywhere(self, characterization):
        for state in characterization.state_table():
            assert state.fit.b < 0, (state.cell_name, state.state_label)

    def test_fit_c_mostly_positive(self, characterization):
        """log-leakage is convex in L for the vast majority of states
        (roll-off curvature); tolerate a handful of near-zero fits."""
        cs = [state.fit.c for state in characterization.state_table()]
        positive = sum(1 for c in cs if c > 0)
        assert positive / len(cs) > 0.9
