"""Property tests on randomly generated static CMOS cells.

The library's 62 cells are a fixed roster; these tests generate *novel*
series-parallel gate topologies and assert the end-to-end invariants the
whole pipeline rests on: every state solves, leakage is positive and
monotone-decreasing in L, the analytical moments agree with Monte
Carlo, and the complementary-stage construction computes the right
boolean function.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells.cell import Stage, build_combinational
from repro.cells.topology import Leaf, Parallel, Series, conducts
from repro.characterization.fitting import fit_leakage, sample_lengths
from repro.characterization.moments import mgf_moments
from repro.devices import DeviceModel
from repro.process import synthetic_90nm
from repro.spice import state_leakage

TECH = synthetic_90nm()
MODEL = DeviceModel(TECH)
SIGNALS = ("A", "B", "C", "D")


def random_expr(draw, depth):
    if depth == 0 or draw(st.booleans()):
        return Leaf(draw(st.sampled_from(SIGNALS)))
    ctor = Series if draw(st.booleans()) else Parallel
    return ctor(*(random_expr(draw, depth - 1)
                  for _ in range(draw(st.integers(2, 3)))))


@st.composite
def random_cells(draw):
    pdn = random_expr(draw, depth=2)
    inputs = pdn.signals()
    return build_combinational(
        name="RANDOM", family="RANDOM", drive=1.0, inputs=inputs,
        stages=[Stage("Y", pdn)], area=1e-12)


@settings(max_examples=25, deadline=None)
@given(cell=random_cells())
def test_every_state_solves_positively(cell):
    for state in cell.states:
        leak = state_leakage(cell.netlist, state.nodes, MODEL,
                             TECH.length.nominal)
        assert np.isfinite(leak[0]) and leak[0] > 0, state.label


@settings(max_examples=15, deadline=None)
@given(cell=random_cells())
def test_leakage_decreases_with_length(cell):
    lengths = np.linspace(0.9, 1.1, 5) * TECH.length.nominal
    for state in cell.states[:4]:
        leak = state_leakage(cell.netlist, state.nodes, MODEL, lengths)
        assert np.all(np.diff(leak) < 0), state.label


@settings(max_examples=10, deadline=None)
@given(cell=random_cells())
def test_analytical_moments_track_monte_carlo(cell):
    rng = np.random.default_rng(99)
    state = cell.states[0]
    lengths = sample_lengths(TECH.length.nominal, TECH.length.sigma)
    fit = fit_leakage(lengths, state_leakage(cell.netlist, state.nodes,
                                             MODEL, lengths))
    mean_a, std_a = mgf_moments(fit.a, fit.b, fit.c,
                                TECH.length.nominal, TECH.length.sigma)
    samples = state_leakage(
        cell.netlist, state.nodes, MODEL,
        np.maximum(rng.normal(TECH.length.nominal, TECH.length.sigma,
                              4000), 0.2 * TECH.length.nominal))
    assert mean_a == pytest.approx(float(samples.mean()), rel=0.05)
    assert std_a == pytest.approx(float(samples.std()), rel=0.15)


@settings(max_examples=25, deadline=None)
@given(cell=random_cells())
def test_states_realize_the_boolean_function(cell):
    # Reconstruct the PDN from the emitted netlist is overkill; instead
    # check that the enumerated output equals the complementary-stage
    # function evaluated on the inputs.
    for state in cell.states:
        values = {pin: state.nodes[pin] for pin in cell.netlist.inputs}
        # Output low iff some PDN path conducts. Infer conduction from
        # the leakage structure: instead evaluate via the state nodes
        # enumerated at build time (they came from stage_output), so
        # here we assert consistency between Y and a brute-force path
        # search over the emitted NMOS transistors.
        on_edges = []
        for t in cell.netlist.transistors:
            if t.kind != "nmos":
                continue
            if values.get(t.gate, state.nodes.get(t.gate, 0)):
                on_edges.append((t.drain, t.source))
        # Union-find reachability gnd -> Y over ON NMOS edges.
        parent = {}

        def find(x):
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a, b):
            parent[find(a)] = find(b)

        for a, b in on_edges:
            union(a, b)
        conducting = find("gnd") == find("Y")
        assert state.nodes["Y"] == (0 if conducting else 1), state.label
