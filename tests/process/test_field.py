import numpy as np
import pytest

from repro.exceptions import CorrelationError
from repro.process import (
    CholeskyFieldSampler,
    CirculantFieldSampler,
    ExponentialCorrelation,
    GaussianCorrelation,
    LinearCorrelation,
    sample_field,
)
from repro.process.field import grid_points


CORR = ExponentialCorrelation(0.5e-3)


class TestCholeskySampler:
    def test_shape(self):
        points = np.random.default_rng(0).uniform(0, 1e-3, (30, 2))
        sampler = CholeskyFieldSampler(points, CORR)
        samples = sampler.sample(100, np.random.default_rng(1))
        assert samples.shape == (100, 30)

    def test_unit_variance_and_target_correlation(self):
        rng = np.random.default_rng(2)
        points = np.array([[0.0, 0.0], [2e-4, 0.0], [2e-3, 0.0]])
        sampler = CholeskyFieldSampler(points, CORR)
        samples = sampler.sample(60_000, rng)
        std = samples.std(axis=0)
        np.testing.assert_allclose(std, 1.0, atol=0.02)
        empirical = np.corrcoef(samples.T)
        expected = CORR.matrix(points)
        np.testing.assert_allclose(empirical, expected, atol=0.02)

    def test_gaussian_kernel_needs_jitter_but_succeeds(self):
        # Gaussian kernels on dense grids are numerically rank-deficient;
        # the sampler must regularize rather than fail.
        points = grid_points(8, 8, 1e-5, 1e-5)
        sampler = CholeskyFieldSampler(points, GaussianCorrelation(1e-3))
        samples = sampler.sample(10, np.random.default_rng(0))
        assert np.all(np.isfinite(samples))

    def test_rejects_non_positive_sample_count(self):
        sampler = CholeskyFieldSampler(np.zeros((1, 2)), CORR)
        with pytest.raises(ValueError):
            sampler.sample(0)


class TestCirculantSampler:
    def test_shape_and_order(self):
        sampler = CirculantFieldSampler(5, 7, 1e-5, 1e-5, CORR)
        samples = sampler.sample(9, np.random.default_rng(0))
        assert samples.shape == (9, 35)

    def test_matches_cholesky_statistics(self):
        rows, cols, pitch = 6, 6, 1e-4
        rng = np.random.default_rng(3)
        circ = CirculantFieldSampler(rows, cols, pitch, pitch, CORR)
        samples = circ.sample(50_000, rng)
        empirical = np.cov(samples.T)
        expected = CORR.matrix(grid_points(rows, cols, pitch, pitch))
        np.testing.assert_allclose(empirical, expected, atol=0.03)

    def test_valid_embedding_has_no_clipping(self):
        sampler = CirculantFieldSampler(16, 16, 1e-4, 1e-4,
                                        ExponentialCorrelation(4e-4))
        assert sampler.clipped_energy <= 1e-8

    def test_large_grid_is_fast_and_finite(self):
        sampler = CirculantFieldSampler(128, 128, 1e-5, 1e-5, CORR)
        samples = sampler.sample(4, np.random.default_rng(1))
        assert samples.shape == (4, 128 * 128)
        assert np.all(np.isfinite(samples))


class TestCirculantBatching:
    """The batched draw/FFT path must reproduce the historical
    one-pair-at-a-time loop draw-for-draw."""

    @staticmethod
    def looped_sample(sampler, n_samples, rng):
        """Verbatim replay of the pre-batching sample loop."""
        out = np.empty((n_samples, sampler.n_points))
        index = 0
        while index < n_samples:
            noise = (rng.standard_normal((sampler._p, sampler._q))
                     + 1j * rng.standard_normal((sampler._p, sampler._q)))
            spectrum = np.fft.fft2(sampler._amplitude * noise)
            block = spectrum[: sampler.rows, : sampler.cols]
            out[index] = block.real.ravel()
            index += 1
            if index < n_samples:
                out[index] = block.imag.ravel()
                index += 1
        return out

    @pytest.mark.parametrize("n_samples", [1, 2, 3, 7, 8, 129])
    def test_bit_identical_to_loop(self, n_samples):
        sampler = CirculantFieldSampler(9, 13, 1e-5, 2e-5, CORR)
        want = self.looped_sample(sampler, n_samples,
                                  np.random.default_rng(42))
        got = sampler.sample(n_samples, np.random.default_rng(42))
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("pair_chunk", [1, 3, 64])
    def test_explicit_chunk_bit_identical(self, pair_chunk):
        sampler = CirculantFieldSampler(9, 13, 1e-5, 2e-5, CORR)
        want = self.looped_sample(sampler, 11, np.random.default_rng(5))
        got = sampler.sample(11, np.random.default_rng(5),
                             pair_chunk=pair_chunk)
        assert np.array_equal(got, want)

    def test_rejects_non_positive_chunk(self):
        sampler = CirculantFieldSampler(4, 4, 1e-5, 1e-5, CORR)
        with pytest.raises(ValueError):
            sampler.sample(2, np.random.default_rng(0), pair_chunk=0)


class TestSampleFieldDispatch:
    def test_requires_exactly_one_geometry(self):
        with pytest.raises(ValueError):
            sample_field(CORR, 2)
        with pytest.raises(ValueError):
            sample_field(CORR, 2, points=np.zeros((3, 2)),
                         grid=(2, 2, 1e-5, 1e-5))

    def test_grid_dispatch_small_uses_cholesky(self):
        samples = sample_field(CORR, 3, grid=(4, 4, 1e-5, 1e-5),
                               rng=np.random.default_rng(0))
        assert samples.shape == (3, 16)

    def test_grid_dispatch_large_uses_fft(self):
        samples = sample_field(CORR, 2, grid=(80, 80, 1e-5, 1e-5),
                               rng=np.random.default_rng(0))
        assert samples.shape == (2, 6400)

    def test_points_dispatch(self):
        points = np.random.default_rng(0).uniform(0, 1e-3, (10, 2))
        samples = sample_field(CORR, 5, points=points,
                               rng=np.random.default_rng(0))
        assert samples.shape == (5, 10)

    def test_too_many_arbitrary_points_rejected(self):
        with pytest.raises(CorrelationError):
            sample_field(CORR, 1, points=np.zeros((5000, 2)))


def test_grid_points_row_major_order():
    pts = grid_points(2, 3, 10.0, 100.0)
    # Row-major: x varies fastest.
    np.testing.assert_allclose(pts[0], [0.0, 0.0])
    np.testing.assert_allclose(pts[1], [10.0, 0.0])
    np.testing.assert_allclose(pts[3], [0.0, 100.0])
