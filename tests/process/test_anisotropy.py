"""Anisotropic within-die correlation: validity, samplers, estimators."""

import math

import numpy as np
import pytest

from repro.core import (
    CellUsage,
    FullChipModel,
    RandomGate,
    RGCorrelation,
    expand_mixture,
)
from repro.core.estimators import (
    exact_moments,
    integral2d_variance,
    linear_variance,
    polar_variance,
)
from repro.exceptions import CorrelationError, EstimationError
from repro.process import (
    AnisotropicCorrelation,
    CholeskyFieldSampler,
    ExponentialCorrelation,
    ProcessParameter,
    TotalCorrelation,
)

BASE = ExponentialCorrelation(4e-4)
ANISO = AnisotropicCorrelation(BASE, scale_x=2.0, scale_y=0.5)


class TestModel:
    def test_unity_at_zero(self):
        assert float(ANISO.evaluate_xy(0.0, 0.0)) == pytest.approx(1.0)

    def test_direction_dependence(self):
        d = 4e-4
        along_x = float(ANISO.evaluate_xy(d, 0.0))
        along_y = float(ANISO.evaluate_xy(0.0, d))
        assert along_x > along_y  # x axis stretched -> slower decay

    def test_metric_formula(self):
        dx, dy = 3e-4, 2e-4
        metric = math.hypot(dx / 2.0, dy / 0.5)
        assert float(ANISO.evaluate_xy(dx, dy)) == pytest.approx(
            float(BASE(metric)))

    def test_not_isotropic(self):
        assert not ANISO.isotropic
        assert AnisotropicCorrelation(BASE, 1.5, 1.5).isotropic

    def test_scalar_distance_rejected_when_anisotropic(self):
        with pytest.raises(CorrelationError):
            ANISO(1e-4)

    def test_positive_semidefinite(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 2e-3, (40, 2))
        eigenvalues = np.linalg.eigvalsh(ANISO.matrix(points))
        assert eigenvalues.min() > -1e-8

    def test_total_correlation_forwards_anisotropy(self):
        param = ProcessParameter("L", 50e-9, 2e-9, 2e-9)
        total = TotalCorrelation(ANISO, param)
        assert not total.isotropic
        d = 4e-4
        assert float(total.evaluate_xy(d, 0.0)) > \
            float(total.evaluate_xy(0.0, d))

    def test_rejects_bad_scales(self):
        with pytest.raises(CorrelationError):
            AnisotropicCorrelation(BASE, 0.0, 1.0)


class TestSampler:
    def test_field_reproduces_anisotropic_correlation(self, rng):
        points = np.array([[0, 0], [4e-4, 0], [0, 4e-4]], dtype=float)
        sampler = CholeskyFieldSampler(points, ANISO)
        samples = sampler.sample(60_000, rng)
        corr = np.corrcoef(samples.T)
        assert corr[0, 1] == pytest.approx(float(ANISO.evaluate_xy(4e-4, 0)),
                                           abs=0.02)
        assert corr[0, 2] == pytest.approx(float(ANISO.evaluate_xy(0, 4e-4)),
                                           abs=0.02)
        assert corr[0, 1] > corr[0, 2]


class TestEstimators:
    @pytest.fixture(scope="class")
    def rgc(self, small_characterization):
        usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})
        rg = RandomGate(expand_mixture(small_characterization, usage, 0.5))
        tech = small_characterization.technology
        return RGCorrelation(rg, tech.length.nominal, tech.length.sigma)

    def test_linear_matches_brute_force(self, rgc):
        chip = FullChipModel(n_cells=120, width=1.2e-4, height=1e-4,
                             rows=10, cols=12)
        pos = chip.site_positions()
        delta = pos[:, None, :] - pos[None, :, :]
        cov = rgc.covariance(ANISO.evaluate_xy(delta[..., 0],
                                               delta[..., 1]))
        np.fill_diagonal(cov, rgc.same_site_covariance)
        brute = float(cov.sum())
        linear = linear_variance(10, 12, chip.pitch_x, chip.pitch_y,
                                 ANISO, rgc)
        assert linear == pytest.approx(brute, rel=1e-12)

    def test_integral_matches_linear_for_large_n(self, rgc):
        side, die = 200, 200 * 2e-6
        linear = linear_variance(side, side, die / side, die / side,
                                 ANISO, rgc)
        integral = integral2d_variance(side * side, die, die, ANISO, rgc)
        assert math.sqrt(integral) == pytest.approx(math.sqrt(linear),
                                                    rel=2e-3)

    def test_anisotropy_changes_the_answer(self, rgc):
        side, die = 100, 100 * 2e-6
        iso = linear_variance(side, side, die / side, die / side, BASE,
                              rgc)
        aniso = linear_variance(side, side, die / side, die / side, ANISO,
                                rgc)
        assert abs(aniso - iso) / iso > 0.05

    def test_exact_moments_uses_direction(self, rgc, rng):
        positions = rng.uniform(0, 1e-3, (30, 2))
        means = np.full(30, 1e-9)
        stds = np.full(30, 1e-10)
        _, std_iso = exact_moments(positions, means, stds, BASE)
        _, std_aniso = exact_moments(positions, means, stds, ANISO)
        assert std_iso != pytest.approx(std_aniso, rel=1e-3)

    def test_polar_refuses_anisotropy(self, rgc):
        with pytest.raises(EstimationError):
            polar_variance(100, 2e-3, 2e-3, ANISO, rgc)
