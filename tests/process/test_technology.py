import pytest

from repro.exceptions import ConfigurationError
from repro.process import (
    GaussianCorrelation,
    TotalCorrelation,
    synthetic_90nm,
)


class TestSynthetic90nm:
    def test_defaults(self):
        tech = synthetic_90nm()
        assert tech.vdd == 1.0
        assert tech.length.nominal == pytest.approx(50e-9)
        assert tech.length.relative_sigma == pytest.approx(0.05)
        assert tech.length.rho_floor == pytest.approx(0.5)

    def test_relative_sigma_override(self):
        tech = synthetic_90nm(relative_sigma_l=0.08)
        assert tech.length.relative_sigma == pytest.approx(0.08)

    def test_d2d_fraction_override(self):
        tech = synthetic_90nm(d2d_fraction=0.25)
        assert tech.length.rho_floor == pytest.approx(0.25)

    def test_total_correlation_combines_floor(self):
        tech = synthetic_90nm(d2d_fraction=0.5)
        total = tech.total_correlation
        assert isinstance(total, TotalCorrelation)
        assert total.rho_floor == pytest.approx(0.5)
        assert float(total(0.0)) == pytest.approx(1.0)

    def test_with_wid_only_removes_floor(self):
        tech = synthetic_90nm().with_wid_only()
        assert tech.length.rho_floor == 0.0
        assert tech.length.sigma == pytest.approx(
            synthetic_90nm().length.sigma)

    def test_with_correlation_swaps_family(self):
        tech = synthetic_90nm().with_correlation(GaussianCorrelation(2e-4))
        assert isinstance(tech.wid_correlation, GaussianCorrelation)

    def test_thermal_voltage_reasonable(self):
        tech = synthetic_90nm()
        assert 0.02 < tech.thermal_voltage < 0.03

    def test_subthreshold_swing_in_realistic_band(self):
        tech = synthetic_90nm()
        import math
        swing = (tech.subthreshold_swing_factor * tech.thermal_voltage
                 * math.log(10.0)) * 1000  # mV/decade
        assert 60 < swing < 120


class TestValidation:
    def test_rejects_bad_swing_factor(self):
        import dataclasses
        tech = synthetic_90nm()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(tech, subthreshold_swing_factor=0.5)

    def test_rejects_bad_dibl(self):
        import dataclasses
        with pytest.raises(ConfigurationError):
            dataclasses.replace(synthetic_90nm(), dibl=1.5)

    def test_rejects_non_positive_vdd(self):
        import dataclasses
        with pytest.raises(ConfigurationError):
            dataclasses.replace(synthetic_90nm(), vdd=0.0)
