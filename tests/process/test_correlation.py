import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import CorrelationError
from repro.process import (
    CompositeCorrelation,
    ExponentialCorrelation,
    GaussianCorrelation,
    LinearCorrelation,
    ProcessParameter,
    SphericalCorrelation,
    TotalCorrelation,
)

ALL_FAMILIES = [
    ExponentialCorrelation(1e-3),
    GaussianCorrelation(1e-3),
    LinearCorrelation(2e-3),
    SphericalCorrelation(2e-3),
]


@pytest.mark.parametrize("corr", ALL_FAMILIES, ids=lambda c: type(c).__name__)
class TestFamilyContract:
    def test_unity_at_zero(self, corr):
        assert float(corr(0.0)) == pytest.approx(1.0)

    def test_bounded(self, corr):
        d = np.linspace(0, 5e-3, 200)
        values = corr(d)
        assert np.all(values <= 1.0 + 1e-12)
        assert np.all(values >= -1e-12)

    def test_monotone_decreasing(self, corr):
        d = np.linspace(0, 5e-3, 200)
        values = corr(d)
        assert np.all(np.diff(values) <= 1e-12)

    def test_rejects_negative_distance(self, corr):
        with pytest.raises(CorrelationError):
            corr(-1.0)

    def test_positive_semidefinite_on_random_points(self, corr):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 3e-3, size=(40, 2))
        matrix = corr.matrix(points)
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert eigenvalues.min() > -1e-8

    def test_effective_support_is_small_beyond(self, corr):
        support = corr.effective_support(1e-4)
        assert float(corr(support * 1.001)) <= 1.2e-4


class TestSpecificShapes:
    def test_exponential_decay_rate(self):
        corr = ExponentialCorrelation(1e-3)
        assert float(corr(1e-3)) == pytest.approx(math.exp(-1.0))

    def test_gaussian_decay_rate(self):
        corr = GaussianCorrelation(1e-3)
        assert float(corr(1e-3)) == pytest.approx(math.exp(-1.0))

    def test_linear_reaches_exact_zero(self):
        corr = LinearCorrelation(2e-3)
        assert float(corr(2e-3)) == 0.0
        assert float(corr(3e-3)) == 0.0
        assert corr.support == 2e-3

    def test_spherical_compact_support(self):
        corr = SphericalCorrelation(2e-3)
        assert float(corr(2e-3)) == pytest.approx(0.0, abs=1e-15)
        assert float(corr(5e-3)) == 0.0

    @pytest.mark.parametrize("ctor", [ExponentialCorrelation,
                                      GaussianCorrelation,
                                      LinearCorrelation,
                                      SphericalCorrelation])
    def test_rejects_non_positive_scale(self, ctor):
        with pytest.raises(CorrelationError):
            ctor(0.0)


class TestComposite:
    def test_convex_combination(self):
        comp = CompositeCorrelation(
            [ExponentialCorrelation(1e-3), LinearCorrelation(2e-3)],
            [0.3, 0.7])
        d = np.array([0.0, 5e-4, 1e-3])
        expected = (0.3 * ExponentialCorrelation(1e-3)(d)
                    + 0.7 * LinearCorrelation(2e-3)(d))
        np.testing.assert_allclose(comp(d), expected)

    def test_rejects_bad_weights(self):
        with pytest.raises(CorrelationError):
            CompositeCorrelation([ExponentialCorrelation(1e-3)], [0.5])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(CorrelationError):
            CompositeCorrelation([ExponentialCorrelation(1e-3)], [0.5, 0.5])

    def test_support_is_max_of_components(self):
        comp = CompositeCorrelation(
            [LinearCorrelation(1e-3), LinearCorrelation(3e-3)], [0.5, 0.5])
        assert comp.support == 3e-3


class TestTotalCorrelation:
    def make(self, d2d=3e-9, wid=4e-9):
        param = ProcessParameter("L", 50e-9, d2d, wid)
        return TotalCorrelation(ExponentialCorrelation(1e-3), param)

    def test_floor_at_infinity(self):
        total = self.make()
        assert float(total(1.0)) == pytest.approx(total.rho_floor, abs=1e-6)

    def test_unity_at_zero(self):
        assert float(self.make()(0.0)) == pytest.approx(1.0)

    def test_normalization_formula(self):
        # rho(d) = (s_dd^2 + s_wd^2 * rho_wid(d)) / (s_dd^2 + s_wd^2)
        total = self.make(d2d=3e-9, wid=4e-9)
        d = 7e-4
        wid_rho = math.exp(-d / 1e-3)
        expected = (9 + 16 * wid_rho) / 25
        assert float(total(d)) == pytest.approx(expected)

    def test_decaying_part_vanishes_at_infinity(self):
        total = self.make()
        decaying = total.decaying_part()
        assert float(decaying(0.0)) == pytest.approx(1 - total.rho_floor)
        assert float(decaying(1.0)) == pytest.approx(0.0, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(length=st.floats(min_value=1e-5, max_value=1e-2),
       d1=st.floats(min_value=0, max_value=1e-2),
       d2=st.floats(min_value=0, max_value=1e-2))
def test_exponential_is_multiplicative_in_distance(length, d1, d2):
    """exp(-(d1+d2)/l) == exp(-d1/l)*exp(-d2/l) — the Markov property."""
    corr = ExponentialCorrelation(length)
    assert float(corr(d1 + d2)) == pytest.approx(
        float(corr(d1)) * float(corr(d2)), rel=1e-9)
