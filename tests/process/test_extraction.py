import numpy as np
import pytest

from repro.exceptions import CorrelationError
from repro.process import (
    ExponentialCorrelation,
    GaussianCorrelation,
    extract_correlation,
)


def noisy_measurements(corr, rng, noise=0.02, n=25):
    distances = np.linspace(5e-5, 3e-3, n)
    clean = corr(distances)
    return distances, np.clip(clean + rng.normal(0, noise, n), -1, 1)


class TestExtractCorrelation:
    def test_recovers_exponential_length(self, rng):
        truth = ExponentialCorrelation(8e-4)
        d, r = noisy_measurements(truth, rng)
        fit = extract_correlation(d, r, family="exponential")
        assert fit.parameter == pytest.approx(8e-4, rel=0.15)
        assert fit.rmse < 0.05

    def test_recovers_gaussian_length(self, rng):
        truth = GaussianCorrelation(1.2e-3)
        d, r = noisy_measurements(truth, rng)
        fit = extract_correlation(d, r, family="gaussian")
        assert fit.parameter == pytest.approx(1.2e-3, rel=0.15)

    def test_family_selection_prefers_the_generator(self, rng):
        truth = GaussianCorrelation(1.0e-3)
        d, r = noisy_measurements(truth, rng, noise=0.01)
        fit = extract_correlation(d, r)
        assert fit.family == "gaussian"

    def test_fitted_model_is_valid_correlation(self, rng):
        d, r = noisy_measurements(ExponentialCorrelation(6e-4), rng,
                                  noise=0.1)
        fit = extract_correlation(d, r)
        assert float(fit.model(0.0)) == pytest.approx(1.0)
        values = fit.model(np.linspace(0, 5e-3, 100))
        assert np.all(values >= -1e-12) and np.all(values <= 1 + 1e-12)

    def test_rejects_unknown_family(self):
        with pytest.raises(CorrelationError):
            extract_correlation([1e-4, 2e-4, 3e-4], [0.9, 0.8, 0.7],
                                family="matern")

    def test_rejects_short_input(self):
        with pytest.raises(CorrelationError):
            extract_correlation([1e-4, 2e-4], [0.9, 0.8])

    def test_rejects_non_positive_distances(self):
        with pytest.raises(CorrelationError):
            extract_correlation([0.0, 1e-4, 2e-4], [1.0, 0.9, 0.8])

    def test_rejects_out_of_range_correlations(self):
        with pytest.raises(CorrelationError):
            extract_correlation([1e-4, 2e-4, 3e-4], [1.5, 0.9, 0.8])
