import pytest

from repro.core import CellUsage
from repro.exceptions import ConfigurationError
from repro.process import synthetic_90nm
from repro.process.corners import (
    ProcessCorner,
    corner_report,
    corner_technology,
    leakage_corners,
)


class TestCornerTechnology:
    def test_ff_shortens_channel_and_drops_vt(self, technology):
        ff = corner_technology(technology, leakage_corners()[0])
        assert ff.length.nominal < technology.length.nominal
        assert ff.vt.nominal_n < technology.vt.nominal_n
        assert ff.temperature > technology.temperature

    def test_d2d_is_pinned(self, technology):
        ff = corner_technology(technology, leakage_corners()[0])
        assert ff.length.sigma_d2d == 0.0
        assert ff.length.sigma_wid == technology.length.sigma_wid
        assert ff.length.rho_floor == 0.0

    def test_tt_preserves_nominal(self, technology):
        tt = corner_technology(technology, leakage_corners()[1])
        assert tt.length.nominal == pytest.approx(
            technology.length.nominal)
        assert tt.vt.nominal_n == pytest.approx(technology.vt.nominal_n)

    def test_absurd_corner_rejected(self, technology):
        crazy = ProcessCorner("X", l_d2d_sigmas=-1e6)
        with pytest.raises(ConfigurationError):
            corner_technology(technology, crazy)

    def test_wid_free_technology_rejected(self, technology):
        pinned = technology.with_length_split(1.0)  # all D2D
        with pytest.raises(ConfigurationError):
            corner_technology(pinned, leakage_corners()[0])


class TestCornerReport:
    @pytest.fixture(scope="class")
    def report(self, library, technology):
        usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})
        return corner_report(library, technology, usage, n_cells=2000,
                             width=2e-4, height=2e-4, method="linear")

    def test_ordering(self, report):
        by_name = {corner.name: estimate for corner, estimate in report}
        # FF and SS are both quoted hot; the fast process must out-leak
        # the slow one. Room-temperature TT is the lowest of the three
        # (the hot slow corner still out-leaks it — temperature wins).
        assert by_name["FF"].mean > by_name["SS"].mean
        assert by_name["SS"].mean > by_name["TT"].mean
        assert by_name["FF"].mean / by_name["SS"].mean > 2

    def test_ff_tt_ratio_is_large(self, report):
        """Hot fast corner vs room typical: an order of magnitude or
        more — the familiar leakage-corner spread."""
        by_name = {corner.name: estimate for corner, estimate in report}
        assert by_name["FF"].mean / by_name["TT"].mean > 5

    def test_within_corner_spread_is_wid_only(self, report):
        """Corners pin D2D: the residual CV must be below the full
        (D2D + WID) CV of the typical estimate."""
        by_name = {corner.name: estimate for corner, estimate in report}
        assert by_name["TT"].cv < 0.2
        for _, estimate in report:
            assert estimate.std > 0

    def test_custom_corner_list(self, library, technology):
        usage = CellUsage({"INV_X1": 1.0})
        corners = [ProcessCorner("ONLY", l_d2d_sigmas=1.0)]
        report = corner_report(library, technology, usage, 500, 1e-4,
                               1e-4, corners=corners, method="linear")
        assert len(report) == 1
        assert report[0][0].name == "ONLY"
