import pytest

from repro.analysis.temperature import temperature_sweep
from repro.core import CellUsage
from repro.devices import DeviceModel, NMOS
from repro.exceptions import ConfigurationError, EstimationError
from repro.process import synthetic_90nm


class TestAtTemperature:
    def test_thermal_voltage_scales(self, technology):
        hot = technology.at_temperature(398.15)
        assert hot.thermal_voltage > technology.thermal_voltage

    def test_thresholds_drop_when_heated(self, technology):
        hot = technology.at_temperature(398.15)
        expected_drop = technology.vt_temp_coefficient * 100.0
        assert hot.vt.nominal_n == pytest.approx(
            technology.vt.nominal_n - expected_drop)

    def test_round_trip(self, technology):
        back = technology.at_temperature(398.15).at_temperature(
            technology.temperature)
        assert back.vt.nominal_n == pytest.approx(technology.vt.nominal_n)

    def test_rejects_absurd_temperature(self, technology):
        with pytest.raises(ConfigurationError):
            technology.at_temperature(0.0)
        with pytest.raises(ConfigurationError):
            technology.at_temperature(600.0)  # Vt driven through zero

    def test_device_off_current_rises_steeply(self, technology):
        cold = DeviceModel(technology)
        hot = DeviceModel(technology.at_temperature(398.15))
        l_nom = technology.length.nominal
        ratio = float(hot.off_current(NMOS, l_nom, technology.min_width)) \
            / float(cold.off_current(NMOS, l_nom, technology.min_width))
        # 25C -> 125C typically buys one to two decades of leakage.
        assert 5 < ratio < 300


class TestTemperatureSweep:
    def test_monotone_increase(self, library, technology):
        usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})
        points = temperature_sweep(
            library, technology, usage, n_cells=2000, width=2e-4,
            height=2e-4, temperatures=[298.15, 348.15, 398.15])
        means = [p.estimate.mean for p in points]
        assert means[0] < means[1] < means[2]
        assert means[2] / means[0] > 5

    def test_celsius_helper(self, library, technology):
        usage = CellUsage({"INV_X1": 1.0})
        (point,) = temperature_sweep(
            library, technology, usage, 100, 1e-4, 1e-4,
            temperatures=[373.15])
        assert point.celsius == pytest.approx(100.0)

    def test_empty_sweep_rejected(self, library, technology):
        with pytest.raises(EstimationError):
            temperature_sweep(library, technology,
                              CellUsage({"INV_X1": 1.0}), 10, 1e-5, 1e-5,
                              temperatures=[])
