import math

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.process import ProcessParameter, VtSpec


def make_param(d2d=1.5e-9, wid=2.0e-9):
    return ProcessParameter(name="L", nominal=50e-9,
                            sigma_d2d=d2d, sigma_wid=wid)


class TestProcessParameter:
    def test_total_variance_is_sum_of_components(self):
        p = make_param()
        assert p.variance == pytest.approx(1.5e-9 ** 2 + 2.0e-9 ** 2)
        assert p.sigma == pytest.approx(math.sqrt(p.variance))

    def test_rho_floor(self):
        p = make_param(d2d=3e-9, wid=4e-9)
        assert p.rho_floor == pytest.approx(9.0 / 25.0)

    def test_rho_floor_extremes(self):
        assert make_param(d2d=0.0, wid=1e-9).rho_floor == 0.0
        assert make_param(d2d=1e-9, wid=0.0).rho_floor == 1.0

    def test_relative_sigma(self):
        p = make_param(d2d=3e-9, wid=4e-9)
        assert p.relative_sigma == pytest.approx(5e-9 / 50e-9)

    def test_rejects_non_positive_nominal(self):
        with pytest.raises(ConfigurationError):
            ProcessParameter("L", 0.0, 1e-9, 1e-9)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            ProcessParameter("L", 50e-9, -1e-9, 1e-9)

    def test_rejects_all_zero_variation(self):
        with pytest.raises(ConfigurationError):
            ProcessParameter("L", 50e-9, 0.0, 0.0)

    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_with_split_preserves_total_variance(self, fraction):
        p = make_param()
        q = p.with_split(fraction)
        assert q.variance == pytest.approx(p.variance, rel=1e-12)
        assert q.rho_floor == pytest.approx(fraction, abs=1e-12)

    def test_with_split_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            make_param().with_split(1.5)


class TestVtSpec:
    def test_valid(self):
        spec = VtSpec(nominal_n=0.26, nominal_p=0.28, sigma=0.018)
        assert spec.sigma == 0.018

    def test_rejects_non_positive_nominal(self):
        with pytest.raises(ConfigurationError):
            VtSpec(nominal_n=0.0, nominal_p=0.28, sigma=0.018)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            VtSpec(nominal_n=0.26, nominal_p=0.28, sigma=-0.01)
