"""Golden regression suite: canonical scenarios pinned to stored JSON.

Each test computes one end-to-end scenario — an estimator run, a sweep,
a characterization slice, the Random-Gate statistics — and compares the
resulting document against ``tests/goldens/<name>.json``. The documents
are pure model outputs (no timings, no environment), so any diff is a
*numeric behavior change* that must be either a bug or an intentional,
explained update.

To refresh after an intentional change::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens
    git diff tests/goldens/   # review every changed digit!

Floats are compared at rel=1e-9: bit-exact on the machine that wrote
the golden, while tolerating last-ulp differences across BLAS builds.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.core import CellUsage
from repro.core.api import FullChipLeakageEstimator, estimate_sweep
from repro.core.sweep import cell_count_axis, correlation_length_axis

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: Relative tolerance for float comparison (see module docstring).
REL_TOL = 1e-9


def _compare(got, want, path=""):
    """Recursive comparison with float tolerance; returns diff strings."""
    diffs = []
    if isinstance(want, dict):
        if not isinstance(got, dict):
            return [f"{path}: expected object, got {type(got).__name__}"]
        for key in sorted(set(want) | set(got)):
            if key not in got:
                diffs.append(f"{path}.{key}: missing from result")
            elif key not in want:
                diffs.append(f"{path}.{key}: not in golden")
            else:
                diffs.extend(_compare(got[key], want[key], f"{path}.{key}"))
    elif isinstance(want, list):
        if not isinstance(got, list) or len(got) != len(want):
            return [f"{path}: list shape differs "
                    f"({len(got) if isinstance(got, list) else got!r} "
                    f"vs {len(want)})"]
        for index, (g, w) in enumerate(zip(got, want)):
            diffs.extend(_compare(g, w, f"{path}[{index}]"))
    elif isinstance(want, float) and isinstance(got, (int, float)):
        if not math.isclose(float(got), want, rel_tol=REL_TOL,
                            abs_tol=0.0):
            diffs.append(f"{path}: {got!r} != golden {want!r}")
    elif got != want:
        diffs.append(f"{path}: {got!r} != golden {want!r}")
    return diffs


def check_golden(name, document, update):
    """Compare ``document`` to the stored golden (or rewrite it)."""
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    if update:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        pytest.skip(f"golden {name} updated")
    if not os.path.exists(path):
        pytest.fail(
            f"golden {name} missing; run with --update-goldens to create "
            f"it, then review and commit {os.path.relpath(path)}")
    with open(path, encoding="utf-8") as handle:
        want = json.load(handle)
    diffs = _compare(document, want)
    assert not diffs, (
        f"result diverged from golden {name} "
        f"(if intentional: --update-goldens and review the diff):\n  "
        + "\n  ".join(diffs[:20]))


@pytest.fixture(scope="module")
def estimator(small_characterization):
    usage = CellUsage.uniform(small_characterization.cell_names)
    return FullChipLeakageEstimator(
        small_characterization, usage, 10_000, 1e-3, 1e-3)


class TestEstimatorGoldens:
    @pytest.mark.parametrize("method", ["linear", "integral2d"])
    def test_closed_form_methods(self, estimator, method, update_goldens):
        estimate = estimator.estimate(method)
        check_golden(f"estimate_{method}", estimate.to_dict(),
                     update_goldens)

    def test_polar(self, small_characterization, update_goldens):
        # The polar approximation needs the correlation support to fit
        # inside the die, hence the larger geometry.
        usage = CellUsage.uniform(small_characterization.cell_names)
        estimator = FullChipLeakageEstimator(
            small_characterization, usage, 250_000, 5e-3, 5e-3)
        estimate = estimator.estimate("polar")
        check_golden("estimate_polar", estimate.to_dict(), update_goldens)

    def test_exact_lagsum(self, small_characterization, update_goldens):
        usage = CellUsage.uniform(small_characterization.cell_names)
        estimator = FullChipLeakageEstimator(
            small_characterization, usage, 1024, 0.5e-3, 0.5e-3,
            simplified_correlation=True)
        estimate = estimator.estimate("exact")
        check_golden("estimate_exact", estimate.to_dict(), update_goldens)


class TestSweepGolden:
    def test_linear_sweep(self, small_characterization, update_goldens):
        technology = small_characterization.technology
        usage = CellUsage.uniform(small_characterization.cell_names)
        sweep = estimate_sweep(
            small_characterization, usage, 4096, 1e-3, 1e-3,
            axes=[
                correlation_length_axis([0.3e-3, 0.6e-3], technology),
                cell_count_axis([4096, 16384]),
            ],
            method="linear")
        document = {
            "axes": list(sweep.axes),
            "shape": list(sweep.shape),
            "values": [list(map(str, values)) for values in sweep.values],
            "points": [{"mean": e.mean, "std": e.std, "cv": e.cv}
                       for e in sweep],
        }
        check_golden("sweep_linear", document, update_goldens)


class TestThermalGoldens:
    """Coupled power-thermal scenarios (docs/THERMAL.md).

    The full estimate document is pinned — moments, the Vt multiplier,
    and every convergence diagnostic (iterations, residual trajectory,
    feedback gain) — so any drift in the fixed point itself shows up,
    not just in the packaged moments.
    """

    def test_coupled_estimate(self, small_characterization,
                              update_goldens):
        from repro.thermal import ThermalConfig

        usage = CellUsage.uniform(small_characterization.cell_names)
        estimator = FullChipLeakageEstimator(
            small_characterization, usage, 4096, 1e-3, 1e-3,
            simplified_correlation=True)
        estimate = estimator.estimate(
            "linear",
            thermal=ThermalConfig(package_resistance=40.0,
                                  spreading_resistance=1e5,
                                  spreading_length=0.3e-3,
                                  power_scale=200.0))
        assert estimate.details["thermal"]["converged"]
        check_golden("thermal_coupled", estimate.to_dict(),
                     update_goldens)

    def test_thermal_sweep(self, small_characterization, update_goldens):
        from repro.core.sweep import (
            ambient_temperature_axis,
            power_scale_axis,
        )
        from repro.thermal import ThermalConfig

        usage = CellUsage.uniform(small_characterization.cell_names)
        sweep = estimate_sweep(
            small_characterization, usage, 2048, 1e-3, 1e-3,
            axes=[
                ambient_temperature_axis([313.15, 338.15]),
                power_scale_axis([50.0, 200.0]),
            ],
            method="linear", simplified_correlation=True,
            thermal=ThermalConfig(package_resistance=40.0))
        document = {
            "axes": list(sweep.axes),
            "shape": list(sweep.shape),
            "values": [list(map(str, values)) for values in sweep.values],
            "points": [
                {
                    "mean": e.mean,
                    "std": e.std,
                    "ambient": e.details["thermal"]["ambient"],
                    "iterations": e.details["thermal"]["iterations"],
                    "feedback_gain":
                        e.details["thermal"]["feedback_gain"],
                }
                for e in sweep
            ],
        }
        check_golden("sweep_thermal", document, update_goldens)


class TestModelGoldens:
    def test_characterized_moments(self, small_characterization,
                                   update_goldens):
        document = {}
        for name in small_characterization.cell_names:
            cell = small_characterization[name]
            document[name] = [
                {
                    "fit": {"a": state.fit.a, "b": state.fit.b,
                            "c": state.fit.c},
                    "mean": state.mean,
                    "std": state.std,
                }
                for state in cell.states
            ]
        check_golden("characterization_moments", document, update_goldens)

    def test_random_gate_statistics(self, small_characterization,
                                    update_goldens):
        from repro.core import RandomGate, expand_mixture

        usage = CellUsage.uniform(small_characterization.cell_names)
        rg = RandomGate(expand_mixture(small_characterization, usage, 0.5))
        document = {
            "mean": rg.mean,
            "std": rg.std,
            "mean_of_stds": rg.mean_of_stds,
        }
        check_golden("random_gate", document, update_goldens)
