"""Unit tests for the typed edit model (`repro.delta.edits`).

The engine tests exercise edits end-to-end; this file pins the edit
model itself — every share-specifier form of ``CellSwapEdit``, the
validation contract each edit enforces at construction, and the
``to_dict``/``edit_from_dict`` wire round trip the service and CLI
depend on.
"""

import pytest

from repro.delta.edits import (
    CellSwapEdit,
    FloorplanResizeEdit,
    UsageHistogramEdit,
    edit_from_dict,
    edits_from_documents,
)
from repro.exceptions import ConfigurationError
from repro.service.whatif import WhatIfRequest


class TestCellSwapValidation:
    def test_same_cell_is_rejected(self):
        with pytest.raises(ConfigurationError, match="change the cell type"):
            CellSwapEdit("INV_X1", "INV_X1", fraction=0.1)

    def test_multiple_specifiers_are_rejected(self):
        with pytest.raises(ConfigurationError, match="at most one"):
            CellSwapEdit("INV_X1", "NOR2_X1", fraction=0.1, count=5)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_fraction_out_of_range(self, fraction):
        with pytest.raises(ConfigurationError, match="fraction"):
            CellSwapEdit("INV_X1", "NOR2_X1", fraction=fraction)

    def test_nonpositive_count(self):
        with pytest.raises(ConfigurationError, match="count"):
            CellSwapEdit("INV_X1", "NOR2_X1", count=0)

    @pytest.mark.parametrize("region", [
        (0.5, 0.0, 0.5, 1.0),     # zero width
        (0.2, 0.2, 0.1, 0.8),     # x0 > x1
        (-0.1, 0.0, 0.5, 0.5),    # out of the unit square
        (0.0, 0.0, 0.5, 1.5),
    ])
    def test_bad_region(self, region):
        with pytest.raises(ConfigurationError, match="region"):
            CellSwapEdit("INV_X1", "NOR2_X1", region=region)

    def test_empty_cell_ids(self):
        with pytest.raises(ConfigurationError, match="cell_ids"):
            CellSwapEdit("INV_X1", "NOR2_X1", cell_ids=())


class TestCellSwapSpecifiers:
    """Every share-specifier form reduces to a moved usage fraction."""

    def test_fraction_form(self):
        edit = CellSwapEdit("INV_X1", "NOR2_X1", fraction=0.125)
        assert edit.moved_fraction(0.5, 1000) == 0.125

    def test_count_form(self):
        edit = CellSwapEdit("INV_X1", "NOR2_X1", count=100)
        assert edit.moved_fraction(0.5, 1000) == pytest.approx(0.1)

    def test_cell_ids_form_counts_ids(self):
        edit = CellSwapEdit("INV_X1", "NOR2_X1", cell_ids=(3, 17, 99))
        assert edit.moved_fraction(0.5, 1000) == pytest.approx(3 / 1000)

    def test_region_form_scales_by_area(self):
        # A quarter-die region moves a quarter of the from_cell mass.
        edit = CellSwapEdit("INV_X1", "NOR2_X1",
                            region=(0.0, 0.0, 0.5, 0.5))
        assert edit.moved_fraction(0.4, 1000) == pytest.approx(0.1)

    def test_no_specifier_moves_everything(self):
        edit = CellSwapEdit("INV_X1", "NOR2_X1")
        assert edit.moved_fraction(0.37, 1000) == 0.37

    def test_moved_share_is_clipped_to_presence(self):
        edit = CellSwapEdit("INV_X1", "NOR2_X1", fraction=0.9)
        assert edit.moved_fraction(0.25, 1000) == 0.25

    def test_apply_drains_source_entirely(self):
        fractions = {"INV_X1": 0.3, "NAND2_X1": 0.7}
        CellSwapEdit("INV_X1", "NOR2_X1").apply(fractions, 1000)
        assert "INV_X1" not in fractions
        assert fractions["NOR2_X1"] == pytest.approx(0.3)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_apply_without_source_is_an_error(self):
        with pytest.raises(ConfigurationError, match="no usage"):
            CellSwapEdit("XOR2_X1", "NOR2_X1", fraction=0.1).apply(
                {"INV_X1": 1.0}, 1000)


class TestUsageHistogramEdit:
    def test_empty_is_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            UsageHistogramEdit({})

    def test_negative_fraction_is_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            UsageHistogramEdit({"INV_X1": -0.5, "NAND2_X1": 1.5})

    def test_normalizes_and_drops_zero_mass(self):
        edit = UsageHistogramEdit({"INV_X1": 2.0, "NAND2_X1": 2.0,
                                   "NOR2_X1": 0.0})
        assert dict(edit.fractions) == {"INV_X1": 0.5, "NAND2_X1": 0.5}

    def test_apply_replaces_outright(self):
        fractions = {"XOR2_X1": 1.0}
        UsageHistogramEdit({"INV_X1": 1.0}).apply(fractions, 1000)
        assert fractions == {"INV_X1": 1.0}


class TestFloorplanResizeEdit:
    def test_no_dimension_is_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            FloorplanResizeEdit()

    def test_nonpositive_values_are_rejected(self):
        with pytest.raises(ConfigurationError, match="n_cells"):
            FloorplanResizeEdit(n_cells=0)
        with pytest.raises(ConfigurationError, match="width"):
            FloorplanResizeEdit(width=-1e-3)
        with pytest.raises(ConfigurationError, match="height"):
            FloorplanResizeEdit(n_cells=100, height=0.0)

    def test_partial_to_dict_omits_kept_values(self):
        assert FloorplanResizeEdit(width=2e-3).to_dict() == {
            "type": "floorplan_resize", "width": 2e-3}


class TestWireRoundTrip:
    @pytest.mark.parametrize("edit", [
        CellSwapEdit("INV_X1", "NOR2_X1", fraction=0.25),
        CellSwapEdit("INV_X1", "NOR2_X1", count=42),
        CellSwapEdit("INV_X1", "NOR2_X1", region=(0.1, 0.2, 0.6, 0.9)),
        CellSwapEdit("INV_X1", "NOR2_X1", cell_ids=(1, 2, 3)),
        CellSwapEdit("INV_X1", "NOR2_X1"),
        UsageHistogramEdit({"INV_X1": 0.5, "NAND2_X1": 0.5}),
        FloorplanResizeEdit(n_cells=2048, width=1e-3, height=2e-3),
    ])
    def test_to_dict_from_dict_is_identity(self, edit):
        assert edit_from_dict(edit.to_dict()) == edit

    def test_non_mapping_document(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            edit_from_dict("cell_swap")

    def test_unknown_type(self):
        with pytest.raises(ConfigurationError, match="unknown edit type"):
            edit_from_dict({"type": "teleport"})

    def test_unknown_field_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="invalid 'cell_swap'"):
            edit_from_dict({"type": "cell_swap", "from_cell": "A",
                            "to_cell": "B", "speed": 11})

    def test_empty_document_list(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            edits_from_documents([])


class TestWhatIfRequestValidation:
    EDIT = {"type": "cell_swap", "from_cell": "INV_X1",
            "to_cell": "NOR2_X1", "fraction": 0.1}

    def test_bare_single_edit_is_wrapped(self):
        request = WhatIfRequest(base="a" * 64, edits=self.EDIT)
        assert len(request.edits) == 1

    def test_typed_edit_objects_are_canonicalized(self):
        typed = CellSwapEdit("INV_X1", "NOR2_X1", fraction=0.1)
        request = WhatIfRequest(base="a" * 64, edits=(typed,))
        assert request.edits == (typed.to_dict(),)

    def test_base_hash_is_case_folded(self):
        request = WhatIfRequest(base="A" * 64, edits=(self.EDIT,))
        assert request.base == "a" * 64

    def test_non_hex_base_is_rejected(self):
        with pytest.raises(ConfigurationError, match="content hash"):
            WhatIfRequest(base="not-a-hash", edits=(self.EDIT,))

    def test_no_edits_is_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            WhatIfRequest(base="a" * 64, edits=())

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            WhatIfRequest.from_dict({"base": "a" * 64,
                                     "edits": [self.EDIT],
                                     "shard": 3})

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ConfigurationError, match="missing"):
            WhatIfRequest.from_dict({"edits": [self.EDIT]})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            WhatIfRequest.from_dict([self.EDIT])

    def test_key_excludes_priority_and_trace(self):
        plain = WhatIfRequest(base="a" * 64, edits=(self.EDIT,))
        tuned = WhatIfRequest(base="a" * 64, edits=(self.EDIT,),
                              priority=7, trace=True)
        assert plain.key() == tuned.key()
