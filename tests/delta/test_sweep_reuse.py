"""Sweep usage-axis reuse through the delta cross-moment table.

``core.sweep._build_components`` promises (in its docstring) that
usage-only points reusing the cached
:class:`repro.delta.moments.CrossMomentTable` stay **bit-identical**
to a fresh per-point ``RGComponents.build`` — the contraction
replicates the numpy backend's terminal operations verbatim. These
tests pin that promise: a usage-axis sweep must (a) actually take the
reuse path after the first point, and (b) produce means/stds equal —
``==``, not approx — to one-shot estimator runs of the same points.
"""

from __future__ import annotations

import pytest

from repro.core import CellUsage
from repro.core.api import FullChipLeakageEstimator, estimate_sweep
from repro.core.sweep import signal_probability_axis, usage_axis

N_CELLS = 4096
WIDTH = 1e-3
HEIGHT = 1e-3


def _usages(names):
    """Three mixes over the same support (same component labels)."""
    n = len(names)
    uniform = CellUsage.uniform(names)
    tilted = CellUsage({name: (2.0 if i == 0 else 1.0) / (n + 1.0)
                        for i, name in enumerate(names)})
    skewed = CellUsage({name: (i + 1.0) / (n * (n + 1.0) / 2.0)
                        for i, name in enumerate(names)})
    return [uniform, tilted, skewed]


class TestUsageAxisReuse:
    @pytest.fixture(scope="class")
    def sweep(self, small_characterization):
        names = small_characterization.cell_names
        return estimate_sweep(
            small_characterization, CellUsage.uniform(names),
            N_CELLS, WIDTH, HEIGHT,
            axes=[usage_axis(_usages(names))],
            method="linear")

    def test_reuse_path_taken(self, sweep):
        assert sweep.stats.get("cross_tables", 0) >= 1
        # First point seeds the table key, second pays the build; every
        # later usage-only point contracts the cached tensor.
        assert sweep.stats.get("delta_rg_reuses", 0) >= 2

    def test_points_bit_identical_to_fresh(self, sweep,
                                           small_characterization):
        names = small_characterization.cell_names
        for usage, swept in zip(_usages(names), sweep):
            fresh = FullChipLeakageEstimator(
                small_characterization, usage,
                N_CELLS, WIDTH, HEIGHT).estimate("linear")
            assert swept.mean == fresh.mean
            assert swept.std == fresh.std


class TestSignalProbabilityAxisReuse:
    def test_p_axis_points_bit_identical(self, small_characterization):
        """p changes the mixture weights over fixed labels — the other
        usage-only shape the table accelerates."""
        names = small_characterization.cell_names
        usage = CellUsage.uniform(names)
        ps = [0.3, 0.5, 0.7]
        sweep = estimate_sweep(
            small_characterization, usage, N_CELLS, WIDTH, HEIGHT,
            axes=[signal_probability_axis(ps)],
            method="linear")
        assert sweep.stats.get("delta_rg_reuses", 0) >= 2
        for p, swept in zip(ps, sweep):
            fresh = FullChipLeakageEstimator(
                small_characterization, usage, N_CELLS, WIDTH, HEIGHT,
                signal_probability=p).estimate("linear")
            assert swept.mean == fresh.mean
            assert swept.std == fresh.std
