"""Delta-engine correctness: incremental estimates vs fresh runs.

The contract under test (``repro.delta.engine`` docstring): for any
sequence of edits, ``estimate_delta(base, edits)`` matches a fresh
``estimate("linear")`` of the edited scenario within
``DELTA_MEAN_RTOL`` / ``DELTA_STD_RTOL``, and a no-effective-change
call returns the base's own estimate bit-identically. The property
test drives randomized edit sequences; the golden pins one canonical
cell-swap ECO so numeric drift in the delta path is caught the same
way estimator drift is.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CellUsage
from repro.core.api import FullChipLeakageEstimator
from repro.delta import (
    DELTA_MEAN_RTOL,
    DELTA_STD_RTOL,
    BaseEstimate,
    CellSwapEdit,
    DeltaProbe,
    FloorplanResizeEdit,
    UsageHistogramEdit,
    estimate_delta,
)
from tests.test_goldens import check_golden

N_CELLS = 4096
WIDTH = 1e-3
HEIGHT = 1e-3


@pytest.fixture(scope="module")
def base(small_characterization):
    usage = CellUsage.uniform(small_characterization.cell_names)
    return BaseEstimate.build(small_characterization, usage,
                              N_CELLS, WIDTH, HEIGHT)


def fold_reference(base, edits):
    """Reference fold: the documented edit semantics, applied in order."""
    fractions = dict(base.fractions)
    n_cells = base.chip.n_cells
    width, height = base.chip.width, base.chip.height
    for edit in edits:
        if isinstance(edit, FloorplanResizeEdit):
            n_cells = edit.n_cells if edit.n_cells is not None else n_cells
            width = edit.width if edit.width is not None else width
            height = edit.height if edit.height is not None else height
        else:
            edit.apply(fractions, n_cells)
    return fractions, n_cells, width, height


def fresh_estimate(characterization, fractions, n_cells, width, height,
                   signal_probability):
    estimator = FullChipLeakageEstimator(
        characterization, CellUsage(fractions), n_cells, width, height,
        signal_probability=signal_probability)
    return estimator.estimate("linear")


def assert_close(delta, fresh):
    assert math.isclose(delta.mean, fresh.mean, rel_tol=DELTA_MEAN_RTOL)
    assert math.isclose(delta.std, fresh.std, rel_tol=DELTA_STD_RTOL)


class TestNoEffectiveChange:
    def test_identity_histogram_returns_base_bit_identically(self, base):
        result = estimate_delta(base,
                                UsageHistogramEdit(dict(base.fractions)))
        assert result.mean == base.estimate.mean
        assert result.std == base.estimate.std
        ledger = result.details["delta"]
        assert ledger["support"] == 0
        assert ledger["moments_recomputed"] == 0
        assert ledger["lags_recomputed"] == 0

    def test_revert_after_swap_returns_base(self, base):
        edits = [
            CellSwapEdit(from_cell="INV_X1", to_cell="NAND2_X1",
                         fraction=0.05),
            UsageHistogramEdit(dict(base.fractions)),
        ]
        result = estimate_delta(base, edits)
        assert result.mean == base.estimate.mean
        assert result.std == base.estimate.std

    def test_base_never_mutated(self, base):
        fractions_before = dict(base.fractions)
        alphas_before = base.alphas.copy()
        estimate_delta(base, [
            CellSwapEdit(from_cell="INV_X1", to_cell="XOR2_X1",
                         fraction=0.2),
            FloorplanResizeEdit(n_cells=2048),
        ])
        assert base.fractions == fractions_before
        np.testing.assert_array_equal(base.alphas, alphas_before)


class TestAgainstFresh:
    def test_cell_swap_matches_fresh(self, base, small_characterization):
        edit = CellSwapEdit(from_cell="INV_X1", to_cell="NOR2_X1",
                            fraction=0.01)
        delta = estimate_delta(base, edit)
        fractions, n, w, h = fold_reference(base, [edit])
        fresh = fresh_estimate(small_characterization, fractions, n, w, h,
                               base.signal_probability)
        assert_close(delta, fresh)
        ledger = delta.details["delta"]
        assert ledger["usage_changed"]
        assert not ledger["geometry_changed"]
        assert 0 < ledger["moments_recomputed"] < base.n_components

    def test_floorplan_resize_matches_fresh(self, base,
                                            small_characterization):
        edit = FloorplanResizeEdit(n_cells=6000, width=1.2e-3,
                                   height=1.1e-3)
        delta = estimate_delta(base, edit)
        fractions, n, w, h = fold_reference(base, [edit])
        fresh = fresh_estimate(small_characterization, fractions, n, w, h,
                               base.signal_probability)
        assert_close(delta, fresh)
        assert delta.details["delta"]["geometry_changed"]

    def test_wire_form_bit_identical_to_typed(self, base):
        typed = [CellSwapEdit(from_cell="NAND2_X1", to_cell="DFF_X1",
                              fraction=0.03),
                 FloorplanResizeEdit(n_cells=5000)]
        from_typed = estimate_delta(base, typed)
        from_wire = estimate_delta(base, [edit.to_dict() for edit in typed])
        assert from_wire.mean == from_typed.mean
        assert from_wire.std == from_typed.std

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_edit_sequences_match_fresh(self, base,
                                               small_characterization,
                                               seed):
        """Property: any folded edit sequence stays within tolerance."""
        rng = np.random.default_rng(20070604 + seed)
        names = list(base.fractions)
        edits = []
        for _ in range(int(rng.integers(1, 5))):
            kind = rng.integers(0, 3)
            if kind == 0:
                src, dst = rng.choice(names, size=2, replace=False)
                edits.append(CellSwapEdit(
                    from_cell=str(src), to_cell=str(dst),
                    fraction=float(rng.uniform(0.001, 0.2))))
            elif kind == 1:
                weights = rng.uniform(0.5, 2.0, size=len(names))
                weights /= weights.sum()
                edits.append(UsageHistogramEdit(
                    dict(zip(names, weights.tolist()))))
            else:
                edits.append(FloorplanResizeEdit(
                    n_cells=int(rng.integers(1024, 8192)),
                    width=float(rng.uniform(0.8e-3, 1.5e-3)),
                    height=float(rng.uniform(0.8e-3, 1.5e-3))))
        delta = estimate_delta(base, edits)
        fractions, n, w, h = fold_reference(base, edits)
        fresh = fresh_estimate(small_characterization, fractions, n, w, h,
                               base.signal_probability)
        assert_close(delta, fresh)


class TestDeltaProbe:
    def test_probe_matches_estimate_delta(self, base):
        target = {name: value * (1.3 if name == "INV_X1" else 1.0)
                  for name, value in base.fractions.items()}
        total = sum(target.values())
        target = {name: value / total for name, value in target.items()}
        probe = DeltaProbe(base, target)
        for t in (0.25, 0.5, 1.0):
            blended = {
                name: (1.0 - t) * base.fractions[name] + t * target[name]
                for name in base.fractions}
            expected = estimate_delta(base, UsageHistogramEdit(blended))
            got = probe.probe(t)
            assert math.isclose(got.mean, expected.mean, rel_tol=1e-12)
            assert math.isclose(got.std, expected.std, rel_tol=1e-9)


class TestRoundTrip:
    def test_imported_base_reproduces_delta(self, base,
                                            small_characterization):
        restored = BaseEstimate.from_dict(
            base.to_dict(), characterization=small_characterization)
        edit = CellSwapEdit(from_cell="XOR2_X1", to_cell="INV_X1",
                            fraction=0.04)
        original = estimate_delta(base, edit)
        roundtrip = estimate_delta(restored, edit)
        assert math.isclose(roundtrip.mean, original.mean, rel_tol=1e-12)
        assert math.isclose(roundtrip.std, original.std, rel_tol=1e-9)


class TestGoldenECO:
    def test_cell_swap_eco_golden(self, base, update_goldens):
        """Canonical ECO: 5% of INV_X1 swapped to NOR2_X1 plus a 2%
        cell-count growth — pinned like the estimator goldens."""
        estimate = estimate_delta(base, [
            CellSwapEdit(from_cell="INV_X1", to_cell="NOR2_X1",
                         fraction=0.05),
            FloorplanResizeEdit(n_cells=int(N_CELLS * 1.02)),
        ])
        document = estimate.to_dict()
        # Ledger counters are part of the pinned contract: a change in
        # reuse accounting is a behavior change too.
        check_golden("delta_cell_swap_eco", document, update_goldens)
