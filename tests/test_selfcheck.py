from repro.cli import main
from repro.selfcheck import run_selfcheck


class TestSelfcheck:
    def test_all_properties_hold(self, capsys):
        assert run_selfcheck(verbose=True)
        out = capsys.readouterr().out
        assert out.count("[PASS]") == 12
        assert "[FAIL]" not in out
        assert "self-check: OK" in out

    def test_cli_exit_code(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "self-check: OK" in capsys.readouterr().out

    def test_crashing_check_reports_fail(self, monkeypatch, capsys):
        import repro.selfcheck as module

        def broken_checks():
            return [("always fine", lambda: True),
                    ("explodes", lambda: 1 / 0)]

        monkeypatch.setattr(module, "_checks", broken_checks)
        assert not module.run_selfcheck(verbose=True)
        out = capsys.readouterr().out
        assert "[FAIL] explodes (ZeroDivisionError" in out
        assert "self-check: FAILED" in out
