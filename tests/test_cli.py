import pytest

from repro.cli import main


class TestEstimateCommand:
    def test_estimate_with_usage(self, capsys):
        code = main(["estimate", "--cells", "2000", "--width-mm", "0.2",
                     "--height-mm", "0.2",
                     "--usage", "INV_X1=0.5", "--usage", "NAND2_X1=0.5",
                     "--method", "linear"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean leakage" in out
        assert "99% quantile" in out

    def test_bad_usage_entry_is_reported(self, capsys):
        code = main(["estimate", "--cells", "100", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1:0.5"])
        assert code == 2
        assert "NAME=FRACTION" in capsys.readouterr().err

    def test_temperature_raises_leakage(self, capsys):
        args = ["estimate", "--cells", "1000", "--width-mm", "0.1",
                "--height-mm", "0.1", "--usage", "INV_X1=1.0",
                "--method", "linear"]
        main(args)
        cold = capsys.readouterr().out
        main(args + ["--temperature-c", "125"])
        hot = capsys.readouterr().out

        def mean_of(text):
            for line in text.splitlines():
                if "mean leakage" in line:
                    return float(line.split()[-1])
            raise AssertionError(text)

        assert mean_of(hot) > 5 * mean_of(cold)


class TestCharacterizeRoundTrip:
    def test_characterize_then_estimate(self, tmp_path, capsys):
        char_path = str(tmp_path / "char.json")
        assert main(["characterize", "--out", char_path]) == 0
        capsys.readouterr()
        code = main(["estimate", "--cells", "1000", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1=1.0",
                     "--char", char_path, "--method", "linear"])
        assert code == 0
        assert "mean leakage" in capsys.readouterr().out

    def test_stale_characterization_fails_cleanly(self, tmp_path, capsys):
        char_path = str(tmp_path / "char.json")
        main(["characterize", "--out", char_path])
        capsys.readouterr()
        code = main(["estimate", "--cells", "100", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--char", char_path,
                     "--sigma-l", "0.10"])
        assert code == 2
        assert "different technology" in capsys.readouterr().err


class TestCornersCommand:
    def test_corner_table(self, capsys):
        code = main(["corners", "--cells", "1000", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1=0.5",
                     "--usage", "NAND2_X1=0.5", "--method", "linear"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("FF", "TT", "SS"):
            assert name in out

        def mean_of(label):
            for line in out.splitlines():
                if line.strip().startswith(label):
                    return float(line.split()[2])
            raise AssertionError(out)

        assert mean_of("FF") > mean_of("SS") > mean_of("TT")


class TestIscas85Command:
    def test_c432_flow(self, capsys):
        assert main(["iscas85", "c432"]) == 0
        out = capsys.readouterr().out
        assert "std error" in out
        assert "160" in out

    def test_unknown_circuit(self, capsys):
        assert main(["iscas85", "c9999"]) == 2
        assert "unknown ISCAS85" in capsys.readouterr().err
