import pytest

from repro.cli import main


@pytest.fixture(scope="module", autouse=True)
def _memoized_characterization():
    """Share characterizations across the module's ``main([...])`` calls.

    Every CLI invocation re-characterizes the full library (~2 s), which
    dominates this module's wall time. Characterization is a pure
    function of (technology, mode, cells) — ``repr(technology)`` is a
    complete, stable fingerprint (all fields are primitives or have
    value reprs) — so identical requests can share one result. The CLI
    behaves identically; only redundant recomputation is skipped.
    """
    import repro.characterization.characterizer as characterizer
    import repro.cli as cli

    real = characterizer.characterize_library
    cache = {}

    def memoized(library, technology, mode="analytical", cells=None,
                 **kwargs):
        if kwargs:  # non-default fit options: stay out of the way
            return real(library, technology, mode=mode, cells=cells,
                        **kwargs)
        key = (repr(technology), mode,
               tuple(cells) if cells is not None else None)
        if key not in cache:
            cache[key] = real(library, technology, mode=mode, cells=cells)
        return cache[key]

    patched = [(characterizer, real), (cli, cli.characterize_library)]
    for module, _ in patched:
        module.characterize_library = memoized
    try:
        yield
    finally:
        for module, original in patched:
            module.characterize_library = original


class TestEstimateCommand:
    def test_estimate_with_usage(self, capsys):
        code = main(["estimate", "--cells", "2000", "--width-mm", "0.2",
                     "--height-mm", "0.2",
                     "--usage", "INV_X1=0.5", "--usage", "NAND2_X1=0.5",
                     "--method", "linear"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean leakage" in out
        assert "99% quantile" in out

    def test_bad_usage_entry_is_reported(self, capsys):
        code = main(["estimate", "--cells", "100", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1:0.5"])
        assert code == 2
        assert "NAME=FRACTION" in capsys.readouterr().err

    def test_temperature_raises_leakage(self, capsys):
        args = ["estimate", "--cells", "1000", "--width-mm", "0.1",
                "--height-mm", "0.1", "--usage", "INV_X1=1.0",
                "--method", "linear"]
        main(args)
        cold = capsys.readouterr().out
        main(args + ["--temperature-c", "125"])
        hot = capsys.readouterr().out

        def mean_of(text):
            for line in text.splitlines():
                if "mean leakage" in line:
                    return float(line.split()[-1])
            raise AssertionError(text)

        assert mean_of(hot) > 5 * mean_of(cold)


class TestSweepCommand:
    BASE = ["sweep", "--cells", "1000", "--width-mm", "0.2",
            "--height-mm", "0.2", "--usage", "INV_X1=0.5",
            "--usage", "NAND2_X1=0.5", "--method", "linear"]

    def test_grid_table(self, capsys):
        code = main(self.BASE + [
            "--axis", "corr-length-mm=0.3,0.5,0.9",
            "--axis", "signal-probability=0.4,0.6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Batched sweep — 6 points" in out
        assert "correlation_length" in out
        assert "signal_probability" in out
        # The amortization ledger: one floorplan, three kernels.
        assert "chip_models=1" in out
        assert "rho_kernel_evaluations=3" in out

    def test_json_output_matches_library(self, capsys):
        import json as json_module
        code = main(self.BASE + ["--axis", "d2d-fraction=0.1,0.5",
                                 "--json"])
        assert code == 0
        document = json_module.loads(capsys.readouterr().out)
        assert document["shape"] == [2]
        assert len(document["estimates"]) == 2
        assert all(e["mean"] > 0 for e in document["estimates"])

    def test_matches_estimate_command(self, capsys):
        code = main(self.BASE + ["--axis", "cells=1000"])
        assert code == 0
        sweep_out = capsys.readouterr().out
        main(["estimate", "--cells", "1000", "--width-mm", "0.2",
              "--height-mm", "0.2", "--usage", "INV_X1=0.5",
              "--usage", "NAND2_X1=0.5", "--method", "linear"])
        single_out = capsys.readouterr().out

        def mean_of(text):
            for line in text.splitlines():
                if "mean leakage" in line:
                    return float(line.split()[-1])
            raise AssertionError(text)

        # Both tables print mA with four decimals; they must agree.
        row = [line for line in sweep_out.splitlines()
               if line.strip().startswith("1000")][0]
        sweep_mean_ma = float(row.split()[1])
        assert sweep_mean_ma == pytest.approx(mean_of(single_out),
                                              rel=1e-4, abs=1e-4)

    def test_bad_axis_is_reported(self, capsys):
        code = main(self.BASE + ["--axis", "frequency=1,2"])
        assert code == 2
        assert "unknown sweep axis" in capsys.readouterr().err


class TestCharacterizeRoundTrip:
    def test_characterize_then_estimate(self, tmp_path, capsys):
        char_path = str(tmp_path / "char.json")
        assert main(["characterize", "--out", char_path]) == 0
        capsys.readouterr()
        code = main(["estimate", "--cells", "1000", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1=1.0",
                     "--char", char_path, "--method", "linear"])
        assert code == 0
        assert "mean leakage" in capsys.readouterr().out

    def test_stale_characterization_fails_cleanly(self, tmp_path, capsys):
        char_path = str(tmp_path / "char.json")
        main(["characterize", "--out", char_path])
        capsys.readouterr()
        code = main(["estimate", "--cells", "100", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--char", char_path,
                     "--sigma-l", "0.10"])
        assert code == 2
        assert "different technology" in capsys.readouterr().err


class TestCornersCommand:
    def test_corner_table(self, capsys):
        code = main(["corners", "--cells", "1000", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1=0.5",
                     "--usage", "NAND2_X1=0.5", "--method", "linear"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("FF", "TT", "SS"):
            assert name in out

        def mean_of(label):
            for line in out.splitlines():
                if line.strip().startswith(label):
                    return float(line.split()[2])
            raise AssertionError(out)

        assert mean_of("FF") > mean_of("SS") > mean_of("TT")


class TestIscas85Command:
    def test_c432_flow(self, capsys):
        assert main(["iscas85", "c432"]) == 0
        out = capsys.readouterr().out
        assert "std error" in out
        assert "160" in out

    def test_unknown_circuit(self, capsys):
        assert main(["iscas85", "c9999"]) == 2
        assert "unknown ISCAS85" in capsys.readouterr().err
