import pytest

from repro.cli import main


@pytest.fixture(scope="module", autouse=True)
def _memoized_characterization():
    """Share characterizations across the module's ``main([...])`` calls.

    Every CLI invocation re-characterizes the full library (~2 s), which
    dominates this module's wall time. Characterization is a pure
    function of (technology, mode, cells) — ``repr(technology)`` is a
    complete, stable fingerprint (all fields are primitives or have
    value reprs) — so identical requests can share one result. The CLI
    behaves identically; only redundant recomputation is skipped.
    """
    import repro.characterization.characterizer as characterizer
    import repro.cli as cli

    real = characterizer.characterize_library
    cache = {}

    def memoized(library, technology, mode="analytical", cells=None,
                 **kwargs):
        if kwargs:  # non-default fit options: stay out of the way
            return real(library, technology, mode=mode, cells=cells,
                        **kwargs)
        key = (repr(technology), mode,
               tuple(cells) if cells is not None else None)
        if key not in cache:
            cache[key] = real(library, technology, mode=mode, cells=cells)
        return cache[key]

    patched = [(characterizer, real), (cli, cli.characterize_library)]
    for module, _ in patched:
        module.characterize_library = memoized
    try:
        yield
    finally:
        for module, original in patched:
            module.characterize_library = original


class TestEstimateCommand:
    def test_estimate_with_usage(self, capsys):
        code = main(["estimate", "--cells", "2000", "--width-mm", "0.2",
                     "--height-mm", "0.2",
                     "--usage", "INV_X1=0.5", "--usage", "NAND2_X1=0.5",
                     "--method", "linear"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean leakage" in out
        assert "99% quantile" in out

    def test_bad_usage_entry_is_reported(self, capsys):
        code = main(["estimate", "--cells", "100", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1:0.5"])
        assert code == 2
        assert "NAME=FRACTION" in capsys.readouterr().err

    def test_thermal_coupled_solve(self, capsys):
        code = main(["estimate", "--cells", "2048", "--width-mm", "1",
                     "--height-mm", "1",
                     "--usage", "INV_X1=0.6", "--usage", "NAND2_X1=0.4",
                     "--method", "linear", "--thermal",
                     "--package-resistance", "40",
                     "--power-scale", "400", "--ambient-c", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Thermal solve" in out
        assert "coupled" in out
        assert "converged     true" in out
        assert "feedback gain" in out

    def test_thermal_open_loop(self, capsys):
        code = main(["estimate", "--cells", "1024", "--width-mm", "0.5",
                     "--height-mm", "0.5", "--usage", "INV_X1=1.0",
                     "--method", "linear", "--thermal", "--open-loop"])
        assert code == 0
        out = capsys.readouterr().out
        assert "open loop" in out

    def test_thermal_knobs_require_thermal_flag(self, capsys):
        code = main(["estimate", "--cells", "100", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1=1.0",
                     "--power-scale", "10"])
        assert code == 2
        assert "--thermal" in capsys.readouterr().err

    def test_temperature_raises_leakage(self, capsys):
        args = ["estimate", "--cells", "1000", "--width-mm", "0.1",
                "--height-mm", "0.1", "--usage", "INV_X1=1.0",
                "--method", "linear"]
        main(args)
        cold = capsys.readouterr().out
        main(args + ["--temperature-c", "125"])
        hot = capsys.readouterr().out

        def mean_of(text):
            for line in text.splitlines():
                if "mean leakage" in line:
                    return float(line.split()[-1])
            raise AssertionError(text)

        assert mean_of(hot) > 5 * mean_of(cold)


class TestSweepCommand:
    BASE = ["sweep", "--cells", "1000", "--width-mm", "0.2",
            "--height-mm", "0.2", "--usage", "INV_X1=0.5",
            "--usage", "NAND2_X1=0.5", "--method", "linear"]

    def test_grid_table(self, capsys):
        code = main(self.BASE + [
            "--axis", "corr-length-mm=0.3,0.5,0.9",
            "--axis", "signal-probability=0.4,0.6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Batched sweep — 6 points" in out
        assert "correlation_length" in out
        assert "signal_probability" in out
        # The amortization ledger: one floorplan, three kernels.
        assert "chip_models=1" in out
        assert "rho_kernel_evaluations=3" in out

    def test_json_output_matches_library(self, capsys):
        import json as json_module
        code = main(self.BASE + ["--axis", "d2d-fraction=0.1,0.5",
                                 "--json"])
        assert code == 0
        document = json_module.loads(capsys.readouterr().out)
        assert document["shape"] == [2]
        assert len(document["estimates"]) == 2
        assert all(e["mean"] > 0 for e in document["estimates"])

    def test_matches_estimate_command(self, capsys):
        code = main(self.BASE + ["--axis", "cells=1000"])
        assert code == 0
        sweep_out = capsys.readouterr().out
        main(["estimate", "--cells", "1000", "--width-mm", "0.2",
              "--height-mm", "0.2", "--usage", "INV_X1=0.5",
              "--usage", "NAND2_X1=0.5", "--method", "linear"])
        single_out = capsys.readouterr().out

        def mean_of(text):
            for line in text.splitlines():
                if "mean leakage" in line:
                    return float(line.split()[-1])
            raise AssertionError(text)

        # Both tables print mA with four decimals; they must agree.
        row = [line for line in sweep_out.splitlines()
               if line.strip().startswith("1000")][0]
        sweep_mean_ma = float(row.split()[1])
        assert sweep_mean_ma == pytest.approx(mean_of(single_out),
                                              rel=1e-4, abs=1e-4)

    def test_bad_axis_is_reported(self, capsys):
        code = main(self.BASE + ["--axis", "frequency=1,2"])
        assert code == 2
        assert "unknown sweep axis" in capsys.readouterr().err


class TestCharacterizeRoundTrip:
    def test_characterize_then_estimate(self, tmp_path, capsys):
        char_path = str(tmp_path / "char.json")
        assert main(["characterize", "--out", char_path]) == 0
        capsys.readouterr()
        code = main(["estimate", "--cells", "1000", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1=1.0",
                     "--char", char_path, "--method", "linear"])
        assert code == 0
        assert "mean leakage" in capsys.readouterr().out

    def test_stale_characterization_fails_cleanly(self, tmp_path, capsys):
        char_path = str(tmp_path / "char.json")
        main(["characterize", "--out", char_path])
        capsys.readouterr()
        code = main(["estimate", "--cells", "100", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--char", char_path,
                     "--sigma-l", "0.10"])
        assert code == 2
        assert "different technology" in capsys.readouterr().err


class TestCornersCommand:
    def test_corner_table(self, capsys):
        code = main(["corners", "--cells", "1000", "--width-mm", "0.1",
                     "--height-mm", "0.1", "--usage", "INV_X1=0.5",
                     "--usage", "NAND2_X1=0.5", "--method", "linear"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("FF", "TT", "SS"):
            assert name in out

        def mean_of(label):
            for line in out.splitlines():
                if line.strip().startswith(label):
                    return float(line.split()[2])
            raise AssertionError(out)

        assert mean_of("FF") > mean_of("SS") > mean_of("TT")


class TestWhatIfCommand:
    """Argument handling only — the wire round trip lives in
    tests/service/test_whatif.py."""

    def test_no_edits_is_an_error(self, capsys):
        code = main(["whatif", "--base", "a" * 64])
        assert code == 2
        assert "at least one edit" in capsys.readouterr().err

    def test_malformed_edit_json_is_reported(self, capsys):
        code = main(["whatif", "--base", "a" * 64,
                     "--edit", "{not json"])
        assert code == 2
        assert "JSON" in capsys.readouterr().err

    def test_malformed_swap_is_reported(self, capsys):
        code = main(["whatif", "--base", "a" * 64,
                     "--swap", "INV_X1"])
        assert code == 2
        assert "FROM:TO" in capsys.readouterr().err

    def test_bad_base_hash_is_reported(self, capsys):
        code = main(["whatif", "--base", "not-a-hash",
                     "--swap", "INV_X1:NAND2_X1:0.1"])
        assert code == 2
        assert "base" in capsys.readouterr().err

    def test_table_output_with_stubbed_client(self, capsys, monkeypatch):
        """Edit assembly + table rendering, no server needed."""
        import repro.service.client as client_module

        captured = {}

        class StubEstimate:
            n_cells = 4096
            method = "linear"
            mean = 1.5e-3
            std = 1.2e-4
            cv = 0.08
            details = {"delta": {"mode": "exact", "edits": 3,
                                 "moments_recomputed": 2,
                                 "lags_reused": 100}}

        class StubRemote:
            def __init__(self, url):
                captured["url"] = url

            def whatif(self, request, timeout=None):
                captured["request"] = request
                return StubEstimate()

        monkeypatch.setattr(client_module, "RemoteClient", StubRemote)
        code = main([
            "whatif", "--base", "a" * 64,
            "--edit", '{"type": "usage_histogram",'
                      ' "fractions": {"INV_X1": 1.0}}',
            "--swap", "INV_X1:NAND2_X1:0.25",
            "--cells", "4096", "--width-mm", "1.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean leakage" in out
        assert "delta mode" in out and "exact" in out
        assert "moments recomputed" in out
        request = captured["request"]
        assert len(request.edits) == 3
        assert request.edits[1]["fraction"] == 0.25
        # --width-mm converts millimetres to metres on the wire.
        assert request.edits[2]["width"] == pytest.approx(1e-3)

    def test_fallback_row_with_stubbed_client(self, capsys, monkeypatch):
        import repro.service.client as client_module

        class StubEstimate:
            n_cells = 600_000
            method = "integral2d"
            mean = 2.0e-3
            std = 1.0e-4
            cv = 0.05
            details = {"delta": {"fallback": True,
                                 "fallback_reason": "incompatible"}}

        class StubRemote:
            def __init__(self, url):
                pass

            def whatif(self, request, timeout=None):
                return StubEstimate()

        monkeypatch.setattr(client_module, "RemoteClient", StubRemote)
        code = main(["whatif", "--base", "b" * 64,
                     "--swap", "INV_X1:NAND2_X1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "delta fallback" in out
        assert "incompatible" in out


class TestIscas85Command:
    def test_c432_flow(self, capsys):
        assert main(["iscas85", "c432"]) == 0
        out = capsys.readouterr().out
        assert "std error" in out
        assert "160" in out

    def test_unknown_circuit(self, capsys):
        assert main(["iscas85", "c9999"]) == 2
        assert "unknown ISCAS85" in capsys.readouterr().err
