"""Batched sweep engine: bit-identical loop equivalence.

The contract under test is absolute: every grid point of
``estimate_sweep`` equals — to the last bit of ``mean``, ``std``, and
every ``details`` entry — the corresponding single-point
``FullChipLeakageEstimator(...).estimate(method)`` call. Each test
builds the looped reference directly from the axis overrides and
compares with ``==``, never ``approx``.
"""

import itertools

import numpy as np
import pytest

from repro.core import CellUsage, FullChipLeakageEstimator
from repro.core.api import estimate_sweep
from repro.core.estimators.linear import LagGeometry, linear_variance
from repro.core.sweep import (
    SweepAxis,
    cell_count_axis,
    correlation_axis,
    correlation_length_axis,
    d2d_split_axis,
    die_axis,
    signal_probability_axis,
    temperature_axis,
    usage_axis,
)
from repro.exceptions import EstimationError
from repro.process import ExponentialCorrelation, GaussianCorrelation


BASE = dict(n_cells=2_000, width=0.8e-3, height=0.8e-3,
            signal_probability=0.5, correlation=None)


@pytest.fixture(scope="module")
def usage():
    return CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.3, "NOR2_X1": 0.2})


def looped(characterization, usage, axes, method,
           simplified_correlation=None, **kwargs):
    """The naive per-point loop the sweep must reproduce bit-for-bit."""
    base = dict(BASE)
    base["characterization"] = characterization
    base["usage"] = usage
    base.update({k: kwargs[k] for k in
                 ("n_cells", "width", "height", "signal_probability")
                 if k in kwargs})
    estimates = []
    for combo in itertools.product(*(axis.overrides for axis in axes)):
        config = dict(base)
        for override in combo:
            config.update(override)
        estimator = FullChipLeakageEstimator(
            config["characterization"], config["usage"],
            config["n_cells"], config["width"], config["height"],
            signal_probability=config["signal_probability"],
            correlation=config["correlation"],
            simplified_correlation=simplified_correlation)
        estimates.append(estimator.estimate(method))
    return estimates


def assert_bit_identical(sweep, reference):
    assert len(sweep) == len(reference)
    for got, want in zip(sweep, reference):
        assert got.mean == want.mean
        assert got.std == want.std
        assert got.method == want.method
        assert got.n_cells == want.n_cells
        assert got.signal_probability == want.signal_probability
        assert got.vt_multiplier == want.vt_multiplier
        assert got.details == want.details


def run_case(characterization, usage, axes, method,
             simplified_correlation=None, **kwargs):
    base = dict(n_cells=BASE["n_cells"], width=BASE["width"],
                height=BASE["height"])
    base.update(kwargs)
    sweep = estimate_sweep(
        characterization, usage, base["n_cells"], base["width"],
        base["height"], axes=axes, method=method,
        signal_probability=base.get("signal_probability", 0.5),
        simplified_correlation=simplified_correlation,
        n_jobs=base.get("n_jobs", 1))
    assert_bit_identical(sweep, looped(
        characterization, usage, axes, method,
        simplified_correlation=simplified_correlation, **kwargs))
    return sweep


class TestAxisEquivalence:
    """One axis at a time, every axis type, bit-identical to the loop."""

    @pytest.mark.parametrize("method", ["linear", "integral2d", "exact"])
    def test_correlation_length_axis(self, small_characterization, usage,
                                     technology, method):
        axis = correlation_length_axis([0.2e-3, 0.5e-3, 1.1e-3],
                                       technology)
        # The exact engine maps RG covariance onto per-site sigmas,
        # which requires the simplified correlation model.
        simplified = True if method == "exact" else None
        run_case(small_characterization, usage, [axis], method,
                 simplified_correlation=simplified)

    @pytest.mark.slow
    @pytest.mark.parametrize("method", ["linear", "integral2d"])
    def test_d2d_split_axis(self, small_characterization, usage,
                            technology, method):
        axis = d2d_split_axis(technology, [0.0, 0.25, 0.6])
        run_case(small_characterization, usage, [axis], method)

    def test_correlation_axis_mixed_kernels(self, small_characterization,
                                            usage):
        # Mixed families fall back to per-kernel evaluation — still
        # bit-identical, just a longer ledger.
        axis = correlation_axis([ExponentialCorrelation(0.4e-3),
                                 GaussianCorrelation(0.4e-3)])
        run_case(small_characterization, usage, [axis], "linear")

    def test_usage_axis(self, small_characterization, usage):
        other = CellUsage({"INV_X1": 0.2, "NAND2_X1": 0.2,
                           "XOR2_X1": 0.6})
        axis = usage_axis([usage, other], values=("base", "xor-heavy"))
        run_case(small_characterization, usage, [axis], "linear")

    def test_signal_probability_axis(self, small_characterization, usage):
        axis = signal_probability_axis([0.1, 0.5, 0.9])
        run_case(small_characterization, usage, [axis], "linear")

    def test_cell_count_axis(self, small_characterization, usage):
        axis = cell_count_axis([500, 2_000, 8_000])
        run_case(small_characterization, usage, [axis], "linear")

    def test_die_axis(self, small_characterization, usage):
        axis = die_axis([(0.5e-3, 0.5e-3), (1e-3, 0.7e-3)])
        run_case(small_characterization, usage, [axis], "linear")

    def test_temperature_axis(self, library, small_characterization,
                              usage, technology):
        axis = temperature_axis([300.0, 360.0], library, technology,
                                cells=["INV_X1", "NAND2_X1", "NOR2_X1"])
        # characterization=None: the axis supplies it per point.
        sweep = estimate_sweep(
            None, usage, BASE["n_cells"], BASE["width"], BASE["height"],
            axes=[axis], method="linear")
        for index, override in enumerate(axis.overrides):
            estimator = FullChipLeakageEstimator(
                override["characterization"], usage, BASE["n_cells"],
                BASE["width"], BASE["height"])
            assert_bit_identical([sweep[index]],
                                 [estimator.estimate("linear")])

    def test_auto_method_resolution(self, small_characterization, usage):
        # "auto" resolves per geometry; compare with the same "auto"
        # request so requested_method matches in details too.
        axis = cell_count_axis([1_000, 4_000])
        run_case(small_characterization, usage, [axis], "auto")


class TestGridSemantics:
    def test_two_axis_grid_is_c_order(self, small_characterization,
                                      usage, technology):
        lengths = correlation_length_axis([0.3e-3, 0.6e-3], technology)
        probs = signal_probability_axis([0.2, 0.5, 0.8])
        sweep = run_case(small_characterization, usage, [lengths, probs],
                         "linear")
        assert sweep.shape == (2, 3)
        assert len(sweep) == 6
        # Tuple indexing and coords agree with C-order flattening.
        for i in range(2):
            for j in range(3):
                flat = i * 3 + j
                assert sweep[(i, j)] is sweep.estimates[flat]
                coords = sweep.coords(flat)
                assert coords["correlation_length"] == \
                    lengths.values[i]
                assert coords["signal_probability"] == probs.values[j]
        assert sweep.grid().shape == (2, 3)

    def test_fanout_matches_serial(self, small_characterization, usage,
                                   technology):
        lengths = correlation_length_axis([0.3e-3, 0.6e-3], technology)
        counts = cell_count_axis([800, 3_000])
        serial = estimate_sweep(
            small_characterization, usage, BASE["n_cells"], BASE["width"],
            BASE["height"], axes=[counts, lengths], method="linear",
            n_jobs=1)
        fanned = estimate_sweep(
            small_characterization, usage, BASE["n_cells"], BASE["width"],
            BASE["height"], axes=[counts, lengths], method="linear",
            n_jobs=2)
        assert_bit_identical(fanned, serial)
        assert fanned.stats["fanout_groups"] == 2

    def test_amortization_ledger(self, small_characterization, usage,
                                 technology):
        lengths = correlation_length_axis(
            [0.2e-3, 0.4e-3, 0.6e-3, 0.8e-3], technology)
        probs = signal_probability_axis([0.3, 0.7])
        sweep = run_case(small_characterization, usage, [lengths, probs],
                         "linear")
        # One floorplan, one geometry; kernels evaluated once per length
        # (not per point); RG mixture once per probability.
        assert sweep.stats["points"] == 8
        assert sweep.stats["chip_models"] == 1
        assert sweep.stats["geometries"] == 1
        assert sweep.stats["rho_kernel_evaluations"] == 4
        assert sweep.stats["rg_builds"] == 2

    def test_to_dict_serializes(self, small_characterization, usage,
                                technology):
        axis = correlation_length_axis([0.3e-3], technology)
        sweep = estimate_sweep(
            small_characterization, usage, 1_000, 0.5e-3, 0.5e-3,
            axes=[axis], method="linear")
        import json
        document = json.loads(json.dumps(sweep.to_dict()))
        assert document["shape"] == [1]
        assert document["estimates"][0]["mean"] == sweep[0].mean


class TestValidation:
    def test_no_axes_rejected(self, small_characterization, usage):
        with pytest.raises(EstimationError, match="at least one"):
            estimate_sweep(small_characterization, usage, 1_000, 1e-3,
                           1e-3, axes=[])

    def test_duplicate_axis_names_rejected(self, small_characterization,
                                           usage):
        axis = signal_probability_axis([0.4, 0.6])
        with pytest.raises(EstimationError, match="duplicate"):
            estimate_sweep(small_characterization, usage, 1_000, 1e-3,
                           1e-3, axes=[axis, axis])

    def test_unknown_override_key_rejected(self):
        with pytest.raises(EstimationError, match="unknown config keys"):
            SweepAxis(name="bad", values=(1,),
                      overrides=({"frobnicate": 1},))

    def test_missing_characterization_rejected(self, usage):
        axis = signal_probability_axis([0.5])
        with pytest.raises(EstimationError,
                           match="no characterization"):
            estimate_sweep(None, usage, 1_000, 1e-3, 1e-3, axes=[axis])

    def test_misaligned_axis_rejected(self):
        with pytest.raises(EstimationError, match="aligned"):
            SweepAxis(name="p", values=(0.1, 0.2),
                      overrides=({"signal_probability": 0.1},))

    def test_conflicting_override_keys_rejected(self,
                                                small_characterization,
                                                usage):
        # Both axes emit a final "correlation" model; crossing them
        # would silently let the later one win at every point.
        technology = small_characterization.technology
        lengths = correlation_length_axis([0.3e-3, 0.9e-3], technology)
        split = d2d_split_axis(technology, [0.2, 0.5])
        with pytest.raises(EstimationError,
                           match="both override config key"):
            estimate_sweep(small_characterization, usage, 1_000, 1e-3,
                           1e-3, axes=[lengths, split])


class TestLagGeometry:
    """The geometry/parameter split underlying the shared hot path."""

    def test_matches_linear_variance(self, small_characterization, usage):
        estimator = FullChipLeakageEstimator(
            small_characterization, usage, 2_000, 0.8e-3, 0.8e-3)
        chip = estimator.chip
        correlation = \
            small_characterization.technology.total_correlation
        geometry = LagGeometry(chip.rows, chip.cols, chip.pitch_x,
                               chip.pitch_y)
        split = geometry.variance_from_rho(geometry.rho(correlation),
                                           estimator.rg_correlation)
        direct = linear_variance(chip.rows, chip.cols, chip.pitch_x,
                                 chip.pitch_y, correlation,
                                 estimator.rg_correlation)
        assert split == direct

    def test_cached_rho_not_mutated(self, small_characterization, usage):
        estimator = FullChipLeakageEstimator(
            small_characterization, usage, 1_000, 0.5e-3, 0.5e-3)
        chip = estimator.chip
        geometry = LagGeometry(chip.rows, chip.cols, chip.pitch_x,
                               chip.pitch_y)
        rho = geometry.rho(
            small_characterization.technology.total_correlation)
        snapshot = rho.copy()
        first = geometry.variance_from_rho(rho, estimator.rg_correlation)
        second = geometry.variance_from_rho(rho, estimator.rg_correlation)
        assert first == second
        assert np.array_equal(rho, snapshot)

    def test_multiplicities_sum_to_pair_count(self):
        geometry = LagGeometry(7, 11, 1e-5, 2e-5)
        n = 7 * 11
        assert int(geometry.counts.sum()) == n * n
        assert int(geometry.counts[geometry.zero_lag]) == n
