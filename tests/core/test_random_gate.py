import numpy as np
import pytest

from repro.core import CellUsage, RandomGate, expand_mixture
from repro.core.random_gate import GateMixture
from repro.exceptions import EstimationError


@pytest.fixture(scope="module")
def usage():
    return CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.4, "DFF_X1": 0.2})


@pytest.fixture(scope="module")
def mixture(small_characterization, usage):
    return expand_mixture(small_characterization, usage, p=0.5)


class TestExpandMixture:
    def test_weights_sum_to_one(self, mixture):
        assert mixture.alphas.sum() == pytest.approx(1.0)

    def test_component_counts(self, mixture):
        # INV: 2 states, NAND2: 4 states, DFF: 8 states.
        assert len(mixture.labels) == 2 + 4 + 8

    def test_weights_factor_usage_and_state(self, small_characterization,
                                            usage):
        mixture = expand_mixture(small_characterization, usage, p=0.5)
        weight = dict(zip(mixture.labels, mixture.alphas))
        assert weight[("INV_X1", "A=0")] == pytest.approx(0.4 * 0.5)
        assert weight[("NAND2_X1", "I0=1,I1=1")] == pytest.approx(0.4 * 0.25)

    def test_signal_probability_shifts_weights(self, small_characterization,
                                               usage):
        mixture = expand_mixture(small_characterization, usage, p=0.9)
        weight = dict(zip(mixture.labels, mixture.alphas))
        assert weight[("NAND2_X1", "I0=1,I1=1")] == pytest.approx(0.4 * 0.81)

    def test_uncharacterized_cell_rejected(self, small_characterization):
        bad = CellUsage({"AND4_X1": 1.0})
        with pytest.raises(EstimationError):
            expand_mixture(small_characterization, bad, 0.5)

    def test_has_fits(self, mixture):
        assert mixture.has_fits
        assert len(mixture.fits) == len(mixture.labels)


class TestRandomGateStatistics:
    """Eqs. (7)-(8) against direct enumeration."""

    def test_mean_eq7(self, mixture):
        rg = RandomGate(mixture)
        expected = float(np.sum(mixture.alphas * mixture.means))
        assert rg.mean == pytest.approx(expected, rel=1e-14)

    def test_second_moment_eq8(self, mixture):
        rg = RandomGate(mixture)
        second = float(np.sum(mixture.alphas
                              * (mixture.stds ** 2 + mixture.means ** 2)))
        assert rg.variance == pytest.approx(second - rg.mean ** 2, rel=1e-12)

    def test_variance_exceeds_weighted_state_variance(self, mixture):
        """Gate-selection adds variance on top of process variance."""
        rg = RandomGate(mixture)
        process_only = float(np.sum(mixture.alphas * mixture.stds ** 2))
        assert rg.variance > process_only

    def test_monte_carlo_consistency(self, mixture, rng):
        """Sampling the mixture reproduces eqs. (7)-(8)."""
        rg = RandomGate(mixture)
        idx = rng.choice(len(mixture.alphas), size=200_000, p=mixture.alphas)
        # Leakage sampled as lognormal-ish per component is unnecessary;
        # sampling the component means+gaussians suffices for moments.
        values = (mixture.means[idx]
                  + mixture.stds[idx] * rng.standard_normal(idx.shape))
        assert rg.mean == pytest.approx(float(values.mean()), rel=0.01)
        assert rg.std == pytest.approx(float(values.std()), rel=0.02)

    def test_mean_of_stds_below_std(self, mixture):
        rg = RandomGate(mixture)
        assert rg.mean_of_stds < rg.std


class TestMixtureValidation:
    def test_misaligned_arrays_rejected(self):
        with pytest.raises(EstimationError):
            GateMixture(labels=(("a", "s"),), alphas=np.array([0.5, 0.5]),
                        means=np.array([1.0]), stds=np.array([0.1]),
                        fits=None)

    def test_unnormalized_rejected(self):
        with pytest.raises(EstimationError):
            GateMixture(labels=(("a", "s"),), alphas=np.array([0.5]),
                        means=np.array([1.0]), stds=np.array([0.1]),
                        fits=None)

    def test_prune_drops_negligible(self, mixture):
        alphas = mixture.alphas.copy()
        alphas[0] = 1e-15
        alphas /= alphas.sum()
        dirty = GateMixture(labels=mixture.labels, alphas=alphas,
                            means=mixture.means, stds=mixture.stds,
                            fits=mixture.fits)
        clean = dirty.prune()
        assert len(clean.labels) == len(mixture.labels) - 1
        assert clean.alphas.sum() == pytest.approx(1.0)
