import numpy as np
import pytest

from repro.core import CellUsage, RandomGate, RGCorrelation, expand_mixture
from repro.exceptions import EstimationError

MU_L = 50e-9
SIGMA_L = 2.5e-9


@pytest.fixture(scope="module")
def random_gate(small_characterization):
    usage = CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.3, "NOR2_X1": 0.2,
                       "XOR2_X1": 0.1})
    return RandomGate(expand_mixture(small_characterization, usage, 0.5))


@pytest.fixture(scope="module")
def exact(random_gate):
    return RGCorrelation(random_gate, MU_L, SIGMA_L, simplified=False)


@pytest.fixture(scope="module")
def simplified(random_gate):
    return RGCorrelation(random_gate, MU_L, SIGMA_L, simplified=True)


class TestStructure:
    def test_defaults_to_exact_with_fits(self, random_gate):
        rgc = RGCorrelation(random_gate, MU_L, SIGMA_L)
        assert not rgc.simplified

    def test_zero_correlation_zero_covariance(self, exact, simplified):
        assert float(exact.covariance(0.0)) == pytest.approx(0.0, abs=1e-22)
        assert float(simplified.covariance(0.0)) == 0.0

    def test_selection_gap_positive(self, exact):
        """Eq. (11): same-site variance exceeds the rho_L -> 1 limit of
        the distinct-site covariance, because gate selection at two
        sites is independent."""
        assert exact.selection_gap > 0
        assert exact.same_site_covariance == pytest.approx(
            exact.variance)

    def test_simplified_scale_is_mean_of_stds_squared(self, random_gate,
                                                      simplified):
        expected = random_gate.mean_of_stds ** 2
        assert float(simplified.covariance(1.0)) == pytest.approx(expected)

    def test_monotone_in_rho(self, exact):
        rhos = np.linspace(-1, 1, 41)
        cov = exact.covariance(rhos)
        assert np.all(np.diff(cov) > 0)

    def test_rho_normalized(self, exact):
        rhos = np.linspace(0, 1, 11)
        np.testing.assert_allclose(exact.rho(rhos),
                                   exact.covariance(rhos) / exact.variance)

    def test_out_of_range_rho_rejected(self, exact):
        with pytest.raises(EstimationError):
            exact.covariance(1.5)


class TestSimplifiedVsExact:
    def test_close_for_library_gates(self, exact, simplified):
        """Section 3.1.2: the rho_mn = rho_L assumption changes the
        covariance by a few percent at most."""
        rhos = np.linspace(0.05, 1.0, 20)
        exact_cov = exact.covariance(rhos)
        simple_cov = simplified.covariance(rhos)
        rel = np.abs(simple_cov - exact_cov) / exact_cov
        assert np.max(rel) < 0.06

    def test_exact_requires_fits(self, library, technology, rng):
        from repro.characterization import characterize_library
        mc_char = characterize_library(library, technology,
                                       mode="montecarlo",
                                       cells=["INV_X1"], n_samples=200,
                                       rng=rng)
        usage = CellUsage({"INV_X1": 1.0})
        rg = RandomGate(expand_mixture(mc_char, usage, 0.5))
        with pytest.raises(EstimationError):
            RGCorrelation(rg, MU_L, SIGMA_L, simplified=False)
        # but simplified works, and is the default for MC mode
        assert RGCorrelation(rg, MU_L, SIGMA_L).simplified


class TestInterpolationResolution:
    def test_grid_interpolation_error_is_negligible(self, random_gate):
        """The 65-point default grid must match a 1025-point reference
        to well below the simplified-assumption error (Section 3.1.2)."""
        coarse = RGCorrelation(random_gate, MU_L, SIGMA_L,
                               simplified=False, n_grid=65)
        fine = RGCorrelation(random_gate, MU_L, SIGMA_L,
                             simplified=False, n_grid=1025)
        rhos = np.linspace(-0.999, 0.999, 301)
        rel = np.abs(coarse.covariance(rhos) - fine.covariance(rhos)) \
            / fine.variance
        assert float(rel.max()) < 1e-5


class TestAgainstBruteForce:
    def test_covariance_matches_pairwise_sum(self, random_gate, exact):
        """Eq. (10) by direct summation over the mixture at a few rho."""
        from repro.characterization import pair_expectation
        mixture = random_gate.mixture
        for rho in (0.2, 0.7, 1.0):
            total = 0.0
            for wm, fm, mm in zip(mixture.alphas, mixture.fits,
                                  mixture.means):
                for wn, fn, mn in zip(mixture.alphas, mixture.fits,
                                      mixture.means):
                    cross = float(pair_expectation(fm, fn, MU_L, SIGMA_L,
                                                   rho))
                    total += wm * wn * (cross - mm * mn)
            assert float(exact.covariance(rho)) == pytest.approx(
                total, rel=1e-4)
