import pytest

from repro.core import (
    CellUsage,
    leakage_at_percentile,
    leakage_headroom,
    max_cells_for_budget,
)
from repro.exceptions import EstimationError

SITE_AREA = 3.5e-12


@pytest.fixture(scope="module")
def usage():
    return CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.4, "NOR2_X1": 0.2})


class TestLeakageAtPercentile:
    def test_monotone_in_n(self, characterization, usage):
        small = leakage_at_percentile(characterization, usage, 1000,
                                      SITE_AREA)
        big = leakage_at_percentile(characterization, usage, 10_000,
                                    SITE_AREA)
        assert big > small

    def test_monotone_in_percentile(self, characterization, usage):
        p50 = leakage_at_percentile(characterization, usage, 5000,
                                    SITE_AREA, percentile=0.5)
        p99 = leakage_at_percentile(characterization, usage, 5000,
                                    SITE_AREA, percentile=0.99)
        assert p99 > p50

    def test_rejects_bad_percentile(self, characterization, usage):
        with pytest.raises(EstimationError):
            leakage_at_percentile(characterization, usage, 100, SITE_AREA,
                                  percentile=1.0)


class TestMaxCellsForBudget:
    def test_inverse_of_forward(self, characterization, usage):
        budget = leakage_at_percentile(characterization, usage, 5000,
                                       SITE_AREA)
        n = max_cells_for_budget(characterization, usage, budget, SITE_AREA)
        # Bisection is exact to the integer; the forward curve is smooth,
        # so the answer lands within a hair of 5000.
        assert n == pytest.approx(5000, rel=0.02)
        over = leakage_at_percentile(characterization, usage, n + 50,
                                     SITE_AREA)
        assert over > budget

    def test_zero_when_budget_below_single_cell(self, characterization,
                                                usage):
        assert max_cells_for_budget(characterization, usage, 1e-12,
                                    SITE_AREA) == 0

    def test_rejects_non_positive_budget(self, characterization, usage):
        with pytest.raises(EstimationError):
            max_cells_for_budget(characterization, usage, 0.0, SITE_AREA)

    def test_huge_budget_hits_guard(self, characterization, usage):
        with pytest.raises(EstimationError):
            max_cells_for_budget(characterization, usage, 1e6, SITE_AREA,
                                 n_max=10_000)


class TestHeadroom:
    def test_lower_leakage_mix_saves(self, characterization, usage):
        leaky = CellUsage({"NOR4_X1": 0.5, "INV_X8": 0.5})
        result = leakage_headroom(characterization, leaky, usage,
                                  n_cells=2000, width=2e-4, height=2e-4)
        assert result["mean_saving"] > 0
        assert result["baseline"].mean > result["candidate"].mean

    def test_identity_mix_saves_nothing(self, characterization, usage):
        result = leakage_headroom(characterization, usage, usage,
                                  n_cells=2000, width=2e-4, height=2e-4)
        assert result["mean_saving"] == pytest.approx(0.0, abs=1e-12)
        assert result["std_saving"] == pytest.approx(0.0, abs=1e-12)
