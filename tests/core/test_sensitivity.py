import numpy as np
import pytest

from repro.core import CellUsage, RandomGate, expand_mixture
from repro.core.sensitivity import leakage_attribution, usage_gradient


@pytest.fixture(scope="module")
def random_gate(small_characterization):
    usage = CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.3, "NOR2_X1": 0.2,
                       "DFF_X1": 0.1})
    return RandomGate(expand_mixture(small_characterization, usage, 0.5))


class TestAttribution:
    def test_shares_sum_to_one(self, random_gate):
        rows = leakage_attribution(random_gate)
        assert sum(r.mean_share for r in rows) == pytest.approx(1.0)
        assert sum(r.std_share for r in rows) == pytest.approx(1.0)
        assert sum(r.usage_fraction for r in rows) == pytest.approx(1.0)

    def test_sorted_by_mean_share(self, random_gate):
        rows = leakage_attribution(random_gate)
        shares = [r.mean_share for r in rows]
        assert shares == sorted(shares, reverse=True)

    def test_dff_outweighs_its_usage(self, random_gate,
                                     small_characterization):
        """A 24-transistor flip-flop leaks far more per instance than an
        inverter, so its mean share must exceed its 10% usage share."""
        rows = {r.cell_name: r for r in leakage_attribution(random_gate)}
        assert rows["DFF_X1"].mean_share > rows["DFF_X1"].usage_fraction

    def test_mean_share_reconstructs_rg_mean(self, random_gate,
                                             small_characterization):
        rows = leakage_attribution(random_gate)
        reconstructed = sum(r.mean_share for r in rows) * random_gate.mean
        assert reconstructed == pytest.approx(random_gate.mean)


class TestUsageGradient:
    def test_zero_sum_under_usage_weights(self, random_gate):
        """sum_i alpha_i (mu_i - mu_XI) = 0 — shifting mass to the
        average changes nothing."""
        gradient = dict(usage_gradient(random_gate))
        mixture = random_gate.mixture
        by_cell = {}
        for (name, _), alpha in zip(mixture.labels, mixture.alphas):
            by_cell[name] = by_cell.get(name, 0.0) + float(alpha)
        total = sum(by_cell[name] * gradient[name] for name in gradient)
        assert total == pytest.approx(0.0, abs=1e-12 * random_gate.mean)

    def test_sorted_descending(self, random_gate):
        values = [v for _, v in usage_gradient(random_gate)]
        assert values == sorted(values, reverse=True)

    def test_dff_is_the_swap_away_candidate(self, random_gate):
        name, value = usage_gradient(random_gate)[0]
        assert name == "DFF_X1"
        assert value > 0
