import math

import numpy as np
import pytest

from repro.core import FullChipModel
from repro.exceptions import ConfigurationError


class TestFromDesign:
    def test_square_die(self):
        chip = FullChipModel.from_design(10_000, 1e-3, 1e-3)
        assert chip.rows == 100 and chip.cols == 100
        assert chip.n_sites == 10_000

    def test_sites_cover_cells(self):
        for n in (1, 7, 97, 1234, 99_991):
            chip = FullChipModel.from_design(n, 1e-3, 1e-3)
            assert chip.n_sites >= n
            assert chip.n_sites <= n + max(chip.rows, chip.cols)

    def test_aspect_ratio_respected(self):
        chip = FullChipModel.from_design(20_000, 2e-3, 1e-3)
        assert chip.cols == pytest.approx(2 * chip.rows, rel=0.05)

    def test_pitches(self):
        chip = FullChipModel.from_design(100, 1e-3, 2e-3)
        assert chip.pitch_x * chip.cols == pytest.approx(1e-3)
        assert chip.pitch_y * chip.rows == pytest.approx(2e-3)
        assert chip.site_area == pytest.approx(chip.pitch_x * chip.pitch_y)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            FullChipModel.from_design(0, 1e-3, 1e-3)
        with pytest.raises(ConfigurationError):
            FullChipModel.from_design(10, -1.0, 1e-3)


class TestFromArea:
    def test_area_matches_budget(self):
        chip = FullChipModel.from_area(1000, 3e-12, aspect=1.0)
        assert chip.area == pytest.approx(1000 * 3e-12, rel=0.01)

    def test_aspect(self):
        chip = FullChipModel.from_area(1000, 3e-12, aspect=4.0)
        assert chip.width / chip.height == pytest.approx(4.0, rel=0.01)

    def test_rejects_bad_area(self):
        with pytest.raises(ConfigurationError):
            FullChipModel.from_area(10, 0.0)


class TestSitePositions:
    def test_centers_inside_die(self):
        chip = FullChipModel.from_design(24, 1e-3, 2e-3)
        pos = chip.site_positions()
        assert pos.shape == (chip.n_sites, 2)
        assert np.all(pos[:, 0] > 0) and np.all(pos[:, 0] < chip.width)
        assert np.all(pos[:, 1] > 0) and np.all(pos[:, 1] < chip.height)

    def test_row_major_order(self):
        chip = FullChipModel(n_cells=6, width=3.0, height=2.0, rows=2,
                             cols=3)
        pos = chip.site_positions()
        np.testing.assert_allclose(pos[0], [0.5, 0.5])
        np.testing.assert_allclose(pos[1], [1.5, 0.5])
        np.testing.assert_allclose(pos[3], [0.5, 1.5])

    def test_pairwise_distances_match_lag_formula(self):
        """d_ij = sqrt((i*dW)^2 + (j*dH)^2) — the linear method's core."""
        chip = FullChipModel(n_cells=12, width=4.0, height=3.0, rows=3,
                             cols=4)
        pos = chip.site_positions()
        a, b = 1, 10  # (col 1, row 0) and (col 2, row 2)
        i = (b % 4) - (a % 4)
        j = (b // 4) - (a // 4)
        expected = math.hypot(i * chip.pitch_x, j * chip.pitch_y)
        actual = float(np.linalg.norm(pos[b] - pos[a]))
        assert actual == pytest.approx(expected)
