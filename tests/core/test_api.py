import math

import numpy as np
import pytest

from repro.core import CellUsage, FullChipLeakageEstimator
from repro.exceptions import EstimationError
from repro.process import LinearCorrelation


@pytest.fixture(scope="module")
def usage():
    return CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.3, "NOR2_X1": 0.2,
                      "DFF_X1": 0.1})


@pytest.fixture(scope="module")
def estimator(characterization, usage):
    return FullChipLeakageEstimator(
        characterization, usage, n_cells=10_000, width=1e-3, height=1e-3)


class TestEstimate:
    def test_mean_is_n_times_rg_mean(self, estimator):
        result = estimator.estimate("linear")
        assert result.mean == pytest.approx(
            10_000 * estimator.random_gate.mean)

    def test_methods_agree(self, estimator):
        linear = estimator.estimate("linear")
        integral = estimator.estimate("integral2d")
        assert integral.std == pytest.approx(linear.std, rel=5e-3)
        assert integral.mean == linear.mean

    def test_auto_picks_linear_for_small(self, estimator):
        assert estimator.estimate("auto").method == "linear"

    def test_auto_picks_integral_for_huge(self, characterization, usage):
        big = FullChipLeakageEstimator(
            characterization, usage, n_cells=2_000_000, width=5e-3,
            height=5e-3)
        assert big.estimate("auto").method == "integral2d"

    @pytest.mark.slow
    def test_polar_method(self, characterization, usage):
        est = FullChipLeakageEstimator(
            characterization, usage, n_cells=10_000, width=2e-3,
            height=2e-3, correlation=LinearCorrelation(4e-4))
        polar = est.estimate("polar")
        integral = est.estimate("integral2d")
        assert polar.std == pytest.approx(integral.std, rel=1e-3)

    def test_unknown_method_rejected(self, estimator):
        with pytest.raises(EstimationError):
            estimator.estimate("quantum")

    def test_vt_multiplier_applied_to_mean_with_vt(self, estimator):
        result = estimator.estimate("linear")
        assert result.vt_multiplier > 1.0
        assert result.mean_with_vt == pytest.approx(
            result.mean * result.vt_multiplier)

    def test_cv_definition(self, estimator):
        result = estimator.estimate("linear")
        assert result.cv == pytest.approx(result.std / result.mean)

    def test_details_populated(self, estimator):
        details = estimator.estimate("linear").details
        assert details["rows"] * details["cols"] >= 10_000
        assert details["rg_std"] > 0


class TestScalingBehaviour:
    """The structural predictions of the model."""

    def test_mean_scales_linearly_with_n(self, characterization, usage):
        results = []
        for n in (1000, 4000):
            est = FullChipLeakageEstimator(
                characterization, usage, n_cells=n,
                width=1e-3 * math.sqrt(n / 1000),
                height=1e-3 * math.sqrt(n / 1000))
            results.append(est.estimate("linear").mean)
        assert results[1] == pytest.approx(4 * results[0], rel=1e-6)

    def test_cv_decreases_with_area_at_fixed_density(self, characterization,
                                                     usage):
        """Bigger dies average more independent WID regions, so the
        relative spread shrinks (toward the D2D floor)."""
        cvs = []
        for n, side in ((2500, 0.5e-3), (40_000, 2e-3)):
            est = FullChipLeakageEstimator(
                characterization, usage, n_cells=n, width=side, height=side)
            cvs.append(est.estimate("linear").cv)
        assert cvs[1] < cvs[0]

    def test_d2d_floor_bounds_cv(self, library, usage):
        """With D2D variation the chip-level CV cannot fall below the
        perfectly correlated component."""
        from repro.characterization import characterize_library
        from repro.process import synthetic_90nm
        tech = synthetic_90nm(correlation_length=0.1e-3, d2d_fraction=0.5)
        char = characterize_library(
            library, tech, cells=["INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"])
        est = FullChipLeakageEstimator(char, CellUsage(
            {"INV_X1": 0.4, "NAND2_X1": 0.3, "NOR2_X1": 0.2, "DFF_X1": 0.1}),
            n_cells=250_000, width=5e-3, height=5e-3)
        result = est.estimate("integral2d")
        floor_cov = float(est.rg_correlation.covariance(
            tech.length.rho_floor))
        floor_std = 250_000 * math.sqrt(floor_cov)
        assert result.std > 0.95 * floor_std


class TestQuickEstimate:
    def test_runs_end_to_end(self):
        from repro import quick_estimate
        result = quick_estimate(n_cells=5000, width=1e-3, height=1e-3)
        assert result.mean > 0
        assert result.std > 0
        assert result.n_cells == 5000


class TestAutoSelection:
    def test_rule_boundary(self):
        from repro.core import resolve_auto_method
        from repro.core.api import AUTO_LINEAR_LIMIT

        assert AUTO_LINEAR_LIMIT == 250_000
        assert resolve_auto_method(AUTO_LINEAR_LIMIT) == "linear"
        assert resolve_auto_method(AUTO_LINEAR_LIMIT + 1) == "integral2d"
        assert resolve_auto_method(1) == "linear"

    def test_concrete_method_surfaced(self, estimator):
        result = estimator.estimate("auto")
        assert result.method == "linear"  # never the literal "auto"
        assert result.details["requested_method"] == "auto"

    def test_explicit_method_recorded_verbatim(self, estimator):
        result = estimator.estimate("integral2d")
        assert result.method == "integral2d"
        assert result.details["requested_method"] == "integral2d"

    def test_exact_records_its_engine(self, characterization, usage):
        small = FullChipLeakageEstimator(
            characterization, usage, n_cells=400, width=2e-4, height=2e-4,
            simplified_correlation=True)
        result = small.estimate("exact")
        assert result.method == "exact"
        assert result.details["exact_engine"] == "lagsum"


class TestSerialization:
    def test_round_trip_is_float_exact(self, estimator):
        import json

        from repro.core import LeakageEstimate

        original = estimator.estimate("linear")
        wire = json.loads(json.dumps(original.to_dict()))
        rebuilt = LeakageEstimate.from_dict(wire)
        assert rebuilt.mean == original.mean
        assert rebuilt.std == original.std
        assert rebuilt.method == original.method
        assert rebuilt.n_cells == original.n_cells
        assert rebuilt.details == original.details

    def test_to_dict_coerces_numpy_scalars(self):
        import json

        from repro.core import LeakageEstimate

        estimate = LeakageEstimate(
            mean=float(np.float64(1.5)), std=0.25, method="linear",
            n_cells=100, signal_probability=0.5, vt_multiplier=1.1,
            details={"rows": np.int64(10), "flag": np.bool_(True),
                     "ratio": np.float64(0.125),
                     "scalar": np.array(2.0)})
        document = estimate.to_dict()
        json.dumps(document)  # must be serializable as-is
        assert document["details"]["rows"] == 10
        assert type(document["details"]["rows"]) is int
        assert document["details"]["flag"] is True
        assert type(document["details"]["ratio"]) is float
        assert document["details"]["scalar"] == 2.0

    def test_from_dict_rejects_garbage(self):
        from repro.core import LeakageEstimate

        with pytest.raises(EstimationError):
            LeakageEstimate.from_dict({"mean": 1.0})
        with pytest.raises(EstimationError):
            LeakageEstimate.from_dict({"mean": "not-a-number",
                                       "std": 1.0, "method": "linear",
                                       "n_cells": 1,
                                       "signal_probability": 0.5,
                                       "vt_multiplier": 1.0})
