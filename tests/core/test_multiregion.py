import math

import numpy as np
import pytest

from repro.core import CellUsage, FullChipLeakageEstimator
from repro.core.multiregion import (
    MultiRegionEstimate,
    Region,
    estimate_multiregion,
)
from repro.exceptions import EstimationError
from repro.process import LinearCorrelation, TotalCorrelation


@pytest.fixture(scope="module")
def logic_usage():
    return CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})


@pytest.fixture(scope="module")
def other_usage():
    return CellUsage({"NOR2_X1": 0.6, "XOR2_X1": 0.4})


def region(name, x0, y0, usage, n=4000, side=4e-4):
    return Region(name=name, x0=x0, y0=y0, width=side, height=side,
                  usage=usage, n_cells=n)


class TestConsistencyWithSingleRegion:
    def test_one_region_matches_estimator(self, small_characterization,
                                          logic_usage):
        result = estimate_multiregion(
            small_characterization, [region("a", 0, 0, logic_usage)],
            diagonal_correction=False)
        single = FullChipLeakageEstimator(
            small_characterization, logic_usage, 4000, 4e-4, 4e-4
        ).estimate("integral2d")
        assert result.mean == pytest.approx(single.mean, rel=1e-9)
        assert result.std == pytest.approx(single.std, rel=1e-6)

    def test_split_homogeneous_chip_recovers_whole(
            self, small_characterization, logic_usage):
        """Cutting one uniform chip into two abutting halves must give
        the same total moments (cross term included)."""
        whole = estimate_multiregion(
            small_characterization,
            [Region("whole", 0, 0, 8e-4, 4e-4, logic_usage, 8000)],
            diagonal_correction=False)
        halves = estimate_multiregion(
            small_characterization,
            [Region("left", 0, 0, 4e-4, 4e-4, logic_usage, 4000),
             Region("right", 4e-4, 0, 4e-4, 4e-4, logic_usage, 4000)],
            diagonal_correction=False)
        assert halves.mean == pytest.approx(whole.mean, rel=1e-9)
        assert halves.std == pytest.approx(whole.std, rel=2e-3)


class TestCrossRegionStructure:
    @pytest.mark.slow
    def test_far_apart_wid_only_regions_decouple(self,
                                                 small_characterization,
                                                 logic_usage, other_usage):
        tech = small_characterization.technology
        wid_only = TotalCorrelation(LinearCorrelation(1e-4),
                                    tech.length.with_split(0.0))
        near = estimate_multiregion(
            small_characterization,
            [region("a", 0, 0, logic_usage),
             region("b", 4.05e-4, 0, other_usage)],
            correlation=wid_only)
        far = estimate_multiregion(
            small_characterization,
            [region("a", 0, 0, logic_usage),
             region("b", 5e-3, 0, other_usage)],
            correlation=wid_only)
        rho_near = near.correlation_matrix()[0, 1]
        rho_far = far.correlation_matrix()[0, 1]
        assert rho_far == pytest.approx(0.0, abs=1e-9)
        assert rho_near > 0.001

    def test_d2d_floor_keeps_regions_coupled(self, small_characterization,
                                             logic_usage, other_usage):
        result = estimate_multiregion(
            small_characterization,
            [region("a", 0, 0, logic_usage),
             region("b", 5e-3, 0, other_usage)])
        rho = result.correlation_matrix()[0, 1]
        assert rho > 0.3  # the shared D2D component never decays

    def test_total_variance_exceeds_independent_sum(
            self, small_characterization, logic_usage, other_usage):
        result = estimate_multiregion(
            small_characterization,
            [region("a", 0, 0, logic_usage),
             region("b", 4.5e-4, 0, other_usage)])
        independent = math.sqrt(float((result.region_stds ** 2).sum()))
        assert result.std > independent

    def test_heterogeneous_means_add(self, small_characterization,
                                     logic_usage, other_usage):
        result = estimate_multiregion(
            small_characterization,
            [region("a", 0, 0, logic_usage),
             region("b", 4.5e-4, 0, other_usage)])
        assert result.mean == pytest.approx(float(result.region_means.sum()))
        assert result.region_names == ("a", "b")


class TestValidation:
    def test_overlapping_regions_rejected(self, small_characterization,
                                          logic_usage):
        with pytest.raises(EstimationError):
            estimate_multiregion(
                small_characterization,
                [region("a", 0, 0, logic_usage),
                 region("b", 2e-4, 2e-4, logic_usage)])

    def test_abutting_regions_allowed(self, small_characterization,
                                      logic_usage):
        result = estimate_multiregion(
            small_characterization,
            [region("a", 0, 0, logic_usage),
             region("b", 4e-4, 0, logic_usage)])
        assert isinstance(result, MultiRegionEstimate)

    def test_empty_rejected(self, small_characterization):
        with pytest.raises(EstimationError):
            estimate_multiregion(small_characterization, [])

    def test_bad_region_rejected(self, logic_usage):
        with pytest.raises(EstimationError):
            Region("x", 0, 0, -1.0, 1.0, logic_usage, 10)
        with pytest.raises(EstimationError):
            Region("x", 0, 0, 1.0, 1.0, logic_usage, 0)
