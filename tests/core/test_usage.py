import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CellUsage
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_fractions_normalized(self):
        usage = CellUsage({"A": 0.5, "B": 0.5})
        assert usage.fractions.sum() == pytest.approx(1.0)
        assert usage["A"] == pytest.approx(0.5)

    def test_zero_fraction_entries_dropped(self):
        usage = CellUsage({"A": 1.0, "B": 0.0})
        assert usage.names == ("A",)
        assert usage["B"] == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            CellUsage({"A": -0.1, "B": 1.1})

    def test_rejects_bad_total(self):
        with pytest.raises(ConfigurationError):
            CellUsage({"A": 0.2, "B": 0.2})

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CellUsage({})

    def test_from_counts(self):
        usage = CellUsage.from_counts({"A": 30, "B": 10})
        assert usage["A"] == pytest.approx(0.75)
        assert usage["B"] == pytest.approx(0.25)

    def test_uniform(self):
        usage = CellUsage.uniform(["A", "B", "C", "D"])
        assert usage["C"] == pytest.approx(0.25)


class TestCountsFor:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=10_000),
        raw=st.lists(st.floats(min_value=0.01, max_value=1.0),
                     min_size=1, max_size=8),
    )
    def test_counts_sum_exactly(self, n, raw):
        total = sum(raw)
        usage = CellUsage({f"c{k}": v / total for k, v in enumerate(raw)})
        counts = usage.counts_for(n)
        assert sum(counts.values()) == n
        assert all(v >= 0 for v in counts.values())

    def test_counts_close_to_fractions(self):
        usage = CellUsage({"A": 0.5, "B": 0.3, "C": 0.2})
        counts = usage.counts_for(1000)
        assert counts == {"A": 500, "B": 300, "C": 200}

    def test_largest_remainder_rounding(self):
        usage = CellUsage({"A": 1 / 3, "B": 1 / 3, "C": 1 / 3})
        counts = usage.counts_for(10)
        assert sum(counts.values()) == 10
        assert sorted(counts.values()) == [3, 3, 4]


class TestSample:
    def test_sampled_fractions_converge(self, rng):
        usage = CellUsage({"A": 0.7, "B": 0.3})
        names = usage.sample(20_000, rng)
        fraction_a = float(np.mean(names == "A"))
        assert fraction_a == pytest.approx(0.7, abs=0.02)

    def test_repr_mentions_top_entries(self):
        usage = CellUsage({"A": 0.9, "B": 0.1})
        assert "A" in repr(usage)
