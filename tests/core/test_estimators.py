"""Cross-validation of the four variance estimators.

The load-bearing facts, each from the paper:

* the linear-time transform (eq. 17) is an *exact* rewrite of the
  pairwise sum (eq. 15) on a grid;
* the 2-D integral (eq. 20) converges to the linear result as n grows;
* the polar 1-D integral (eqs. 25-26) matches the 2-D integral when its
  support condition holds, and refuses when it does not.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CellUsage, FullChipModel, RandomGate, RGCorrelation, \
    expand_mixture
from repro.core.estimators import (
    exact_moments,
    integral2d_variance,
    linear_variance,
    pair_params_from_fits,
    polar_variance,
)
from repro.exceptions import EstimationError
from repro.process import (
    ExponentialCorrelation,
    LinearCorrelation,
    ProcessParameter,
    TotalCorrelation,
)

MU_L = 50e-9
SIGMA_L = 2.5e-9


@pytest.fixture(scope="module")
def rg(small_characterization):
    usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.3, "NOR2_X1": 0.2})
    return RandomGate(expand_mixture(small_characterization, usage, 0.5))


@pytest.fixture(scope="module")
def rgc(rg):
    return RGCorrelation(rg, MU_L, SIGMA_L)


@pytest.fixture(scope="module")
def correlation():
    param = ProcessParameter("L", MU_L, SIGMA_L / math.sqrt(2),
                             SIGMA_L / math.sqrt(2))
    return TotalCorrelation(ExponentialCorrelation(4e-4), param)


def brute_force_grid_variance(chip, correlation, rgc):
    pos = chip.site_positions()
    delta = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
    cov = rgc.covariance(correlation(dist))
    np.fill_diagonal(cov, rgc.same_site_covariance)
    return float(cov.sum())


class TestLinearIsExactOnGrids:
    @settings(max_examples=12, deadline=None)
    @given(rows=st.integers(min_value=1, max_value=12),
           cols=st.integers(min_value=1, max_value=12))
    def test_matches_brute_force(self, rows, cols, rgc, correlation):
        chip = FullChipModel(n_cells=rows * cols, width=cols * 5e-6,
                             height=rows * 5e-6, rows=rows, cols=cols)
        brute = brute_force_grid_variance(chip, correlation, rgc)
        linear = linear_variance(rows, cols, chip.pitch_x, chip.pitch_y,
                                 correlation, rgc)
        assert linear == pytest.approx(brute, rel=1e-12)

    def test_rejects_bad_grid(self, rgc, correlation):
        with pytest.raises(EstimationError):
            linear_variance(0, 5, 1e-6, 1e-6, correlation, rgc)


class TestIntegralConvergence:
    def test_error_shrinks_with_n(self, rgc, correlation):
        """Fig. 7's shape: integral error large for small n, tiny for
        large n."""
        errors = []
        for side in (10, 40, 160):
            width = height = side * 4e-6
            chip = FullChipModel(n_cells=side * side, width=width,
                                 height=height, rows=side, cols=side)
            lin = linear_variance(side, side, chip.pitch_x, chip.pitch_y,
                                  correlation, rgc)
            i2d = integral2d_variance(side * side, width, height,
                                      correlation, rgc)
            errors.append(abs(math.sqrt(i2d) - math.sqrt(lin))
                          / math.sqrt(lin))
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 5e-3

    def test_rejects_bad_inputs(self, rgc, correlation):
        with pytest.raises(EstimationError):
            integral2d_variance(0, 1e-3, 1e-3, correlation, rgc)


class TestPolar:
    @pytest.mark.slow
    def test_matches_2d_with_compact_support_wid_only(self, rgc):
        corr = LinearCorrelation(3e-4)
        i2d = integral2d_variance(10_000, 1e-3, 1e-3, corr, rgc)
        pol = polar_variance(10_000, 1e-3, 1e-3, corr, rgc)
        assert pol == pytest.approx(i2d, rel=1e-4)

    def test_matches_2d_with_d2d_floor(self, rgc):
        param = ProcessParameter("L", MU_L, SIGMA_L * 0.6, SIGMA_L * 0.8)
        corr = TotalCorrelation(LinearCorrelation(3e-4), param)
        i2d = integral2d_variance(10_000, 1e-3, 1e-3, corr, rgc)
        pol = polar_variance(10_000, 1e-3, 1e-3, corr, rgc)
        assert pol == pytest.approx(i2d, rel=1e-4)

    def test_matches_2d_with_truncated_exponential(self, rgc, correlation):
        i2d = integral2d_variance(10_000, 4e-3, 4e-3, correlation, rgc)
        pol = polar_variance(10_000, 4e-3, 4e-3, correlation, rgc)
        assert pol == pytest.approx(i2d, rel=1e-3)

    def test_refuses_when_support_exceeds_die(self, rgc):
        corr = LinearCorrelation(2e-3)
        with pytest.raises(EstimationError):
            polar_variance(100, 1e-3, 1e-3, corr, rgc)

    def test_angular_kernel_value(self):
        from repro.core.estimators.polar import angular_kernel
        # g(0) = (pi/2) W H
        assert angular_kernel(0.0, 2.0, 3.0) == pytest.approx(3 * math.pi)


class TestExactMoments:
    def test_matches_naive_loop(self, rgc, correlation, rng):
        n = 40
        positions = rng.uniform(0, 1e-3, (n, 2))
        means = rng.uniform(1e-9, 1e-8, n)
        stds = rng.uniform(1e-10, 1e-9, n)
        mean, std = exact_moments(positions, means, stds, correlation,
                                  block_size=7)
        naive_var = 0.0
        for i in range(n):
            for j in range(n):
                d = float(np.linalg.norm(positions[i] - positions[j]))
                naive_var += stds[i] * stds[j] * float(correlation(d))
        assert mean == pytest.approx(float(means.sum()))
        assert std == pytest.approx(math.sqrt(naive_var), rel=1e-10)

    def test_corr_stds_split(self, correlation, rng):
        """State-selection variance sits on the diagonal only."""
        n = 25
        positions = rng.uniform(0, 1e-3, (n, 2))
        means = rng.uniform(1e-9, 1e-8, n)
        stds = rng.uniform(5e-10, 1e-9, n)
        corr_stds = 0.5 * stds
        _, std_split = exact_moments(positions, means, stds, correlation,
                                     corr_stds=corr_stds)
        _, std_full = exact_moments(positions, means, stds, correlation)
        _, std_low = exact_moments(positions, means, corr_stds, correlation)
        assert std_low < std_split < std_full

    def test_exact_pair_params_match_simplified_for_identical_fits(
            self, small_characterization, correlation, rng):
        """When every gate shares one fit, f_mm(rho) ~ rho, so both
        covariance models nearly coincide (Fig. 2's y = x)."""
        fit = small_characterization["INV_X1"].states[0].fit
        from repro.characterization import mgf_moments
        mean, std = mgf_moments(fit.a, fit.b, fit.c, MU_L, SIGMA_L)
        n = 30
        positions = rng.uniform(0, 1e-3, (n, 2))
        means = np.full(n, mean)
        stds = np.full(n, std)
        pair_params = pair_params_from_fits([fit] * n, MU_L, SIGMA_L)
        _, std_simpl = exact_moments(positions, means, stds, correlation)
        _, std_exact = exact_moments(positions, means, stds, correlation,
                                     pair_params=pair_params)
        assert std_exact == pytest.approx(std_simpl, rel=0.03)

    def test_block_size_invariance(self, correlation, rng):
        n = 50
        positions = rng.uniform(0, 1e-3, (n, 2))
        means = rng.uniform(1e-9, 1e-8, n)
        stds = rng.uniform(1e-10, 1e-9, n)
        results = [exact_moments(positions, means, stds, correlation,
                                 block_size=bs)[1] for bs in (3, 17, 100)]
        assert results[0] == pytest.approx(results[1], rel=1e-12)
        assert results[1] == pytest.approx(results[2], rel=1e-12)

    def test_shape_validation(self, correlation):
        with pytest.raises(EstimationError):
            exact_moments(np.zeros((3, 3)), np.zeros(3), np.zeros(3),
                          correlation)
