"""Equivalence of the fast exact-estimator paths with the dense sum.

The dense O(n^2) pairwise loop is the reference; the pruned and lag-sum
paths must reproduce it — to machine precision on lattices and exact
bucket covers, and within the documented truncation bound when a
``tolerance`` is requested. Coverage spans random and grid placements,
heterogeneous per-gate fits, all four isotropic correlation families
(compact and infinite support) plus the D2D-floor total correlation,
and both moment modes (simplified ``corr_stds`` and exact
``pair_params``).
"""

import math

import numpy as np
import pytest

from repro.characterization.fitting import LeakageFit
from repro.core import FullChipModel
from repro.core.estimators import (
    detect_grid,
    exact_moments,
    pair_params_from_fits,
)
from repro.exceptions import EstimationError
from repro.process import (
    ExponentialCorrelation,
    GaussianCorrelation,
    LinearCorrelation,
    ProcessParameter,
    SphericalCorrelation,
    TotalCorrelation,
)

MU_L = 50e-9
SIGMA_L = 2.5e-9

#: Four heterogeneous cell-state fits, tiled over the design so the
#: type-grouped paths see repeated (a, h, k) triplets.
FITS = (
    LeakageFit(a=2.0e-7, b=-4.5e7, c=9.0e13, rms_log_error=0.0),
    LeakageFit(a=5.0e-8, b=-6.0e7, c=1.4e14, rms_log_error=0.0),
    LeakageFit(a=1.1e-7, b=-5.2e7, c=1.1e14, rms_log_error=0.0),
    LeakageFit(a=3.3e-8, b=-3.8e7, c=7.0e13, rms_log_error=0.0),
)

CORRELATIONS = {
    "exponential": ExponentialCorrelation(2e-4),
    "gaussian": GaussianCorrelation(2e-4),
    "linear": LinearCorrelation(4e-4),
    "spherical": SphericalCorrelation(4e-4),
    "total-floor": TotalCorrelation(
        ExponentialCorrelation(2e-4),
        ProcessParameter("L", MU_L, SIGMA_L / math.sqrt(2),
                         SIGMA_L / math.sqrt(2))),
}


def random_placement(n, rng, extent=2e-3):
    return rng.uniform(0.0, extent, size=(n, 2))


def grid_placement(n_side, pitch=12e-6):
    cc, rr = np.meshgrid(np.arange(n_side), np.arange(n_side))
    return np.column_stack([cc.ravel() * pitch, rr.ravel() * pitch])


def gate_arrays(n, rng):
    """Heterogeneous means/stds/corr_stds plus tiled pair params.

    Means are the fit-implied ``E[X_g]`` so the pair-moment variance
    identity ``sum cross - (sum mu)^2`` stays consistent.
    """
    fits = tuple(FITS[i % len(FITS)] for i in range(n))
    pair_params = pair_params_from_fits(fits, MU_L, SIGMA_L)
    a, h, k = pair_params
    one = 1.0 - 2.0 * a
    means = one ** -0.5 * np.exp(k + h * h / (2.0 * one))
    stds = rng.uniform(0.2e-7, 0.8e-7, size=n)
    corr_stds = stds * rng.uniform(0.6, 1.0, size=n)
    return means, stds, corr_stds, pair_params


class TestGridDetection:
    def test_detects_square_grid(self):
        positions = grid_placement(9)
        info = detect_grid(positions)
        assert info is not None
        assert (info.rows, info.cols) == (9, 9)
        flat = info.row_index * info.cols + info.col_index
        assert sorted(flat) == list(range(81))

    def test_detects_sparse_grid(self, rng):
        positions = grid_placement(10)
        keep = rng.permutation(100)[:60]
        info = detect_grid(positions[keep])
        assert info is not None
        assert info.rows <= 10 and info.cols <= 10

    def test_rejects_scattered(self, rng):
        assert detect_grid(random_placement(50, rng)) is None

    def test_hint_expands_extent(self):
        positions = grid_placement(4)
        info = detect_grid(positions, rows=6, cols=6)
        assert (info.rows, info.cols) == (6, 6)

    def test_hint_below_extent_rejected(self):
        positions = grid_placement(6)
        assert detect_grid(positions, rows=4, cols=4) is None


@pytest.mark.parametrize("name", sorted(CORRELATIONS))
class TestPrunedMatchesDense:
    """Zero-tolerance pruning is exact: the bucket cover is clamped to
    the die extent, so no pair is ever dropped."""

    def test_simplified(self, name, rng):
        correlation = CORRELATIONS[name]
        positions = random_placement(300, rng)
        means, stds, corr_stds, _ = gate_arrays(300, rng)
        dense = exact_moments(positions, means, stds, correlation,
                              corr_stds=corr_stds, method="dense")
        tol = 0.0 if math.isfinite(correlation.support) else 1e-12
        pruned = exact_moments(positions, means, stds, correlation,
                               corr_stds=corr_stds, method="pruned",
                               tolerance=tol)
        assert pruned[0] == dense[0]
        assert pruned[1] == pytest.approx(dense[1], rel=1e-9)

    def test_pair_params(self, name, rng):
        correlation = CORRELATIONS[name]
        positions = random_placement(200, rng)
        means, stds, _, pair_params = gate_arrays(200, rng)
        dense = exact_moments(positions, means, stds, correlation,
                              pair_params=pair_params, method="dense")
        tol = 0.0 if math.isfinite(correlation.support) else 1e-12
        pruned = exact_moments(positions, means, stds, correlation,
                               pair_params=pair_params, method="pruned",
                               tolerance=tol)
        assert pruned[1] == pytest.approx(dense[1], rel=1e-9)


@pytest.mark.parametrize("name", sorted(CORRELATIONS))
class TestLagsumMatchesDense:
    """The lag transform is exact on lattices — full, sparse, and with
    multiple gates per site."""

    def test_simplified_full_grid(self, name, rng):
        correlation = CORRELATIONS[name]
        positions = grid_placement(16)
        n = positions.shape[0]
        means, stds, corr_stds, _ = gate_arrays(n, rng)
        dense = exact_moments(positions, means, stds, correlation,
                              corr_stds=corr_stds, method="dense")
        lagsum = exact_moments(positions, means, stds, correlation,
                               corr_stds=corr_stds, method="lagsum")
        assert lagsum[1] == pytest.approx(dense[1], rel=1e-11)

    def test_pair_params_full_grid(self, name, rng):
        correlation = CORRELATIONS[name]
        positions = grid_placement(12)
        n = positions.shape[0]
        means, stds, _, pair_params = gate_arrays(n, rng)
        dense = exact_moments(positions, means, stds, correlation,
                              pair_params=pair_params, method="dense")
        lagsum = exact_moments(positions, means, stds, correlation,
                               pair_params=pair_params, method="lagsum")
        assert lagsum[1] == pytest.approx(dense[1], rel=1e-11)

    def test_sparse_and_stacked_occupancy(self, name, rng):
        correlation = CORRELATIONS[name]
        base = grid_placement(10)
        keep = rng.permutation(100)[:70]
        positions = np.vstack([base[keep], base[keep[:15]]])  # 15 doubled
        n = positions.shape[0]
        means, stds, corr_stds, pair_params = gate_arrays(n, rng)
        for kwargs in ({"corr_stds": corr_stds},
                       {"pair_params": pair_params}):
            dense = exact_moments(positions, means, stds, correlation,
                                  method="dense", **kwargs)
            lagsum = exact_moments(positions, means, stds, correlation,
                                   method="lagsum", **kwargs)
            assert lagsum[1] == pytest.approx(dense[1], rel=1e-11)


class TestTruncationBound:
    def test_simplified_error_within_bound(self, rng):
        correlation = ExponentialCorrelation(1e-4)
        positions = random_placement(400, rng, extent=3e-3)
        means, stds, corr_stds, _ = gate_arrays(400, rng)
        _, dense_std = exact_moments(positions, means, stds, correlation,
                                     corr_stds=corr_stds, method="dense")
        for tolerance in (1e-3, 1e-6, 1e-9):
            _, fast_std = exact_moments(
                positions, means, stds, correlation, corr_stds=corr_stds,
                method="pruned", tolerance=tolerance)
            bound = tolerance * float(corr_stds.sum()) ** 2
            assert abs(fast_std ** 2 - dense_std ** 2) <= bound + 1e-30

    def test_pruned_needs_finite_radius(self, rng):
        positions = random_placement(50, rng)
        means, stds, corr_stds, _ = gate_arrays(50, rng)
        with pytest.raises(EstimationError):
            exact_moments(positions, means, stds,
                          ExponentialCorrelation(1e-4),
                          corr_stds=corr_stds, method="pruned",
                          tolerance=0.0)

    def test_lagsum_tolerance_still_tight(self, rng):
        correlation = CORRELATIONS["total-floor"]
        positions = grid_placement(12)
        n = positions.shape[0]
        means, stds, _, pair_params = gate_arrays(n, rng)
        dense = exact_moments(positions, means, stds, correlation,
                              pair_params=pair_params, method="dense")
        truncated = exact_moments(positions, means, stds, correlation,
                                  pair_params=pair_params, method="lagsum",
                                  tolerance=1e-7)
        assert truncated[1] == pytest.approx(dense[1], rel=1e-5)


class TestParallelDeterminism:
    def test_dense_parallel_is_bit_identical(self, rng):
        correlation = CORRELATIONS["total-floor"]
        positions = random_placement(300, rng)
        means, stds, corr_stds, _ = gate_arrays(300, rng)
        serial = exact_moments(positions, means, stds, correlation,
                               corr_stds=corr_stds, method="dense",
                               block_size=64)
        twice = [exact_moments(positions, means, stds, correlation,
                               corr_stds=corr_stds, method="dense",
                               block_size=64, n_jobs=2)
                 for _ in range(2)]
        assert twice[0] == twice[1]  # run-to-run determinism
        assert twice[0] == serial    # and equal to serial, bit for bit

    def test_pruned_parallel_matches_serial(self, rng):
        correlation = LinearCorrelation(4e-4)
        positions = random_placement(400, rng)
        means, stds, _, pair_params = gate_arrays(400, rng)
        serial = exact_moments(positions, means, stds, correlation,
                               pair_params=pair_params, method="pruned",
                               block_size=64)
        parallel = exact_moments(positions, means, stds, correlation,
                                 pair_params=pair_params, method="pruned",
                                 block_size=64, n_jobs=2)
        assert parallel == serial


class TestDispatcher:
    def test_auto_keeps_dense_bit_compatibility(self, rng):
        # tolerance=0, n_jobs=1, no grid hint: auto must equal dense.
        correlation = CORRELATIONS["total-floor"]
        positions = grid_placement(8)
        n = positions.shape[0]
        means, stds, corr_stds, _ = gate_arrays(n, rng)
        auto = exact_moments(positions, means, stds, correlation,
                             corr_stds=corr_stds)
        dense = exact_moments(positions, means, stds, correlation,
                              corr_stds=corr_stds, method="dense")
        assert auto == dense

    def test_auto_takes_lagsum_on_grids(self, rng):
        correlation = CORRELATIONS["total-floor"]
        positions = grid_placement(8)
        n = positions.shape[0]
        means, stds, corr_stds, _ = gate_arrays(n, rng)
        dense = exact_moments(positions, means, stds, correlation,
                              corr_stds=corr_stds, method="dense")
        auto = exact_moments(positions, means, stds, correlation,
                             corr_stds=corr_stds, tolerance=1e-9)
        assert auto[1] == pytest.approx(dense[1], rel=1e-9)

    def test_lagsum_rejects_scattered(self, rng):
        positions = random_placement(40, rng)
        means, stds, corr_stds, _ = gate_arrays(40, rng)
        with pytest.raises(EstimationError):
            exact_moments(positions, means, stds,
                          CORRELATIONS["exponential"],
                          corr_stds=corr_stds, method="lagsum")

    def test_corr_stds_warning_on_pair_params(self, rng):
        positions = grid_placement(4)
        n = positions.shape[0]
        means, stds, corr_stds, pair_params = gate_arrays(n, rng)
        with pytest.warns(UserWarning, match="corr_stds is ignored"):
            exact_moments(positions, means, stds,
                          CORRELATIONS["exponential"],
                          pair_params=pair_params, corr_stds=corr_stds)


class TestEstimatorCrossCheck:
    def test_exact_method_matches_linear(self, small_characterization):
        from repro.core import CellUsage
        from repro.core.api import FullChipLeakageEstimator

        usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.3, "NOR2_X1": 0.2})
        estimator = FullChipLeakageEstimator(
            small_characterization, usage, n_cells=3600, width=0.6e-3,
            height=0.6e-3, simplified_correlation=True)
        linear = estimator.estimate("linear")
        exact = estimator.estimate("exact")
        assert exact.std == pytest.approx(linear.std, rel=1e-9)
        assert exact.mean == pytest.approx(linear.mean, rel=1e-12)
