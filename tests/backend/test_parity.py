"""Kernel parity: numpy backend vs the historical inline formulas
(bit-exact), and every available backend vs numpy within the declared
:data:`~repro.backend.base.KERNELS` contracts.

The randomized cases draw standardized mixture parameters inside the
moment-existence region (``a < 1/(2(1+|rho|))`` for ``|rho| <= 1``
requires ``a < 0.25``; we draw ``a in [0, 0.2]``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import KERNELS, available_backends, get_backend
from repro.exceptions import MomentExistenceError

BACKENDS = available_backends()


def historical_rg_grid(alphas, a, h, k, grid, mean_total):
    """The pre-backend per-grid-point loop, verbatim op order."""
    one = 1.0 - 2.0 * a
    d0 = np.outer(one, one)
    aa = np.outer(a, a)
    h_sq = h * h
    p0 = h_sq[:, None] * one[None, :] + h_sq[None, :] * one[:, None]
    p2 = 2.0 * (h_sq[:, None] * a[None, :] + h_sq[None, :] * a[:, None])
    p1 = 2.0 * np.outer(h, h)
    k_sum = k[:, None] + k[None, :]
    values = np.empty_like(grid)
    for idx, rho in enumerate(grid):
        det = d0 - 4.0 * rho * rho * aa
        if np.any(det <= 0):
            raise MomentExistenceError(
                f"pairwise cross moment does not exist at rho_L = {rho:.3f}")
        quad = (p0 + rho * p1 + rho * rho * p2) / det
        cross = det ** -0.5 * np.exp(k_sum + 0.5 * quad)
        values[idx] = float(alphas @ cross @ alphas) - mean_total ** 2
    return values


def rg_case(q, rng):
    alphas = rng.uniform(0.5, 1.5, q)
    alphas /= alphas.sum()
    a = rng.uniform(0.0, 0.2, q)
    h = rng.normal(0.0, 0.4, q)
    k = rng.normal(-1.0, 0.3, q)
    one = 1.0 - 2.0 * a
    means = one ** -0.5 * np.exp(k + 0.5 * h * h / one)
    return alphas, a, h, k, float(alphas @ means)


def lag_case(rows, cols, rng, pitch=2e-6):
    x = (np.arange(2 * cols - 1) - (cols - 1)) * pitch
    y = (np.arange(2 * rows - 1) - (rows - 1)) * pitch
    counts = rng.integers(1, 50, (2 * cols - 1, 2 * rows - 1)).astype(float)
    rho = rng.uniform(-1.0, 1.0, counts.shape)
    return x, y, counts, rho, (cols - 1, rows - 1)


# -- numpy backend vs historical inline code (bit-exact) ------------------


@pytest.mark.parametrize("q", [1, 2, 17, 130])
def test_numpy_rg_grid_bit_identical_to_historical_loop(q, rng):
    kernels = get_backend("numpy")
    alphas, a, h, k, mean_total = rg_case(q, rng)
    grid = np.linspace(-1.0, 1.0, 65)
    got = kernels.rg_covariance_grid(alphas, a, h, k, grid, mean_total)
    want = historical_rg_grid(alphas, a, h, k, grid, mean_total)
    assert np.array_equal(got, want)


def test_numpy_rg_grid_chunking_is_bit_identical(rng, monkeypatch):
    """A chunk boundary inside the grid must not change a single bit."""
    from repro.backend import numpy_backend

    alphas, a, h, k, mean_total = rg_case(17, rng)
    grid = np.linspace(-1.0, 1.0, 65)
    kernels = numpy_backend.NumpyBackend()
    want = kernels.rg_covariance_grid(alphas, a, h, k, grid, mean_total)
    monkeypatch.setattr(numpy_backend, "_GRID_CHUNK_ELEMENTS", 1)
    got = kernels.rg_covariance_grid(alphas, a, h, k, grid, mean_total)
    assert np.array_equal(got, want)


def test_numpy_rg_grid_existence_error_matches_historical(rng):
    kernels = get_backend("numpy")
    alphas, a, h, k, mean_total = rg_case(4, rng)
    a = a + 0.3  # push pairs past a = 1/(2(1+|rho|)) at |rho| near 1
    grid = np.linspace(-1.0, 1.0, 65)
    with pytest.raises(MomentExistenceError) as err_backend:
        kernels.rg_covariance_grid(alphas, a, h, k, grid, mean_total)
    with pytest.raises(MomentExistenceError) as err_historical:
        historical_rg_grid(alphas, a, h, k, grid, mean_total)
    assert str(err_backend.value) == str(err_historical.value)


def test_numpy_lag_reduce_bit_identical(rng):
    kernels = get_backend("numpy")
    x, y, counts, rho, zero_lag = lag_case(7, 9, rng)
    # Simplified mapping: cov = scale * rho, zero lag replaced.
    scale = 2.5e-13
    cov = scale * rho
    cov[zero_lag] = 4.0e-13
    want = float(np.sum(counts * cov))
    got = kernels.lag_reduce(counts, rho, zero_lag, 4.0e-13, scale,
                             None, None)
    assert got == want
    # Exact mapping: cov = interp(rho, grid, values).
    grid = np.linspace(-1.0, 1.0, 33)
    values = np.sort(rng.normal(0.0, 1e-13, 33))
    cov = np.interp(rho, grid, values)
    cov[zero_lag] = 4.0e-13
    want = float(np.sum(counts * cov))
    got = kernels.lag_reduce(counts, rho, zero_lag, 4.0e-13, None,
                             grid, values)
    assert got == want


def test_numpy_lag_reduce_does_not_mutate_rho(rng):
    kernels = get_backend("numpy")
    _, _, counts, rho, zero_lag = lag_case(5, 5, rng)
    before = rho.copy()
    kernels.lag_reduce(counts, rho, zero_lag, 1.0, 2.0, None, None)
    assert np.array_equal(rho, before)


def test_numpy_weighted_sum_bit_identical(rng):
    kernels = get_backend("numpy")
    weights = rng.uniform(0.0, 100.0, (31, 17))
    values = rng.normal(0.0, 1.0, (31, 17))
    assert kernels.weighted_sum(weights, values) == float(
        (weights * values).sum())


@pytest.mark.parametrize("gaussian", [False, True])
@pytest.mark.parametrize("floor,scale", [(0.0, 1.0), (0.35, 0.65)])
def test_numpy_exp_lag_rho_bit_identical(gaussian, floor, scale, rng):
    kernels = get_backend("numpy")
    x, y, _, _, _ = lag_case(11, 13, rng)
    length = 0.5e-3
    distance = np.hypot(x[:, None], y[None, :])
    if gaussian:
        base = np.exp(-((distance / length) ** 2))
    else:
        base = np.exp(-distance / length)
    want = base if (floor == 0.0 and scale == 1.0) else floor + scale * base
    got = kernels.exp_lag_rho(x, y, length, floor, scale, gaussian)
    assert np.array_equal(got, want)


def test_numpy_modulate_noise_bit_identical(rng):
    kernels = get_backend("numpy")
    draws = rng.standard_normal((3, 2, 8, 6))
    amplitude = rng.uniform(0.0, 1.0, (8, 6))
    want = amplitude[None] * (draws[:, 0] + 1j * draws[:, 1])
    got = kernels.modulate_noise(draws, amplitude)
    assert np.array_equal(got, want)


# -- every available backend vs the numpy reference -----------------------


@pytest.mark.parametrize("name", BACKENDS)
def test_backend_rg_grid_within_contract(name, rng):
    reference = get_backend("numpy")
    candidate = get_backend(name)
    alphas, a, h, k, mean_total = rg_case(40, rng)
    grid = np.linspace(-1.0, 1.0, 65)
    want = reference.rg_covariance_grid(alphas, a, h, k, grid, mean_total)
    got = candidate.rg_covariance_grid(alphas, a, h, k, grid, mean_total)
    np.testing.assert_allclose(got, want,
                               rtol=KERNELS["rg_covariance_grid"].rtol,
                               atol=0.0)


@pytest.mark.parametrize("name", BACKENDS)
def test_backend_existence_error_within_contract(name, rng):
    candidate = get_backend(name)
    alphas, a, h, k, mean_total = rg_case(4, rng)
    with pytest.raises(MomentExistenceError):
        candidate.rg_covariance_grid(alphas, a + 0.3, h, k,
                                     np.linspace(-1.0, 1.0, 65),
                                     mean_total)


@pytest.mark.parametrize("name", BACKENDS)
def test_backend_lag_reduce_within_contract(name, rng):
    reference = get_backend("numpy")
    candidate = get_backend(name)
    x, y, counts, rho, zero_lag = lag_case(21, 19, rng)
    rtol = KERNELS["lag_reduce"].rtol
    want = reference.lag_reduce(counts, rho, zero_lag, 3.0e-13, 1.2e-13,
                                None, None)
    got = candidate.lag_reduce(counts, rho, zero_lag, 3.0e-13, 1.2e-13,
                               None, None)
    assert got == pytest.approx(want, rel=rtol)
    grid = np.linspace(-1.0, 1.0, 65)
    values = np.sort(rng.normal(0.0, 1e-13, 65))
    want = reference.lag_reduce(counts, rho, zero_lag, 3.0e-13, None,
                                grid, values)
    got = candidate.lag_reduce(counts, rho, zero_lag, 3.0e-13, None,
                               grid, values)
    assert got == pytest.approx(want, rel=rtol)


@pytest.mark.parametrize("name", BACKENDS)
def test_backend_weighted_sum_within_contract(name, rng):
    reference = get_backend("numpy")
    candidate = get_backend(name)
    weights = rng.uniform(0.0, 100.0, (63, 41))
    values = rng.normal(0.0, 1e-12, (63, 41))
    want = reference.weighted_sum(weights, values)
    got = candidate.weighted_sum(weights, values)
    assert got == pytest.approx(want, rel=KERNELS["weighted_sum"].rtol)


@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("gaussian", [False, True])
def test_backend_exp_lag_rho_within_contract(name, gaussian, rng):
    reference = get_backend("numpy")
    candidate = get_backend(name)
    x, y, _, _, _ = lag_case(33, 27, rng)
    want = reference.exp_lag_rho(x, y, 0.5e-3, 0.4, 0.6, gaussian)
    got = candidate.exp_lag_rho(x, y, 0.5e-3, 0.4, 0.6, gaussian)
    np.testing.assert_allclose(got, want,
                               rtol=KERNELS["exp_lag_rho"].rtol, atol=0.0)


@pytest.mark.parametrize("name", BACKENDS)
def test_backend_modulate_noise_bit_compatible(name, rng):
    assert KERNELS["modulate_noise"].rtol == 0.0
    reference = get_backend("numpy")
    candidate = get_backend(name)
    draws = rng.standard_normal((4, 2, 16, 12))
    amplitude = rng.uniform(0.0, 1.0, (16, 12))
    want = reference.modulate_noise(draws, amplitude)
    got = candidate.modulate_noise(draws, amplitude)
    assert np.array_equal(got, want)


@pytest.mark.parametrize("name", BACKENDS)
def test_backend_warmup_and_status(name):
    candidate = get_backend(name)
    assert candidate.warmup() > 0.0
    status = candidate.status()
    assert status["name"] == candidate.name
    assert status["threads"] >= 1
