"""Backend plumbing through the public entry points.

The invariant under test everywhere: routing through the (default)
numpy backend is a pure refactor — estimates, sweeps, samplers, and
service requests answer bit-identically with and without an explicit
``backend=`` argument, and the service cache key ignores the knob.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, lattice_rho, get_backend
from repro.backend.registry import BACKEND_ENV_VAR
from repro.core import CellUsage, FullChipLeakageEstimator
from repro.core.api import estimate_sweep
from repro.core.estimators import exact_moments
from repro.core.estimators.linear import LagGeometry
from repro.core.sweep import correlation_length_axis
from repro.exceptions import ConfigurationError
from repro.process.correlation import (
    AnisotropicCorrelation,
    ExponentialCorrelation,
)
from repro.process.field import sample_field
from repro.service.jobs import EstimateRequest

USAGE = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})


@pytest.fixture(autouse=True)
def clean_selection(monkeypatch):
    from repro.backend import set_default_backend

    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    previous = set_default_backend(None)
    yield
    set_default_backend(previous)


def estimator(small_characterization, **kwargs):
    return FullChipLeakageEstimator(
        small_characterization, USAGE, 400, 2e-4, 2e-4, **kwargs)


def test_explicit_numpy_backend_is_bit_identical(small_characterization):
    base = estimator(small_characterization).estimate("linear")
    routed = estimator(small_characterization,
                       backend="numpy").estimate("linear")
    assert routed.mean == base.mean
    assert routed.std == base.std
    assert routed.details == base.details


def test_backend_argument_on_estimate_call(small_characterization):
    base = estimator(small_characterization).estimate("linear")
    routed = estimator(small_characterization).estimate(
        "linear", backend="numpy")
    assert (routed.mean, routed.std) == (base.mean, base.std)


def test_numba_request_matches_default(small_characterization):
    """Missing numba must degrade to the identical numpy answer; an
    installed numba must agree within the reduction contract."""
    base = estimator(small_characterization).estimate("linear")
    routed = estimator(small_characterization,
                       backend="numba").estimate("linear")
    if "numba" in available_backends():
        assert routed.std == pytest.approx(base.std, rel=1e-8)
        assert routed.mean == base.mean
    else:
        assert (routed.mean, routed.std) == (base.mean, base.std)


def test_env_variable_flow(small_characterization, monkeypatch):
    base = estimator(small_characterization).estimate("linear")
    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    routed = estimator(small_characterization).estimate("linear")
    assert (routed.mean, routed.std) == (base.mean, base.std)


def test_backend_recorded_on_trace_root(small_characterization):
    traced = estimator(small_characterization).estimate(
        "linear", trace=True, backend="numpy")
    root = traced.details["trace"]["spans"][0]
    assert root["attrs"]["backend"] == "numpy"


def test_exact_lagsum_backend_is_bit_identical(technology, rng):
    side = 12
    pitch = 2e-6
    cc, rr = np.meshgrid(np.arange(side), np.arange(side))
    positions = np.column_stack([cc.ravel() * pitch, rr.ravel() * pitch])
    n = side * side
    means = rng.uniform(1e-9, 5e-9, n)
    stds = rng.uniform(1e-10, 5e-10, n)
    correlation = technology.total_correlation
    base = exact_moments(positions, means, stds, correlation,
                         method="lagsum", grid=(side, side))
    routed = exact_moments(positions, means, stds, correlation,
                           method="lagsum", grid=(side, side),
                           backend="numpy")
    assert routed == base


def test_sweep_backend_matches_loop(small_characterization):
    technology = small_characterization.technology
    lengths = [0.3e-3, 0.6e-3]
    axis = correlation_length_axis(lengths, technology)
    sweep = estimate_sweep(
        small_characterization, USAGE, 400, 2e-4, 2e-4, axes=[axis],
        method="linear", backend="numpy")
    looped = []
    for override in axis.overrides:
        looped.append(FullChipLeakageEstimator(
            small_characterization, USAGE, 400, 2e-4, 2e-4,
            correlation=override["correlation"],
            backend="numpy").estimate("linear"))
    assert len(sweep) == len(looped)
    for got, want in zip(sweep, looped):
        assert got.mean == want.mean
        assert got.std == want.std
        assert got.details == want.details


def test_sweep_default_equals_explicit_numpy(small_characterization):
    technology = small_characterization.technology
    axis = correlation_length_axis([0.4e-3, 0.8e-3], technology)
    base = estimate_sweep(small_characterization, USAGE, 400, 2e-4, 2e-4,
                          axes=[axis], method="linear")
    routed = estimate_sweep(small_characterization, USAGE, 400, 2e-4,
                            2e-4, axes=[axis], method="linear",
                            backend="numpy")
    for got, want in zip(routed, base):
        assert (got.mean, got.std) == (want.mean, want.std)


def test_field_sampler_backend_is_bit_identical(technology):
    correlation = technology.wid_correlation
    grid = (80, 80, 2e-6, 2e-6)  # above the Cholesky limit -> FFT path
    base = sample_field(correlation, 5, grid=grid,
                        rng=np.random.default_rng(11))
    routed = sample_field(correlation, 5, grid=grid,
                          rng=np.random.default_rng(11), backend="numpy")
    assert np.array_equal(base, routed)


def test_lattice_rho_axis_mapping_for_anisotropic_fallback():
    """The fallback path must map x/y lags onto the correct axes in
    both the linear (x on axis 0) and lagsum (x on axis 1) layouts."""
    correlation = AnisotropicCorrelation(
        ExponentialCorrelation(0.5e-3), scale_x=2.0, scale_y=0.5)
    backend = get_backend("numpy")
    x = np.linspace(-1e-3, 1e-3, 7)
    y = np.linspace(-2e-3, 2e-3, 5)
    linear_layout = lattice_rho(backend, correlation, x, y, dx_axis=0)
    assert linear_layout.shape == (7, 5)
    assert np.array_equal(linear_layout,
                          correlation.evaluate_xy(x[:, None], y[None, :]))
    lagsum_layout = lattice_rho(backend, correlation, x, y, dx_axis=1)
    assert lagsum_layout.shape == (5, 7)
    assert np.array_equal(lagsum_layout,
                          correlation.evaluate_xy(x[None, :], y[:, None]))


def test_lattice_rho_kernel_path_matches_model(technology):
    """The recognised-family kernel path must equal evaluate_xy bit for
    bit (same hypot/exp sequence) in both axis layouts."""
    correlation = technology.total_correlation
    backend = get_backend("numpy")
    x = np.linspace(-1e-3, 1e-3, 9)
    y = np.linspace(-5e-4, 5e-4, 11)
    assert np.array_equal(
        lattice_rho(backend, correlation, x, y, dx_axis=0),
        correlation.evaluate_xy(x[:, None], y[None, :]))
    assert np.array_equal(
        lattice_rho(backend, correlation, x, y, dx_axis=1),
        correlation.evaluate_xy(x[None, :], y[:, None]))


def test_geometry_rho_matches_evaluate_xy(technology):
    geometry = LagGeometry(6, 8, 2e-6, 3e-6)
    want = technology.total_correlation.evaluate_xy(
        geometry.x[:, None], geometry.y[None, :])
    assert np.array_equal(geometry.rho(technology.total_correlation), want)


def test_unknown_backend_name_raises_everywhere(small_characterization):
    with pytest.raises(ConfigurationError, match="unknown backend"):
        estimator(small_characterization).estimate(
            "linear", backend="no-such-backend")


# -- service request plumbing ---------------------------------------------


def test_request_key_ignores_backend():
    base = EstimateRequest(n_cells=1000, width_mm=1.0, height_mm=1.0)
    routed = EstimateRequest(n_cells=1000, width_mm=1.0, height_mm=1.0,
                             backend="numba")
    assert base.key() == routed.key()
    assert base.canonical_dict() == routed.canonical_dict()


def test_request_round_trips_backend():
    request = EstimateRequest(n_cells=1000, width_mm=1.0, height_mm=1.0,
                              backend="numpy")
    document = request.to_dict()
    assert document["backend"] == "numpy"
    revived = EstimateRequest.from_dict(document)
    assert revived.backend == "numpy"
    assert revived.key() == request.key()


def test_request_rejects_unregistered_backend():
    with pytest.raises(ConfigurationError, match="unknown backend"):
        EstimateRequest(n_cells=1000, width_mm=1.0, height_mm=1.0,
                        backend="no-such-backend")


# -- CLI flag plumbing ----------------------------------------------------


def test_cli_backend_flags_install_process_default():
    from repro.backend import resolve_backend_name
    from repro.cli import _apply_backend_args, build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["estimate", "--cells", "100", "--width-mm", "1",
         "--height-mm", "1", "--backend", "numpy",
         "--kernel-threads", "2"])
    _apply_backend_args(args)
    assert resolve_backend_name() == "numpy"


def test_cli_unknown_backend_rejected():
    from repro.cli import _apply_backend_args, build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["estimate", "--cells", "100", "--width-mm", "1",
         "--height-mm", "1", "--backend", "not-a-backend"])
    with pytest.raises(ConfigurationError, match="unknown backend"):
        _apply_backend_args(args)
