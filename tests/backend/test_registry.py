"""Backend registry semantics: precedence, fallback, caching."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.backend import (
    BackendUnavailable,
    available_backends,
    backend_status,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend_name,
    set_default_backend,
    set_threads,
    warmup_backend,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import BACKEND_ENV_VAR
from repro.exceptions import ConfigurationError


@pytest.fixture(autouse=True)
def clean_selection(monkeypatch):
    """Isolate every test from the ambient selection state."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    previous = set_default_backend(None)
    yield
    set_default_backend(previous)


class _AltBackend(NumpyBackend):
    name = "test-alt"


def test_default_resolution_is_numpy():
    assert resolve_backend_name() == "numpy"
    assert get_backend().name == "numpy"


def test_unknown_explicit_name_raises():
    with pytest.raises(ConfigurationError, match="unknown backend"):
        resolve_backend_name("no-such-backend")
    with pytest.raises(ConfigurationError, match="unknown backend"):
        get_backend("no-such-backend")


def test_unknown_env_name_warns_once_and_falls_back(monkeypatch, caplog):
    monkeypatch.setenv(BACKEND_ENV_VAR, "bogus-env-backend")
    with caplog.at_level(logging.WARNING, logger="repro.backend"):
        assert resolve_backend_name() == "numpy"
        assert resolve_backend_name() == "numpy"
    warnings = [r for r in caplog.records
                if "bogus-env-backend" in r.getMessage()]
    assert len(warnings) == 1  # one-time, not once per call


def test_env_variable_selects_registered_backend(monkeypatch):
    register_backend("test-alt-env", _AltBackend)
    monkeypatch.setenv(BACKEND_ENV_VAR, "test-alt-env")
    assert resolve_backend_name() == "test-alt-env"


def test_explicit_argument_beats_env(monkeypatch):
    register_backend("test-alt-arg", _AltBackend)
    monkeypatch.setenv(BACKEND_ENV_VAR, "test-alt-arg")
    assert resolve_backend_name("numpy") == "numpy"


def test_default_override_beats_env(monkeypatch):
    register_backend("test-alt-override", _AltBackend)
    monkeypatch.setenv(BACKEND_ENV_VAR, "test-alt-override")
    previous = set_default_backend("numpy")
    assert previous is None
    assert resolve_backend_name() == "numpy"
    set_default_backend(None)
    assert resolve_backend_name() == "test-alt-override"


def test_set_default_backend_rejects_unknown_names():
    with pytest.raises(ConfigurationError, match="unknown backend"):
        set_default_backend("no-such-backend")


def test_unavailable_backend_falls_back_with_one_time_log(caplog):
    register_backend("test-unavailable", _AltBackend,
                     available=lambda: False)
    with caplog.at_level(logging.WARNING, logger="repro.backend"):
        assert resolve_backend_name("test-unavailable") == "numpy"
        assert get_backend("test-unavailable").name == "numpy"
    warnings = [r for r in caplog.records
                if "test-unavailable" in r.getMessage()]
    assert len(warnings) == 1


def test_factory_failure_degrades_to_numpy(caplog):
    def broken():
        raise BackendUnavailable("deliberately broken")

    register_backend("test-broken", broken)
    with caplog.at_level(logging.WARNING, logger="repro.backend"):
        instance = get_backend("test-broken")
    assert instance.name == "numpy"
    assert any("test-broken" in r.getMessage() for r in caplog.records)


def test_instances_are_cached_and_passed_through():
    first = get_backend("numpy")
    assert get_backend("numpy") is first
    assert get_backend(first) is first  # instance pass-through


def test_registered_and_available_listings():
    names = registered_backends()
    assert "numpy" in names and "numba" in names
    usable = available_backends()
    assert "numpy" in usable
    # numba availability must track the import probe, never crash.
    import importlib.util

    expected = importlib.util.find_spec("numba") is not None
    assert ("numba" in usable) == expected


def test_numba_request_degrades_gracefully_when_missing():
    instance = get_backend("numba")
    if "numba" in available_backends():
        assert instance.name == "numba"
    else:
        assert instance.name == "numpy"


def test_set_threads_reports_effective_count():
    assert set_threads(4, backend="numpy") == 1  # numpy is sequential


def test_warmup_backend_runs_every_kernel():
    name, seconds = warmup_backend("numpy")
    assert name == "numpy"
    assert seconds > 0.0


def test_backend_status_document():
    report = backend_status()
    assert report["numpy"]["available"] is True
    assert report["numpy"]["active"] is True  # selection state is clean
    assert "numba" in report
    assert isinstance(report["numba"]["available"], bool)
    # The live numpy entry carries the instance's own status document.
    get_backend("numpy")
    status = backend_status()["numpy"].get("status")
    assert status is not None and status["name"] == "numpy"
    assert status["numpy"] == np.__version__


def test_custom_backend_round_trip():
    register_backend("test-custom", _AltBackend)
    instance = get_backend("test-custom")
    assert isinstance(instance, _AltBackend)
    weights = np.arange(6.0).reshape(2, 3)
    assert instance.weighted_sum(weights, weights) == float(
        (weights * weights).sum())
