"""Deadline semantics end to end: scheduler, pipeline, and HTTP layers.

A job that exceeds its deadline mid-compute must be cancelled
cooperatively, its worker slot reclaimed, and every waiter must see the
*typed* :class:`DeadlineExceeded` — at whichever layer it waits.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import ServiceClient, create_server
from repro.service.faults import FaultInjector, FaultRule, SITE_COMPUTE_HANG
from repro.service.jobs import (
    DeadlineExceeded,
    EstimateRequest,
    Job,
    JobFailedError,
    JobState,
    JobTimeoutError,
)
from repro.service.pipeline import EstimationPipeline
from repro.service.scheduler import EstimationScheduler

from .conftest import CELLS


def make_request(**overrides):
    base = dict(n_cells=1000, width_mm=1.0, height_mm=1.0)
    base.update(overrides)
    return EstimateRequest(**base)


class TestSchedulerLayer:
    def test_mid_compute_deadline_is_typed_and_slot_reclaimed(self):
        """Cooperative abort mid-compute -> DeadlineExceeded; the worker
        survives and serves the next job."""

        def compute(request, job):
            if request.n_cells == 1000:  # the doomed job: loop forever
                while True:
                    time.sleep(0.01)
                    job.check_alive()
            return "next-job-ok"

        with EstimationScheduler(compute, workers=1) as scheduler:
            doomed = scheduler.submit(make_request(), timeout=0.05)
            with pytest.raises(DeadlineExceeded):
                scheduler.wait(doomed, timeout=10.0)
            assert doomed.state == JobState.FAILED
            assert doomed.error_kind == "deadline"
            follow_up = scheduler.submit(make_request(n_cells=7))
            assert scheduler.wait(follow_up, timeout=10.0) == "next-job-ok"
            assert scheduler.workers_alive >= 1

    def test_typed_error_is_still_both_legacy_types(self):
        """Backward compatibility: handlers catching either legacy type
        keep seeing deadline failures."""
        assert issubclass(DeadlineExceeded, JobTimeoutError)
        assert issubclass(DeadlineExceeded, JobFailedError)

    def test_wait_patience_is_not_a_deadline(self):
        """Running out of wait patience raises the plain timeout, never
        the typed deadline failure."""
        gate = threading.Event()

        def compute(request, job):
            assert gate.wait(10.0)
            return "done"

        with EstimationScheduler(compute, workers=1) as scheduler:
            job = scheduler.submit(make_request())
            with pytest.raises(JobTimeoutError) as excinfo:
                scheduler.wait(job, timeout=0.05)
            assert not isinstance(excinfo.value, DeadlineExceeded)
            gate.set()
            assert scheduler.wait(job, timeout=10.0) == "done"


@pytest.fixture(scope="module")
def warm_pipeline():
    """A pipeline with characterization/RG tiers pre-warmed, so the
    stage heartbeats before the estimate stage are effectively instant."""
    pipeline = EstimationPipeline()
    pipeline(EstimateRequest(
        n_cells=900, width_mm=0.6, height_mm=0.6,
        usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
        method="linear"))
    return pipeline


class TestPipelineLayer:
    def test_deadline_mid_estimate_raises_typed(self, warm_pipeline):
        """Without degradation the stalled estimate stage surfaces the
        typed deadline error (a compute.hang outlasts the deadline)."""
        warm_pipeline._faults = FaultInjector(
            {SITE_COMPUTE_HANG: FaultRule(1.0, 1)}, hang_seconds=0.3)
        try:
            request = EstimateRequest(
                n_cells=901, width_mm=0.6, height_mm=0.6,
                usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
                method="linear")  # linear never degrades
            job = Job(request, deadline=time.monotonic() + 0.1)
            with pytest.raises(DeadlineExceeded):
                warm_pipeline(request, job=job)
        finally:
            warm_pipeline._faults = None

    def test_no_deadline_means_no_abort(self, warm_pipeline):
        request = EstimateRequest(
            n_cells=902, width_mm=0.6, height_mm=0.6,
            usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
            method="linear")
        estimate = warm_pipeline(request, job=Job(request, deadline=None))
        assert estimate.mean > 0


@pytest.fixture()
def hang_server():
    """A server whose first two estimates stall 0.6 s in the estimate
    stage (the warm-up call below consumes the first fire)."""
    faults = FaultInjector({SITE_COMPUTE_HANG: FaultRule(1.0, 2)},
                           hang_seconds=0.6)
    client = ServiceClient(workers=2, faults=faults)
    http_server = create_server(client, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{http_server.server_address[1]}"
    try:
        yield base, client
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5.0)
        client.close()


class TestHTTPLayer:
    def test_deadline_maps_to_504_with_typed_kind(self, hang_server):
        from repro.service.client import NO_RETRY, RemoteClient

        base, service = hang_server
        # Warm the early stages so the deadline can only lapse inside
        # the (stalled) estimate stage.
        warm = EstimateRequest(
            n_cells=900, width_mm=0.6, height_mm=0.6,
            usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
            method="linear")
        service.pipeline(warm)

        remote = RemoteClient(base, retry=NO_RETRY, breaker=False)
        doomed = EstimateRequest(
            n_cells=903, width_mm=0.6, height_mm=0.6,
            usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
            method="linear")
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded) as excinfo:
            remote.estimate(doomed, timeout=0.15)
        elapsed = time.monotonic() - start
        assert excinfo.value.status == 504
        assert excinfo.value.kind == "deadline"
        # The request terminated promptly after the stall, not at the
        # handler's extended patience.
        assert elapsed < 10.0
