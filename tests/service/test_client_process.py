"""Process-mode ServiceClient: crash-only serving through the
supervised OS-process worker pool."""

from __future__ import annotations

import json
import os
import threading
import urllib.request

import pytest

from repro.exceptions import ConfigurationError
from repro.service import ServiceClient, create_server
from repro.service.faults import FaultInjector
from repro.service.jobs import DeadlineExceeded, EstimateRequest
from repro.service.sweep import SweepRequest
from repro.service.whatif import WhatIfRequest

from .conftest import CELLS

REQUEST = EstimateRequest(
    n_cells=900,
    width_mm=0.6,
    height_mm=0.6,
    usage={"INV_X1": 0.5, "NAND2_X1": 0.5},
    cells=CELLS,
    method="linear",
)

#: Fast supervision for tests: quick heartbeats, near-instant restarts.
POOL_OPTIONS = {
    "heartbeat_interval": 0.02,
    "heartbeat_timeout": 1.0,
    "restart_backoff": 0.01,
    "max_backoff": 0.1,
    "init_timeout": 60.0,
}


@pytest.fixture(scope="module")
def process_client():
    client = ServiceClient(workers=1, worker_mode="process",
                           process_pool=dict(POOL_OPTIONS))
    try:
        yield client
    finally:
        client.close()


@pytest.fixture(scope="module")
def thread_baseline():
    client = ServiceClient(workers=1)
    try:
        yield client.estimate(REQUEST)
    finally:
        client.close()


class TestProcessModeRoundTrip:
    def test_estimate_computes_in_a_child_process(self, process_client,
                                                  thread_baseline):
        estimate = process_client.estimate(REQUEST, timeout=120.0)
        # Bit-identical with the thread-mode pipeline: the child runs
        # the same deterministic code on the same request.
        assert estimate.to_dict() == thread_baseline.to_dict()
        liveness = process_client.worker_liveness()
        assert liveness
        for entry in liveness:
            assert entry["pid"] != os.getpid()
            assert entry["alive"]

    def test_repeat_is_answered_warm_by_the_parent(self, process_client):
        first = process_client.estimate(REQUEST, timeout=120.0)
        before = process_client.metrics.render()
        again = process_client.estimate(REQUEST, timeout=30.0)
        assert again.to_dict() == first.to_dict()
        after = process_client.metrics.render()

        def hits(text):
            return sum(
                float(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if (line.startswith("repro_cache_requests_total")
                    and 'result="hit"' in line))

        assert hits(after) > hits(before)

    def test_whatif_ships_the_base_request(self, process_client):
        base_estimate = process_client.estimate(REQUEST, timeout=120.0)
        delta = process_client.whatif(
            WhatIfRequest(base=REQUEST.key(),
                          edits=({"type": "floorplan_resize",
                                  "n_cells": 1000},)),
            timeout=120.0)
        assert delta.n_cells == 1000
        assert delta.mean != base_estimate.mean

    def test_sweep_through_the_pool(self, process_client):
        response = process_client.sweep(
            SweepRequest(base=REQUEST,
                         axes=({"name": "n_cells",
                                "values": (300, 500)},)),
            timeout=240.0)
        assert len(response.estimates) == 2
        assert [point.n_cells for point in response.estimates] == [300, 500]

    def test_healthz_reports_worker_processes(self, process_client):
        server = create_server(process_client, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with urllib.request.urlopen(base + "/v1/healthz",
                                        timeout=30.0) as response:
                document = json.loads(response.read())
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
        assert document["worker_mode"] == "process"
        workers = document["details"]["workers"]
        assert workers
        for entry in workers:
            assert entry["pid"] != os.getpid()
            assert entry["restarts"] is not None

    def test_worker_metrics_exported(self, process_client):
        process_client.worker_liveness()
        text = process_client.metrics.render()
        assert "repro_worker_up" in text
        assert "repro_worker_restarts_total" in text


class TestProcessModeFailures:
    def test_deadline_overrun_kills_worker_and_types_the_error(self):
        # A deterministic 10s stall at the child's compute site against
        # a 1s deadline: the worker is killed mid-task and the caller
        # sees the typed deadline error -- never a hang.
        faults = FaultInjector("compute.hang:1.0:1", seed=5,
                               hang_seconds=10.0)
        client = ServiceClient(workers=1, worker_mode="process",
                               faults=faults,
                               process_pool=dict(POOL_OPTIONS))
        try:
            job = client.submit(REQUEST, timeout=1.0)
            with pytest.raises(DeadlineExceeded):
                client.wait(job, timeout=30.0)
            # Supervision replaced the killed worker; the pool serves.
            estimate = client.estimate(REQUEST, timeout=120.0)
            assert estimate.n_cells == REQUEST.n_cells
            assert client._process_pool.restarts >= 1
        finally:
            client.close()

    def test_library_override_is_rejected_in_process_mode(self):
        with pytest.raises(ConfigurationError):
            ServiceClient(workers=1, worker_mode="process",
                          library=object())

    def test_close_reaps_worker_processes(self):
        client = ServiceClient(workers=1, worker_mode="process",
                               process_pool=dict(POOL_OPTIONS))
        pids = [entry["pid"] for entry in client.worker_liveness()]
        assert pids
        client.close()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)


class TestShardedCacheRestart:
    def test_cache_rebuild_report_on_cold_start(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        client = ServiceClient(workers=1, worker_mode="process",
                               cache_dir=cache_dir,
                               process_pool=dict(POOL_OPTIONS))
        try:
            assert client.cache_rebuild == {
                "scanned": 0, "valid": 0, "quarantined": 0,
                "stale_dropped": 0}
            first = client.estimate(REQUEST, timeout=120.0)
        finally:
            client.close()

        # A successor process trusts only what the rebuild verified --
        # and serves the predecessor's result from disk, identically.
        successor = ServiceClient(workers=1, worker_mode="process",
                                  cache_dir=cache_dir,
                                  process_pool=dict(POOL_OPTIONS))
        try:
            assert successor.cache_rebuild["valid"] >= 1
            assert successor.cache_rebuild["quarantined"] == 0
            again = successor.estimate(REQUEST, timeout=30.0)
            assert again.to_dict() == first.to_dict()
        finally:
            successor.close()
