"""Service sweeps: one job per grid, bit-identical points, warm cache."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ConfigurationError
from repro.service import RemoteClient, ServiceClient, create_server
from repro.service.jobs import EstimateRequest, TechnologyConfig
from repro.service.sweep import (
    MAX_SWEEP_POINTS,
    SweepAxisSpec,
    SweepRequest,
    SweepResponse,
)

from .conftest import CELLS


def base_request(**overrides) -> EstimateRequest:
    fields = dict(
        n_cells=900, width_mm=0.6, height_mm=0.6,
        usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
        method="linear", technology=TechnologyConfig(corr_length_mm=0.5))
    fields.update(overrides)
    return EstimateRequest(**fields)


class TestSweepRequest:
    def test_expand_is_c_order(self):
        request = SweepRequest(
            base=base_request(),
            axes=(SweepAxisSpec("n_cells", (400, 800)),
                  SweepAxisSpec("signal_probability", (0.3, 0.5, 0.7))))
        points = request.expand()
        assert request.shape == (2, 3)
        assert [p.n_cells for p in points] == [400] * 3 + [800] * 3
        assert [p.signal_probability for p in points] == \
            [0.3, 0.5, 0.7] * 2

    def test_derived_equals_directly_built(self):
        """replace() re-runs canonicalization: a derived point hashes
        identically to a request built with the same fields."""
        request = SweepRequest(
            base=base_request(),
            axes=(SweepAxisSpec("corr_length_mm", (0.3,)),))
        derived = request.expand()[0]
        direct = base_request(
            technology=TechnologyConfig(corr_length_mm=0.3))
        assert derived == direct
        assert derived.key() == direct.key()

    def test_die_axis_sets_both_dimensions(self):
        request = SweepRequest(
            base=base_request(),
            axes=(SweepAxisSpec("die", ((0.5, 0.4), (0.8, 0.8))),))
        points = request.expand()
        assert (points[0].width_mm, points[0].height_mm) == (0.5, 0.4)
        assert (points[1].width_mm, points[1].height_mm) == (0.8, 0.8)

    def test_usage_axis_canonicalizes(self):
        axis = SweepAxisSpec(
            "usage", ({"NAND2_X1": 0.5, "INV_X1": 0.5},))
        assert axis.values[0] == (("INV_X1", 0.5), ("NAND2_X1", 0.5))

    def test_round_trips_through_json(self):
        request = SweepRequest(
            base=base_request(),
            axes=(SweepAxisSpec("d2d_fraction", (0.1, 0.4)),),
            priority=3)
        document = json.loads(json.dumps(request.to_dict()))
        again = SweepRequest.from_dict(document)
        assert again == request
        assert again.key() == request.key()

    def test_priority_excluded_from_key(self):
        axes = (SweepAxisSpec("signal_probability", (0.5,)),)
        low = SweepRequest(base=base_request(), axes=axes, priority=0)
        high = SweepRequest(base=base_request(), axes=axes, priority=9)
        assert low.key() == high.key()

    def test_rejects_unknown_axis(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            SweepAxisSpec("bogus", (1, 2))

    def test_rejects_empty_axes(self):
        with pytest.raises(ConfigurationError, match="at least one axis"):
            SweepRequest(base=base_request(), axes=())

    def test_rejects_duplicate_axes(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SweepRequest(base=base_request(),
                         axes=(SweepAxisSpec("n_cells", (100,)),
                               SweepAxisSpec("n_cells", (200,))))

    def test_rejects_oversized_grid(self):
        with pytest.raises(ConfigurationError, match="limit"):
            SweepRequest(
                base=base_request(),
                axes=(SweepAxisSpec(
                    "n_cells", tuple(range(100, 100 + MAX_SWEEP_POINTS
                                           + 1))),))


class TestServiceSweep:
    def sweep_request(self):
        return SweepRequest(
            base=base_request(),
            axes=(SweepAxisSpec("corr_length_mm", (0.3, 0.5, 0.9)),
                  SweepAxisSpec("signal_probability", (0.4, 0.6))))

    def test_points_bit_identical_to_estimates(self):
        request = self.sweep_request()
        with ServiceClient(workers=2) as client:
            response = client.sweep(request)
            assert response.shape == (3, 2)
            assert len(response) == 6
            for point, estimate in zip(request.expand(),
                                       response.estimates):
                single = client.estimate(point)
                assert single.mean == estimate.mean
                assert single.std == estimate.std
                assert single.details == estimate.details

    def test_backfills_estimate_tier(self):
        request = self.sweep_request()
        with ServiceClient(workers=1) as client:
            client.sweep(request)
            before = client.cache_stats()["estimate"]["hits"]
            for point in request.expand():
                client.estimate(point)
            after = client.cache_stats()["estimate"]["hits"]
            assert after - before == request.n_points

    def test_metrics_count_jobs_and_points(self):
        with ServiceClient(workers=1) as client:
            client.sweep(self.sweep_request())
            text = client.metrics_text()
            assert "repro_sweep_jobs_total 1" in text
            assert "repro_sweep_points_total 6" in text
            assert "repro_sweep_point_seconds" in text

    def test_keyword_and_async_submission(self):
        with ServiceClient(workers=1) as client:
            job = client.submit_sweep(SweepRequest(
                base=base_request(),
                axes=({"name": "n_cells", "values": [400, 900]},)))
            response = client.scheduler.wait(job)
            assert isinstance(response, SweepResponse)
            assert len(response) == 2

    def test_identical_sweeps_coalesce(self):
        request = self.sweep_request()
        with ServiceClient(workers=1) as client:
            first = client.submit_sweep(request)
            second = client.submit_sweep(request)
            assert second.id == first.id
            client.scheduler.wait(first)


@pytest.fixture()
def server():
    client = ServiceClient(workers=2)
    http_server = create_server(client, port=0)
    thread = threading.Thread(target=http_server.serve_forever,
                              daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{http_server.server_address[1]}"
    try:
        yield base
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5.0)
        client.close()


def post(base, path, document, timeout=300.0):
    data = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


SWEEP_BODY = {
    "base": {
        "n_cells": 900,
        "width_mm": 0.6,
        "height_mm": 0.6,
        "usage": {"INV_X1": 0.5, "NAND2_X1": 0.5},
        "cells": list(CELLS),
        "method": "linear",
    },
    "axes": [{"name": "signal_probability", "values": [0.3, 0.7]}],
}


class TestHttpSweep:
    def test_round_trip(self, server):
        status, document = post(server, "/v1/sweep", SWEEP_BODY)
        assert status == 200
        assert document["state"] == "done"
        sweep = document["sweep"]
        assert sweep["shape"] == [2]
        assert len(sweep["estimates"]) == 2
        assert all(e["mean"] > 0 for e in sweep["estimates"])
        assert sweep["stats"]["points"] == 2

    def test_matches_single_point_estimates(self, server):
        _, document = post(server, "/v1/sweep", SWEEP_BODY)
        for probability, estimate in zip(
                [0.3, 0.7], document["sweep"]["estimates"]):
            body = dict(SWEEP_BODY["base"],
                        signal_probability=probability)
            _, single = post(server, "/v1/estimate", body)
            assert single["estimate"]["mean"] == estimate["mean"]
            assert single["estimate"]["std"] == estimate["std"]

    def test_remote_client(self, server):
        client = RemoteClient(server)
        response = client.sweep(SweepRequest.from_dict(SWEEP_BODY))
        assert isinstance(response, SweepResponse)
        assert response.shape == (2,)
        assert response.estimates[0].mean > 0

    def test_bad_axis_is_client_error(self, server):
        body = dict(SWEEP_BODY, axes=[{"name": "bogus", "values": [1]}])
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/sweep", body)
        assert excinfo.value.code == 400
        detail = json.loads(excinfo.value.read())
        assert "unknown sweep axis" in detail["error"]

    def test_async_flow(self, server):
        body = dict(SWEEP_BODY, **{"async": True})
        status, document = post(server, "/v1/sweep", body)
        assert status == 202
        job_id = document["job_id"]
        deadline = 30.0
        import time
        start = time.monotonic()
        while time.monotonic() - start < deadline:
            with urllib.request.urlopen(
                    f"{server}/v1/jobs/{job_id}", timeout=30.0) as resp:
                snapshot = json.loads(resp.read())
            if snapshot["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert snapshot["state"] == "done"
