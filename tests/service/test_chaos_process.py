"""Seeded process-level chaos: kill/stall storms against the worker
pool and replica kills against the fleet.

Every storm asserts the crash-only contract end to end: results are
bit-identical to a calm baseline or a typed, documented error -- never
a hang, never a partial grid, never an orphaned process.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceClient
from repro.service.faults import FaultInjector
from repro.service.fleet import create_front
from repro.service.jobs import EstimateRequest
from repro.service.sweep import SweepRequest

from .conftest import CELLS

REQUEST = EstimateRequest(
    n_cells=900,
    width_mm=0.6,
    height_mm=0.6,
    usage={"INV_X1": 0.5, "NAND2_X1": 0.5},
    cells=CELLS,
    method="linear",
)

POOL_OPTIONS = {
    "heartbeat_interval": 0.02,
    "heartbeat_timeout": 1.0,
    "restart_backoff": 0.01,
    "max_backoff": 0.1,
    "init_timeout": 60.0,
}


@pytest.fixture(scope="module")
def calm_baseline():
    """Thread-mode reference results nothing was injected into."""
    client = ServiceClient(workers=1)
    try:
        estimate = client.estimate(REQUEST)
        sweep = client.sweep(
            SweepRequest(base=REQUEST,
                         axes=({"name": "n_cells",
                                "values": (300, 500)},)))
        yield estimate, sweep
    finally:
        client.close()


def _assert_no_orphans(pids):
    for pid in pids:
        if pid is None:
            continue
        with pytest.raises(OSError):
            os.kill(pid, 0)


class TestWorkerChaos:
    def test_kill_and_stall_storm_is_bit_identical(self):
        # Three distinct requests so every one dispatches cold (a warm
        # parent-cache hit never reaches the pool, hence never draws).
        storm_requests = [
            dataclasses.replace(REQUEST, n_cells=n)
            for n in (700, 900, 1100)]
        reference = ServiceClient(workers=1)
        try:
            baselines = [reference.estimate(request).to_dict()
                         for request in storm_requests]
        finally:
            reference.close()

        faults = FaultInjector("worker.kill:1.0:2,worker.stall:1.0:1",
                               seed=7)
        client = ServiceClient(workers=1, worker_mode="process",
                               faults=faults,
                               process_pool=dict(POOL_OPTIONS))
        try:
            # Every dispatch in the storm window draws chaos: two kills
            # and one stall land on first attempts, the requeued
            # attempts compute -- the caller never notices.
            for request, baseline in zip(storm_requests, baselines):
                estimate = client.estimate(request, timeout=240.0)
                assert estimate.to_dict() == baseline
            pool = client._process_pool
            assert pool.restarts >= 2
            assert any("exited with code 23" in note
                       for note in pool.failures)
            assert any("heartbeat missed" in note
                       for note in pool.failures)
            assert faults.fires("worker.kill") == 2
            assert faults.fires("worker.stall") == 1
            pids = [entry["pid"] for entry in client.worker_liveness()]
        finally:
            client.close()
        _assert_no_orphans(pids)

    def test_sweep_grid_is_never_partial_under_kill(self, calm_baseline):
        _, baseline_sweep = calm_baseline
        faults = FaultInjector("worker.kill:1.0:1", seed=11)
        client = ServiceClient(workers=1, worker_mode="process",
                               faults=faults,
                               process_pool=dict(POOL_OPTIONS))
        try:
            response = client.sweep(
                SweepRequest(base=REQUEST,
                             axes=({"name": "n_cells",
                                    "values": (300, 500)},)),
                timeout=240.0)
            # The kill lands mid-grid; the requeued attempt recomputes
            # the whole sweep: full grid, point-for-point identical.
            assert len(response.estimates) == 2
            assert ([point.to_dict() for point in response.estimates]
                    == [point.to_dict()
                        for point in baseline_sweep.estimates])
            assert faults.fires("worker.kill") == 1
            assert client._process_pool.restarts >= 1
        finally:
            client.close()

    def test_storm_with_cache_faults_still_answers(self, calm_baseline,
                                                   tmp_path):
        baseline, _ = calm_baseline
        # Worker kills layered over child-side disk-cache corruption:
        # corrupt entries are quarantined, reads degrade to recompute.
        faults = FaultInjector("worker.kill:1.0:1,cache.write:0.5",
                               seed=13)
        client = ServiceClient(workers=1, worker_mode="process",
                               cache_dir=str(tmp_path / "cache"),
                               faults=faults,
                               process_pool=dict(POOL_OPTIONS))
        try:
            estimate = client.estimate(REQUEST, timeout=240.0)
            assert estimate.to_dict() == baseline.to_dict()
        finally:
            client.close()


class TestReplicaChaos:
    def test_replica_kill_storm_fails_over_and_heals(self, calm_baseline):
        baseline, _ = calm_baseline
        faults = FaultInjector("replica.kill:1.0:1", seed=3)
        fleet, front = create_front(
            2,
            options={"workers": 1, "drain_grace": 20.0},
            faults=faults,
            fleet_options={"restart_backoff": 0.05, "max_backoff": 0.5,
                           "poll_interval": 0.05})
        thread = threading.Thread(target=front.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{front.server_address[1]}"
        body = json.dumps(REQUEST.to_dict()).encode("utf-8")
        try:
            # The front's seeded draw kills the preferred replica before
            # routing; failover answers from the survivor, identically.
            request = urllib.request.Request(
                base + "/v1/estimate", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request,
                                        timeout=240.0) as response:
                document = json.loads(response.read())
            assert document["estimate"] == baseline.to_dict()
            assert faults.fires("replica.kill") == 1

            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and fleet.restarts < 1:
                time.sleep(0.05)
            assert fleet.restarts >= 1, fleet.failures
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if all(entry["alive"] for entry in fleet.liveness()):
                    break
                time.sleep(0.05)
            assert all(entry["alive"] for entry in fleet.liveness())

            # Chaos budget spent: the healed fleet serves calmly.
            with urllib.request.urlopen(request,
                                        timeout=240.0) as response:
                document = json.loads(response.read())
            assert document["estimate"] == baseline.to_dict()

            metrics = urllib.request.urlopen(
                base + "/v1/metrics", timeout=30.0).read().decode("utf-8")
            assert "repro_front_replica_kills_total 1" in metrics
            pids = [pid for pid in fleet.pids() if pid]
        finally:
            front.drain(grace=30.0)
            thread.join(timeout=10.0)
        _assert_no_orphans(pids)
