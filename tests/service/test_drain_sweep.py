"""Graceful drain during a multi-point sweep.

The SIGTERM handler wires to :meth:`LeakageHTTPServer.drain`; these
tests drive that path directly while a sweep grid is in flight and
assert the drain contract: the grid finishes whole (or fails with a
typed error) -- a partial grid is never served -- while new work is
refused with a typed ``503 draining``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceClient, create_server

from .conftest import CELLS

SWEEP_BODY = {
    "base": {
        "n_cells": 900,
        "width_mm": 0.6,
        "height_mm": 0.6,
        "usage": {"INV_X1": 0.5, "NAND2_X1": 0.5},
        "cells": list(CELLS),
        "method": "linear",
    },
    "axes": [{"name": "n_cells", "values": [300, 500, 700, 900, 1100]}],
}


def test_drain_mid_sweep_finishes_the_whole_grid():
    client = ServiceClient(workers=1)
    server = create_server(client, port=0)
    serve_thread = threading.Thread(target=server.serve_forever,
                                    daemon=True)
    serve_thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"

    sweep_result = {}

    def run_sweep():
        data = json.dumps(SWEEP_BODY).encode("utf-8")
        request = urllib.request.Request(
            base + "/v1/sweep", data=data,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=300.0) as response:
                sweep_result["status"] = response.status
                sweep_result["document"] = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            sweep_result["status"] = exc.code
            sweep_result["document"] = json.loads(exc.read())

    sweep_thread = threading.Thread(target=run_sweep, daemon=True)
    sweep_thread.start()

    # Wait until the sweep request is actually in flight server-side.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and server.inflight < 1:
        time.sleep(0.01)
    assert server.inflight >= 1, "sweep never reached the server"

    drain_outcome = {}

    def run_drain():
        drain_outcome["clean"] = server.drain(grace=120.0)

    drain_thread = threading.Thread(target=run_drain, daemon=True)
    drain_thread.start()

    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline and not server.draining:
        time.sleep(0.01)
    assert server.draining

    # New work is refused with the typed draining error while the
    # in-flight sweep keeps running.
    data = json.dumps(SWEEP_BODY["base"]).encode("utf-8")
    refused = urllib.request.Request(
        base + "/v1/estimate", data=data,
        headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(refused, timeout=30.0)
    assert excinfo.value.code == 503
    assert json.loads(excinfo.value.read())["kind"] == "draining"

    sweep_thread.join(timeout=240.0)
    assert not sweep_thread.is_alive(), "sweep hung through drain"
    drain_thread.join(timeout=240.0)
    assert not drain_thread.is_alive(), "drain hung"
    serve_thread.join(timeout=10.0)
    client.close()

    # The drain contract: the whole grid or a typed error -- a partial
    # grid is never served. With a generous grace the grid finishes.
    assert drain_outcome["clean"] is True
    assert sweep_result["status"] == 200
    estimates = sweep_result["document"]["sweep"]["estimates"]
    assert len(estimates) == 5
    assert ([point["n_cells"] for point in estimates]
            == [300, 500, 700, 900, 1100])


def test_drain_with_short_grace_still_never_serves_partial_grids():
    """Even when the grace expires first, the caller sees the full grid
    (the job keeps running to completion) or a typed error -- never a
    truncated ``estimates`` list."""
    client = ServiceClient(workers=1)
    server = create_server(client, port=0)
    serve_thread = threading.Thread(target=server.serve_forever,
                                    daemon=True)
    serve_thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"

    outcome = {}

    def run_sweep():
        data = json.dumps(SWEEP_BODY).encode("utf-8")
        request = urllib.request.Request(
            base + "/v1/sweep", data=data,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=300.0) as response:
                outcome["status"] = response.status
                outcome["document"] = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            outcome["status"] = exc.code
            try:
                outcome["document"] = json.loads(exc.read())
            except ValueError:
                outcome["document"] = None
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            # The socket died with the server: a visible connection
            # error is a typed outcome too -- never a partial document.
            outcome["status"] = None
            outcome["error"] = exc

    sweep_thread = threading.Thread(target=run_sweep, daemon=True)
    sweep_thread.start()

    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and server.inflight < 1:
        time.sleep(0.01)
    assert server.inflight >= 1

    # Grace likely shorter than the grid: await_idle may give up, the
    # accept loop closes either way. Whether the drain was clean is
    # timing-dependent (a warm grid can finish inside even this grace);
    # the invariant is the response shape, asserted below.
    server.drain(grace=0.05)

    sweep_thread.join(timeout=240.0)
    assert not sweep_thread.is_alive(), "sweep hung through hard drain"
    serve_thread.join(timeout=10.0)
    client.close()

    if outcome.get("status") == 200:
        estimates = outcome["document"]["sweep"]["estimates"]
        assert len(estimates) == 5
    elif outcome.get("status") is not None:
        assert outcome["document"]["kind"] in (
            "draining", "cancelled", "failed", "timeout", "deadline")
    else:
        assert "error" in outcome
