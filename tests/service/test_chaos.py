"""Chaos suite: seeded fault storms through the full service stack.

The contract under injected faults: every request **terminates** —
within its deadline when it has one — and its answer is either
bit-identical to the fault-free reference or explicitly flagged
degraded. Faults may cost retries and latency; they may never silently
change a number.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import ServiceClient, create_server
from repro.service.cache import TIER_ESTIMATE
from repro.service.client import RemoteClient, RetryPolicy
from repro.service.faults import (
    FaultInjector,
    FaultRule,
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_HTTP_DISCONNECT,
    SITE_WORKER_CRASH,
)
from repro.service.jobs import EstimateRequest

from .conftest import CELLS

CHAOS_SEED = 1729


def chaos_request(n_cells):
    return EstimateRequest(
        n_cells=n_cells, width_mm=0.6, height_mm=0.6,
        usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
        method="linear")


@pytest.fixture(scope="module")
def reference():
    """Fault-free results to compare every chaos answer against."""
    with ServiceClient(workers=1) as client:
        return {n: client.estimate(chaos_request(n), timeout=120.0)
                for n in (900, 1000, 1100)}


class TestServiceChaos:
    def test_crashes_and_cache_corruption_never_change_results(
            self, reference, tmp_path):
        """Worker crashes + corrupted cache entries: every request still
        returns the bit-identical answer (recovery, not wrong data)."""
        faults = FaultInjector({
            SITE_WORKER_CRASH: FaultRule(1.0, 2),
            SITE_CACHE_WRITE: FaultRule(1.0, 1),
            SITE_CACHE_READ: FaultRule(0.5, 2),
        }, seed=CHAOS_SEED)
        with ServiceClient(workers=2, cache_dir=str(tmp_path),
                           faults=faults) as client:
            cold = {n: client.estimate(chaos_request(n), timeout=120.0)
                    for n in (900, 1000, 1100)}
            warm = {n: client.estimate(chaos_request(n), timeout=120.0)
                    for n in (900, 1000, 1100)}
            stats = client.cache_stats()
        for n, expected in reference.items():
            assert cold[n].to_dict() == expected.to_dict(), (
                f"chaos changed the n_cells={n} result")
            assert warm[n].to_dict() == expected.to_dict()
        # The storm actually happened: workers crashed and at least one
        # cache entry was quarantined or torn.
        assert faults.fires(SITE_WORKER_CRASH) == 2
        assert faults.fires(SITE_CACHE_WRITE) == 1
        total_corruptions = sum(tier["corruptions"]
                                for tier in stats.values())
        assert total_corruptions >= 0  # reads may hit memory tier first
        assert stats[TIER_ESTIMATE]["hits"] >= 1  # warm pass served hot

    def test_corrupted_disk_entries_recompute_identically(
            self, reference, tmp_path):
        """Every disk read corrupted: all answers recomputed, all
        bit-identical, every bad entry quarantined not trusted."""
        seeder = ServiceClient(workers=1, cache_dir=str(tmp_path))
        try:
            seeder.estimate(chaos_request(900), timeout=120.0)
        finally:
            seeder.close()
        faults = FaultInjector({SITE_CACHE_READ: FaultRule(1.0, 4)},
                               seed=CHAOS_SEED)
        with ServiceClient(workers=1, cache_dir=str(tmp_path),
                           faults=faults) as client:
            result = client.estimate(chaos_request(900), timeout=120.0)
            stats = client.cache_stats()
        assert result.to_dict() == reference[900].to_dict()
        total_corruptions = sum(tier["corruptions"]
                                for tier in stats.values())
        assert total_corruptions >= 1
        quarantine = tmp_path / "quarantine"
        assert quarantine.exists() and any(quarantine.iterdir())


@pytest.fixture()
def flaky_http_server():
    """A server that drops the first two HTTP responses on the floor."""
    faults = FaultInjector({SITE_HTTP_DISCONNECT: FaultRule(1.0, 2)},
                           seed=CHAOS_SEED)
    client = ServiceClient(workers=2, faults=faults)
    http_server = create_server(client, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{http_server.server_address[1]}"
    try:
        yield base, faults
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5.0)
        client.close()


class TestHTTPChaos:
    def test_dropped_connections_are_retried_transparently(
            self, reference, flaky_http_server):
        base, faults = flaky_http_server
        remote = RemoteClient(
            base, retry=RetryPolicy(max_attempts=5, base=0.01),
            retry_seed=CHAOS_SEED)
        result = remote.estimate(chaos_request(1000), timeout=120.0)
        assert result.to_dict() == reference[1000].to_dict()
        assert faults.fires(SITE_HTTP_DISCONNECT) == 2
        assert remote.retries >= 1

    def test_no_retry_client_surfaces_the_disconnect(self, flaky_http_server):
        from repro.exceptions import ServiceError
        from repro.service.client import NO_RETRY

        base, _ = flaky_http_server
        remote = RemoteClient(base, retry=NO_RETRY, breaker=False)
        with pytest.raises(ServiceError, match="cannot reach"):
            remote.estimate(chaos_request(1000), timeout=120.0)


def exact_request(n_cells=900, **overrides):
    base = dict(
        n_cells=n_cells, width_mm=0.6, height_mm=0.6,
        usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
        method="exact")
    base.update(overrides)
    return EstimateRequest(**base)


class TestGracefulDegradation:
    def test_predicted_deadline_miss_falls_back_to_rg(self):
        """An exact run predicted (EWMA) to blow its deadline is answered
        by the O(1) RG closed form, flagged, counted, and never cached."""
        from repro.service.cache import MISS

        with ServiceClient(workers=1) as client:
            # Teach the predictor that exact runs take ~1000 s.
            client.pipeline._note_exact_duration(1000.0)
            request = exact_request()
            job = client.submit(request, timeout=30.0)
            degraded = client.wait(job, timeout=120.0)
            assert degraded.degraded
            assert degraded.method == "integral2d"
            assert degraded.details["requested_method"] == "exact"
            assert "deadline" in degraded.degradation_reason
            # Never cached: the entry must stay reserved for the true
            # exact answer.
            assert client.cache.get(TIER_ESTIMATE, request.key()) is MISS
            text = client.metrics_text()
            assert 'repro_degraded_results_total{reason=' in text
            # The fallback numbers are the genuine RG result.
            rg = client.estimate(exact_request(method="integral2d"),
                                 timeout=120.0)
            assert degraded.mean == rg.mean
            assert degraded.std == rg.std

    def test_exact_failure_falls_back_with_reason(self, monkeypatch):
        from repro.core.api import FullChipLeakageEstimator

        original = FullChipLeakageEstimator.estimate

        def flaky(self, method="auto", **kwargs):
            if method == "exact":
                raise RuntimeError("synthetic engine fault")
            return original(self, method, **kwargs)

        monkeypatch.setattr(FullChipLeakageEstimator, "estimate", flaky)
        with ServiceClient(workers=1) as client:
            result = client.estimate(exact_request(), timeout=120.0)
        assert result.degraded
        assert "synthetic engine fault" in result.degradation_reason

    def test_allow_degraded_false_surfaces_the_failure(self, monkeypatch):
        from repro.core.api import FullChipLeakageEstimator
        from repro.service.jobs import JobFailedError

        original = FullChipLeakageEstimator.estimate

        def flaky(self, method="auto", **kwargs):
            if method == "exact":
                raise RuntimeError("synthetic engine fault")
            return original(self, method, **kwargs)

        monkeypatch.setattr(FullChipLeakageEstimator, "estimate", flaky)
        with ServiceClient(workers=1) as client:
            with pytest.raises(JobFailedError,
                               match="synthetic engine fault"):
                client.estimate(exact_request(allow_degraded=False),
                                timeout=120.0)

    def test_allow_degraded_does_not_change_the_content_hash(self):
        assert (exact_request().key()
                == exact_request(allow_degraded=False).key())
