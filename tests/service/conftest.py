"""Service-suite fixtures.

A tiny cell subset keeps cold characterization fast, and one module
setup builds the request everyone reuses; the real library fixture
comes from the top-level conftest.
"""

from __future__ import annotations

import pytest

from repro.service.jobs import EstimateRequest, TechnologyConfig

#: Small, representative characterization subset — cold path in ~100 ms.
CELLS = ("INV_X1", "NAND2_X1")


@pytest.fixture
def small_request() -> EstimateRequest:
    return EstimateRequest(
        n_cells=900,
        width_mm=0.6,
        height_mm=0.6,
        usage={"INV_X1": 0.5, "NAND2_X1": 0.5},
        cells=CELLS,
        method="linear",
        technology=TechnologyConfig(corr_length_mm=0.5),
    )
