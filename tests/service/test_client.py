"""End-to-end service correctness: bit-identical results, cache tiers."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cells.library import build_library
from repro.characterization import characterize_library
from repro.core import CellUsage, FullChipLeakageEstimator
from repro.service import ServiceClient
from repro.service.cache import TIER_CHARACTERIZATION, TIER_ESTIMATE, TIER_RG

from .conftest import CELLS


def direct_estimate(request):
    """Reference result computed without the service stack."""
    technology = request.technology.build()
    characterization = characterize_library(
        build_library(), technology, mode=request.mode,
        cells=request.cells)
    estimator = FullChipLeakageEstimator(
        characterization,
        CellUsage(dict(request.usage)),
        request.n_cells,
        request.width_mm * 1e-3,
        request.height_mm * 1e-3,
        signal_probability=request.signal_probability)
    return estimator.estimate(request.method, n_jobs=request.n_jobs,
                              tolerance=request.tolerance)


class TestBitIdentical:
    def test_cold_and_warm_paths_match_direct_estimate(self, small_request):
        direct = direct_estimate(small_request)
        with ServiceClient(workers=2) as client:
            cold = client.estimate(small_request, timeout=120.0)
            warm = client.estimate(small_request, timeout=120.0)
        for result in (cold, warm):
            assert result.mean == direct.mean
            assert result.std == direct.std
            assert result.method == direct.method

    def test_disk_warm_path_is_bit_identical(self, small_request, tmp_path):
        with ServiceClient(workers=1, cache_dir=str(tmp_path)) as client:
            cold = client.estimate(small_request, timeout=120.0)
        # A fresh client with an empty memory cache must revive the disk
        # entry into a float-exact LeakageEstimate.
        with ServiceClient(workers=1, cache_dir=str(tmp_path)) as client:
            warm = client.estimate(small_request, timeout=120.0)
            stats = client.cache_stats()[TIER_ESTIMATE]
            assert stats["disk_hits"] == 1
        assert warm.mean == cold.mean
        assert warm.std == cold.std
        assert warm.to_dict() == cold.to_dict()


class TestTieredReuse:
    def test_geometry_sweep_reuses_characterization_and_rg(
            self, small_request):
        with ServiceClient(workers=1) as client:
            client.estimate(small_request, timeout=120.0)
            resized = dataclasses.replace(
                small_request, n_cells=1600, width_mm=0.8, height_mm=0.8)
            client.estimate(resized, timeout=120.0)
            stats = client.cache_stats()
            assert stats[TIER_CHARACTERIZATION]["hits"] == 1
            assert stats[TIER_RG]["hits"] == 1
            assert stats[TIER_ESTIMATE]["hits"] == 0

    def test_identical_request_hits_estimate_tier(self, small_request):
        with ServiceClient(workers=1) as client:
            client.estimate(small_request, timeout=120.0)
            client.estimate(small_request, timeout=120.0)
            stats = client.cache_stats()
            assert stats[TIER_ESTIMATE]["hits"] == 1

    def test_metrics_text_exposes_required_families(self, small_request):
        with ServiceClient(workers=1) as client:
            client.estimate(small_request, timeout=120.0)
            text = client.metrics_text()
        assert "repro_requests_total" in text
        assert "repro_cache_requests_total" in text
        assert "repro_queue_depth" in text
        assert "repro_stage_seconds_bucket" in text


class TestAsyncApi:
    def test_submit_then_wait(self, small_request):
        with ServiceClient(workers=1) as client:
            job = client.submit(small_request)
            result = client.wait(job, timeout=120.0)
            assert result.mean > 0
            assert client.job(job.id) is job

    def test_kwargs_and_dict_requests(self):
        with ServiceClient(workers=1) as client:
            by_kwargs = client.estimate(
                n_cells=900, width_mm=0.6, height_mm=0.6,
                usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
                method="linear", timeout=120.0)
            by_dict = client.estimate(
                {"n_cells": 900, "width_mm": 0.6, "height_mm": 0.6,
                 "usage": {"INV_X1": 0.5, "NAND2_X1": 0.5},
                 "cells": list(CELLS), "method": "linear"},
                timeout=120.0)
        assert by_kwargs.mean == by_dict.mean
        assert by_kwargs.std == by_dict.std
