"""End-to-end service correctness: bit-identical results, cache tiers."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cells.library import build_library
from repro.characterization import characterize_library
from repro.core import CellUsage, FullChipLeakageEstimator
from repro.service import ServiceClient
from repro.service.cache import TIER_CHARACTERIZATION, TIER_ESTIMATE, TIER_RG

from .conftest import CELLS


def direct_estimate(request):
    """Reference result computed without the service stack."""
    technology = request.technology.build()
    characterization = characterize_library(
        build_library(), technology, mode=request.mode,
        cells=request.cells)
    estimator = FullChipLeakageEstimator(
        characterization,
        CellUsage(dict(request.usage)),
        request.n_cells,
        request.width_mm * 1e-3,
        request.height_mm * 1e-3,
        signal_probability=request.signal_probability)
    return estimator.estimate(request.method, n_jobs=request.n_jobs,
                              tolerance=request.tolerance)


class TestBitIdentical:
    def test_cold_and_warm_paths_match_direct_estimate(self, small_request):
        direct = direct_estimate(small_request)
        with ServiceClient(workers=2) as client:
            cold = client.estimate(small_request, timeout=120.0)
            warm = client.estimate(small_request, timeout=120.0)
        for result in (cold, warm):
            assert result.mean == direct.mean
            assert result.std == direct.std
            assert result.method == direct.method

    def test_disk_warm_path_is_bit_identical(self, small_request, tmp_path):
        with ServiceClient(workers=1, cache_dir=str(tmp_path)) as client:
            cold = client.estimate(small_request, timeout=120.0)
        # A fresh client with an empty memory cache must revive the disk
        # entry into a float-exact LeakageEstimate.
        with ServiceClient(workers=1, cache_dir=str(tmp_path)) as client:
            warm = client.estimate(small_request, timeout=120.0)
            stats = client.cache_stats()[TIER_ESTIMATE]
            assert stats["disk_hits"] == 1
        assert warm.mean == cold.mean
        assert warm.std == cold.std
        assert warm.to_dict() == cold.to_dict()


class TestTieredReuse:
    def test_geometry_sweep_reuses_characterization_and_rg(
            self, small_request):
        with ServiceClient(workers=1) as client:
            client.estimate(small_request, timeout=120.0)
            resized = dataclasses.replace(
                small_request, n_cells=1600, width_mm=0.8, height_mm=0.8)
            client.estimate(resized, timeout=120.0)
            stats = client.cache_stats()
            assert stats[TIER_CHARACTERIZATION]["hits"] == 1
            assert stats[TIER_RG]["hits"] == 1
            assert stats[TIER_ESTIMATE]["hits"] == 0

    def test_identical_request_hits_estimate_tier(self, small_request):
        with ServiceClient(workers=1) as client:
            client.estimate(small_request, timeout=120.0)
            client.estimate(small_request, timeout=120.0)
            stats = client.cache_stats()
            assert stats[TIER_ESTIMATE]["hits"] == 1

    def test_metrics_text_exposes_required_families(self, small_request):
        with ServiceClient(workers=1) as client:
            client.estimate(small_request, timeout=120.0)
            text = client.metrics_text()
        assert "repro_requests_total" in text
        assert "repro_cache_requests_total" in text
        assert "repro_queue_depth" in text
        assert "repro_stage_seconds_bucket" in text


class TestAsyncApi:
    def test_submit_then_wait(self, small_request):
        with ServiceClient(workers=1) as client:
            job = client.submit(small_request)
            result = client.wait(job, timeout=120.0)
            assert result.mean > 0
            assert client.job(job.id) is job

    def test_kwargs_and_dict_requests(self):
        with ServiceClient(workers=1) as client:
            by_kwargs = client.estimate(
                n_cells=900, width_mm=0.6, height_mm=0.6,
                usage={"INV_X1": 0.5, "NAND2_X1": 0.5}, cells=CELLS,
                method="linear", timeout=120.0)
            by_dict = client.estimate(
                {"n_cells": 900, "width_mm": 0.6, "height_mm": 0.6,
                 "usage": {"INV_X1": 0.5, "NAND2_X1": 0.5},
                 "cells": list(CELLS), "method": "linear"},
                timeout=120.0)
        assert by_kwargs.mean == by_dict.mean
        assert by_kwargs.std == by_dict.std


# -- retry / backoff / circuit breaker (no sockets: scripted transport) --

import io
import json as _json
import urllib.error

from repro.exceptions import ConfigurationError, ServiceError
from repro.service.client import (
    NO_RETRY,
    CircuitBreaker,
    CircuitOpenError,
    RemoteClient,
    RetryPolicy,
)
from repro.service.jobs import DeadlineExceeded


def http_error(status, body=None, kind=None):
    if body is None:
        body = {"error": f"synthetic {status}", "kind": kind}
    raw = _json.dumps(body).encode("utf-8")
    return urllib.error.HTTPError(
        "http://test/v1/estimate", status, "synthetic", {},
        io.BytesIO(raw))


class ScriptedClient(RemoteClient):
    """A RemoteClient whose transport replays a scripted outcome list.

    Each entry is either an exception instance (raised) or a dict
    (returned as the JSON reply).
    """

    def __init__(self, script, **kwargs):
        kwargs.setdefault("retry", RetryPolicy(max_attempts=4, base=0.0,
                                               jitter=0.0))
        kwargs.setdefault("breaker", False)
        super().__init__("http://scripted", **kwargs)
        self.script = list(script)
        self.attempts = 0

    def _attempt(self, method, url, data, headers):
        self.attempts += 1
        outcome = self.script.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return _json.dumps(outcome).encode("utf-8"), "application/json"


class TestRetryPolicy:
    def test_connection_errors_are_retried_to_success(self):
        client = ScriptedClient([
            ConnectionResetError("boom"),
            ConnectionResetError("boom again"),
            {"ok": True},
        ])
        assert client._call("GET", "/v1/jobs") == {"ok": True}
        assert client.attempts == 3
        assert client.retries == 2

    def test_raw_oserror_is_retried_like_a_connection_error(self):
        # A dying/draining server can surface a bare OSError before
        # urllib wraps it (e.g. EPIPE straight off the socket); it must
        # take the same retry path as wrapped connection errors.
        client = ScriptedClient([
            OSError(32, "Broken pipe"),
            {"ok": True},
        ])
        assert client._call("GET", "/v1/jobs") == {"ok": True}
        assert client.attempts == 2
        assert client.retries == 1

    def test_raw_oserror_lands_in_breaker_accounting(self):
        breaker = CircuitBreaker(failure_threshold=2)
        client = ScriptedClient(
            [OSError(104, "Connection reset by peer") for _ in range(4)],
            breaker=breaker)
        # Both raw-OSError attempts count as breaker failures, so the
        # third attempt finds the breaker open -- no longer bypassing
        # the accounting.
        with pytest.raises(CircuitOpenError):
            client._call("GET", "/v1/jobs")
        assert breaker.state == "open"
        assert client.attempts == 2

    def test_retriable_statuses_are_retried(self):
        client = ScriptedClient([http_error(503, kind="draining"),
                                 {"ok": True}])
        assert client._call("GET", "/v1/jobs") == {"ok": True}
        assert client.attempts == 2

    def test_client_errors_are_never_retried(self):
        client = ScriptedClient([http_error(400, kind="bad_request"),
                                 {"never": "reached"}])
        with pytest.raises(ConfigurationError, match="synthetic 400") as err:
            client._call("POST", "/v1/estimate", body={})
        assert err.value.status == 400
        assert err.value.kind == "bad_request"
        assert client.attempts == 1

    def test_exhausted_retries_raise_the_last_error(self):
        client = ScriptedClient([ConnectionResetError(f"try {n}")
                                 for n in range(4)])
        with pytest.raises(ServiceError, match="cannot reach"):
            client._call("GET", "/v1/jobs")
        assert client.attempts == 4

    def test_structured_error_bodies_map_to_typed_exceptions(self):
        client = ScriptedClient([http_error(
            504, body={"error": "deadline exceeded mid-estimate",
                       "kind": "deadline"})], retry=NO_RETRY)
        with pytest.raises(DeadlineExceeded,
                           match="deadline exceeded mid-estimate") as err:
            client._call("POST", "/v1/estimate", body={})
        assert err.value.status == 504
        assert err.value.kind == "deadline"

    def test_unstructured_error_body_preserves_status(self):
        exc = urllib.error.HTTPError(
            "http://test/x", 500, "oops", {},
            io.BytesIO(b"<html>proxy said no</html>"))
        client = ScriptedClient([exc], retry=NO_RETRY)
        with pytest.raises(ServiceError, match="HTTP 500") as err:
            client._call("GET", "/x")
        assert err.value.status == 500

    def test_backoff_grows_and_caps(self):
        import random

        policy = RetryPolicy(base=0.1, multiplier=2.0, max_backoff=0.3,
                             jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff(attempt, rng) for attempt in range(4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base=-1.0)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_consecutive_connection_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=10.0,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        breaker.before_call()  # still closed
        breaker.record_failure()
        with pytest.raises(CircuitOpenError, match="3 consecutive"):
            breaker.before_call()

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.now += 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.before_call()  # the probe is allowed through
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=10.0,
                                 clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.now += 10.0
        breaker.before_call()
        breaker.record_failure()  # single probe failure reopens
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_http_error_responses_do_not_trip_the_breaker(self):
        client = ScriptedClient(
            [http_error(500) for _ in range(4)],
            retry=RetryPolicy(max_attempts=4, base=0.0, jitter=0.0),
            breaker=CircuitBreaker(failure_threshold=2))
        with pytest.raises(ServiceError):
            client._call("GET", "/x")
        # Four 5xx responses, threshold 2: still closed.
        assert client.breaker.state == CircuitBreaker.CLOSED

    def test_open_breaker_fails_fast_without_transport(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=60.0,
                                 clock=clock)
        client = ScriptedClient([ConnectionResetError("down"),
                                 {"never": "reached"}],
                                retry=NO_RETRY, breaker=breaker)
        with pytest.raises(ServiceError, match="cannot reach"):
            client._call("GET", "/x")
        with pytest.raises(CircuitOpenError):
            client._call("GET", "/x")
        assert client.attempts == 1  # the second call never hit transport

    def test_each_client_gets_its_own_breaker(self):
        a = RemoteClient("http://a")
        b = RemoteClient("http://b")
        assert a.breaker is not b.breaker
        assert RemoteClient("http://c", breaker=False).breaker is None
