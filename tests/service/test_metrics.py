"""Metrics registry: semantics, exposition format, thread safety."""

from __future__ import annotations

import math
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.service.metrics import MetricsRegistry


class TestCounter:
    def test_counts_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "Hits.",
                                   labelnames=("tier",))
        counter.inc(tier="estimate")
        counter.inc(2, tier="estimate")
        counter.inc(tier="rg")
        assert counter.value(tier="estimate") == 3
        assert counter.value(tier="rg") == 1
        assert counter.value(tier="never") == 0

    def test_rejects_decrease_and_bad_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "C.", labelnames=("a",))
        with pytest.raises(ConfigurationError):
            counter.inc(-1, a="x")
        with pytest.raises(ConfigurationError):
            counter.inc(b="x")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4


class TestHistogram:
    def test_buckets_sum_count_quantile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", "Latency.",
                                       buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 10.0
        assert math.isnan(registry.histogram(
            "empty_seconds", buckets=(1.0,)).quantile(0.5))

    def test_overflow_goes_to_inf_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "H.", buckets=(1.0,))
        histogram.observe(100.0)
        assert histogram.quantile(1.0) == math.inf


class TestRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("shared_total", "S.", labelnames=("x",))
        b = registry.counter("shared_total", "S.", labelnames=("x",))
        assert a is b
        with pytest.raises(ConfigurationError):
            registry.gauge("shared_total")
        with pytest.raises(ConfigurationError):
            registry.counter("shared_total", labelnames=("y",))

    def test_render_prometheus_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.",
                                   labelnames=("code",))
        counter.inc(code='2"00\n')
        histogram = registry.histogram("lat_seconds", "Latency.",
                                       buckets=(0.5, 1.0))
        histogram.observe(0.3)
        histogram.observe(3.0)
        text = registry.render()
        assert "# HELP requests_total Requests.\n" in text
        assert "# TYPE requests_total counter\n" in text
        assert 'requests_total{code="2\\"00\\n"} 1' in text
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("par_total", "P.")
        per_thread, n_threads = 2000, 8

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == per_thread * n_threads
