"""Incremental what-if over the service: the ``base=`` protocol e2e.

Covers the full interactive loop the delta engine exists for: run one
full estimate, then fire a storm of ≥100 what-if edits against its
content hash over HTTP, each answered from the recorded base without a
fresh run. Also pins the protocol's failure shape — typed 404 for an
unknown base, graceful full-recompute fallback with
``details["delta"]["fallback_reason"]`` — and the ``repro_delta_*``
metrics that make the hit/fallback split observable.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceClient, WhatIfRequest, create_server
from repro.service.jobs import EstimateRequest, TechnologyConfig
from repro.service.metrics import MetricsRegistry

from .conftest import CELLS


@pytest.fixture()
def stack():
    metrics = MetricsRegistry()
    client = ServiceClient(workers=2, metrics=metrics)
    http_server = create_server(client, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    base_url = f"http://127.0.0.1:{http_server.server_address[1]}"
    try:
        yield base_url, client, metrics
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5.0)
        client.close()


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30.0) as response:
        return response.status, response.read().decode("utf-8")


def post(base, path, document, timeout=300.0):
    data = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


ESTIMATE_BODY = {
    "n_cells": 900,
    "width_mm": 0.6,
    "height_mm": 0.6,
    "usage": {"INV_X1": 0.5, "NAND2_X1": 0.5},
    "cells": list(CELLS),
    "method": "linear",
}


def record_base(base_url):
    """Run the full estimate and return its content hash."""
    status, document = post(base_url, "/v1/estimate", ESTIMATE_BODY)
    assert status == 200
    request = EstimateRequest.from_dict(ESTIMATE_BODY)
    return request.key()


def swap_edit(fraction):
    return {"type": "cell_swap", "from_cell": "INV_X1",
            "to_cell": "NAND2_X1", "fraction": fraction}


class TestWhatIfEndpoint:
    def test_single_whatif_round_trip(self, stack):
        base_url, _, _ = stack
        key = record_base(base_url)
        status, document = post(base_url, "/v1/estimate",
                                {"base": key, "edits": [swap_edit(0.01)]})
        assert status == 200
        assert document["state"] == "done"
        estimate = document["estimate"]
        assert estimate["mean"] > 0
        ledger = estimate["details"]["delta"]
        assert ledger["edits"] == 1
        assert not ledger.get("fallback")

    def test_healthz_details_surface_cache_and_base_store(self, stack):
        base_url, _, _ = stack
        record_base(base_url)
        status, body = get(base_url, "/v1/healthz")
        assert status == 200
        details = json.loads(body)["details"]
        assert details["base_store"]["requests"] == 1
        estimate_tier = details["cache"]["estimate"]
        assert estimate_tier["entries"] == 1
        assert estimate_tier["bytes"] > 0
        assert {"hits", "misses", "evictions"} <= set(estimate_tier)

    def test_unknown_base_is_typed_404(self, stack):
        base_url, _, _ = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(base_url, "/v1/estimate",
                 {"base": "f" * 64, "edits": [swap_edit(0.01)]})
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["kind"] == "unknown_base"

    def test_malformed_whatif_is_400(self, stack):
        base_url, _, _ = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(base_url, "/v1/estimate",
                 {"base": "f" * 64, "edits": [{"type": "teleport"}]})
        assert excinfo.value.code == 400

    def test_storm_of_edits_served_from_one_base(self, stack):
        """≥100 distinct what-ifs against one recorded base, e2e."""
        base_url, client, metrics = stack
        key = record_base(base_url)
        means = []
        for i in range(100):
            fraction = 0.001 + i * 0.004
            status, document = post(
                base_url, "/v1/estimate",
                {"base": key, "edits": [swap_edit(fraction)]})
            assert status == 200
            estimate = document["estimate"]
            assert not estimate["details"]["delta"].get("fallback")
            means.append(estimate["mean"])
        # NAND2 leaks differently from INV, so the swept swap fraction
        # must move the mean monotonically — the storm is real work.
        assert len(set(means)) == len(means)
        scrape = metrics.render()
        assert 'repro_delta_requests_total{outcome="hit"} 100' in scrape
        # One base build serves the whole storm.
        assert client.pipeline.base_store_stats()["bases"] == 1

    def test_fallback_recomputes_and_reports_reason(self, stack):
        """An edit the delta engine rejects still gets an answer."""
        base_url, _, metrics = stack
        key = record_base(base_url)
        # Growing the chip beyond the linear-transform regime trips
        # DeltaIncompatibleError inside the engine -> full recompute.
        status, document = post(
            base_url, "/v1/estimate",
            {"base": key,
             "edits": [{"type": "floorplan_resize", "n_cells": 600_000,
                        "width": 20e-3, "height": 20e-3}]},
            timeout=600.0)
        assert status == 200
        estimate = document["estimate"]
        ledger = estimate["details"]["delta"]
        assert ledger["fallback"]
        assert "fallback_reason" in ledger
        assert estimate["mean"] > 0
        assert estimate["n_cells"] == 600_000
        scrape = metrics.render()
        assert "repro_delta_fallbacks_total" in scrape


class TestInProcessClient:
    def test_serviceclient_whatif_helper(self):
        metrics = MetricsRegistry()
        client = ServiceClient(workers=1, metrics=metrics)
        try:
            full = client.estimate(EstimateRequest.from_dict(ESTIMATE_BODY))
            key = EstimateRequest.from_dict(ESTIMATE_BODY).key()
            assert client.has_base(key)
            estimate = client.whatif(
                WhatIfRequest(base=key, edits=[swap_edit(0.05)]))
            assert estimate.mean > 0
            assert estimate.mean != full.mean
            assert estimate.details["delta"]["edits"] == 1
        finally:
            client.close()

    def test_technology_config_travels(self):
        client = ServiceClient(workers=1)
        try:
            body = dict(ESTIMATE_BODY,
                        technology=TechnologyConfig(
                            corr_length_mm=0.25).to_dict())
            request = EstimateRequest.from_dict(body)
            client.estimate(request)
            estimate = client.whatif(WhatIfRequest(
                base=request.key(), edits=[swap_edit(0.02)]))
            assert estimate.mean > 0
        finally:
            client.close()
