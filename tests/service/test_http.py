"""HTTP API: endpoints, status codes, async flow, metrics scrape."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceClient, create_server

from .conftest import CELLS


@pytest.fixture()
def server():
    client = ServiceClient(workers=2)
    http_server = create_server(client, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{http_server.server_address[1]}"
    try:
        yield base
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5.0)
        client.close()


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30.0) as response:
        return response.status, response.read().decode("utf-8")


def post(base, path, document, timeout=300.0):
    data = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


ESTIMATE_BODY = {
    "n_cells": 900,
    "width_mm": 0.6,
    "height_mm": 0.6,
    "usage": {"INV_X1": 0.5, "NAND2_X1": 0.5},
    "cells": list(CELLS),
    "method": "linear",
}


class TestEndpoints:
    def test_healthz_ok_while_workers_live(self, server):
        status, body = get(server, "/v1/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_sync_estimate_round_trip(self, server):
        status, document = post(server, "/v1/estimate", ESTIMATE_BODY)
        assert status == 200
        assert document["state"] == "done"
        estimate = document["estimate"]
        assert estimate["mean"] > 0
        assert estimate["std"] > 0
        assert estimate["method"] == "linear"

    def test_async_estimate_and_job_polling(self, server):
        status, document = post(
            server, "/v1/estimate", dict(ESTIMATE_BODY, **{"async": 1}))
        assert status == 202
        job_id = document["job_id"]
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status, body = get(server, f"/v1/jobs/{job_id}")
            assert status == 200
            snapshot = json.loads(body)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert snapshot["state"] == "done"
        assert snapshot["estimate"]["mean"] > 0

    def test_unknown_job_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/v1/jobs/job-does-not-exist")
        assert excinfo.value.code == 404

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/v1/nope")
        assert excinfo.value.code == 404


class TestErrors:
    def test_invalid_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/estimate", {"n_cells": -5, "width_mm": 1,
                                          "height_mm": 1})
        assert excinfo.value.code == 400
        detail = json.loads(excinfo.value.read())
        assert "error" in detail

    def test_non_json_body_is_400(self, server):
        request = urllib.request.Request(
            server + "/v1/estimate", data=b"this is not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400


class TestMetricsScrape:
    def test_second_identical_request_shows_cache_hit(self, server):
        post(server, "/v1/estimate", ESTIMATE_BODY)
        post(server, "/v1/estimate", ESTIMATE_BODY)
        status, text = get(server, "/v1/metrics")
        assert status == 200
        hit_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_cache_requests_total")
            and 'tier="estimate"' in line and 'result="hit"' in line
        ]
        assert hit_lines, "expected an estimate-tier cache hit sample"
        assert float(hit_lines[0].rsplit(" ", 1)[1]) >= 1
        assert "repro_http_requests_total" in text
        assert "repro_request_seconds_bucket" in text
        assert "repro_queue_depth" in text


class TestReadiness:
    def test_readyz_ok_when_serving(self, server):
        status, body = get(server, "/v1/readyz")
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ready"
        assert document["draining"] is False
        assert document["saturated"] is False

    def test_saturated_scheduler_reports_unready(self):
        """Readiness (not liveness) goes 503 while the queue is full."""
        from repro.service.metrics import MetricsRegistry
        from repro.service.scheduler import EstimationScheduler

        gate = threading.Event()

        def compute(request, job):
            assert gate.wait(10.0)
            return "ok"

        scheduler = EstimationScheduler(compute, workers=1, queue_limit=1)

        class StubClient:
            metrics = MetricsRegistry()
            faults = None

            def __init__(self, scheduler):
                self.scheduler = scheduler

        http_server = create_server(StubClient(scheduler), port=0)
        thread = threading.Thread(target=http_server.serve_forever,
                                  daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{http_server.server_address[1]}"
        try:
            from repro.service.jobs import EstimateRequest

            def submit(n):
                return scheduler.submit(EstimateRequest(
                    n_cells=n, width_mm=1.0, height_mm=1.0))

            submit(10)  # occupies the single worker
            deadline = time.monotonic() + 5.0
            while (scheduler.queue_depth > 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)  # wait for the worker to claim it
            submit(20)  # fills the queue (limit 1)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(base, "/v1/readyz")
            assert excinfo.value.code == 503
            document = json.loads(excinfo.value.read())
            assert document["saturated"] is True
            assert "saturated" in document["reasons"]
            # Liveness stays green: the process is healthy, just busy.
            status, _ = get(base, "/v1/healthz")
            assert status == 200
            gate.set()
        finally:
            gate.set()
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=5.0)
            scheduler.close()

    def test_draining_refuses_new_work_but_stays_alive(self, server_pair):
        base, http_server = server_pair
        http_server.begin_drain()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(base, "/v1/readyz")
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["draining"] is True
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(base, "/v1/estimate", ESTIMATE_BODY)
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["kind"] == "draining"
        status, _ = get(base, "/v1/healthz")  # liveness unaffected
        assert status == 200
        status, text = get(base, "/v1/metrics")
        assert "repro_http_draining 1" in text

    def test_drain_waits_for_inflight_requests(self, server_pair):
        base, http_server = server_pair
        results = {}

        def slow_post():
            results["estimate"] = post(base, "/v1/estimate", ESTIMATE_BODY)

        poster = threading.Thread(target=slow_post)
        poster.start()
        deadline = time.monotonic() + 10.0
        while http_server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        http_server.begin_drain()
        assert http_server.await_idle(grace=120.0)
        poster.join(timeout=10.0)
        status, document = results["estimate"]
        assert status == 200
        assert document["estimate"]["mean"] > 0


@pytest.fixture()
def server_pair():
    """Like ``server`` but also yields the server object for drain tests."""
    from repro.service import ServiceClient, create_server

    client = ServiceClient(workers=2)
    http_server = create_server(client, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{http_server.server_address[1]}"
    try:
        yield base, http_server
    finally:
        if not http_server.draining:
            http_server.shutdown()
            http_server.server_close()
        else:
            try:
                http_server.shutdown()
                http_server.server_close()
            except Exception:
                pass
        thread.join(timeout=5.0)
        client.close()


class TestValidation:
    def test_unknown_request_field_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/estimate",
                 dict(ESTIMATE_BODY, surprise_field=1))
        assert excinfo.value.code == 400
        document = json.loads(excinfo.value.read())
        assert document["kind"] == "bad_request"
        assert "surprise_field" in document["error"]

    def test_oversized_body_is_400(self, server):
        padded = dict(ESTIMATE_BODY, usage={
            f"CELL_{i}": 0.0 for i in range(60000)})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/estimate", padded)
        assert excinfo.value.code == 400
        document = json.loads(excinfo.value.read())
        assert "too large" in document["error"]

    def test_empty_body_is_400(self, server):
        request = urllib.request.Request(
            server + "/v1/estimate", data=b"",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400

    def test_error_responses_feed_the_4xx_counter(self, server):
        with pytest.raises(urllib.error.HTTPError):
            get(server, "/v1/nope")
        with pytest.raises(urllib.error.HTTPError):
            post(server, "/v1/estimate", {"bad": True})
        status, text = get(server, "/v1/metrics")
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_http_errors_total")
                 and 'status_class="4xx"' in line]
        assert lines and float(lines[0].rsplit(" ", 1)[1]) >= 2
        assert "repro_http_request_bytes_bucket" in text
