"""HTTP API: endpoints, status codes, async flow, metrics scrape."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceClient, create_server

from .conftest import CELLS


@pytest.fixture()
def server():
    client = ServiceClient(workers=2)
    http_server = create_server(client, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{http_server.server_address[1]}"
    try:
        yield base
    finally:
        http_server.shutdown()
        http_server.server_close()
        thread.join(timeout=5.0)
        client.close()


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30.0) as response:
        return response.status, response.read().decode("utf-8")


def post(base, path, document, timeout=300.0):
    data = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


ESTIMATE_BODY = {
    "n_cells": 900,
    "width_mm": 0.6,
    "height_mm": 0.6,
    "usage": {"INV_X1": 0.5, "NAND2_X1": 0.5},
    "cells": list(CELLS),
    "method": "linear",
}


class TestEndpoints:
    def test_healthz_ok_while_workers_live(self, server):
        status, body = get(server, "/v1/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_sync_estimate_round_trip(self, server):
        status, document = post(server, "/v1/estimate", ESTIMATE_BODY)
        assert status == 200
        assert document["state"] == "done"
        estimate = document["estimate"]
        assert estimate["mean"] > 0
        assert estimate["std"] > 0
        assert estimate["method"] == "linear"

    def test_async_estimate_and_job_polling(self, server):
        status, document = post(
            server, "/v1/estimate", dict(ESTIMATE_BODY, **{"async": 1}))
        assert status == 202
        job_id = document["job_id"]
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status, body = get(server, f"/v1/jobs/{job_id}")
            assert status == 200
            snapshot = json.loads(body)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert snapshot["state"] == "done"
        assert snapshot["estimate"]["mean"] > 0

    def test_unknown_job_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/v1/jobs/job-does-not-exist")
        assert excinfo.value.code == 404

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/v1/nope")
        assert excinfo.value.code == 404


class TestErrors:
    def test_invalid_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/estimate", {"n_cells": -5, "width_mm": 1,
                                          "height_mm": 1})
        assert excinfo.value.code == 400
        detail = json.loads(excinfo.value.read())
        assert "error" in detail

    def test_non_json_body_is_400(self, server):
        request = urllib.request.Request(
            server + "/v1/estimate", data=b"this is not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400


class TestMetricsScrape:
    def test_second_identical_request_shows_cache_hit(self, server):
        post(server, "/v1/estimate", ESTIMATE_BODY)
        post(server, "/v1/estimate", ESTIMATE_BODY)
        status, text = get(server, "/v1/metrics")
        assert status == 200
        hit_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_cache_requests_total")
            and 'tier="estimate"' in line and 'result="hit"' in line
        ]
        assert hit_lines, "expected an estimate-tier cache hit sample"
        assert float(hit_lines[0].rsplit(" ", 1)[1]) >= 1
        assert "repro_http_requests_total" in text
        assert "repro_request_seconds_bucket" in text
        assert "repro_queue_depth" in text
