"""ProcessWorkerPool supervision: crash requeue, heartbeats, poison jobs.

These tests drive the pool with deliberately misbehaving workers —
hard exits (``os._exit``), heartbeat stalls, raised exceptions — and
assert the crash-only contract: every submitted task resolves (result
or typed error), dead workers are replaced, and no child process
outlives ``stop()``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.exceptions import PoisonJobError, WorkerCrashedError
from repro.parallel import ProcessWorkerPool, process_worker_context


def _init():
    return {"init_pid": os.getpid()}


def _work(state, payload):
    action = payload["action"]
    if action == "echo":
        return {"value": payload["value"], "pid": os.getpid(),
                "init_pid": state["init_pid"]}
    if action == "crash":
        os._exit(3)
    if action == "crash_once":
        marker = payload["marker"]
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            os._exit(3)
        return {"recovered": True, "pid": os.getpid()}
    if action == "stall_once":
        marker = payload["marker"]
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            process_worker_context().stall(payload["seconds"])
        return {"recovered": True, "pid": os.getpid()}
    if action == "raise":
        raise ValueError(payload["value"])
    if action == "sleep":
        time.sleep(payload["seconds"])
        return {"slept": True}
    raise AssertionError(f"unknown action {action!r}")


def _pool(**overrides):
    options = dict(n_workers=1, init_fn=_init, name="test-pool",
                   heartbeat_interval=0.02, heartbeat_timeout=0.5,
                   restart_backoff=0.01, max_backoff=0.1,
                   init_timeout=30.0)
    options.update(overrides)
    return ProcessWorkerPool(_work, **options)


@pytest.fixture
def pool():
    pool = _pool()
    yield pool
    pool.stop()


def test_round_trip_runs_in_a_child_process(pool):
    result = pool.run({"action": "echo", "value": 42}, wait=30.0)
    assert result["value"] == 42
    assert result["pid"] != os.getpid()
    assert result["init_pid"] == result["pid"]  # state built in the child


def test_typed_exceptions_cross_the_process_boundary(pool):
    future = pool.submit({"action": "raise", "value": "boom"})
    with pytest.raises(ValueError, match="boom"):
        future.result(30.0)
    # The worker survives a raised exception (no restart needed).
    assert pool.run({"action": "echo", "value": 1}, wait=30.0)["value"] == 1
    assert pool.restarts == 0


def test_crash_requeues_and_recovers(pool, tmp_path):
    marker = str(tmp_path / "crashed-once")
    first_pid = pool.run({"action": "echo", "value": 0}, wait=30.0)["pid"]
    result = pool.run(
        {"action": "crash_once", "marker": marker}, key="crashy", wait=30.0)
    assert result["recovered"] is True
    assert result["pid"] != first_pid  # a fresh worker finished the job
    assert pool.restarts == 1
    assert any("exited with code 3" in failure for failure in pool.failures)


def test_heartbeat_stall_kills_and_requeues(pool, tmp_path):
    marker = str(tmp_path / "stalled-once")
    result = pool.run(
        {"action": "stall_once", "marker": marker, "seconds": 10.0},
        key="stall", wait=30.0)
    assert result["recovered"] is True
    assert pool.restarts == 1
    assert any("heartbeat missed" in failure for failure in pool.failures)


def test_retry_budget_exhaustion_is_a_typed_error():
    pool = _pool(max_task_retries=1, poison_threshold=100)
    try:
        future = pool.submit({"action": "crash"})
        with pytest.raises(WorkerCrashedError, match="after 2 attempts"):
            future.result(30.0)
    finally:
        pool.stop()


def test_poison_quarantine_fails_fast_and_pool_heals():
    pool = _pool(poison_threshold=2, max_task_retries=10)
    try:
        future = pool.submit({"action": "crash"}, key="poison-key")
        with pytest.raises(PoisonJobError):
            future.result(30.0)
        assert pool.is_quarantined("poison-key")
        assert pool.quarantined["poison-key"] == 2
        # Resubmitting the poisoned key fails fast, without a worker.
        restarts = pool.restarts
        with pytest.raises(PoisonJobError):
            pool.submit({"action": "crash"}, key="poison-key").result(30.0)
        assert pool.restarts == restarts
        # Healthy traffic still flows after the quarantine.
        assert pool.run({"action": "echo", "value": 7},
                        wait=30.0)["value"] == 7
    finally:
        pool.stop()


def test_task_deadline_kills_the_worker():
    class Budget(WorkerCrashedError):
        pass

    pool = _pool(timeout_error=lambda detail: Budget(detail))
    try:
        future = pool.submit({"action": "sleep", "seconds": 30.0},
                             timeout=0.3)
        with pytest.raises(Budget, match="overran its deadline"):
            future.result(30.0)
        # Deadline overruns are final — never requeued.
        assert future.attempts == 1
        assert pool.run({"action": "echo", "value": 5},
                        wait=30.0)["value"] == 5
    finally:
        pool.stop()


def test_liveness_reports_pid_restarts_and_heartbeat_age(pool):
    pool.run({"action": "echo", "value": 1}, wait=30.0)
    [entry] = pool.liveness()
    assert entry["worker"] == "test-pool-0"
    assert entry["alive"] is True
    assert entry["pid"] is not None and entry["pid"] != os.getpid()
    assert entry["restarts"] == 0
    assert entry["heartbeat_age_s"] is not None
    assert entry["heartbeat_age_s"] < 5.0


def test_stop_reaps_every_worker_no_orphans():
    pool = _pool(n_workers=2)
    pool.run({"action": "echo", "value": 1}, wait=30.0)
    pids = [entry["pid"] for entry in pool.liveness()
            if entry["pid"] is not None]
    assert pids
    pool.stop()
    deadline = time.monotonic() + 10.0
    remaining = set(pids)
    while remaining and time.monotonic() < deadline:
        for pid in list(remaining):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                remaining.discard(pid)
        if remaining:
            time.sleep(0.05)
    assert not remaining, f"orphaned worker processes: {sorted(remaining)}"
    # Submissions after stop fail fast with a typed error.
    with pytest.raises(WorkerCrashedError, match="stopped"):
        pool.submit({"action": "echo", "value": 1}).result(5.0)


def test_restart_budget_exhaustion_retires_the_pool_fast():
    # When every slot spends its restart budget the pool must flip to
    # stopped and fail queued + new work with typed errors — never
    # leave futures hanging with no worker left to pick them up.
    pool = _pool(max_restarts=0, max_task_retries=10, poison_threshold=100)
    try:
        future = pool.submit({"action": "crash"})
        with pytest.raises(WorkerCrashedError, match="restart budget"):
            future.result(30.0)
        assert pool.stopped
        with pytest.raises(WorkerCrashedError, match="stopped"):
            pool.submit({"action": "echo", "value": 1}).result(5.0)
    finally:
        pool.stop()


def test_successful_completion_forgives_accumulated_crashes(tmp_path):
    # A key that completes is not poison: its crash count resets, so
    # spaced-out transient deaths never accumulate to quarantine.
    pool = _pool(poison_threshold=2, max_task_retries=10)
    try:
        for attempt in range(2):
            marker = str(tmp_path / f"crash-once-{attempt}")
            result = pool.run({"action": "crash_once", "marker": marker},
                              key="flaky-key", wait=30.0)
            assert result["recovered"] is True
            # Without the reset, the second round's single crash would
            # be strike two and quarantine the healthy key.
            assert not pool.is_quarantined("flaky-key")
    finally:
        pool.stop()


def test_queued_tasks_are_cancelled_on_stop():
    pool = _pool(n_workers=1)
    blocker = pool.submit({"action": "sleep", "seconds": 5.0})
    queued = pool.submit({"action": "echo", "value": 1})
    time.sleep(0.2)  # let the blocker reach the worker
    pool.stop(timeout=10.0)
    with pytest.raises(WorkerCrashedError):
        queued.result(10.0)
    with pytest.raises(WorkerCrashedError):
        blocker.result(10.0)
