"""Replica fleet: ring properties, routing, failover, supervised
restart, and whole-fleet graceful drain."""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from collections import Counter

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.service.fleet import HashRing, ReplicaFleet, create_front
from repro.service.jobs import EstimateRequest

from .conftest import CELLS

ESTIMATE_BODY = {
    "n_cells": 900,
    "width_mm": 0.6,
    "height_mm": 0.6,
    "usage": {"INV_X1": 0.5, "NAND2_X1": 0.5},
    "cells": list(CELLS),
    "method": "linear",
}

#: Replica options every fleet in this module shares: single worker,
#: fast graceful drain so teardown stays quick.
REPLICA_OPTIONS = {"workers": 1, "cache_entries": 64, "drain_grace": 20.0}

FLEET_OPTIONS = {"restart_backoff": 0.05, "max_backoff": 0.5,
                 "poll_interval": 0.05}


def get(base, path):
    request = urllib.request.Request(base + path)
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(base, path, document, timeout=300.0):
    data = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHashRing:
    def test_owner_is_stable(self):
        ring = HashRing(4)
        keys = [f"key-{i}" for i in range(500)]
        owners = [ring.owner(key) for key in keys]
        assert owners == [ring.owner(key) for key in keys]

    def test_keyspace_is_spread_over_every_slot(self):
        ring = HashRing(4)
        counts = Counter(ring.owner(f"key-{i}") for i in range(2000))
        assert sorted(counts) == [0, 1, 2, 3]
        # Virtual nodes keep the split roughly even: no slot owns more
        # than twice its fair share.
        assert max(counts.values()) < 2 * (2000 / 4)

    def test_preference_starts_at_owner_and_covers_all(self):
        ring = HashRing(3)
        for i in range(50):
            order = ring.preference(f"key-{i}")
            assert order[0] == ring.owner(f"key-{i}")
            assert sorted(order) == [0, 1, 2]

    def test_single_replica_ring(self):
        ring = HashRing(1)
        assert ring.owner("anything") == 0
        assert ring.preference("anything") == [0]

    def test_rejects_empty_ring(self):
        with pytest.raises(ConfigurationError):
            HashRing(0)


@pytest.fixture(scope="module")
def fleet_front():
    fleet, front = create_front(2, options=dict(REPLICA_OPTIONS),
                                fleet_options=dict(FLEET_OPTIONS))
    thread = threading.Thread(target=front.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{front.server_address[1]}"
    try:
        yield fleet, front, base
    finally:
        pids = [pid for pid in fleet.pids() if pid]
        front.drain(grace=30.0)
        thread.join(timeout=10.0)
        for pid in pids:
            # Reaped, not orphaned: drain must leave no replica behind.
            with pytest.raises(OSError):
                os.kill(pid, 0)


class TestFleetRouting:
    def test_estimate_routes_and_coalesces(self, fleet_front):
        fleet, front, base = fleet_front
        status, document = post(base, "/v1/estimate", ESTIMATE_BODY)
        assert status == 200
        first = document["estimate"]

        started = time.monotonic()
        status, repeat = post(base, "/v1/estimate", ESTIMATE_BODY)
        warm_seconds = time.monotonic() - started
        assert status == 200
        # Same content key -> same replica -> warm memory tier,
        # bit-identical result.
        assert repeat["estimate"] == first
        assert warm_seconds < 1.0

    def test_whatif_routes_to_the_base_owner(self, fleet_front):
        fleet, front, base = fleet_front
        status, _ = post(base, "/v1/estimate", ESTIMATE_BODY)
        assert status == 200
        key = EstimateRequest.from_dict(ESTIMATE_BODY).key()
        # Routed by the base hash, the delta lands on the replica that
        # recorded the base -- no unknown_base even with 2 replicas.
        status, document = post(base, "/v1/estimate", {
            "base": key,
            "edits": [{"type": "floorplan_resize", "n_cells": 1000}],
        })
        assert status == 200
        assert document["estimate"]["n_cells"] == 1000

    def test_sweep_through_the_front(self, fleet_front):
        fleet, front, base = fleet_front
        status, document = post(base, "/v1/sweep", {
            "base": ESTIMATE_BODY,
            "axes": [{"name": "n_cells", "values": [300, 500]}],
        })
        assert status == 200
        assert len(document["sweep"]["estimates"]) == 2

    def test_healthz_aggregates_replicas(self, fleet_front):
        fleet, front, base = fleet_front
        status, document = get(base, "/v1/healthz")
        assert status == 200
        assert document["status"] in ("ok", "degraded")
        assert document["fleet"]["n_replicas"] == 2
        entries = {entry["replica"]: entry
                   for entry in document["replicas"]}
        assert sorted(entries) == [0, 1]
        for entry in entries.values():
            if entry["alive"]:
                assert entry["healthz"]["status"] == "ok"

    def test_readyz_reports_ready_replicas(self, fleet_front):
        fleet, front, base = fleet_front
        status, document = get(base, "/v1/readyz")
        assert status == 200
        assert document["ready_replicas"]

    def test_job_status_fans_out(self, fleet_front):
        fleet, front, base = fleet_front
        status, document = post(base, "/v1/estimate", ESTIMATE_BODY)
        assert status == 200
        status, job = get(base, f"/v1/jobs/{document['job_id']}")
        assert status == 200
        assert job["state"] == "done"

    def test_unknown_job_is_404_everywhere(self, fleet_front):
        fleet, front, base = fleet_front
        status, document = get(base, "/v1/jobs/nope")
        assert status == 404
        assert document["kind"] == "not_found"

    def test_front_metrics_scrape(self, fleet_front):
        fleet, front, base = fleet_front
        with urllib.request.urlopen(base + "/v1/metrics",
                                    timeout=30.0) as response:
            text = response.read().decode("utf-8")
        assert "repro_front_requests_total" in text
        assert "repro_front_routed_total" in text

    def test_kill_fails_over_and_supervisor_restarts(self, fleet_front):
        fleet, front, base = fleet_front
        status, document = post(base, "/v1/estimate", ESTIMATE_BODY)
        assert status == 200
        baseline = document["estimate"]

        key = EstimateRequest.from_dict(ESTIMATE_BODY).key()
        owner = front.ring.owner(key)
        assert fleet.kill(owner) is not None

        # The very next request fails over to the surviving replica and
        # still answers bit-identically (shared deterministic pipeline).
        status, document = post(base, "/v1/estimate", ESTIMATE_BODY)
        assert status == 200
        assert document["estimate"] == baseline

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if fleet.address(owner) is not None:
                break
            time.sleep(0.05)
        assert fleet.address(owner) is not None, fleet.failures
        assert fleet.restarts >= 1
        assert any("exited with code" in note for note in fleet.failures)

        # The restarted slot serves again: repeat until the ring owner
        # answers (it may briefly still be warming).
        status, document = post(base, "/v1/estimate", ESTIMATE_BODY)
        assert status == 200
        assert document["estimate"] == baseline


class TestSupervisionRobustness:
    # A replica whose child dies before sending the ready handshake
    # tears the pipe: poll() returns on EOF, recv() raises EOFError.
    # Supervision must see a typed ReproError and keep supervising.
    # cache_shards=0 with a cache_dir makes ServiceClient raise in the
    # child before the handshake is sent.

    def test_death_before_handshake_is_a_typed_error(self, tmp_path):
        fleet = ReplicaFleet(
            1, dict(REPLICA_OPTIONS, cache_dir=str(tmp_path / "cache"),
                    cache_shards=0),
            **FLEET_OPTIONS)
        try:
            with pytest.raises(ReproError,
                               match="before its ready handshake"):
                fleet.start()
        finally:
            fleet.stop(grace=5.0)

    def test_supervisor_survives_failed_respawns(self, tmp_path):
        fleet = ReplicaFleet(1, dict(REPLICA_OPTIONS), **FLEET_OPTIONS)
        fleet.start()
        try:
            assert fleet.address(0) is not None
            # Sabotage the options so every respawned child dies before
            # its handshake, then kill the replica.
            fleet.options["cache_dir"] = str(tmp_path / "cache")
            fleet.options["cache_shards"] = 0
            fleet.kill(0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if any("respawn failed" in note
                       for note in fleet.failures):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("no respawn-failure note recorded")
            assert fleet._supervisor.is_alive()
            # Heal the options: supervision is still running, so the
            # slot must come back on its own.
            fleet.options["cache_shards"] = 8
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if fleet.address(0) is not None:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"slot never recovered: {fleet.failures}")
        finally:
            fleet.stop(grace=5.0)


class TestFleetDrain:
    def test_whole_fleet_drain_reaps_every_replica(self):
        fleet, front = create_front(2, options=dict(REPLICA_OPTIONS),
                                    fleet_options=dict(FLEET_OPTIONS))
        thread = threading.Thread(target=front.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{front.server_address[1]}"
        pids = [pid for pid in fleet.pids() if pid]
        assert len(pids) == 2

        front.begin_drain()
        status, document = post(base, "/v1/estimate", ESTIMATE_BODY)
        assert status == 503
        assert document["kind"] == "draining"
        status, document = get(base, "/v1/readyz")
        assert status == 503

        clean = front.drain(grace=30.0)
        thread.join(timeout=10.0)
        assert clean
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)
