"""Content-hash determinism for the service's request identities.

The cache tiers, the coalescer, and the delta ``base=`` protocol all
key on ``request.key()`` — a sha256 over the canonical JSON of the
request. That makes three properties load-bearing:

* **insertion-order independence** — dict field order must not leak
  into the hash (clients build payloads in arbitrary order);
* **numpy-scalar transparency** — ``np.int64(4096)`` and ``4096`` must
  hash identically (sweep/benchmark code passes numpy scalars);
* **cross-process stability** — a hash recorded by one server process
  must resolve in another (disk cache reuse, delta bases handed
  between sessions), so no ``PYTHONHASHSEED``/``id()`` dependence.
"""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.service.jobs import EstimateRequest, TechnologyConfig
from repro.service.sweep import SweepAxisSpec, SweepRequest
from repro.service.whatif import WhatIfRequest


def _estimate_request(**overrides):
    fields = dict(
        n_cells=4096, width_mm=1.0, height_mm=1.0,
        usage={"INV_X1": 0.5, "NAND2_X1": 0.3, "NOR2_X1": 0.2},
        signal_probability=0.5, method="linear")
    fields.update(overrides)
    return EstimateRequest(**fields)


BASE_HASH = "a" * 64


def _whatif_request(edits=None):
    return WhatIfRequest(base=BASE_HASH, edits=edits or [
        {"type": "cell_swap", "from_cell": "INV_X1",
         "to_cell": "NAND2_X1", "fraction": 0.01},
    ])


class TestInsertionOrder:
    def test_usage_order_irrelevant(self):
        forward = _estimate_request(
            usage={"INV_X1": 0.5, "NAND2_X1": 0.3, "NOR2_X1": 0.2})
        reversed_ = _estimate_request(
            usage={"NOR2_X1": 0.2, "NAND2_X1": 0.3, "INV_X1": 0.5})
        assert forward.key() == reversed_.key()

    def test_wire_document_key_order_irrelevant(self):
        document = _estimate_request().to_dict()
        shuffled = json.loads(json.dumps(document))
        shuffled = dict(reversed(list(shuffled.items())))
        assert EstimateRequest.from_dict(shuffled).key() == \
            _estimate_request().key()

    def test_whatif_edit_key_order_irrelevant(self):
        a = _whatif_request([{"type": "cell_swap", "from_cell": "INV_X1",
                              "to_cell": "NAND2_X1", "fraction": 0.01}])
        b = _whatif_request([{"fraction": 0.01, "to_cell": "NAND2_X1",
                              "from_cell": "INV_X1", "type": "cell_swap"}])
        assert a.key() == b.key()

    def test_edit_order_is_significant(self):
        # Edits fold in order — permuting them is a different request.
        swap = {"type": "cell_swap", "from_cell": "INV_X1",
                "to_cell": "NAND2_X1", "fraction": 0.01}
        resize = {"type": "floorplan_resize", "n_cells": 2048}
        assert _whatif_request([swap, resize]).key() != \
            _whatif_request([resize, swap]).key()


class TestNumpyScalars:
    def test_numpy_ints_and_floats_hash_like_builtins(self):
        plain = _estimate_request()
        numpified = _estimate_request(
            n_cells=np.int64(4096), width_mm=np.float64(1.0),
            height_mm=np.float64(1.0),
            usage={"INV_X1": np.float64(0.5),
                   "NAND2_X1": np.float64(0.3),
                   "NOR2_X1": np.float64(0.2)},
            signal_probability=np.float64(0.5))
        assert numpified.key() == plain.key()

    def test_sweep_axis_numpy_values(self):
        plain = SweepRequest(
            base=_estimate_request(),
            axes=(SweepAxisSpec(name="signal_probability",
                                values=(0.3, 0.5)),))
        numpified = SweepRequest(
            base=_estimate_request(),
            axes=(SweepAxisSpec(name="signal_probability",
                                values=(np.float64(0.3),
                                        np.float64(0.5))),))
        assert numpified.key() == plain.key()


class TestIrrelevantFields:
    def test_priority_trace_backend_excluded(self):
        plain = _estimate_request()
        tweaked = _estimate_request(priority=7, trace=True,
                                    backend="numba")
        assert tweaked.key() == plain.key()

    def test_whatif_priority_excluded(self):
        assert _whatif_request().key() == \
            WhatIfRequest(base=BASE_HASH, priority=9, edits=[
                {"type": "cell_swap", "from_cell": "INV_X1",
                 "to_cell": "NAND2_X1", "fraction": 0.01}]).key()

    def test_technology_participates(self):
        assert _estimate_request().key() != _estimate_request(
            technology=TechnologyConfig(corr_length_mm=0.25)).key()


SUBPROCESS_SCRIPT = """
import json, sys
import numpy as np
from repro.service.jobs import EstimateRequest
from repro.service.sweep import SweepAxisSpec, SweepRequest
from repro.service.whatif import WhatIfRequest

estimate = EstimateRequest(
    n_cells=np.int64(4096), width_mm=1.0, height_mm=1.0,
    usage={"NOR2_X1": 0.2, "INV_X1": 0.5, "NAND2_X1": 0.3},
    signal_probability=0.5, method="linear")
sweep = SweepRequest(
    base=estimate,
    axes=(SweepAxisSpec(name="signal_probability", values=(0.3, 0.5)),))
whatif = WhatIfRequest(base="a" * 64, edits=[
    {"type": "cell_swap", "from_cell": "INV_X1",
     "to_cell": "NAND2_X1", "fraction": 0.01}])
print(json.dumps({"estimate": estimate.key(), "sweep": sweep.key(),
                  "whatif": whatif.key()}))
"""


class TestCrossProcess:
    @pytest.mark.parametrize("hashseed", ["0", "12345"])
    def test_hashes_stable_across_processes(self, hashseed):
        result = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SCRIPT],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": hashseed})
        got = json.loads(result.stdout)
        here = {
            "estimate": _estimate_request().key(),
            "sweep": SweepRequest(
                base=_estimate_request(),
                axes=(SweepAxisSpec(name="signal_probability",
                                    values=(0.3, 0.5)),)).key(),
            "whatif": _whatif_request().key(),
        }
        assert got == here
