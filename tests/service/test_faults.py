"""Fault-injection framework: determinism, spec grammar, zero-overhead off."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.service.faults import (
    ENV_SEED,
    ENV_SPEC,
    FaultInjector,
    FaultRule,
    InjectedFault,
    SITE_CACHE_READ,
    SITE_COMPUTE_HANG,
    SITE_WORKER_CRASH,
    SITES,
    injector_from_env,
    parse_spec,
)
from repro.service.metrics import MetricsRegistry


class TestSpecGrammar:
    def test_parses_sites_probabilities_and_caps(self):
        rules = parse_spec("worker.crash:0.25:3, cache.read:1.0")
        assert rules[SITE_WORKER_CRASH] == FaultRule(0.25, 3)
        assert rules[SITE_CACHE_READ] == FaultRule(1.0, None)

    def test_rejects_unknown_site(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            parse_spec("disk.full:0.5")

    def test_rejects_malformed_chunks(self):
        with pytest.raises(ConfigurationError, match="bad fault spec"):
            parse_spec("worker.crash")
        with pytest.raises(ConfigurationError, match="bad fault spec"):
            parse_spec("worker.crash:not-a-number")

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultRule(1.5)


class TestDeterminism:
    def test_same_seed_same_fire_sequence(self):
        def draw_sequence(seed):
            injector = FaultInjector({SITE_WORKER_CRASH: 0.3}, seed=seed)
            return [injector.should_fire(SITE_WORKER_CRASH)
                    for _ in range(200)]

        assert draw_sequence(7) == draw_sequence(7)
        assert draw_sequence(7) != draw_sequence(8)

    def test_sites_have_independent_streams(self):
        """Adding a second site must not perturb the first's sequence."""
        solo = FaultInjector({SITE_WORKER_CRASH: 0.3}, seed=1)
        both = FaultInjector({SITE_WORKER_CRASH: 0.3,
                              SITE_CACHE_READ: 0.9}, seed=1)
        solo_seq = [solo.should_fire(SITE_WORKER_CRASH) for _ in range(100)]
        both_seq = []
        for _ in range(100):
            both.should_fire(SITE_CACHE_READ)  # interleave draws
            both_seq.append(both.should_fire(SITE_WORKER_CRASH))
        assert solo_seq == both_seq


class TestFiringPolicy:
    def test_unconfigured_site_never_fires(self):
        injector = FaultInjector({SITE_WORKER_CRASH: 1.0})
        assert not injector.should_fire(SITE_CACHE_READ)
        assert not injector.enabled(SITE_CACHE_READ)

    def test_max_fires_caps_total_fires(self):
        injector = FaultInjector({SITE_WORKER_CRASH: FaultRule(1.0, 2)})
        fired = [injector.should_fire(SITE_WORKER_CRASH) for _ in range(10)]
        assert fired == [True, True] + [False] * 8
        assert injector.fires(SITE_WORKER_CRASH) == 2
        assert injector.draws(SITE_WORKER_CRASH) == 10

    def test_probability_zero_never_fires(self):
        injector = FaultInjector({SITE_WORKER_CRASH: 0.0})
        assert not any(injector.should_fire(SITE_WORKER_CRASH)
                       for _ in range(100))

    def test_crash_raises_injected_fault(self):
        injector = FaultInjector({SITE_WORKER_CRASH: 1.0})
        with pytest.raises(InjectedFault) as excinfo:
            injector.crash(SITE_WORKER_CRASH)
        assert excinfo.value.site == SITE_WORKER_CRASH

    def test_hang_sleeps_only_when_fired(self):
        injector = FaultInjector({SITE_COMPUTE_HANG: 0.0},
                                 hang_seconds=60.0)
        injector.hang(SITE_COMPUTE_HANG)  # must return immediately

    def test_corrupt_tears_bytes_deterministically(self):
        injector = FaultInjector({SITE_CACHE_READ: 1.0})
        raw = b'{"payload": {"mean": 1.0}}'
        torn = injector.corrupt(SITE_CACHE_READ, raw)
        assert torn != raw
        assert torn.endswith(b"<torn>")
        again = FaultInjector({SITE_CACHE_READ: 1.0})
        assert again.corrupt(SITE_CACHE_READ, raw) == torn

    def test_corrupt_passthrough_when_not_fired(self):
        injector = FaultInjector({SITE_CACHE_READ: 0.0})
        raw = b"pristine"
        assert injector.corrupt(SITE_CACHE_READ, raw) is raw

    def test_report_and_metrics(self):
        registry = MetricsRegistry()
        injector = FaultInjector({SITE_WORKER_CRASH: 1.0},
                                 metrics=registry)
        injector.should_fire(SITE_WORKER_CRASH)
        report = injector.report()
        assert report[SITE_WORKER_CRASH] == {"draws": 1, "fires": 1}
        counter = registry.get("repro_faults_injected_total")
        assert counter.value(site=SITE_WORKER_CRASH) == 1


class TestEnvironment:
    def test_disabled_without_env(self):
        assert injector_from_env(environ={}) is None

    def test_spec_seed_and_hang_from_env(self):
        injector = injector_from_env(environ={
            ENV_SPEC: "worker.crash:0.5:1,compute.hang:1.0",
            ENV_SEED: "42",
        })
        assert injector is not None
        assert injector.seed == 42
        assert injector.enabled(SITE_WORKER_CRASH)
        assert injector.enabled(SITE_COMPUTE_HANG)

    def test_every_site_name_is_parseable(self):
        spec = ",".join(f"{site}:0.1" for site in SITES)
        injector = FaultInjector(spec)
        assert all(injector.enabled(site) for site in SITES)
