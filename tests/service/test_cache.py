"""Tiered cache: LRU semantics, disk persistence, concurrency safety."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.service.cache import (
    MISS,
    ResultCache,
    ShardedResultCache,
    TIER_CHARACTERIZATION,
    TIER_ESTIMATE,
    TIER_RG,
    cache_stamp,
)
from repro.service.metrics import MetricsRegistry


class TestMemoryTier:
    def test_get_put_and_stats(self):
        cache = ResultCache(max_entries=4)
        assert cache.get(TIER_ESTIMATE, "k1") is MISS
        cache.put(TIER_ESTIMATE, "k1", {"v": 1})
        assert cache.get(TIER_ESTIMATE, "k1") == {"v": 1}
        stats = cache.stats()[TIER_ESTIMATE]
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1

    def test_tiers_are_isolated(self):
        cache = ResultCache()
        cache.put(TIER_RG, "k", "rg-value")
        assert cache.get(TIER_ESTIMATE, "k") is MISS
        assert cache.get(TIER_RG, "k") == "rg-value"
        with pytest.raises(KeyError):
            cache.get("nonsense", "k")

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put(TIER_ESTIMATE, "a", 1)
        cache.put(TIER_ESTIMATE, "b", 2)
        cache.get(TIER_ESTIMATE, "a")  # refresh a; b is now LRU
        cache.put(TIER_ESTIMATE, "c", 3)
        assert cache.get(TIER_ESTIMATE, "a") == 1
        assert cache.get(TIER_ESTIMATE, "b") is MISS
        assert cache.stats()[TIER_ESTIMATE]["evictions"] == 1

    def test_metrics_integration(self):
        registry = MetricsRegistry()
        cache = ResultCache(metrics=registry)
        cache.get(TIER_ESTIMATE, "k")
        cache.put(TIER_ESTIMATE, "k", 1)
        cache.get(TIER_ESTIMATE, "k")
        counter = registry.get("repro_cache_requests_total")
        assert counter.value(tier=TIER_ESTIMATE, result="miss") == 1
        assert counter.value(tier=TIER_ESTIMATE, result="hit") == 1


class TestDiskTier:
    def test_persistence_survives_a_new_cache_instance(self, tmp_path):
        first = ResultCache(persist_dir=str(tmp_path))
        first.put(TIER_ESTIMATE, "key1", {"mean": 1.5}, payload={"mean": 1.5})
        second = ResultCache(persist_dir=str(tmp_path))
        assert second.get(TIER_ESTIMATE, "key1") == {"mean": 1.5}
        assert second.stats()[TIER_ESTIMATE]["disk_hits"] == 1
        # Promoted to memory: the next lookup is a memory hit.
        assert second.get(TIER_ESTIMATE, "key1") == {"mean": 1.5}
        assert second.stats()[TIER_ESTIMATE]["hits"] == 1

    def test_revive_rebuilds_live_objects(self, tmp_path):
        cache = ResultCache(persist_dir=str(tmp_path))
        cache.put(TIER_ESTIMATE, "k", None, payload={"x": 2})
        cache.clear_memory()
        value = cache.get(TIER_ESTIMATE, "k",
                          revive=lambda payload: payload["x"] * 10)
        assert value == 20

    def test_no_payload_means_memory_only(self, tmp_path):
        cache = ResultCache(persist_dir=str(tmp_path))
        cache.put(TIER_RG, "k", object())
        assert not os.path.exists(tmp_path / TIER_RG / "k.json")

    def test_stale_stamp_invalidates_and_removes(self, tmp_path):
        old = ResultCache(persist_dir=str(tmp_path), stamp="v1:old-rev")
        old.put(TIER_ESTIMATE, "k", 1, payload=1)
        path = tmp_path / TIER_ESTIMATE / "k.json"
        assert path.exists()
        new = ResultCache(persist_dir=str(tmp_path), stamp="v1:new-rev")
        assert new.get(TIER_ESTIMATE, "k") is MISS
        assert not path.exists()  # stale entry cleaned up

    def test_torn_or_foreign_files_read_as_miss(self, tmp_path):
        cache = ResultCache(persist_dir=str(tmp_path))
        directory = tmp_path / TIER_ESTIMATE
        directory.mkdir(parents=True)
        (directory / "torn.json").write_text('{"stamp": "x", "pay')
        (directory / "foreign.json").write_text(json.dumps([1, 2, 3]))
        assert cache.get(TIER_ESTIMATE, "torn") is MISS
        assert cache.get(TIER_ESTIMATE, "foreign") is MISS

    def test_default_stamp_is_versioned(self):
        assert cache_stamp().startswith("v")


class TestConcurrency:
    def test_parallel_writers_never_tear_disk_entries(self, tmp_path):
        """Many threads rewriting the same key: readers always see a
        complete, valid JSON document (atomic temp-file + replace)."""
        cache = ResultCache(persist_dir=str(tmp_path))
        payload = {"blob": "x" * 4096}
        n_writers, rounds = 8, 30
        errors = []
        start = threading.Barrier(n_writers + 1)

        def writer():
            start.wait()
            for round_index in range(rounds):
                cache.put(TIER_ESTIMATE, "contested",
                          {"round": round_index},
                          payload=dict(payload, round=round_index))

        def reader():
            start.wait()
            path = tmp_path / TIER_ESTIMATE / "contested.json"
            seen = 0
            while seen < rounds * 2:
                seen += 1
                if not path.exists():
                    continue
                try:
                    with open(path) as handle:
                        document = json.load(handle)
                except json.JSONDecodeError as exc:
                    errors.append(exc)
                    return
                if document["payload"]["blob"] != payload["blob"]:
                    errors.append(AssertionError("partial payload"))
                    return

        threads = ([threading.Thread(target=writer)
                    for _ in range(n_writers)]
                   + [threading.Thread(target=reader)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # No temp files left behind.
        leftovers = [name for name in os.listdir(tmp_path / TIER_ESTIMATE)
                     if name.endswith(".tmp")]
        assert leftovers == []
        # And the final entry is complete and current.
        cache.clear_memory()
        final = cache.get(TIER_ESTIMATE, "contested")
        assert final["blob"] == payload["blob"]

    def test_parallel_distinct_writers_all_land(self, tmp_path):
        cache = ResultCache(max_entries=512, persist_dir=str(tmp_path))
        n_threads, per_thread = 8, 25

        def writer(thread_index):
            for item in range(per_thread):
                key = f"k-{thread_index}-{item}"
                cache.put(TIER_ESTIMATE, key, item, payload=item)

        threads = [threading.Thread(target=writer, args=(index,))
                   for index in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cache.clear_memory()
        for thread_index in range(n_threads):
            for item in range(per_thread):
                assert cache.get(
                    TIER_ESTIMATE, f"k-{thread_index}-{item}") == item


class TestIntegrity:
    """Checksummed disk entries: tampering is detected, quarantined,
    and answered with a MISS — never with corrupt data."""

    def _edit_entry(self, tmp_path, mutate):
        path = tmp_path / TIER_ESTIMATE / "k.json"
        document = json.loads(path.read_text())
        mutate(document)
        path.write_text(json.dumps(document))

    def test_tampered_payload_fails_checksum_and_quarantines(self, tmp_path):
        cache = ResultCache(persist_dir=str(tmp_path))
        cache.put(TIER_ESTIMATE, "k", {"mean": 1.0}, payload={"mean": 1.0})
        self._edit_entry(tmp_path, lambda doc: doc["payload"].update(
            mean=2.0))  # flip a number, keep valid JSON
        cache.clear_memory()
        assert cache.get(TIER_ESTIMATE, "k") is MISS
        assert cache.stats()[TIER_ESTIMATE]["corruptions"] == 1
        quarantine = tmp_path / "quarantine"
        assert quarantine.exists()
        quarantined = list(quarantine.iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.startswith(f"{TIER_ESTIMATE}.k.")
        # The original slot is free for a clean recompute.
        assert not (tmp_path / TIER_ESTIMATE / "k.json").exists()
        cache.put(TIER_ESTIMATE, "k", {"mean": 1.0}, payload={"mean": 1.0})
        cache.clear_memory()
        assert cache.get(TIER_ESTIMATE, "k") == {"mean": 1.0}

    def test_stale_stamp_is_dropped_not_quarantined(self, tmp_path):
        cache = ResultCache(persist_dir=str(tmp_path))
        cache.put(TIER_ESTIMATE, "k", {"v": 1}, payload={"v": 1})
        self._edit_entry(tmp_path, lambda doc: doc.update(
            stamp="other-revision"))
        cache.clear_memory()
        assert cache.get(TIER_ESTIMATE, "k") is MISS
        assert cache.stats()[TIER_ESTIMATE]["corruptions"] == 0
        assert not (tmp_path / "quarantine").exists()

    def test_injected_torn_write_is_caught_on_read(self, tmp_path):
        from repro.service.faults import (
            FaultInjector, FaultRule, SITE_CACHE_WRITE)

        faults = FaultInjector({SITE_CACHE_WRITE: FaultRule(1.0, 1)})
        cache = ResultCache(persist_dir=str(tmp_path), faults=faults)
        cache.put(TIER_ESTIMATE, "k", {"v": 1}, payload={"v": 1})  # torn
        cache.clear_memory()
        assert cache.get(TIER_ESTIMATE, "k") is MISS  # detected, not trusted
        assert cache.stats()[TIER_ESTIMATE]["corruptions"] == 1
        cache.put(TIER_ESTIMATE, "k", {"v": 1}, payload={"v": 1})  # clean
        cache.clear_memory()
        assert cache.get(TIER_ESTIMATE, "k") == {"v": 1}

    def test_injected_read_corruption_quarantines(self, tmp_path):
        from repro.service.faults import (
            FaultInjector, FaultRule, SITE_CACHE_READ)

        clean = ResultCache(persist_dir=str(tmp_path))
        clean.put(TIER_ESTIMATE, "k", {"v": 1}, payload={"v": 1})
        faults = FaultInjector({SITE_CACHE_READ: FaultRule(1.0, 1)})
        cache = ResultCache(persist_dir=str(tmp_path), faults=faults,
                            metrics=(registry := MetricsRegistry()))
        assert cache.get(TIER_ESTIMATE, "k") is MISS
        counter = registry.get("repro_cache_corruptions_total")
        assert counter.value(tier=TIER_ESTIMATE) == 1

    def test_checksum_is_key_order_independent(self):
        from repro.service.cache import payload_checksum

        assert (payload_checksum({"a": 1, "b": 2})
                == payload_checksum({"b": 2, "a": 1}))
        assert (payload_checksum({"a": 1})
                != payload_checksum({"a": 2}))


def _sharded_writer_main(persist_dir, writer_index, n_keys):
    """Child-process body for the cross-process writer test."""
    cache = ShardedResultCache(persist_dir=persist_dir, n_shards=4,
                               stamp="v2:test")
    for item in range(n_keys):
        key = f"proc-{writer_index}-{item}"
        cache.put(TIER_ESTIMATE, key, {"v": item},
                  payload={"v": item, "writer": writer_index})


class TestShardedCache:
    def test_round_trip_lands_in_shard_directories(self, tmp_path):
        cache = ShardedResultCache(persist_dir=str(tmp_path), n_shards=4)
        keys = [f"key-{index}" for index in range(16)]
        for index, key in enumerate(keys):
            cache.put(TIER_ESTIMATE, key, {"v": index},
                      payload={"v": index})
        cache.clear_memory()
        for index, key in enumerate(keys):
            assert cache.get(TIER_ESTIMATE, key) == {"v": index}
            shard = cache.shard_of(key)
            assert (tmp_path / f"shard-{shard:02d}" / TIER_ESTIMATE
                    / f"{key}.json").exists()
        # 16 hash-distributed keys use more than one shard.
        assert len({cache.shard_of(key) for key in keys}) > 1

    def test_persistence_across_instances(self, tmp_path):
        first = ShardedResultCache(persist_dir=str(tmp_path), n_shards=4)
        first.put(TIER_ESTIMATE, "k", {"mean": 2.5}, payload={"mean": 2.5})
        second = ShardedResultCache(persist_dir=str(tmp_path), n_shards=4)
        assert second.get(TIER_ESTIMATE, "k") == {"mean": 2.5}

    def test_concurrent_writers_across_processes(self, tmp_path):
        import multiprocessing

        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        n_writers, per_writer = 4, 20
        processes = [
            context.Process(target=_sharded_writer_main,
                            args=(str(tmp_path), index, per_writer))
            for index in range(n_writers)]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        reader = ShardedResultCache(persist_dir=str(tmp_path), n_shards=4,
                                    stamp="v2:test")
        for writer_index in range(n_writers):
            for item in range(per_writer):
                key = f"proc-{writer_index}-{item}"
                assert reader.get(TIER_ESTIMATE, key) == {
                    "v": item, "writer": writer_index}

    def test_lock_timeout_degrades_to_miss_never_stalls(self, tmp_path):
        from repro.service.faults import (
            FaultInjector, FaultRule, SITE_SHARD_LOCK_TIMEOUT)

        registry = MetricsRegistry()
        clean = ShardedResultCache(persist_dir=str(tmp_path), n_shards=2)
        clean.put(TIER_ESTIMATE, "k", {"v": 1}, payload={"v": 1})
        faults = FaultInjector(
            {SITE_SHARD_LOCK_TIMEOUT: FaultRule(1.0, 2)})
        cache = ShardedResultCache(persist_dir=str(tmp_path), n_shards=2,
                                   metrics=registry, faults=faults)
        # Fire 1: the read lock "times out" -> miss, not a hang.
        assert cache.get(TIER_ESTIMATE, "k") is MISS
        # Fire 2: the write lock "times out" -> memory updated, disk not.
        cache.put(TIER_ESTIMATE, "k2", {"v": 2}, payload={"v": 2})
        assert cache.get(TIER_ESTIMATE, "k2") == {"v": 2}  # memory hit
        shard = cache.shard_of("k2")
        assert not (tmp_path / f"shard-{shard:02d}" / TIER_ESTIMATE
                    / "k2.json").exists()
        counter = registry.get("repro_cache_lock_timeouts_total")
        assert counter.value(tier=TIER_ESTIMATE) == 2
        # Budget spent: the disk layer works again.
        assert cache.get(TIER_ESTIMATE, "k") == {"v": 1}

    def _same_shard_keys(self, cache, count):
        keys, target = [], None
        index = 0
        while len(keys) < count:
            key = f"shardmate-{index}"
            index += 1
            shard = cache.shard_of(key)
            if target is None:
                target = shard
            if shard == target:
                keys.append(key)
        return target, keys

    def test_repeated_corruption_quarantines_the_whole_shard(self, tmp_path):
        cache = ShardedResultCache(persist_dir=str(tmp_path), n_shards=4,
                                   shard_corruption_threshold=3)
        shard, keys = self._same_shard_keys(cache, 4)
        for key in keys:
            cache.put(TIER_ESTIMATE, key, {"v": 1}, payload={"v": 1})
        shard_dir = tmp_path / f"shard-{shard:02d}"
        for key in keys:
            path = shard_dir / TIER_ESTIMATE / f"{key}.json"
            document = json.loads(path.read_text())
            document["payload"] = {"v": 999}  # break the checksum
            path.write_text(json.dumps(document))
        cache.clear_memory()
        for key in keys[:3]:  # third corruption trips the shard breaker
            assert cache.get(TIER_ESTIMATE, key) is MISS
        quarantined_shards = [entry for entry
                              in (tmp_path / "quarantine").iterdir()
                              if entry.name.startswith(f"shard-{shard:02d}.")]
        assert len(quarantined_shards) == 1
        # The fourth corrupt entry went with its shard: a fresh read is
        # a plain miss and the slot accepts clean traffic again.
        assert cache.get(TIER_ESTIMATE, keys[3]) is MISS
        cache.put(TIER_ESTIMATE, keys[3], {"v": 5}, payload={"v": 5})
        cache.clear_memory()
        assert cache.get(TIER_ESTIMATE, keys[3]) == {"v": 5}

    def test_shard_lock_identity_survives_shard_quarantine(self, tmp_path):
        cache = ShardedResultCache(persist_dir=str(tmp_path), n_shards=4,
                                   shard_corruption_threshold=1)
        shard, (key,) = self._same_shard_keys(cache, 1)
        cache.put(TIER_ESTIMATE, key, {"v": 1}, payload={"v": 1})
        # Lock files live outside the shard directory...
        lock_path = tmp_path / "locks" / f"shard-{shard:02d}.lock"
        assert lock_path.exists()
        assert not (tmp_path / f"shard-{shard:02d}" / ".lock").exists()
        inode = lock_path.stat().st_ino
        # ...so when corruption quarantines the whole shard directory,
        # the lock keeps its inode: a writer holding the flock still
        # excludes writers of the replacement shard.
        path = (tmp_path / f"shard-{shard:02d}" / TIER_ESTIMATE
                / f"{key}.json")
        document = json.loads(path.read_text())
        document["payload"] = {"v": 999}  # break the checksum
        path.write_text(json.dumps(document))
        cache.clear_memory()
        assert cache.get(TIER_ESTIMATE, key) is MISS  # trips the breaker
        assert any(entry.name.startswith(f"shard-{shard:02d}.")
                   for entry in (tmp_path / "quarantine").iterdir())
        assert lock_path.stat().st_ino == inode

    def test_rebuild_validates_quarantines_and_drops(self, tmp_path):
        cache = ShardedResultCache(persist_dir=str(tmp_path), n_shards=4)
        for index in range(6):
            cache.put(TIER_ESTIMATE, f"good-{index}", {"v": index},
                      payload={"v": index})
        # One corrupt entry (checksum break) and one stale-stamp entry.
        bad_path = (tmp_path / f"shard-{cache.shard_of('good-0'):02d}"
                    / TIER_ESTIMATE / "good-0.json")
        document = json.loads(bad_path.read_text())
        document["payload"] = {"v": -1}
        bad_path.write_text(json.dumps(document))
        stale_path = (tmp_path / f"shard-{cache.shard_of('good-1'):02d}"
                      / TIER_ESTIMATE / "good-1.json")
        document = json.loads(stale_path.read_text())
        document["stamp"] = "v2:other-revision"
        stale_path.write_text(json.dumps(document))

        restarted = ShardedResultCache(persist_dir=str(tmp_path), n_shards=4)
        report = restarted.rebuild()
        assert report["scanned"] == 6
        assert report["valid"] == 4
        assert report["quarantined"] == 1
        assert report["stale_dropped"] == 1
        for index in range(2, 6):
            assert restarted.get(TIER_ESTIMATE, f"good-{index}") == {
                "v": index}
        assert restarted.get(TIER_ESTIMATE, "good-0") is MISS
        assert restarted.get(TIER_ESTIMATE, "good-1") is MISS
