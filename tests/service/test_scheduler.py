"""Scheduler semantics: coalescing, backpressure, deadlines, shutdown.

These tests drive the scheduler with stub compute functions — no real
estimation — so each behavior is isolated and fast.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.jobs import (
    EstimateRequest,
    JobCancelledError,
    JobFailedError,
    JobState,
    JobTimeoutError,
    QueueFullError,
)
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import EstimationScheduler


def make_request(**overrides):
    base = dict(n_cells=1000, width_mm=1.0, height_mm=1.0)
    base.update(overrides)
    return EstimateRequest(**base)


class CountingCompute:
    """A compute stub that counts invocations and can be gated."""

    def __init__(self, gate: threading.Event = None, result="result"):
        self.calls = 0
        self._lock = threading.Lock()
        self.gate = gate
        self.result = result

    def __call__(self, request, job):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(10.0)
        return self.result


class TestCoalescing:
    def test_identical_concurrent_requests_compute_once(self):
        """N identical concurrent submissions -> exactly 1 computation."""
        gate = threading.Event()
        compute = CountingCompute(gate=gate)
        with EstimationScheduler(compute, workers=4) as scheduler:
            request = make_request()
            jobs = [scheduler.submit(request) for _ in range(10)]
            assert len({job.id for job in jobs}) == 1
            assert jobs[0].coalesced == 9
            gate.set()
            results = [scheduler.wait(job, timeout=10.0) for job in jobs]
            assert results == ["result"] * 10
        assert compute.calls == 1

    def test_different_priorities_still_coalesce(self):
        gate = threading.Event()
        compute = CountingCompute(gate=gate)
        with EstimationScheduler(compute, workers=2) as scheduler:
            first = scheduler.submit(make_request(priority=0))
            second = scheduler.submit(make_request(priority=5))
            assert first is second
            gate.set()
            scheduler.wait(first, timeout=10.0)
        assert compute.calls == 1

    def test_finished_jobs_do_not_absorb_new_submissions(self):
        compute = CountingCompute()
        with EstimationScheduler(compute, workers=2) as scheduler:
            request = make_request()
            first = scheduler.submit(request)
            scheduler.wait(first, timeout=10.0)
            second = scheduler.submit(request)
            scheduler.wait(second, timeout=10.0)
            assert first is not second
        assert compute.calls == 2

    def test_distinct_requests_do_not_coalesce(self):
        gate = threading.Event()
        compute = CountingCompute(gate=gate)
        with EstimationScheduler(compute, workers=4) as scheduler:
            a = scheduler.submit(make_request(n_cells=1000))
            b = scheduler.submit(make_request(n_cells=2000))
            assert a is not b
            gate.set()
            scheduler.wait(a, timeout=10.0)
            scheduler.wait(b, timeout=10.0)
        assert compute.calls == 2


class TestBackpressure:
    def test_queue_limit_rejects_with_clear_error(self):
        gate = threading.Event()
        compute = CountingCompute(gate=gate)
        scheduler = EstimationScheduler(compute, workers=1, queue_limit=2)
        try:
            # Occupy the single worker, then fill the queue.
            running = scheduler.submit(make_request(n_cells=10))
            deadline = time.monotonic() + 5.0
            while (scheduler.queue_depth > 0
                   and time.monotonic() < deadline):
                time.sleep(0.005)  # let the worker pick the job up
            queued = [scheduler.submit(make_request(n_cells=20 + index))
                      for index in range(2)]
            with pytest.raises(QueueFullError, match="queue is full"):
                scheduler.submit(make_request(n_cells=99))
            gate.set()
            for job in [running] + queued:
                scheduler.wait(job, timeout=10.0)
        finally:
            gate.set()
            scheduler.close()

    def test_metrics_track_queue_and_jobs(self):
        registry = MetricsRegistry()
        compute = CountingCompute()
        with EstimationScheduler(compute, workers=2,
                                 metrics=registry) as scheduler:
            job = scheduler.submit(make_request())
            scheduler.wait(job, timeout=10.0)
            assert registry.get("repro_jobs_total").value(state="done") == 1
            scheduler.submit(make_request())  # coalesces or reruns
        assert registry.get("repro_workers_alive") is not None


class TestDeadlines:
    def test_job_times_out_in_queue(self):
        gate = threading.Event()
        compute = CountingCompute(gate=gate)
        scheduler = EstimationScheduler(compute, workers=1)
        try:
            blocker = scheduler.submit(make_request(n_cells=10))
            stuck = scheduler.submit(make_request(n_cells=20),
                                     timeout=0.05)
            time.sleep(0.2)  # let the deadline lapse while queued
            gate.set()
            scheduler.wait(blocker, timeout=10.0)
            with pytest.raises(JobFailedError, match="deadline"):
                scheduler.wait(stuck, timeout=10.0)
            assert stuck.state == JobState.FAILED
        finally:
            gate.set()
            scheduler.close()

    def test_running_job_aborts_at_stage_boundary(self):
        def compute(request, job):
            time.sleep(0.1)
            job.check_alive()  # what the pipeline does between stages
            return "never"

        with EstimationScheduler(compute, workers=1) as scheduler:
            job = scheduler.submit(make_request(), timeout=0.02)
            with pytest.raises(JobFailedError, match="deadline"):
                scheduler.wait(job, timeout=10.0)

    def test_wait_timeout_leaves_job_running(self):
        gate = threading.Event()
        compute = CountingCompute(gate=gate)
        with EstimationScheduler(compute, workers=1) as scheduler:
            job = scheduler.submit(make_request())
            with pytest.raises(JobTimeoutError, match="still in flight"):
                scheduler.wait(job, timeout=0.05)
            gate.set()
            assert scheduler.wait(job, timeout=10.0) == "result"


class TestCancellation:
    def test_cancel_queued_job(self):
        gate = threading.Event()
        compute = CountingCompute(gate=gate)
        scheduler = EstimationScheduler(compute, workers=1)
        try:
            blocker = scheduler.submit(make_request(n_cells=10))
            victim = scheduler.submit(make_request(n_cells=20))
            scheduler.cancel(victim)
            gate.set()
            scheduler.wait(blocker, timeout=10.0)
            with pytest.raises(JobCancelledError):
                scheduler.wait(victim, timeout=10.0)
            assert victim.state == JobState.CANCELLED
        finally:
            gate.set()
            scheduler.close()
        assert compute.calls == 1  # the cancelled job never ran


class TestLifecycle:
    def test_failures_surface_with_cause(self):
        def compute(request, job):
            raise ValueError("synthetic explosion")

        with EstimationScheduler(compute, workers=1) as scheduler:
            job = scheduler.submit(make_request())
            with pytest.raises(JobFailedError,
                               match="ValueError: synthetic explosion"):
                scheduler.wait(job, timeout=10.0)
            # One bad job must not kill the worker.
            assert scheduler.workers_alive == 1

    def test_jobs_resolvable_by_id(self):
        compute = CountingCompute()
        with EstimationScheduler(compute, workers=1) as scheduler:
            job = scheduler.submit(make_request())
            scheduler.wait(job, timeout=10.0)
            assert scheduler.job(job.id) is job
            assert scheduler.job("job-nope") is None

    def test_close_fails_pending_and_rejects_new(self):
        gate = threading.Event()
        compute = CountingCompute(gate=gate)
        scheduler = EstimationScheduler(compute, workers=1)
        blocker = scheduler.submit(make_request(n_cells=10))
        pending = scheduler.submit(make_request(n_cells=20))
        # Release the busy worker only after close() has drained the
        # queue, so `pending` is guaranteed never to start.
        releaser = threading.Timer(0.2, gate.set)
        releaser.start()
        scheduler.close()
        releaser.join()
        assert pending.state == JobState.CANCELLED
        with pytest.raises(QueueFullError, match="shut down"):
            scheduler.submit(make_request(n_cells=30))
        assert blocker.finished


class TestSupervision:
    """Worker crashes and hangs are contained: jobs are requeued or
    failed with a typed cause, and the pool replaces dead workers."""

    def _crash_scheduler(self, compute, rules, **kwargs):
        from repro.service.faults import FaultInjector

        return EstimationScheduler(
            compute, faults=FaultInjector(rules), **kwargs)

    def test_worker_crash_requeues_job_and_restarts_worker(self):
        from repro.service.faults import FaultRule, SITE_WORKER_CRASH

        compute = CountingCompute(result="survived")
        with self._crash_scheduler(
                compute, {SITE_WORKER_CRASH: FaultRule(1.0, 1)},
                workers=1) as scheduler:
            job = scheduler.submit(make_request())
            assert scheduler.wait(job, timeout=10.0) == "survived"
            assert job.requeues == 1
            assert scheduler.worker_restarts >= 1
            assert scheduler.workers_alive >= 1

    def test_repeated_crashes_fail_the_job_typed(self):
        from repro.service.faults import FaultRule, SITE_WORKER_CRASH

        compute = CountingCompute()
        with self._crash_scheduler(
                compute, {SITE_WORKER_CRASH: FaultRule(1.0, None)},
                workers=1, max_requeues=1) as scheduler:
            job = scheduler.submit(make_request())
            with pytest.raises(JobFailedError, match="crashed"):
                scheduler.wait(job, timeout=10.0)
            assert job.error_kind == "crash"
            assert compute.calls == 0  # every dequeue crashed pre-compute

    def test_hung_worker_is_abandoned_and_replaced(self):
        """A worker stuck past the job deadline is detached; the job
        fails typed, and a replacement serves the next job."""
        release = threading.Event()

        def compute(request, job):
            if request.n_cells == 1000:  # the hung job: ignore deadline
                assert release.wait(30.0)
                return "late"
            return "fresh-worker-ok"

        with EstimationScheduler(compute, workers=1, hang_grace=0.05,
                                 supervise_interval=0.02) as scheduler:
            from repro.service.jobs import DeadlineExceeded

            hung = scheduler.submit(make_request(), timeout=0.1)
            with pytest.raises(DeadlineExceeded):
                scheduler.wait(hung, timeout=10.0)
            assert "abandoned" in str(hung.error)
            follow_up = scheduler.submit(make_request(n_cells=7))
            assert (scheduler.wait(follow_up, timeout=10.0)
                    == "fresh-worker-ok")
            assert scheduler.worker_restarts >= 1
            release.set()  # unstick the abandoned thread for teardown

    def test_late_result_from_abandoned_worker_is_dropped(self):
        """The abandoned worker's eventual return must not overwrite
        the job's deadline failure."""
        release = threading.Event()

        def compute(request, job):
            assert release.wait(30.0)
            return "late"

        with EstimationScheduler(compute, workers=1, hang_grace=0.05,
                                 supervise_interval=0.02) as scheduler:
            from repro.service.jobs import DeadlineExceeded

            hung = scheduler.submit(make_request(), timeout=0.1)
            with pytest.raises(DeadlineExceeded):
                scheduler.wait(hung, timeout=10.0)
            release.set()
            time.sleep(0.2)  # give the zombie thread time to finish
            assert hung.state == JobState.FAILED
            with pytest.raises(DeadlineExceeded):
                scheduler.wait(hung, timeout=1.0)
