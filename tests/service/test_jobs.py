"""Request canonicalization, content hashing, and job lifecycle."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.service.jobs import (
    EstimateRequest,
    Job,
    JobState,
    TechnologyConfig,
)


def make(**overrides):
    base = dict(n_cells=1000, width_mm=1.0, height_mm=1.0,
                usage={"INV_X1": 0.5, "NAND2_X1": 0.5})
    base.update(overrides)
    return EstimateRequest(**base)


class TestValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            make(n_cells=0)
        with pytest.raises(ConfigurationError):
            make(width_mm=-1.0)

    def test_rejects_bad_probability_and_method(self):
        with pytest.raises(ConfigurationError):
            make(signal_probability=1.5)
        with pytest.raises(ConfigurationError):
            make(method="magic")

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            make(tolerance=-1e-6)
        with pytest.raises(ConfigurationError):
            make(n_jobs=0)
        with pytest.raises(ConfigurationError):
            make(mode="spice")

    def test_rejects_bad_technology(self):
        with pytest.raises(ConfigurationError):
            TechnologyConfig(corr_length_mm=0.0)
        with pytest.raises(ConfigurationError):
            TechnologyConfig(d2d_fraction=1.5)

    def test_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            EstimateRequest.from_dict(
                {"n_cells": 10, "width_mm": 1, "height_mm": 1,
                 "surprise": True})


class TestCanonicalization:
    def test_usage_order_does_not_change_key(self):
        a = make(usage={"INV_X1": 0.5, "NAND2_X1": 0.5})
        b = make(usage={"NAND2_X1": 0.5, "INV_X1": 0.5})
        assert a.key() == b.key()
        assert a.canonical_json() == b.canonical_json()

    def test_priority_does_not_change_key(self):
        assert make(priority=0).key() == make(priority=7).key()

    def test_content_changes_change_key(self):
        base = make()
        assert base.key() != make(n_cells=1001).key()
        assert base.key() != make(tolerance=1e-6).key()
        assert base.key() != make(n_jobs=2).key()
        assert base.key() != make(
            technology=TechnologyConfig(temperature_c=85.0)).key()

    def test_tier_keys_isolate_their_inputs(self):
        base = make()
        resized = make(n_cells=4000, width_mm=2.0, height_mm=2.0,
                       method="integral2d")
        # Geometry/method sweeps share characterization and RG artifacts.
        assert base.characterization_key() == resized.characterization_key()
        assert base.rg_key() == resized.rg_key()
        assert base.key() != resized.key()
        # A usage change invalidates RG but not characterization.
        reused = make(usage={"INV_X1": 1.0})
        assert base.characterization_key() == reused.characterization_key()
        assert base.rg_key() != reused.rg_key()
        # A temperature change invalidates everything.
        corner = make(technology=TechnologyConfig(temperature_c=125.0))
        assert base.characterization_key() != corner.characterization_key()
        assert base.rg_key() != corner.rg_key()

    def test_round_trip_through_json(self):
        request = make(cells=("NAND2_X1", "INV_X1"), priority=3,
                       technology=TechnologyConfig(temperature_c=85.0),
                       simplified_correlation=True)
        wire = json.loads(json.dumps(request.to_dict()))
        rebuilt = EstimateRequest.from_dict(wire)
        assert rebuilt == request
        assert rebuilt.key() == request.key()
        assert rebuilt.priority == 3
        assert rebuilt.cells == ("INV_X1", "NAND2_X1")  # sorted


class TestJob:
    def test_lifecycle_and_snapshot(self):
        job = Job(make())
        assert job.state == JobState.QUEUED
        assert not job.finished
        job.mark_running()
        assert job.state == JobState.RUNNING
        job.finish(JobState.FAILED, error="boom")
        assert job.finished
        assert job.wait(0.0)
        snapshot = job.snapshot()
        assert snapshot["state"] == "failed"
        assert snapshot["error"] == "boom"
        assert snapshot["request"]["n_cells"] == 1000

    def test_cancellation_check(self):
        from repro.service.jobs import JobCancelledError

        job = Job(make())
        job.check_alive()  # no deadline, not cancelled -> fine
        job.cancel()
        with pytest.raises(JobCancelledError):
            job.check_alive()

    def test_deadline_check(self):
        from repro.service.jobs import JobTimeoutError

        job = Job(make(), deadline=-1.0)  # already in the past
        with pytest.raises(JobTimeoutError):
            job.check_alive()

    def test_ids_are_unique_and_carry_the_key(self):
        request = make()
        first, second = Job(request), Job(request)
        assert first.id != second.id
        assert request.key()[:12] in first.id
