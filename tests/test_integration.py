"""End-to-end integration tests spanning the whole pipeline:

process -> devices -> cells -> characterization -> Random Gate ->
estimators -> circuits -> chip Monte Carlo.

These encode the paper's headline claims at reduced scale; the
benchmarks reproduce them at full scale.
"""

import math

import numpy as np
import pytest

from repro import FullChipLeakageEstimator
from repro.analysis import chip_monte_carlo, realize_design
from repro.circuits import (
    extract_characteristics,
    grid_placement,
    iscas85_circuit,
    random_circuit,
)
from repro.circuits.placement import die_dimensions
from repro.core import CellUsage
from repro.core.estimators import exact_moments


@pytest.fixture(scope="module")
def usage():
    return CellUsage({"INV_X1": 0.25, "NAND2_X1": 0.30, "NOR2_X1": 0.20,
                      "XOR2_X1": 0.10, "DFF_X1": 0.15})


class TestLateModeFlow:
    """Extract characteristics from a placed design, estimate, compare
    with the true O(n^2) leakage (Table 1's procedure)."""

    def test_rg_estimate_close_to_true_leakage(self, library,
                                               characterization, usage):
        rng = np.random.default_rng(7)
        net = random_circuit(library, usage, 1500, rng=rng)
        width, height = die_dimensions(net, library)
        grid_placement(net, width, height, rng=rng)
        real = realize_design(net, characterization, rng=rng)

        tech = characterization.technology
        pair_params = real.pair_params(tech.length.nominal,
                                       tech.length.sigma)
        true_mean, true_std = exact_moments(
            real.positions, real.means, real.stds, tech.total_correlation,
            pair_params=pair_params)

        chars = extract_characteristics(net, library)
        estimator = FullChipLeakageEstimator(
            characterization, chars.usage, chars.n_cells,
            chars.width, chars.height)
        estimate = estimator.estimate("linear")
        assert estimate.mean == pytest.approx(true_mean, rel=0.03)
        assert estimate.std == pytest.approx(true_std, rel=0.05)

    def test_iscas85_flow_runs(self, library, characterization):
        rng = np.random.default_rng(3)
        net = iscas85_circuit("c432", library, rng=rng)
        width, height = die_dimensions(net, library)
        grid_placement(net, width, height, rng=rng)
        chars = extract_characteristics(net, library)
        estimate = FullChipLeakageEstimator(
            characterization, chars.usage, chars.n_cells, chars.width,
            chars.height).estimate("linear")
        assert estimate.mean > 0 and estimate.std > 0


class TestEarlyModeFlow:
    """Early mode: expected histogram + count + floorplan only."""

    def test_early_estimate_brackets_realized_designs(
            self, library, characterization, usage):
        tech = characterization.technology
        n, width, height = 900, 1.2e-4, 1.2e-4
        estimate = FullChipLeakageEstimator(
            characterization, usage, n, width, height).estimate("linear")

        true_means = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            net = random_circuit(library, usage, n, rng=rng)
            grid_placement(net, width, height, rng=rng)
            real = realize_design(net, characterization, rng=rng)
            mean, _ = exact_moments(real.positions, real.means, real.stds,
                                    tech.total_correlation)
            true_means.append(mean)
        # The RG prediction sits within the family spread.
        spread = max(true_means) - min(true_means)
        center = float(np.mean(true_means))
        assert abs(estimate.mean - center) < max(spread, 0.05 * center)


class TestMonteCarloCrossCheck:
    def test_linear_estimator_matches_chip_mc(self, library,
                                              characterization, usage):
        """The full chain: the eq. (17) estimate of an RG chip agrees
        with brute-force Monte Carlo of a matching realized design."""
        rng = np.random.default_rng(11)
        n, width, height = 600, 1e-4, 1e-4
        tech = characterization.technology
        net = random_circuit(library, usage, n, rng=rng)
        grid_placement(net, width, height, rng=rng)
        real = realize_design(net, characterization, rng=rng)
        mc = chip_monte_carlo(real, tech, n_samples=3000, rng=rng)

        estimate = FullChipLeakageEstimator(
            characterization, usage, n, width, height).estimate("linear")
        assert estimate.mean == pytest.approx(mc.mean, rel=0.05)
        assert estimate.std == pytest.approx(mc.std, rel=0.15)


class TestConstantTimeConsistency:
    def test_all_methods_tell_one_story(self, characterization, usage):
        est = FullChipLeakageEstimator(
            characterization, usage, n_cells=40_000, width=2e-3,
            height=2e-3)
        linear = est.estimate("linear")
        integral = est.estimate("integral2d")
        assert integral.std == pytest.approx(linear.std, rel=2e-3)
        # Paper Fig. 7 regime: >=10k gates, integral error well under 1%.
        error = abs(integral.std - linear.std) / linear.std
        assert error < 0.01
