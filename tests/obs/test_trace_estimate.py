"""Acceptance tests: tracing on the real estimator paths.

The contract asserted here (and stated in ``docs/OBSERVABILITY.md``):

* a traced exact estimate and a traced 100-point sweep each surface a
  meaningful per-stage breakdown (>= 5 named stages) whose *local* self
  times account for the end-to-end wall clock (within 10%);
* tracing never changes results — traced runs are bit-identical to
  untraced runs, including across the process worker pool;
* worker-pool spans propagate: a parallel sweep's trace contains the
  per-stage aggregation of what ran inside the worker processes,
  flagged remote.
"""

import math

import pytest

from repro.core import CellUsage
from repro.core.api import FullChipLeakageEstimator, estimate_sweep
from repro.core.sweep import cell_count_axis, signal_probability_axis


@pytest.fixture(scope="module")
def usage(small_characterization):
    return CellUsage.uniform(small_characterization.cell_names)


def local_self_sum(document):
    return sum(entry["self_s"] for entry in document["stages"].values()
               if not entry["remote"])


def root_wall(document):
    return sum(span["wall_s"] for span in document["spans"])


class TestTracedExactEstimate:
    @pytest.fixture(scope="class")
    def runs(self, small_characterization, usage):
        estimator = FullChipLeakageEstimator(
            small_characterization, usage, 1024, 0.5e-3, 0.5e-3,
            simplified_correlation=True)
        return (estimator.estimate("exact"),
                estimator.estimate("exact", trace=True))

    def test_at_least_five_named_stages(self, runs):
        _, traced = runs
        document = traced.details["trace"]
        local = [name for name, entry in document["stages"].items()
                 if not entry["remote"]]
        assert len(local) >= 5, sorted(document["stages"])
        # The breakdown names real pipeline stages, not placeholders.
        assert any(name.startswith("exact.") for name in local)

    def test_stage_self_times_account_for_wall(self, runs):
        _, traced = runs
        document = traced.details["trace"]
        assert local_self_sum(document) == pytest.approx(
            root_wall(document), rel=0.10)

    def test_traced_is_bit_identical(self, runs):
        untraced, traced = runs
        assert traced.mean == untraced.mean
        assert traced.std == untraced.std
        details = dict(traced.details)
        assert details.pop("trace")["name"] == "core/api.estimate"
        assert details == untraced.details


class TestTracedSweep:
    N_POINTS = 100

    @pytest.fixture(scope="class")
    def runs(self, small_characterization, usage):
        axes = [signal_probability_axis(
            [0.3 + 0.4 * i / (self.N_POINTS - 1)
             for i in range(self.N_POINTS)])]
        kwargs = dict(axes=axes, method="linear")
        return (estimate_sweep(small_characterization, usage, 4096,
                               1e-3, 1e-3, **kwargs),
                estimate_sweep(small_characterization, usage, 4096,
                               1e-3, 1e-3, trace=True, **kwargs))

    def test_at_least_five_named_stages(self, runs):
        _, traced = runs
        assert len(traced) == self.N_POINTS
        stages = traced.trace["stages"]
        assert len(stages) >= 5, sorted(stages)
        assert stages["sweep.points"]["count"] == 1
        assert "sweep.kernels" in stages

    def test_stage_self_times_account_for_wall(self, runs):
        _, traced = runs
        assert local_self_sum(traced.trace) == pytest.approx(
            root_wall(traced.trace), rel=0.10)

    def test_traced_is_bit_identical(self, runs):
        untraced, traced = runs
        assert untraced.trace is None
        for before, after in zip(untraced, traced):
            assert after.mean == before.mean
            assert after.std == before.std
            assert after.details == before.details
        assert untraced.stats == traced.stats


class TestWorkerPoolPropagation:
    """Spans cross the process pool and aggregate under the parent."""

    @pytest.fixture(scope="class")
    def runs(self, small_characterization, usage):
        # Two distinct geometries -> two groups -> real fan-out.
        axes = [cell_count_axis([1024, 4096]),
                signal_probability_axis([0.3, 0.5, 0.7])]
        kwargs = dict(axes=axes, method="linear")
        serial = estimate_sweep(small_characterization, usage, 1024,
                                1e-3, 1e-3, n_jobs=1, **kwargs)
        parallel = estimate_sweep(small_characterization, usage, 1024,
                                  1e-3, 1e-3, n_jobs=2, trace=True,
                                  **kwargs)
        return serial, parallel

    def test_remote_stages_present_and_aggregated(self, runs):
        _, parallel = runs
        stages = parallel.trace["stages"]
        assert "parallel.map" in stages
        assert not stages["parallel.map"]["remote"]
        remote = {name: entry for name, entry in stages.items()
                  if entry["remote"]}
        # The workers' evaluation stages came home, aggregated per name
        # across both workers.
        # One geometry group ran per worker call, so the merged remote
        # stage carries count == number of groups.
        assert remote["sweep.points"]["count"] == 2, sorted(stages)

    def test_remote_wall_does_not_pollute_the_wall_accounting(self, runs):
        _, parallel = runs
        # Workers run concurrently: their wall time is attribution
        # detail, and the local invariant must still hold.
        assert local_self_sum(parallel.trace) == pytest.approx(
            root_wall(parallel.trace), rel=0.10)

    def test_parallel_traced_matches_serial_untraced(self, runs):
        serial, parallel = runs
        assert len(serial) == len(parallel) == 6
        for before, after in zip(serial, parallel):
            assert after.mean == before.mean
            assert after.std == before.std

    def test_workers_untraced_without_tracer(self, small_characterization,
                                             usage):
        result = estimate_sweep(
            small_characterization, usage, 1024, 1e-3, 1e-3,
            axes=[cell_count_axis([1024, 4096]),
                  signal_probability_axis([0.4, 0.6])],
            method="linear", n_jobs=2)
        assert result.trace is None


class TestNoOpOverhead:
    """Tracing off must be measurably free on a bench_sweep-scale run.

    Direct wall-clock A/B of full runs is noisy far beyond the effect
    size, so the bound is computed, not raced: (cost of one disabled
    span call) x (number of span calls the workload actually makes,
    from its own trace) must stay under 2% of the untraced wall time.
    """

    def test_overhead_bound_under_two_percent(self, small_characterization,
                                              usage):
        import time

        from repro.obs import span, tracing_active

        axes = [signal_probability_axis(
            [0.3 + 0.4 * i / 99 for i in range(100)])]

        def workload(trace):
            start = time.perf_counter()
            result = estimate_sweep(small_characterization, usage, 4096,
                                    1e-3, 1e-3, axes=axes,
                                    method="linear", trace=trace)
            return time.perf_counter() - start, result

        workload(False)  # warm caches
        wall_untraced, _ = workload(False)
        _, traced = workload(True)
        span_calls = sum(entry["count"]
                         for entry in traced.trace["stages"].values())
        assert span_calls >= 100  # the workload is genuinely instrumented

        assert not tracing_active()
        probes = 200_000
        start = time.perf_counter()
        for _ in range(probes):
            with span("overhead.probe"):
                pass
        per_call = (time.perf_counter() - start) / probes

        overhead = per_call * span_calls
        assert overhead < 0.02 * wall_untraced, (
            f"{span_calls} disabled span calls x {per_call * 1e9:.0f} ns "
            f"= {overhead * 1e3:.3f} ms >= 2% of "
            f"{wall_untraced * 1e3:.1f} ms")
        # And the per-call cost itself stays in guard-check territory.
        assert per_call < 5e-6
