"""Unit tests for the tracing core: spans, aggregation, exporters."""

import json
import time

import pytest

from repro.obs import (
    Span,
    Tracer,
    TraceRegistry,
    current_tracer,
    global_registry,
    merge_remote_spans,
    observe_stages,
    render_stages,
    render_tree,
    span,
    stage_totals,
    to_json,
    tracing_active,
)
from repro.obs.trace import _NULL_SPAN


class TestNullPath:
    def test_span_without_tracer_is_shared_noop(self):
        assert not tracing_active()
        assert current_tracer() is None
        first = span("anything", attr=1)
        second = span("else")
        assert first is second is _NULL_SPAN
        with first as handle:
            handle.annotate(ignored=True)  # must not raise or record

    def test_nothing_recorded_while_inactive(self):
        tracer = Tracer("t")
        with span("outside"):
            pass
        assert tracer.export()["spans"] == []


class TestNesting:
    def test_tree_structure_and_timing(self):
        tracer = Tracer("op")
        with tracer:
            assert tracing_active()
            assert current_tracer() is tracer
            with tracer.span("root", kind="demo") as root:
                with span("child.a"):
                    time.sleep(0.01)
                with span("child.b"):
                    with span("grandchild"):
                        pass
                root.annotate(points=3)
        assert not tracing_active()

        document = tracer.export()
        assert document["name"] == "op"
        (root_doc,) = document["spans"]
        assert root_doc["name"] == "root"
        assert root_doc["attrs"] == {"kind": "demo", "points": 3}
        names = [child["name"] for child in root_doc["children"]]
        assert names == ["child.a", "child.b"]
        (grand,) = root_doc["children"][1]["children"]
        assert grand["name"] == "grandchild"
        # Wall clocks nest: parent >= sum of children.
        child_wall = sum(c["wall_s"] for c in root_doc["children"])
        assert root_doc["wall_s"] >= child_wall > 0.0

    def test_activation_is_reentrant(self):
        outer, inner = Tracer("outer"), Tracer("inner")
        with outer:
            with inner:
                assert current_tracer() is inner
                with span("in.inner"):
                    pass
            assert current_tracer() is outer
            with span("in.outer"):
                pass
        assert current_tracer() is None
        assert [s["name"] for s in inner.export()["spans"]] == ["in.inner"]
        assert [s["name"] for s in outer.export()["spans"]] == ["in.outer"]

    def test_exception_still_closes_span(self):
        tracer = Tracer("t")
        with tracer:
            with pytest.raises(ValueError):
                with tracer.span("failing"):
                    raise ValueError("boom")
        (doc,) = tracer.export()["spans"]
        assert doc["name"] == "failing"
        assert doc["wall_s"] is not None


class TestStageTotals:
    @staticmethod
    def _trace():
        tracer = Tracer("op")
        with tracer:
            with tracer.span("root"):
                for _ in range(3):
                    with span("stage.a"):
                        pass
                with span("stage.b"):
                    with span("stage.a"):
                        pass
        return tracer.export()

    def test_counts_aggregate_per_name(self):
        stages = self._trace()["stages"]
        assert stages["stage.a"]["count"] == 4
        assert stages["stage.b"]["count"] == 1
        assert stages["root"]["count"] == 1

    def test_local_self_times_partition_root_wall(self):
        document = self._trace()
        stages = document["stages"]
        total_self = sum(entry["self_s"] for entry in stages.values()
                         if not entry["remote"])
        root_wall = document["spans"][0]["wall_s"]
        # Every traced moment belongs to exactly one innermost span.
        assert total_self == pytest.approx(root_wall, rel=1e-6)

    def test_remote_children_not_subtracted_from_self(self):
        tracer = Tracer("op")
        with tracer:
            with tracer.span("root") as root:
                time.sleep(0.01)
                # A worker's 1000 s cannot make local self time negative.
                root.add_remote_children([
                    {"name": "worker.stage", "wall_s": 1000.0,
                     "cpu_s": 900.0, "count": 7}])
        stages = tracer.export()["stages"]
        assert stages["root"]["self_s"] >= 0.009
        assert stages["worker.stage"]["remote"] is True
        assert stages["worker.stage"]["count"] == 7
        assert stages["root"]["remote"] is False


class TestMergeRemoteSpans:
    def test_aggregates_per_name_across_workers(self):
        worker = lambda wall: [{  # noqa: E731 - terse fixture
            "name": "points", "wall_s": wall, "cpu_s": wall / 2,
            "children": [{"name": "kernel", "wall_s": wall / 4,
                          "cpu_s": wall / 8}],
        }]
        merged = merge_remote_spans([worker(1.0), worker(3.0)])
        (entry,) = merged
        assert entry["name"] == "points"
        assert entry["wall_s"] == pytest.approx(4.0)
        assert entry["count"] == 2
        (child,) = entry["children"]
        assert child["name"] == "kernel"
        assert child["wall_s"] == pytest.approx(1.0)
        assert child["count"] == 2

    def test_merged_spans_round_trip_through_stage_totals(self):
        tracer = Tracer("op")
        with tracer:
            with tracer.span("map") as map_span:
                map_span.add_remote_children(merge_remote_spans([
                    [{"name": "w.stage", "wall_s": 2.0, "cpu_s": 1.0}],
                    [{"name": "w.stage", "wall_s": 2.0, "cpu_s": 1.0}],
                ]))
        stages = tracer.export()["stages"]
        assert stages["w.stage"]["count"] == 2
        assert stages["w.stage"]["wall_s"] == pytest.approx(4.0)
        assert stages["w.stage"]["remote"] is True


class TestRegistry:
    def test_record_retain_and_cumulate(self):
        registry = TraceRegistry(max_traces=2)
        for index in range(3):
            tracer = Tracer(f"op{index}")
            with tracer, tracer.span("stage"):
                pass
            registry.record(tracer.export())
        names = [t["name"] for t in registry.traces()]
        assert names == ["op1", "op2"]  # oldest evicted
        # Cumulative totals survive eviction.
        assert registry.stages()["stage"]["count"] == 3
        registry.clear()
        assert registry.traces() == []
        assert registry.stages() == {}

    def test_global_registry_is_singleton(self):
        assert global_registry() is global_registry()


class TestExporters:
    @staticmethod
    def _document():
        tracer = Tracer("op")
        with tracer, tracer.span("root", n=2):
            with span("inner"):
                pass
        return tracer.export()

    def test_render_tree_shows_nesting(self):
        text = render_tree(self._document())
        assert "root" in text and "inner" in text
        assert text.index("root") < text.index("inner")

    def test_render_stages_is_a_table(self):
        text = render_stages(self._document())
        assert "self" in text
        assert "root" in text and "inner" in text

    def test_to_json_round_trips(self):
        blob = to_json(self._document())
        parsed = json.loads(blob)
        assert parsed["name"] == "op"
        assert parsed["stages"]["inner"]["count"] == 1

    def test_observe_stages_feeds_histogram(self):
        from repro.service.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        observe_stages(self._document(), metrics)
        rendered = metrics.render()
        assert "repro_stage_seconds" in rendered
        assert 'stage="inner"' in rendered

    def test_observe_stages_filter(self):
        from repro.service.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        observe_stages(self._document(), metrics, stages=("root",))
        rendered = metrics.render()
        assert 'stage="root"' in rendered
        assert 'stage="inner"' not in rendered


class TestSpanRepr:
    def test_live_and_finished(self):
        tracer = Tracer("t")
        live = Span(tracer, "x")
        assert "live" in repr(live)
        with tracer, tracer.span("y"):
            pass
        assert "children" in repr(tracer.roots[0])
