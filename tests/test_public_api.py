"""Public-API surface contracts.

Guards against export drift: every ``__all__`` name must resolve, every
public callable must carry a docstring, and the documented entry points
must exist with their documented signatures.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.process",
    "repro.devices",
    "repro.spice",
    "repro.cells",
    "repro.characterization",
    "repro.signalprob",
    "repro.core",
    "repro.core.estimators",
    "repro.circuits",
    "repro.analysis",
    "repro.opt",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exports_are_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if callable(obj) and not inspect.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, f"{package_name}: {undocumented}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_module_docstrings_present(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__.strip()) > 20


class TestDocumentedSignatures:
    """The signatures README/API.md promise."""

    def test_quick_estimate(self):
        from repro import quick_estimate
        params = inspect.signature(quick_estimate).parameters
        assert list(params)[:3] == ["n_cells", "width", "height"]

    def test_estimator_constructor(self):
        from repro import FullChipLeakageEstimator
        params = inspect.signature(FullChipLeakageEstimator).parameters
        for name in ("characterization", "usage", "n_cells", "width",
                     "height", "signal_probability", "correlation",
                     "simplified_correlation", "state_weights"):
            assert name in params, name

    def test_estimate_methods(self, small_characterization):
        from repro import CellUsage, FullChipLeakageEstimator
        estimator = FullChipLeakageEstimator(
            small_characterization, CellUsage({"INV_X1": 1.0}), 100,
            1e-5, 1e-5)
        for method in ("auto", "linear", "integral2d"):
            assert estimator.estimate(method).std > 0

    def test_version_string(self):
        import repro
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_cli_parser_subcommands(self):
        from repro.cli import build_parser
        parser = build_parser()
        text = parser.format_help()
        for command in ("characterize", "estimate", "corners", "iscas85",
                        "selfcheck"):
            assert command in text
