"""Cross-cutting edge-case tests that don't belong to a single module
suite: unusual fit shapes, state-weight overrides, lossy format notes,
and defensive-validation paths."""

import math

import numpy as np
import pytest

from repro.characterization import mgf_moments, moments_numeric
from repro.characterization.fitting import LeakageFit
from repro.core import CellUsage, FullChipLeakageEstimator, expand_mixture
from repro.exceptions import EstimationError

MU_L, SIGMA_L = 50e-9, 2.5e-9


class TestUnusualFitShapes:
    def test_concave_log_leakage(self):
        """c < 0 (concave in L): the MGF machinery must still be exact —
        all moments exist since 1 - 2*c*sigma^2*t only grows."""
        closed = mgf_moments(1e-9, -1.5e8, -2e15, MU_L, SIGMA_L)
        numeric = moments_numeric(1e-9, -1.5e8, -2e15, MU_L, SIGMA_L)
        assert closed[0] == pytest.approx(numeric[0], rel=1e-7)
        assert closed[1] == pytest.approx(numeric[1], rel=1e-5)

    def test_increasing_leakage_fit(self):
        """b > 0 is unphysical for subthreshold leakage but can emerge
        from fitting noise; the math must not care about the sign."""
        closed = mgf_moments(1e-12, +1.2e8, 5e14, MU_L, SIGMA_L)
        numeric = moments_numeric(1e-12, +1.2e8, 5e14, MU_L, SIGMA_L)
        assert closed[0] == pytest.approx(numeric[0], rel=1e-7)

    def test_near_deterministic_leakage(self):
        """b ~ 0, c ~ 0: the distribution collapses; std -> 0 without
        numerical garbage."""
        mean, std = mgf_moments(1e-9, -1.0, 1.0, MU_L, SIGMA_L)
        assert mean == pytest.approx(1e-9, rel=1e-6)
        assert std < 1e-15

    def test_fit_evaluate_vectorized(self):
        fit = LeakageFit(a=1e-9, b=-1.6e8, c=1.1e15, rms_log_error=0.0)
        lengths = np.linspace(0.9, 1.1, 7) * MU_L
        values = fit.evaluate(lengths)
        assert values.shape == (7,)
        assert np.all(np.diff(values) < 0)


class TestStateWeightOverrides:
    def test_override_changes_mixture(self, small_characterization):
        usage = CellUsage({"INV_X1": 1.0})
        forced = {"INV_X1": np.array([1.0, 0.0])}  # always A=0
        mixture = expand_mixture(small_characterization, usage, 0.5,
                                 state_weights=forced)
        assert len(mixture.labels) == 1
        assert mixture.labels[0] == ("INV_X1", "A=0")

    def test_bad_override_length_rejected(self, small_characterization):
        usage = CellUsage({"INV_X1": 1.0})
        with pytest.raises(EstimationError):
            expand_mixture(small_characterization, usage, 0.5,
                           state_weights={"INV_X1": np.array([1.0])})

    def test_unnormalized_override_rejected(self, small_characterization):
        usage = CellUsage({"INV_X1": 1.0})
        with pytest.raises(EstimationError):
            expand_mixture(small_characterization, usage, 0.5,
                           state_weights={"INV_X1": np.array([0.9, 0.5])})

    def test_estimator_accepts_state_weights(self, small_characterization):
        usage = CellUsage({"INV_X1": 1.0})
        forced = {"INV_X1": np.array([1.0, 0.0])}
        estimate = FullChipLeakageEstimator(
            small_characterization, usage, 500, 1e-4, 1e-4,
            state_weights=forced).estimate("linear")
        expected = small_characterization["INV_X1"].states[0].mean
        assert estimate.mean == pytest.approx(500 * expected, rel=1e-9)


class TestFormatLossiness:
    def test_bench_collapses_drive_strengths(self, library):
        """Documented: .bench carries functions only, so X2 drives come
        back as X1 — gate count survives, drive mix does not."""
        import numpy as np

        from repro.circuits import parse_bench, random_circuit, write_bench
        usage = CellUsage({"INV_X2": 0.5, "NAND2_X1": 0.5})
        net = random_circuit(library, usage, 40,
                             rng=np.random.default_rng(0))
        back = parse_bench(write_bench(net, library), library)
        assert back.n_gates == net.n_gates
        assert back.cell_counts().get("INV_X2", 0) == 0
        assert back.cell_counts()["INV_X1"] == 20

    def test_verilog_preserves_drive_strengths(self, library):
        import numpy as np

        from repro.circuits import parse_verilog, random_circuit, \
            write_verilog
        usage = CellUsage({"INV_X2": 0.5, "NAND2_X4": 0.5})
        net = random_circuit(library, usage, 40,
                             rng=np.random.default_rng(0))
        back = parse_verilog(write_verilog(net, library), library)
        assert back.cell_counts() == net.cell_counts()


class TestEstimatorInputValidation:
    def test_estimate_details_simplified_flag(self, small_characterization):
        usage = CellUsage({"INV_X1": 1.0})
        exact = FullChipLeakageEstimator(
            small_characterization, usage, 100, 1e-5, 1e-5,
            simplified_correlation=False).estimate("linear")
        simple = FullChipLeakageEstimator(
            small_characterization, usage, 100, 1e-5, 1e-5,
            simplified_correlation=True).estimate("linear")
        assert exact.details["simplified_correlation"] == 0.0
        assert simple.details["simplified_correlation"] == 1.0

    def test_correlation_override(self, small_characterization):
        from repro.process import LinearCorrelation
        usage = CellUsage({"INV_X1": 1.0})
        short = FullChipLeakageEstimator(
            small_characterization, usage, 10_000, 1e-3, 1e-3,
            correlation=LinearCorrelation(5e-5)).estimate("linear")
        long = FullChipLeakageEstimator(
            small_characterization, usage, 10_000, 1e-3, 1e-3,
            correlation=LinearCorrelation(9e-4)).estimate("linear")
        assert long.std > short.std
