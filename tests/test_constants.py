import math

import pytest

from repro import constants


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert constants.thermal_voltage(300.0) == pytest.approx(0.025852,
                                                                 abs=1e-5)

    def test_default_uses_room_temperature(self):
        assert constants.thermal_voltage() == pytest.approx(
            constants.thermal_voltage(constants.ROOM_TEMPERATURE))

    def test_scales_linearly_with_temperature(self):
        assert constants.thermal_voltage(600.0) == pytest.approx(
            2.0 * constants.thermal_voltage(300.0))

    @pytest.mark.parametrize("temperature", [0.0, -10.0])
    def test_rejects_non_positive_temperature(self, temperature):
        with pytest.raises(ValueError):
            constants.thermal_voltage(temperature)


class TestUnits:
    def test_metric_prefixes(self):
        assert constants.NM == 1e-9
        assert constants.UM == 1e-6
        assert constants.MM == 1e-3
        assert 1000 * constants.NM == pytest.approx(constants.UM)

    def test_db(self):
        assert constants.db(10.0) == pytest.approx(10.0)
        assert constants.db(1.0) == pytest.approx(0.0)

    def test_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            constants.db(0.0)
