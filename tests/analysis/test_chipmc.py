import numpy as np
import pytest

from repro.analysis import chip_monte_carlo, realize_design
from repro.circuits import grid_placement, random_circuit
from repro.core import CellUsage
from repro.core.estimators import exact_moments
from repro.exceptions import EstimationError


@pytest.fixture(scope="module")
def realization(library, small_characterization):
    rng = np.random.default_rng(99)
    usage = CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.4, "NOR2_X1": 0.2})
    net = random_circuit(library, usage, 400, rng=rng)
    grid_placement(net, 2e-4, 2e-4, rng=rng)
    return realize_design(net, small_characterization, rng=rng)


class TestChipMonteCarlo:
    def test_matches_exact_pairwise_moments(self, realization, technology,
                                            rng):
        """The golden cross-check: sampled chip totals agree with the
        closed-form O(n^2) moments."""
        result = chip_monte_carlo(realization, technology,
                                  n_samples=4000, rng=rng)
        pair_params = realization.pair_params(technology.length.nominal,
                                              technology.length.sigma)
        mean, std = exact_moments(
            realization.positions, realization.means, realization.stds,
            technology.total_correlation, pair_params=pair_params)
        assert result.mean == pytest.approx(mean, rel=0.01)
        assert result.std == pytest.approx(std, rel=0.08)

    def test_sample_count(self, realization, technology, rng):
        result = chip_monte_carlo(realization, technology, n_samples=128,
                                  rng=rng)
        assert result.n_samples == 128
        assert result.samples.shape == (128,)
        assert np.all(result.samples > 0)

    def test_vt_variance_contribution_negligible(self, realization,
                                                 technology):
        """Section 2.1: RDF Vt is independent per gate, so its chip-level
        variance contribution is ~n vs the ~n^2 of correlated L."""
        base = chip_monte_carlo(realization, technology, n_samples=3000,
                                rng=np.random.default_rng(5))
        with_vt = chip_monte_carlo(realization, technology, n_samples=3000,
                                   rng=np.random.default_rng(5),
                                   include_vt=True)
        assert with_vt.std == pytest.approx(base.std, rel=0.1)

    def test_requires_fits(self, library, technology, rng):
        from repro.characterization import characterize_library
        mc_char = characterize_library(library, technology,
                                       mode="montecarlo", cells=["INV_X1"],
                                       n_samples=100, rng=rng)
        usage = CellUsage({"INV_X1": 1.0})
        net = random_circuit(library, usage, 20, rng=rng)
        grid_placement(net, 1e-5, 1e-5, rng=rng)
        real = realize_design(net, mc_char, rng=rng)
        with pytest.raises(EstimationError):
            chip_monte_carlo(real, technology, n_samples=10, rng=rng)

    def test_std_standard_error(self, realization, technology, rng):
        result = chip_monte_carlo(realization, technology, n_samples=500,
                                  rng=rng)
        assert 0 < result.std_standard_error() < result.std


class TestSampleChunk:
    """Memory-bounded chunked sampling."""

    def test_default_is_historical_draw_order(self, realization,
                                              technology):
        """``sample_chunk=None`` must replay the original implementation
        draw-for-draw: full WID field, then D2D, then Vt."""
        from repro.analysis.chipmc import _sample_wid_field
        from repro.characterization.moments import lognormal_mean_factor

        def original(n_samples, rng, include_vt):
            length = technology.length
            n = realization.n_gates
            a = np.array([fit.a for fit in realization.fits])
            b = np.array([fit.b for fit in realization.fits])
            c = np.array([fit.c for fit in realization.fits])
            wid = _sample_wid_field(
                realization.positions, technology.wid_correlation,
                n_samples, rng, "auto") * length.sigma_wid
            d2d = (rng.standard_normal(n_samples)[:, None]
                   * length.sigma_d2d)
            lengths = length.nominal + wid + d2d
            leak = a[None, :] * np.exp(b[None, :] * lengths
                                       + c[None, :] * lengths ** 2)
            if include_vt:
                n_vt = (technology.subthreshold_swing_factor
                        * technology.thermal_voltage)
                log_sigma = technology.vt.sigma / n_vt
                factors = np.exp(
                    log_sigma * rng.standard_normal((n_samples, n)))
                factors /= lognormal_mean_factor(log_sigma)
                leak = leak * factors
            return leak.sum(axis=1)

        for include_vt in (False, True):
            want = original(64, np.random.default_rng(17), include_vt)
            got = chip_monte_carlo(realization, technology, n_samples=64,
                                   rng=np.random.default_rng(17),
                                   include_vt=include_vt)
            assert np.array_equal(got.samples, want)

    @pytest.mark.parametrize("chunk", [1, 7, 500, 5000])
    def test_chunked_statistics_agree(self, realization, technology,
                                      chunk):
        base = chip_monte_carlo(realization, technology, n_samples=2000,
                                rng=np.random.default_rng(11))
        chunked = chip_monte_carlo(realization, technology,
                                   n_samples=2000,
                                   rng=np.random.default_rng(11),
                                   sample_chunk=chunk)
        assert chunked.n_samples == 2000
        assert np.all(chunked.samples > 0)
        assert chunked.mean == pytest.approx(base.mean, rel=0.05)
        assert chunked.std == pytest.approx(base.std, rel=0.25)

    def test_chunked_with_vt(self, realization, technology):
        base = chip_monte_carlo(realization, technology, n_samples=1500,
                                rng=np.random.default_rng(23),
                                include_vt=True)
        chunked = chip_monte_carlo(realization, technology,
                                   n_samples=1500,
                                   rng=np.random.default_rng(23),
                                   include_vt=True, sample_chunk=200)
        assert chunked.mean == pytest.approx(base.mean, rel=0.05)

    def test_chunked_is_deterministic(self, realization, technology):
        first = chip_monte_carlo(realization, technology, n_samples=300,
                                 rng=np.random.default_rng(3),
                                 sample_chunk=64)
        second = chip_monte_carlo(realization, technology, n_samples=300,
                                  rng=np.random.default_rng(3),
                                  sample_chunk=64)
        assert np.array_equal(first.samples, second.samples)

    def test_rejects_non_positive_chunk(self, realization, technology,
                                        rng):
        with pytest.raises(EstimationError):
            chip_monte_carlo(realization, technology, n_samples=10,
                             rng=rng, sample_chunk=0)
