import numpy as np
import pytest

from repro.analysis import chip_monte_carlo, realize_design
from repro.circuits import grid_placement, random_circuit
from repro.core import CellUsage
from repro.core.estimators import exact_moments
from repro.exceptions import EstimationError


@pytest.fixture(scope="module")
def realization(library, small_characterization):
    rng = np.random.default_rng(99)
    usage = CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.4, "NOR2_X1": 0.2})
    net = random_circuit(library, usage, 400, rng=rng)
    grid_placement(net, 2e-4, 2e-4, rng=rng)
    return realize_design(net, small_characterization, rng=rng)


class TestChipMonteCarlo:
    def test_matches_exact_pairwise_moments(self, realization, technology,
                                            rng):
        """The golden cross-check: sampled chip totals agree with the
        closed-form O(n^2) moments."""
        result = chip_monte_carlo(realization, technology,
                                  n_samples=4000, rng=rng)
        pair_params = realization.pair_params(technology.length.nominal,
                                              technology.length.sigma)
        mean, std = exact_moments(
            realization.positions, realization.means, realization.stds,
            technology.total_correlation, pair_params=pair_params)
        assert result.mean == pytest.approx(mean, rel=0.01)
        assert result.std == pytest.approx(std, rel=0.08)

    def test_sample_count(self, realization, technology, rng):
        result = chip_monte_carlo(realization, technology, n_samples=128,
                                  rng=rng)
        assert result.n_samples == 128
        assert result.samples.shape == (128,)
        assert np.all(result.samples > 0)

    def test_vt_variance_contribution_negligible(self, realization,
                                                 technology):
        """Section 2.1: RDF Vt is independent per gate, so its chip-level
        variance contribution is ~n vs the ~n^2 of correlated L."""
        base = chip_monte_carlo(realization, technology, n_samples=3000,
                                rng=np.random.default_rng(5))
        with_vt = chip_monte_carlo(realization, technology, n_samples=3000,
                                   rng=np.random.default_rng(5),
                                   include_vt=True)
        assert with_vt.std == pytest.approx(base.std, rel=0.1)

    def test_requires_fits(self, library, technology, rng):
        from repro.characterization import characterize_library
        mc_char = characterize_library(library, technology,
                                       mode="montecarlo", cells=["INV_X1"],
                                       n_samples=100, rng=rng)
        usage = CellUsage({"INV_X1": 1.0})
        net = random_circuit(library, usage, 20, rng=rng)
        grid_placement(net, 1e-5, 1e-5, rng=rng)
        real = realize_design(net, mc_char, rng=rng)
        with pytest.raises(EstimationError):
            chip_monte_carlo(real, technology, n_samples=10, rng=rng)

    def test_std_standard_error(self, realization, technology, rng):
        result = chip_monte_carlo(realization, technology, n_samples=500,
                                  rng=rng)
        assert 0 < result.std_standard_error() < result.std
