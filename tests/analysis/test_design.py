import numpy as np
import pytest

from repro.analysis import realize_design
from repro.circuits import grid_placement, random_circuit
from repro.core import CellUsage
from repro.exceptions import EstimationError
from repro.signalprob import propagate_probabilities


@pytest.fixture
def placed(library, rng):
    usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})
    net = random_circuit(library, usage, 300, rng=rng)
    grid_placement(net, 1e-4, 1e-4, rng=rng)
    return net


class TestRealizeDesign:
    def test_arrays_aligned(self, placed, small_characterization, rng):
        real = realize_design(placed, small_characterization, rng=rng)
        assert real.n_gates == 300
        assert real.positions.shape == (300, 2)
        assert real.means.shape == (300,)
        assert np.all(real.means > 0)
        assert len(real.fits) == 300
        assert len(real.labels) == 300

    def test_states_follow_signal_probability(self, placed,
                                              small_characterization):
        rng = np.random.default_rng(0)
        real = realize_design(placed, small_characterization, rng=rng,
                              signal_probability=0.0)
        for (cell_name, state_label) in real.labels:
            if cell_name == "INV_X1":
                assert state_label == "A=0"

    def test_unplaced_rejected(self, library, small_characterization, rng):
        usage = CellUsage({"INV_X1": 1.0})
        net = random_circuit(library, usage, 10, rng=rng)
        with pytest.raises(EstimationError):
            realize_design(net, small_characterization, rng=rng)

    def test_net_probabilities_override(self, placed, library,
                                        small_characterization, rng):
        net_probs = propagate_probabilities(placed, library, 1.0)
        real = realize_design(placed, small_characterization, rng=rng,
                              net_probabilities=net_probs)
        # Primary inputs at 1.0: every INV directly fed by a PI is in A=1.
        pi_set = set(placed.primary_inputs)
        for gate, (cell_name, label) in zip(placed.gates, real.labels):
            if cell_name == "INV_X1" and gate.pin_nets["A"] in pi_set:
                assert label == "A=1"

    def test_pair_params_shape(self, placed, small_characterization, rng):
        real = realize_design(placed, small_characterization, rng=rng)
        a, h, k = real.pair_params(50e-9, 2.5e-9)
        assert a.shape == h.shape == k.shape == (300,)
