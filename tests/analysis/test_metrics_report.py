import pytest

from repro.analysis import format_table, percent_error, signed_percent_error


class TestMetrics:
    def test_percent_error(self):
        assert percent_error(110.0, 100.0) == pytest.approx(10.0)
        assert percent_error(90.0, 100.0) == pytest.approx(10.0)

    def test_signed_percent_error(self):
        assert signed_percent_error(110.0, 100.0) == pytest.approx(10.0)
        assert signed_percent_error(90.0, 100.0) == pytest.approx(-10.0)

    def test_zero_reference_rejected(self):
        with pytest.raises(ZeroDivisionError):
            percent_error(1.0, 0.0)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["circuit", "error %"],
            [["c432", 1.14], ["c7552", 0.34]],
            title="Table 1")
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "circuit" in lines[1]
        assert any("c432" in line and "1.14" in line for line in lines)

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789e-8], [12345.678], [0.5]])
        assert "1.235e-08" in text
        assert "0.5" in text
