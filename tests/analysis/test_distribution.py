import math

import numpy as np
import pytest

from repro.analysis import (
    LeakageDistribution,
    chip_monte_carlo,
    compare_models,
    parametric_yield,
    realize_design,
)
from repro.circuits import grid_placement, random_circuit
from repro.core import CellUsage, FullChipLeakageEstimator
from repro.exceptions import EstimationError


class TestDistributionBasics:
    def test_moment_matching_lognormal(self):
        dist = LeakageDistribution(1e-3, 2e-4, "lognormal")
        # The matched lognormal must reproduce the moments.
        q = np.linspace(1e-5, 1 - 1e-5, 200_001)
        x = dist.quantile(q)
        integral = float(np.trapezoid(x, q))
        assert integral == pytest.approx(1e-3, rel=1e-3)

    def test_normal_quantiles(self):
        dist = LeakageDistribution(1e-3, 2e-4, "normal")
        assert float(dist.quantile(0.5)) == pytest.approx(1e-3)
        assert dist.sigma_corner(3.0) == pytest.approx(1.6e-3)

    def test_lognormal_median_below_mean(self):
        dist = LeakageDistribution(1e-3, 5e-4, "lognormal")
        assert float(dist.quantile(0.5)) < dist.mean

    def test_cdf_quantile_inverse(self):
        for model in ("normal", "lognormal"):
            dist = LeakageDistribution(1e-3, 2e-4, model)
            for q in (0.01, 0.5, 0.99):
                assert float(dist.cdf(dist.quantile(q))) == pytest.approx(q)

    def test_cdf_zero_below_support(self):
        dist = LeakageDistribution(1e-3, 2e-4, "lognormal")
        assert float(dist.cdf(-1.0)) == 0.0

    def test_exceedance_and_yield(self):
        dist = LeakageDistribution(1e-3, 2e-4, "normal")
        assert dist.exceedance(1e-3) == pytest.approx(0.5)
        assert parametric_yield(dist, 1e-3) == pytest.approx(0.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(EstimationError):
            LeakageDistribution(-1.0, 1.0)
        with pytest.raises(EstimationError):
            LeakageDistribution(1.0, 1.0, "cauchy")
        with pytest.raises(EstimationError):
            LeakageDistribution(1.0, 0.1).quantile(1.5)
        with pytest.raises(EstimationError):
            LeakageDistribution(1.0, 0.1).exceedance(0.0)

    def test_from_estimate(self, characterization):
        usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})
        estimate = FullChipLeakageEstimator(
            characterization, usage, 5000, 5e-4, 5e-4).estimate("linear")
        dist = LeakageDistribution.from_estimate(estimate)
        assert dist.mean == estimate.mean
        with_vt = LeakageDistribution.from_estimate(estimate,
                                                    include_vt=True)
        assert with_vt.mean > dist.mean


class TestAgainstChipMonteCarlo:
    def test_lognormal_tracks_mc_quantiles_with_d2d(self, library,
                                                    characterization):
        """With a strong D2D component the total is right-skewed; the
        lognormal model should track the MC quantiles within a few %."""
        rng = np.random.default_rng(21)
        usage = CellUsage({"INV_X1": 0.5, "NAND2_X1": 0.5})
        tech = characterization.technology
        net = random_circuit(library, usage, 500, rng=rng)
        grid_placement(net, 1e-4, 1e-4, rng=rng)
        real = realize_design(net, characterization, rng=rng)
        mc = chip_monte_carlo(real, tech, n_samples=12_000, rng=rng)

        dist = LeakageDistribution(mc.mean, mc.std, "lognormal")
        for q in (0.1, 0.5, 0.9, 0.99):
            sampled = float(np.quantile(mc.samples, q))
            modeled = float(dist.quantile(q))
            assert modeled == pytest.approx(sampled, rel=0.04), q

    def test_model_selection_prefers_lognormal_under_d2d(self, library,
                                                         characterization):
        rng = np.random.default_rng(22)
        usage = CellUsage({"INV_X1": 1.0})
        net = random_circuit(library, usage, 300, rng=rng)
        grid_placement(net, 1e-4, 1e-4, rng=rng)
        real = realize_design(net, characterization, rng=rng)
        mc = chip_monte_carlo(real, characterization.technology,
                              n_samples=6000, rng=rng)
        assert compare_models(mc.samples) == "lognormal"


class TestCompareModelsValidation:
    def test_rejects_short_input(self):
        with pytest.raises(EstimationError):
            compare_models(np.ones(5))

    def test_rejects_non_positive(self):
        with pytest.raises(EstimationError):
            compare_models(np.array([1.0] * 10 + [-1.0]))

    def test_prefers_normal_for_gaussian_data(self, rng):
        samples = rng.normal(10.0, 0.5, 20_000)
        assert compare_models(samples) == "normal"
