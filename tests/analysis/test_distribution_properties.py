"""Property-based tests on the leakage distribution models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import LeakageDistribution

MODELS = ("normal", "lognormal")


@st.composite
def distributions(draw):
    mean = draw(st.floats(min_value=1e-6, max_value=1e-1))
    cv = draw(st.floats(min_value=0.01, max_value=0.8))
    model = draw(st.sampled_from(MODELS))
    return LeakageDistribution(mean, cv * mean, model)


@settings(max_examples=60, deadline=None)
@given(dist=distributions(),
       q1=st.floats(min_value=0.01, max_value=0.98),
       dq=st.floats(min_value=1e-4, max_value=0.019))
def test_quantiles_strictly_increasing(dist, q1, dq):
    assert float(dist.quantile(q1 + dq)) > float(dist.quantile(q1))


@settings(max_examples=60, deadline=None)
@given(dist=distributions(), q=st.floats(min_value=0.001, max_value=0.999))
def test_cdf_inverts_quantile(dist, q):
    assert float(dist.cdf(dist.quantile(q))) == pytest.approx(q, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(dist=distributions())
def test_exceedance_decreases_with_budget(dist):
    budgets = dist.mean * np.array([0.5, 1.0, 2.0, 4.0])
    values = [dist.exceedance(float(b)) for b in budgets]
    assert all(values[k + 1] <= values[k] for k in range(3))
    assert 0.0 <= values[-1] <= values[0] <= 1.0


@settings(max_examples=40, deadline=None)
@given(dist=distributions())
def test_sigma_corner_ordering(dist):
    assert dist.sigma_corner(3.0) > dist.sigma_corner(1.0)
    # k = 0 is the median in both metrics; below the mean for lognormal.
    assert dist.sigma_corner(0.0) <= dist.mean * (1 + 1e-12)


@settings(max_examples=30, deadline=None)
@given(mean=st.floats(min_value=1e-6, max_value=1e-2),
       cv=st.floats(min_value=0.02, max_value=0.6))
def test_lognormal_moment_matching(mean, cv):
    """Wilkinson matching: the model's first two moments equal the
    inputs (checked by sampling the matched lognormal)."""
    dist = LeakageDistribution(mean, cv * mean, "lognormal")
    rng = np.random.default_rng(12)
    mu_ln, s_ln = dist._lognormal_params
    samples = np.exp(rng.normal(mu_ln, s_ln, 200_000))
    assert float(samples.mean()) == pytest.approx(mean, rel=0.02)
    assert float(samples.std()) == pytest.approx(cv * mean, rel=0.05)


@settings(max_examples=30, deadline=None)
@given(dist=distributions())
def test_models_agree_at_small_cv(dist):
    """As CV -> 0 the lognormal converges to the normal; at CV <= 0.1
    their 99% quantiles differ by well under one sigma."""
    if dist.std / dist.mean > 0.1:
        return
    other = LeakageDistribution(
        dist.mean, dist.std,
        "normal" if dist.model == "lognormal" else "lognormal")
    gap = abs(float(dist.quantile(0.99)) - float(other.quantile(0.99)))
    assert gap < 0.5 * dist.std
