import math

import numpy as np
import pytest

from repro.analysis.regions import region_leakage_map
from repro.core import (
    CellUsage,
    FullChipModel,
    RandomGate,
    RGCorrelation,
    expand_mixture,
)
from repro.core.estimators import linear_variance
from repro.exceptions import EstimationError


@pytest.fixture(scope="module")
def setup(small_characterization):
    usage = CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.4, "NOR2_X1": 0.2})
    rg = RandomGate(expand_mixture(small_characterization, usage, 0.5))
    tech = small_characterization.technology
    rgc = RGCorrelation(rg, tech.length.nominal, tech.length.sigma)
    chip = FullChipModel(n_cells=1600, width=4e-4, height=4e-4, rows=40,
                         cols=40)
    return chip, rg, rgc, tech.total_correlation


class TestConsistencyInvariants:
    """The block decomposition must re-aggregate to the chip totals."""

    @pytest.mark.parametrize("blocks", [(1, 1), (2, 2), (4, 4), (5, 8)])
    def test_total_mean_and_variance_preserved(self, setup, blocks):
        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, *blocks)
        assert regions.total_mean == pytest.approx(
            chip.n_sites * rg.mean, rel=1e-12)
        full = linear_variance(chip.rows, chip.cols, chip.pitch_x,
                               chip.pitch_y, corr, rgc)
        assert regions.total_std == pytest.approx(math.sqrt(full),
                                                  rel=1e-10)

    def test_single_block_equals_chip(self, setup):
        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, 1, 1)
        assert regions.covariance.shape == (1, 1)

    def test_matches_brute_force_blocks(self, setup):
        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, 2, 2)
        # Brute force: full site covariance matrix, then aggregate.
        pos = chip.site_positions()
        delta = pos[:, None, :] - pos[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        cov = rgc.covariance(corr(dist))
        np.fill_diagonal(cov, rgc.same_site_covariance)
        cols = chip.cols
        block_of = ((np.arange(chip.n_sites) // cols) // (chip.rows // 2)) \
            * 2 + ((np.arange(chip.n_sites) % cols) // (cols // 2))
        expected = np.zeros((4, 4))
        for a in range(4):
            for b in range(4):
                expected[a, b] = cov[np.ix_(block_of == a,
                                            block_of == b)].sum()
        np.testing.assert_allclose(regions.covariance, expected, rtol=1e-10)


class TestStructure:
    def test_symmetric_positive_semidefinite(self, setup):
        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, 4, 4)
        np.testing.assert_allclose(regions.covariance,
                                   regions.covariance.T, rtol=1e-12)
        eigenvalues = np.linalg.eigvalsh(regions.covariance)
        assert eigenvalues.min() > -1e-9 * eigenvalues.max()

    def test_correlation_decays_with_block_distance(self, setup):
        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, 4, 4)
        rho = regions.correlation_matrix()
        # corner block (0) vs neighbour (1) vs far corner (15)
        assert rho[0, 0] == pytest.approx(1.0)
        assert rho[0, 1] > rho[0, 15]

    def test_uniform_means_and_stds(self, setup):
        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, 4, 4)
        assert np.allclose(regions.means, regions.means[0, 0])
        # Stationary chip: all blocks share one variance.
        np.testing.assert_allclose(np.diag(regions.covariance),
                                   regions.covariance[0, 0], rtol=1e-10)

    def test_worst_block_shape(self, setup):
        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, 4, 4)
        row, col = regions.worst_block()
        assert 0 <= row < 4 and 0 <= col < 4

    def test_indivisible_grid_rejected(self, setup):
        chip, rg, rgc, corr = setup
        with pytest.raises(EstimationError):
            region_leakage_map(chip, rg, rgc, corr, 7, 4)


class TestSampling:
    def test_samples_reproduce_block_moments(self, setup):
        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, 2, 2)
        rng = np.random.default_rng(17)
        samples = regions.sample(50_000, rng)
        assert samples.shape == (50_000, 4)
        np.testing.assert_allclose(samples.mean(axis=0),
                                   regions.means.ravel(), rtol=0.01)
        np.testing.assert_allclose(np.cov(samples.T), regions.covariance,
                                   rtol=0.08)

    def test_hotspot_below_union_bound(self, setup):
        """Joint exceedance of correlated blocks sits between the single-
        block exceedance and the union bound."""
        from scipy import stats

        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, 4, 4)
        budget = float(regions.means[0, 0] + 2.0 * regions.stds[0, 0])
        joint = regions.hotspot_exceedance(budget, n_samples=40_000,
                                           rng=np.random.default_rng(3))
        single = float(1 - stats.norm.cdf(2.0))
        union = min(1.0, 16 * single)
        assert single * 0.8 <= joint <= union

    def test_rejects_bad_inputs(self, setup):
        chip, rg, rgc, corr = setup
        regions = region_leakage_map(chip, rg, rgc, corr, 2, 2)
        with pytest.raises(EstimationError):
            regions.sample(0)
        with pytest.raises(EstimationError):
            regions.hotspot_exceedance(0.0)
