"""Smoke tests for the runnable examples.

Each example is a documented entry point; the two fastest are executed
end-to-end so a regression that breaks the documented flows fails the
suite (the heavier studies are exercised piecewise by the unit tests
and run standalone).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")


def run_example(name: str, timeout: int = 240) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    @pytest.mark.slow
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "mean total leakage" in out
        assert "3-sigma corner" in out

    @pytest.mark.slow
    def test_file_based_flow(self):
        out = run_example("file_based_flow.py")
        assert "round-trip agreement" in out
        assert "Two-region floorplan" in out

    @pytest.mark.slow
    def test_whatif_storm(self):
        out = run_example("whatif_storm.py")
        assert "storm: 60 what-ifs" in out
        assert 'repro_delta_requests_total{outcome="hit"} 60' in out

    def test_all_examples_exist_and_are_documented(self):
        names = sorted(f for f in os.listdir(EXAMPLES_DIR)
                       if f.endswith(".py"))
        assert len(names) >= 3
        assert "quickstart.py" in names
        for name in names:
            with open(os.path.join(EXAMPLES_DIR, name)) as handle:
                head = handle.read(1200)
            assert '"""' in head, f"{name} lacks a module docstring"
            assert "Run:" in head, f"{name} lacks run instructions"
