import math

import pytest

from repro.cells import StandardCellLibrary
from repro.core import CellUsage, FullChipLeakageEstimator
from repro.exceptions import ConfigurationError, EstimationError
from repro.opt import (
    build_dual_vt,
    dual_vt_usage,
    hvt_technology,
    optimize_hvt_fraction,
)


@pytest.fixture(scope="module")
def dual(library, technology):
    subset = library.subset(["INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"])
    return build_dual_vt(subset, technology, vt_offset=0.08)


@pytest.fixture(scope="module")
def usage():
    return CellUsage({"INV_X1": 0.3, "NAND2_X1": 0.3, "NOR2_X1": 0.2,
                      "DFF_X1": 0.2})


class TestHvtTechnology:
    def test_offsets_both_thresholds(self, technology):
        hvt = hvt_technology(technology, 0.08)
        assert hvt.vt.nominal_n == pytest.approx(
            technology.vt.nominal_n + 0.08)
        assert hvt.vt.nominal_p == pytest.approx(
            technology.vt.nominal_p + 0.08)
        assert hvt.length == technology.length  # L statistics untouched

    def test_rejects_non_positive_offset(self, technology):
        with pytest.raises(ConfigurationError):
            hvt_technology(technology, 0.0)


class TestBuildDualVt:
    def test_merged_library_has_both_flavours(self, dual):
        assert isinstance(dual.library, StandardCellLibrary)
        assert "INV_X1" in dual.library
        assert "INV_X1_HVT" in dual.library
        assert len(dual.library) == 8

    def test_hvt_leaks_about_a_decade_less(self, dual):
        """An 80 mV offset at ~95 mV/decade swing is ~0.85 decades."""
        assert 0.05 < dual.hvt_leakage_ratio < 0.25

    def test_per_cell_ratio(self, dual):
        svt_mean, _ = dual.characterization["NAND2_X1"].moments_at(0.5)
        hvt_mean, _ = dual.characterization["NAND2_X1_HVT"].moments_at(0.5)
        assert hvt_mean < 0.3 * svt_mean

    def test_hvt_states_preserved(self, dual):
        svt = dual.characterization["DFF_X1"]
        hvt = dual.characterization["DFF_X1_HVT"]
        assert [s.state_label for s in svt.states] == \
            [s.state_label for s in hvt.states]


class TestDualVtUsage:
    def test_global_fraction_split(self, usage):
        mixed = dual_vt_usage(usage, 0.25)
        assert mixed["INV_X1"] == pytest.approx(0.3 * 0.75)
        assert mixed["INV_X1_HVT"] == pytest.approx(0.3 * 0.25)
        assert mixed.fractions.sum() == pytest.approx(1.0)

    def test_extremes(self, usage):
        assert "INV_X1_HVT" not in dual_vt_usage(usage, 0.0).names
        assert "INV_X1" not in dual_vt_usage(usage, 1.0).names

    def test_per_cell_fractions(self, usage):
        mixed = dual_vt_usage(usage, {"INV_X1": 1.0})
        assert mixed["INV_X1"] == 0.0
        assert mixed["INV_X1_HVT"] == pytest.approx(0.3)
        assert mixed["NAND2_X1"] == pytest.approx(0.3)

    def test_rejects_out_of_range(self, usage):
        with pytest.raises(ConfigurationError):
            dual_vt_usage(usage, 1.5)


class TestOptimize:
    N, W, H = 10_000, 6e-4, 6e-4

    def quantile(self, dual, mixed):
        from repro.analysis import LeakageDistribution
        estimate = FullChipLeakageEstimator(
            dual.characterization, mixed, self.N, self.W, self.H
        ).estimate("linear")
        return float(LeakageDistribution.from_estimate(
            estimate).quantile(0.99))

    def test_zero_fraction_when_budget_loose(self, dual, usage):
        budget = 2 * self.quantile(dual, usage)
        fraction, _ = optimize_hvt_fraction(
            dual, usage, self.N, self.W, self.H, budget)
        assert fraction == 0.0

    def test_meets_tight_budget(self, dual, usage):
        all_svt = self.quantile(dual, usage)
        all_hvt = self.quantile(dual, dual_vt_usage(usage, 1.0))
        budget = math.sqrt(all_svt * all_hvt)  # geometric midpoint
        fraction, dist = optimize_hvt_fraction(
            dual, usage, self.N, self.W, self.H, budget)
        assert 0.0 < fraction < 1.0
        assert float(dist.quantile(0.99)) <= budget * (1 + 1e-6)
        # Minimality: a meaningfully smaller fraction misses the budget.
        leaner = dual_vt_usage(usage, max(0.0, fraction - 0.05))
        assert self.quantile(dual, leaner) > budget

    def test_unreachable_budget_raises(self, dual, usage):
        all_hvt = self.quantile(dual, dual_vt_usage(usage, 1.0))
        with pytest.raises(EstimationError):
            optimize_hvt_fraction(dual, usage, self.N, self.W, self.H,
                                  budget=0.5 * all_hvt)

    def test_max_fraction_cap(self, dual, usage):
        all_svt = self.quantile(dual, usage)
        with pytest.raises(EstimationError):
            optimize_hvt_fraction(dual, usage, self.N, self.W, self.H,
                                  budget=0.8 * all_svt,
                                  max_hvt_fraction=0.05)


class TestOptimizeSweepRegression:
    """The sweep-prefetched optimizer must match the historical
    one-estimate-per-probe loop bit-for-bit: same fraction, same
    distribution, same bisection trajectory."""

    N, W, H = 10_000, 6e-4, 6e-4

    def original_optimize(self, dual, usage, budget, percentile=0.99,
                          signal_probability=0.5,
                          max_hvt_fraction=1.0, tolerance=1e-3,
                          include_vt=False):
        """Verbatim replay of the pre-sweep implementation."""
        from repro.analysis import LeakageDistribution

        def quantile_at(f):
            mixed = dual_vt_usage(usage, f)
            estimate = FullChipLeakageEstimator(
                dual.characterization, mixed, self.N, self.W, self.H,
                signal_probability=signal_probability).estimate("auto")
            distribution = LeakageDistribution.from_estimate(
                estimate, include_vt=include_vt)
            return float(distribution.quantile(percentile)), distribution

        q0, dist0 = quantile_at(0.0)
        if q0 <= budget:
            return 0.0, dist0
        q_max, dist_max = quantile_at(max_hvt_fraction)
        if q_max > budget:
            raise EstimationError("unreachable")
        lo, hi = 0.0, max_hvt_fraction
        dist = dist_max
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            q_mid, dist_mid = quantile_at(mid)
            if q_mid <= budget:
                hi, dist = mid, dist_mid
            else:
                lo = mid
        return hi, dist

    def budget(self, dual, usage):
        def quantile(mixed):
            from repro.analysis import LeakageDistribution
            estimate = FullChipLeakageEstimator(
                dual.characterization, mixed, self.N, self.W, self.H
            ).estimate("linear")
            return float(LeakageDistribution.from_estimate(
                estimate).quantile(0.99))
        return math.sqrt(quantile(usage)
                         * quantile(dual_vt_usage(usage, 1.0)))

    @pytest.mark.parametrize("prefetch_depth", [0, 1, 3])
    def test_bit_identical_to_looped(self, dual, usage, prefetch_depth):
        budget = self.budget(dual, usage)
        want_f, want_dist = self.original_optimize(dual, usage, budget)
        got_f, got_dist = optimize_hvt_fraction(
            dual, usage, self.N, self.W, self.H, budget,
            prefetch_depth=prefetch_depth)
        assert got_f == want_f
        assert got_dist.mean == want_dist.mean
        assert got_dist.std == want_dist.std
        assert got_dist.model == want_dist.model

    def test_include_vt_bit_identical(self, dual, usage):
        budget = 1.3 * self.budget(dual, usage)
        want_f, want_dist = self.original_optimize(dual, usage, budget,
                                                   include_vt=True)
        got_f, got_dist = optimize_hvt_fraction(
            dual, usage, self.N, self.W, self.H, budget,
            include_vt=True)
        assert got_f == want_f
        assert got_dist.mean == want_dist.mean
        assert got_dist.std == want_dist.std
