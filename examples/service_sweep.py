#!/usr/bin/env python3
"""Corner and geometry sweeps through the estimation service.

A signoff flow rarely asks one question: it sweeps temperature corners,
die floorplans, and usage mixes around a baseline. This example runs
the same 12-point corner x die grid two ways:

* **per-request path** — one ``estimate`` call per point, the way a
  driver script would loop. Each point is a separate job: its own
  submission, queue slot, and deadline; the content-addressed cache
  still amortizes the upstream tiers (one characterization per corner,
  one Random-Gate bundle per mix).
* **batched ``/v1/sweep``** — the whole grid as *one* job. The server
  expands the cartesian product itself, runs every point through the
  identical pipeline (results are bit-identical to the loop), and
  back-fills the estimate tier — later single-point requests hit a
  warm cache for free.

The same sweep against a running ``repro serve`` instance is one
substitution (``RemoteClient`` for ``ServiceClient``); the request
document is what ``POST /v1/sweep`` accepts on the wire.

Run:  python examples/service_sweep.py
"""

import time

from repro.analysis import format_table
from repro.service import (EstimateRequest, ServiceClient, SweepRequest,
                           TechnologyConfig)

# A compact library subset keeps this demo snappy; drop `cells` to
# characterize the full library.
CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1")
USAGE = {"INV_X1": 0.4, "NAND2_X1": 0.4, "NOR2_X1": 0.2}

BASE = EstimateRequest(
    n_cells=50_000, width_mm=0.8, height_mm=0.8,
    usage=USAGE, cells=CELLS, method="linear",
    technology=TechnologyConfig(temperature_c=25.0))

SWEEP = SweepRequest(base=BASE, axes=[
    {"name": "temperature_c", "values": [25.0, 85.0, 125.0]},
    {"name": "die", "values": [[0.6, 0.6], [0.8, 0.8],
                               [1.0, 1.0], [1.4, 1.4]]},
])


def main():
    points = SWEEP.expand()

    # -- old path: one request per point ------------------------------
    with ServiceClient(workers=2) as client:
        start = time.perf_counter()
        looped = [client.estimate(point, timeout=600.0)
                  for point in points]
        t_loop = time.perf_counter() - start

    # -- batched path: the whole grid as one job ----------------------
    with ServiceClient(workers=2) as client:
        start = time.perf_counter()
        response = client.sweep(SWEEP, timeout=600.0)
        t_sweep = time.perf_counter() - start

        assert all(got.mean == want.mean and got.std == want.std
                   for got, want in zip(response.estimates, looped))

        rows = []
        for (temperature_c, die), estimate in zip(
                ((t, d) for t in SWEEP.axes[0].values
                 for d in SWEEP.axes[1].values),
                response.estimates):
            rows.append([f"{temperature_c:.0f} C",
                         f"{die[0]:.1f} x {die[1]:.1f} mm",
                         f"{estimate.mean_with_vt * 1e3:.3f} mA",
                         f"{100 * estimate.cv:.1f}%"])
        print(format_table(
            ["corner", "die", "mean leakage", "CV"], rows,
            title=f"Corner x die grid via /v1/sweep "
                  f"({len(response)} points, one job)"))

        n = len(points)
        print(format_table(
            ["path", "jobs", "total [s]", "per point [ms]"],
            [["per-request loop", f"{n}", f"{t_loop:.3f}",
              f"{t_loop / n * 1e3:.1f}"],
             ["batched /v1/sweep", "1", f"{t_sweep:.3f}",
              f"{t_sweep / n * 1e3:.1f}"]],
            title="Same grid, same results — amortized latency"))

        # -- backfill: any grid point is now an estimate-tier hit ------
        start = time.perf_counter()
        client.estimate(points[5], timeout=600.0)
        print(f"\nsingle-point repeat after the sweep: "
              f"{(time.perf_counter() - start) * 1e6:.0f} us (cache hit)")

        stats = client.cache_stats()
        print(format_table(
            ["tier", "hits", "misses", "entries"],
            [[tier, data["hits"], data["misses"], data["entries"]]
             for tier, data in stats.items()],
            title="Cache tiers after the batched sweep"))


if __name__ == "__main__":
    main()
