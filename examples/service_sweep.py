#!/usr/bin/env python3
"""Corner and geometry sweeps through the estimation service.

A signoff flow rarely asks one question: it sweeps temperature corners,
die floorplans, and usage mixes around a baseline. Routing the sweep
through :class:`repro.service.ServiceClient` makes the repeats nearly
free — the content-addressed cache reuses each artifact tier exactly
when its inputs are unchanged:

* one *characterization* per process corner (the expensive stage),
* one *Random-Gate* bundle per (corner, usage mix),
* one *estimate* per complete request — repeats are cache hits.

The same sweep against a running ``repro serve`` instance is one
substitution (``RemoteClient`` for ``ServiceClient``).

Run:  python examples/service_sweep.py
"""

import time

from repro.analysis import format_table
from repro.service import EstimateRequest, ServiceClient, TechnologyConfig

# A compact library subset keeps this demo snappy; drop `cells` to
# characterize the full library.
CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1")
USAGE = {"INV_X1": 0.4, "NAND2_X1": 0.4, "NOR2_X1": 0.2}


def request_for(temperature_c, n_cells=50_000, die_mm=0.8):
    return EstimateRequest(
        n_cells=n_cells, width_mm=die_mm, height_mm=die_mm,
        usage=USAGE, cells=CELLS, method="linear",
        technology=TechnologyConfig(temperature_c=temperature_c))


def main():
    with ServiceClient(workers=2) as client:
        # -- temperature corners: one characterization each ------------
        rows = []
        for temperature_c in (25.0, 85.0, 125.0):
            start = time.perf_counter()
            estimate = client.estimate(request_for(temperature_c),
                                       timeout=600.0)
            elapsed = time.perf_counter() - start
            rows.append([f"{temperature_c:.0f} C",
                         f"{estimate.mean_with_vt * 1e3:.3f} mA",
                         f"{100 * estimate.cv:.1f}%",
                         f"{elapsed:.3f} s"])
        print(format_table(
            ["corner", "mean leakage", "CV", "latency"], rows,
            title="Temperature corners (cold: one characterization each)"))

        # -- geometry sweep at 85 C: upstream tiers stay warm ----------
        rows = []
        for die_mm in (0.6, 0.8, 1.0, 1.4):
            start = time.perf_counter()
            estimate = client.estimate(
                request_for(85.0, n_cells=50_000, die_mm=die_mm),
                timeout=600.0)
            elapsed = time.perf_counter() - start
            rows.append([f"{die_mm:.1f} x {die_mm:.1f} mm",
                         f"{estimate.mean_with_vt * 1e3:.3f} mA",
                         f"{100 * estimate.cv:.1f}%",
                         f"{elapsed * 1e3:.1f} ms"])
        print(format_table(
            ["die", "mean leakage", "CV", "latency"], rows,
            title="Die-size sweep at 85 C (warm characterization + RG)"))

        # -- repeat of the baseline: pure estimate-tier hit ------------
        start = time.perf_counter()
        client.estimate(request_for(85.0), timeout=600.0)
        print(f"\nrepeat of the 85 C baseline: "
              f"{(time.perf_counter() - start) * 1e6:.0f} us (cache hit)")

        stats = client.cache_stats()
        print(format_table(
            ["tier", "hits", "misses", "entries"],
            [[tier, data["hits"], data["misses"], data["entries"]]
             for tier, data in stats.items()],
            title="Cache tiers after the sweep"))


if __name__ == "__main__":
    main()
