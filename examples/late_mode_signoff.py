#!/usr/bin/env python3
"""Late-mode sign-off on ISCAS85-class netlists.

The late-mode flow of the paper's Table 1: take a placed design, extract
its high-level characteristics (cell histogram, gate count, layout
dimensions, propagated signal statistics), run the constant-size RG
estimator, and compare against the O(n^2) true-leakage reference that a
sign-off tool would otherwise have to compute.

Run:  python examples/late_mode_signoff.py
"""

import time

import numpy as np

from repro import (
    FullChipLeakageEstimator,
    build_library,
    characterize_library,
    synthetic_90nm,
)
from repro.analysis import expected_design, format_table
from repro.circuits import (
    extract_characteristics,
    extract_state_weights,
    grid_placement,
    iscas85_circuit,
    iscas85_names,
)
from repro.circuits.placement import die_dimensions
from repro.core.estimators import exact_moments
from repro.signalprob import propagate_probabilities


def main() -> None:
    technology = synthetic_90nm(correlation_length=0.5e-3)
    library = build_library()
    characterization = characterize_library(library, technology)
    correlation = technology.total_correlation

    rows = []
    for name in iscas85_names():
        rng = np.random.default_rng(abs(hash(name)) % (2 ** 31))
        netlist = iscas85_circuit(name, library, rng=rng)
        width, height = die_dimensions(netlist, library)
        grid_placement(netlist, width, height, rng=rng)

        # Reference: the pairwise "true leakage" — computed through the
        # lag-deduplicated fast path (grid placement), which matches the
        # dense O(n^2) sum to machine precision at a fraction of the cost.
        start = time.perf_counter()
        net_probs = propagate_probabilities(netlist, library, 0.5)
        design = expected_design(netlist, characterization,
                                 net_probabilities=net_probs)
        true_mean, true_std = exact_moments(
            design.positions, design.means, design.stds, correlation,
            corr_stds=design.corr_stds, tolerance=1e-9)
        t_exact = time.perf_counter() - start

        # RG estimator from extracted characteristics.
        start = time.perf_counter()
        chars = extract_characteristics(netlist, library)
        state_weights = extract_state_weights(netlist, library, net_probs)
        estimate = FullChipLeakageEstimator(
            characterization, chars.usage, chars.n_cells, chars.width,
            chars.height, state_weights=state_weights,
            simplified_correlation=True).estimate("linear")
        t_rg = time.perf_counter() - start

        rows.append([
            name, netlist.n_gates,
            f"{true_mean * 1e6:.2f}", f"{estimate.mean * 1e6:.2f}",
            f"{true_std * 1e9:.1f}", f"{estimate.std * 1e9:.1f}",
            f"{abs(estimate.std - true_std) / true_std * 100:.2f}",
            f"{t_exact / max(t_rg, 1e-9):.0f}x",
        ])

    print(format_table(
        ["circuit", "gates", "true mean [uA]", "RG mean [uA]",
         "true std [nA]", "RG std [nA]", "std err %", "speedup"],
        rows,
        title="Late-mode sign-off — RG estimator vs O(n^2) true leakage"))
    print("\nThe RG estimate needs only constant-size extracted "
          "characteristics, so its\ncost is independent of design size — "
          "the speedup column grows with the circuit.")


if __name__ == "__main__":
    main()
