#!/usr/bin/env python3
"""Quickstart — estimate full-chip leakage statistics in four steps.

Reproduces the paper's Fig. 1 pipeline end to end:

1. describe the process (D2D/WID split + spatial correlation),
2. characterize the standard-cell library for leakage,
3. describe the candidate design by its high-level characteristics
   (cell usage histogram, cell count, die dimensions),
4. estimate the mean and standard deviation of total leakage.

Run:  python examples/quickstart.py
"""

from repro import (
    CellUsage,
    FullChipLeakageEstimator,
    build_library,
    characterize_library,
    synthetic_90nm,
)

# -- 1. Process information --------------------------------------------------
# A synthetic 90 nm-class technology: 5% total channel-length sigma,
# split evenly between die-to-die and within-die components, with an
# exponential WID correlation of 0.5 mm characteristic length.
technology = synthetic_90nm(correlation_length=0.5e-3, d2d_fraction=0.5)

# -- 2. Standard-cell library ------------------------------------------------
# 62 cells (logic, flip-flops, SRAM), each characterized per input state
# by fitting X = a*exp(b*L + c*L^2) and taking exact MGF moments.
library = build_library()
characterization = characterize_library(library, technology)
print(f"library: {len(library)} cells, "
      f"{library.total_states()} leakage states characterized")

# -- 3. High-level design characteristics -------------------------------------
# Early mode: these are *expected* values from floorplanning, no netlist
# needed. (Late mode would extract them from the placed design.)
usage = CellUsage({
    "INV_X1": 0.18, "BUF_X2": 0.07, "NAND2_X1": 0.22, "NOR2_X1": 0.13,
    "AOI21_X1": 0.08, "XOR2_X1": 0.07, "MUX2_X1": 0.05, "DFF_X1": 0.15,
    "SRAM6T_X1": 0.05,
})
n_cells = 1_000_000
width = height = 2.0e-3  # 2 mm x 2 mm core

# -- 4. Estimate ---------------------------------------------------------------
estimator = FullChipLeakageEstimator(
    characterization, usage, n_cells, width, height,
    signal_probability=0.5)

for method in ("integral2d", "polar" if width >= 4e-3 else "linear"):
    result = estimator.estimate(method)
    print(f"\nmethod = {result.method}")
    print(f"  mean total leakage : {result.mean * 1e3:8.3f} mA")
    print(f"  incl. Vt RDF term  : {result.mean_with_vt * 1e3:8.3f} mA")
    print(f"  std  total leakage : {result.std * 1e3:8.3f} mA")
    print(f"  3-sigma corner     : "
          f"{(result.mean + 3 * result.std) * 1e3:8.3f} mA "
          f"({(1 + 3 * result.cv) * 100:.1f}% of nominal)")
