#!/usr/bin/env python3
"""From silicon measurements to a leakage forecast.

Demonstrates the full process-modeling loop:

1. simulate noisy spatial-correlation measurements from test structures
   (what a foundry ring-oscillator array would give you),
2. robustly extract a valid correlation function (ref. [5] substrate),
3. verify the correlated-field sampler reproduces it,
4. propagate the extracted model into chip-level leakage statistics and
   compare against the model that actually generated the silicon.

Run:  python examples/correlation_study.py
"""

import numpy as np

from repro import (
    CellUsage,
    FullChipLeakageEstimator,
    build_library,
    characterize_library,
    synthetic_90nm,
)
from repro.analysis import format_table
from repro.process import (
    CholeskyFieldSampler,
    ExponentialCorrelation,
    extract_correlation,
)


def main() -> None:
    rng = np.random.default_rng(42)

    # --- 1. "silicon": sample a field with a hidden true correlation ------
    true_corr = ExponentialCorrelation(0.7e-3)
    sites = rng.uniform(0, 4e-3, size=(64, 2))  # test-structure locations
    sampler = CholeskyFieldSampler(sites, true_corr)
    wafers = sampler.sample(200, rng)  # 200 die measurements

    # Empirical correlations binned by separation distance.
    empirical = np.corrcoef(wafers.T)
    delta = sites[:, None, :] - sites[None, :, :]
    dist = np.sqrt((delta ** 2).sum(-1))
    upper = np.triu_indices(len(sites), k=1)
    bins = np.linspace(1e-4, 3.5e-3, 15)
    centers, values = [], []
    for lo, hi in zip(bins[:-1], bins[1:]):
        mask = (dist[upper] >= lo) & (dist[upper] < hi)
        if mask.sum() >= 5:
            centers.append(0.5 * (lo + hi))
            values.append(float(empirical[upper][mask].mean()))

    # --- 2. robust extraction ---------------------------------------------
    fit = extract_correlation(centers, values)
    print(f"extracted family : {fit.family}")
    print(f"extracted length : {fit.parameter * 1e3:.3f} mm "
          f"(truth: 0.700 mm)")
    print(f"fit RMSE         : {fit.rmse:.4f}")

    # --- 3. sampler round-trip check ---------------------------------------
    check = CholeskyFieldSampler(sites[:16], fit.model)
    resampled = check.sample(40_000, rng)
    worst = 0.0
    target = fit.model.matrix(sites[:16])
    achieved = np.corrcoef(resampled.T)
    worst = float(np.max(np.abs(achieved - target)))
    print(f"sampler round-trip max |rho error|: {worst:.3f}")

    # --- 4. chip-level impact ----------------------------------------------
    library = build_library()
    usage = CellUsage({"INV_X1": 0.25, "NAND2_X1": 0.30, "NOR2_X1": 0.20,
                       "DFF_X1": 0.25})
    rows = []
    for label, wid in (("true model", true_corr), ("extracted", fit.model)):
        technology = synthetic_90nm().with_correlation(wid)
        characterization = characterize_library(library, technology,
                                                cells=usage.names)
        estimate = FullChipLeakageEstimator(
            characterization, usage, 500_000, 3e-3, 3e-3
        ).estimate("integral2d")
        rows.append([label, f"{estimate.mean * 1e3:.3f}",
                     f"{estimate.std * 1e6:.1f}",
                     f"{estimate.cv * 100:.2f}"])
    print()
    print(format_table(["correlation model", "mean [mA]", "std [uA]",
                        "CV %"], rows,
                       title="Chip leakage under true vs extracted model"))


if __name__ == "__main__":
    main()
