#!/usr/bin/env python3
"""File-based tool flow: netlists in, leakage numbers out.

Exercises the interchange-format layer the way a script in a real flow
would:

1. write an ISCAS85-equivalent design out as structural Verilog and as
   an ISCAS ``.bench`` file,
2. read both back, check they agree,
3. persist the library characterization to JSON and reload it,
4. estimate a heterogeneous two-region floorplan (the parsed design as
   a "logic" region next to an SRAM-dominated macro region) with the
   multi-region extension.

Run:  python examples/file_based_flow.py
"""

import os
import tempfile

import numpy as np

from repro import (
    CellUsage,
    build_library,
    characterize_library,
    synthetic_90nm,
)
from repro.analysis import format_table
from repro.characterization import (
    load_characterization,
    save_characterization,
)
from repro.circuits import (
    iscas85_circuit,
    load_verilog,
    parse_bench,
    write_bench,
    write_verilog,
)
from repro.core import Region, estimate_multiregion
from repro.signalprob import propagate_probabilities


def main() -> None:
    technology = synthetic_90nm(correlation_length=0.5e-3)
    library = build_library()
    rng = np.random.default_rng(432)

    workdir = tempfile.mkdtemp(prefix="repro-flow-")
    print(f"working directory: {workdir}")

    # -- 1. write the design in both formats --------------------------------
    design = iscas85_circuit("c432", library, rng=rng)
    verilog_path = os.path.join(workdir, "c432.v")
    bench_path = os.path.join(workdir, "c432.bench")
    with open(verilog_path, "w") as handle:
        handle.write(write_verilog(design, library))
    with open(bench_path, "w") as handle:
        handle.write(write_bench(design, library))
    print(f"wrote {verilog_path} ({design.n_gates} gates) and "
          f"{bench_path}")

    # -- 2. read back and cross-check ----------------------------------------
    from_verilog = load_verilog(verilog_path, library)
    with open(bench_path) as handle:
        from_bench = parse_bench(handle.read(), library, name="c432")
    # Verilog is lossless; .bench is function-level (drive strengths
    # collapse to X1), so compare it on gate count only.
    assert from_verilog.cell_counts() == design.cell_counts()
    assert from_bench.n_gates == design.n_gates
    probs_v = propagate_probabilities(from_verilog, library, 0.5)
    probs_b = propagate_probabilities(from_bench, library, 0.5)
    sample_net = from_verilog.gates[-1].output_nets["Y"]
    print(f"round-trip agreement on net {sample_net!r}: "
          f"verilog {probs_v[sample_net]:.4f} vs bench "
          f"{probs_b[sample_net]:.4f}")

    # -- 3. characterization persistence --------------------------------------
    char_path = os.path.join(workdir, "char.json")
    characterization = characterize_library(library, technology)
    save_characterization(characterization, char_path)
    characterization = load_characterization(char_path, library, technology)
    print(f"characterization persisted and reloaded from {char_path} "
          f"({os.path.getsize(char_path) // 1024} KiB)")

    # -- 4. heterogeneous floorplan estimate ---------------------------------
    logic_usage = CellUsage.from_counts(design.cell_counts())
    sram_usage = CellUsage({"SRAM6T_X1": 0.85, "INV_X1": 0.1,
                            "DFF_X1": 0.05})
    regions = [
        Region("logic", x0=0.0, y0=0.0, width=0.8e-3, height=1.0e-3,
               usage=logic_usage, n_cells=180_000),
        Region("sram-macro", x0=0.8e-3, y0=0.0, width=0.4e-3,
               height=1.0e-3, usage=sram_usage, n_cells=220_000),
    ]
    result = estimate_multiregion(characterization, regions)
    rows = []
    for k, name in enumerate(result.region_names):
        rows.append([name, f"{result.region_means[k] * 1e3:.3f}",
                     f"{result.region_stds[k] * 1e6:.1f}"])
    rows.append(["TOTAL", f"{result.mean * 1e3:.3f}",
                 f"{result.std * 1e6:.1f}"])
    print()
    print(format_table(["region", "mean [mA]", "std [uA]"], rows,
                       title="Two-region floorplan"))
    rho = result.correlation_matrix()[0, 1]
    print(f"logic/macro leakage correlation: {rho:.3f} "
          "(coupled through D2D + long-range WID)")


if __name__ == "__main__":
    main()
