#!/usr/bin/env python3
"""An interactive ECO session through the incremental (delta) engine.

The workload the delta engine exists for: an engineer has one signed-
off estimate and wants instant answers to "what if" — swap a slice of
inverters for NANDs, grow the die, try a different mix. Re-running the
full estimator per question costs the whole RG mixture build each
time; the service instead records every full estimate it serves as a
**base candidate**, and answers edits against its content hash from a
:class:`repro.delta.BaseEstimate` snapshot in o(n_affected).

This script drives the in-process :class:`ServiceClient` (the HTTP
``base=`` protocol is the same documents over ``POST /v1/estimate`` —
see ``docs/SERVICE.md``, "Incremental estimation"):

1. one full estimate (records the base candidate);
2. a storm of 60 what-if edits against its hash — cell-swap ECOs of
   growing size, usage re-mixes, and floorplan resizes;
3. one spot check of a storm answer against a fresh run;
4. the delta metrics and base-store occupancy the server exposes.

Run:  python examples/whatif_storm.py
"""

import time

from repro.analysis import format_table
from repro.service import (EstimateRequest, ServiceClient, WhatIfRequest)
from repro.service.metrics import MetricsRegistry

CELLS = ("INV_X1", "NAND2_X1", "NOR2_X1")
USAGE = {"INV_X1": 0.4, "NAND2_X1": 0.4, "NOR2_X1": 0.2}

BASELINE = EstimateRequest(
    n_cells=50_000, width_mm=0.8, height_mm=0.8,
    usage=USAGE, cells=CELLS, method="linear")


def storm_edits(count):
    """A drag-the-slider session: growing swaps, re-mixes, resizes."""
    edits = []
    for i in range(count):
        kind = i % 3
        if kind == 0:
            edits.append([{"type": "cell_swap", "from_cell": "INV_X1",
                           "to_cell": "NAND2_X1",
                           "fraction": 0.002 * (i + 1)}])
        elif kind == 1:
            tilt = 0.002 * (i + 1)
            edits.append([{"type": "usage_histogram",
                           "fractions": {"INV_X1": 0.4 - tilt,
                                         "NAND2_X1": 0.4,
                                         "NOR2_X1": 0.2 + tilt}}])
        else:
            edits.append([{"type": "floorplan_resize",
                           "n_cells": 50_000 + 500 * (i + 1)}])
    return edits


def main():
    metrics = MetricsRegistry()
    with ServiceClient(workers=2, metrics=metrics) as client:
        # -- 1. the signed-off baseline (records the base candidate) --
        start = time.perf_counter()
        baseline = client.estimate(BASELINE, timeout=600.0)
        t_full = time.perf_counter() - start
        base_key = BASELINE.key()
        print(f"baseline: mean {baseline.mean * 1e3:.3f} mA in "
              f"{t_full:.2f} s  (base {base_key[:16]}...)")

        # -- 2. the storm -------------------------------------------------
        edits = storm_edits(60)
        start = time.perf_counter()
        answers = [client.whatif(WhatIfRequest(base=base_key, edits=e),
                                 timeout=600.0)
                   for e in edits]
        t_storm = time.perf_counter() - start
        # The first what-if pays the lazy base build; steady state is
        # the per-edit delta latency.
        print(f"storm: {len(answers)} what-ifs in {t_storm:.2f} s "
              f"({t_storm / len(answers) * 1e3:.1f} ms/edit vs "
              f"{t_full * 1e3:.0f} ms for a full run)")

        rows = []
        for label, index in [("5% INV->NAND swap", 24),
                             ("usage re-mix", 25),
                             ("floorplan +13k cells", 26)]:
            estimate = answers[index]
            ledger = estimate.details["delta"]
            rows.append([label, f"{estimate.mean * 1e3:.3f}",
                         f"{100 * estimate.cv:.2f}%",
                         f"{ledger['moments_recomputed']}"
                         f"/{ledger['moments_recomputed'] + ledger['moments_reused']}",
                         str(ledger["lags_reused"])])
        print(format_table(
            ["what-if", "mean [mA]", "CV", "moments recomputed",
             "lags reused"], rows,
            title="Sample storm answers and their reuse ledgers"))

        # -- 3. spot check vs a fresh run ---------------------------------
        fresh_request = EstimateRequest(
            n_cells=50_000, width_mm=0.8, height_mm=0.8,
            usage={"INV_X1": 0.4 - 0.052, "NAND2_X1": 0.4,
                   "NOR2_X1": 0.2 + 0.052},
            cells=CELLS, method="linear")
        fresh = client.estimate(fresh_request, timeout=600.0)
        spot = answers[25]
        print(f"\nspot check (usage re-mix #25): delta vs fresh "
              f"rel err mean {abs(spot.mean / fresh.mean - 1):.2e}, "
              f"std {abs(spot.std / fresh.std - 1):.2e}")

        # -- 4. the observability the server exposes ----------------------
        store = client.pipeline.base_store_stats()
        print(f"\nbase store: {store['bases']} base snapshot(s) for "
              f"{store['requests']} recorded request(s)")
        for line in metrics.render().splitlines():
            if line.startswith("repro_delta_requests_total"):
                print(line)


if __name__ == "__main__":
    main()
