#!/usr/bin/env python3
"""A complete statistical power sign-off session.

Chains the library's higher-level capabilities on one candidate design:

1. estimate the leakage distribution and parametric yield at a budget,
2. attribute the mean and spread to cell types,
3. recover leakage with dual-Vt swapping to meet the budget,
4. map leakage across die regions for power-grid planning,
5. sweep junction temperature for the datasheet table.

Run:  python examples/power_signoff_suite.py
"""

import numpy as np

from repro import (
    CellUsage,
    FullChipLeakageEstimator,
    build_library,
    characterize_library,
    synthetic_90nm,
)
from repro.analysis import (
    LeakageDistribution,
    format_table,
    parametric_yield,
    region_leakage_map,
    temperature_sweep,
)
from repro.core.sensitivity import leakage_attribution, usage_gradient
from repro.opt import build_dual_vt, dual_vt_usage, optimize_hvt_fraction

N_CELLS = 360_000
DIE = 1.8e-3  # 1.8 mm x 1.8 mm

USAGE = CellUsage({
    "INV_X1": 0.16, "BUF_X2": 0.06, "NAND2_X1": 0.20, "NOR2_X1": 0.12,
    "AOI21_X1": 0.08, "XOR2_X1": 0.06, "MUX2_X1": 0.05, "DFF_X1": 0.19,
    "SRAM6T_X1": 0.08,
})


def main() -> None:
    technology = synthetic_90nm(correlation_length=0.5e-3)
    library = build_library()
    characterization = characterize_library(library, technology)

    # -- 1. distribution and yield -----------------------------------------
    estimator = FullChipLeakageEstimator(
        characterization, USAGE, N_CELLS, DIE, DIE)
    estimate = estimator.estimate("auto")
    distribution = LeakageDistribution.from_estimate(estimate,
                                                     include_vt=True)
    budget = 0.98 * float(distribution.quantile(0.90))
    print(f"estimate: mean {estimate.mean_with_vt*1e3:.2f} mA, "
          f"std {estimate.std*1e3:.2f} mA (method={estimate.method})")
    print(f"budget  : {budget*1e3:.2f} mA -> parametric yield "
          f"{parametric_yield(distribution, budget)*100:.1f}%")

    # -- 2. attribution ------------------------------------------------------
    rows = [[r.cell_name, f"{r.usage_fraction*100:.0f}",
             f"{r.mean_share*100:.1f}", f"{r.std_share*100:.1f}"]
            for r in leakage_attribution(estimator.random_gate)[:6]]
    print()
    print(format_table(["cell", "usage %", "mean share %", "std share %"],
                       rows, title="Top leakage contributors"))
    swap_from, marginal = usage_gradient(estimator.random_gate)[0]
    print(f"best swap-away candidate: {swap_from} "
          f"(+{marginal*1e9:.2f} nA per instance over average)")

    # -- 3. dual-Vt recovery ---------------------------------------------------
    dual = build_dual_vt(library.subset(USAGE.names), technology,
                         vt_offset=0.08)
    fraction, recovered = optimize_hvt_fraction(
        dual, USAGE, N_CELLS, DIE, DIE, budget=budget, percentile=0.90,
        include_vt=True)
    print(f"\ndual-Vt: swapping {fraction*100:.1f}% of instances to HVT "
          f"(HVT/SVT leakage ratio {dual.hvt_leakage_ratio:.2f})")
    print(f"  90% leakage {float(recovered.quantile(0.90))*1e3:.2f} mA "
          f"<= budget {budget*1e3:.2f} mA")
    yield_after = parametric_yield(recovered, budget)
    print(f"  parametric yield after swap: {yield_after*100:.1f}%")

    # -- 4. regional map --------------------------------------------------------
    regions = region_leakage_map(
        estimator.chip, estimator.random_gate, estimator.rg_correlation,
        estimator.correlation, block_rows=4, block_cols=4)
    rho = regions.correlation_matrix()
    print(f"\nregion map (4x4 blocks): per-block mean "
          f"{regions.means[0,0]*1e6:.1f} uA, std "
          f"{regions.stds[0,0]*1e6:.2f} uA")
    print(f"  neighbour block correlation {rho[0,1]:.3f}, "
          f"opposite corners {rho[0,15]:.3f}")
    worst = regions.worst_block()
    print(f"  worst 3-sigma block: row {worst[0]}, col {worst[1]}")

    # -- 5. temperature table ------------------------------------------------
    points = temperature_sweep(
        library, technology, USAGE, N_CELLS, DIE, DIE,
        temperatures=[273.15 + c for c in (25, 55, 85, 125)])
    rows = [[f"{p.celsius:.0f}", f"{p.estimate.mean_with_vt*1e3:.2f}",
             f"{p.estimate.std*1e3:.3f}"] for p in points]
    print()
    print(format_table(["Tj [C]", "mean [mA]", "std [mA]"], rows,
                       title="Leakage vs junction temperature"))


if __name__ == "__main__":
    main()
