#!/usr/bin/env python3
"""Early-mode design planning with the Random-Gate model.

The point of an *early* estimator (the paper's motivating use case): no
netlist exists yet, but the architecture team must budget leakage power.
This example runs the what-if sweeps a planner actually needs:

* die area at fixed gate count (spread-vs-area tradeoff),
* high-leakage vs low-leakage cell mixes,
* the conservative signal-probability corner (Section 2.1.4),
* D2D/WID split sensitivity (how much of the spread a per-die
  speed-bin test could remove).

Run:  python examples/early_mode_planning.py
"""

import math

from repro import (
    CellUsage,
    FullChipLeakageEstimator,
    build_library,
    characterize_library,
    synthetic_90nm,
)
from repro.analysis import format_table
from repro.signalprob import maximize_mean_leakage

N_CELLS = 2_000_000

MIXES = {
    "control-heavy": CellUsage({
        "NAND2_X1": 0.30, "NOR2_X1": 0.20, "INV_X1": 0.20, "AOI21_X1": 0.10,
        "DFF_X1": 0.20}),
    "datapath": CellUsage({
        "XOR2_X1": 0.15, "FA_X1": 0.15, "MUX2_X1": 0.15, "NAND2_X1": 0.20,
        "INV_X2": 0.15, "DFF_X1": 0.20}),
    "memory-rich": CellUsage({
        "SRAM6T_X1": 0.45, "INV_X1": 0.15, "NAND2_X1": 0.15, "NOR2_X1": 0.10,
        "DFF_X1": 0.15}),
}


def main() -> None:
    technology = synthetic_90nm(correlation_length=0.5e-3)
    library = build_library()
    characterization = characterize_library(library, technology)

    # --- cell-mix comparison at a fixed floorplan -------------------------
    side = 4.0e-3
    rows = []
    for label, usage in MIXES.items():
        p_star, _ = maximize_mean_leakage(characterization, usage)
        estimate = FullChipLeakageEstimator(
            characterization, usage, N_CELLS, side, side,
            signal_probability=p_star).estimate("integral2d")
        rows.append([label, f"{p_star:.2f}",
                     f"{estimate.mean_with_vt * 1e3:.2f}",
                     f"{estimate.std * 1e3:.3f}",
                     f"{estimate.cv * 100:.1f}"])
    print(format_table(
        ["mix", "p* (worst)", "mean [mA]", "std [mA]", "CV %"], rows,
        title=f"Cell-mix planning — {N_CELLS:,} cells on "
              f"{side * 1e3:.0f}x{side * 1e3:.0f} mm"))

    # --- area sweep at fixed gate count -----------------------------------
    usage = MIXES["control-heavy"]
    rows = []
    for side_mm in (2.0, 3.0, 4.0, 6.0):
        side = side_mm * 1e-3
        estimate = FullChipLeakageEstimator(
            characterization, usage, N_CELLS, side, side
        ).estimate("integral2d")
        rows.append([f"{side_mm:.0f}x{side_mm:.0f}",
                     f"{estimate.mean * 1e3:.2f}",
                     f"{estimate.std * 1e3:.3f}",
                     f"{estimate.cv * 100:.2f}"])
    print()
    print(format_table(
        ["die [mm]", "mean [mA]", "std [mA]", "CV %"], rows,
        title="Area sweep — denser dies see more correlated variation"))

    # --- D2D/WID split sensitivity ----------------------------------------
    rows = []
    for d2d_fraction in (0.0, 0.25, 0.5, 0.75):
        tech = synthetic_90nm(correlation_length=0.5e-3,
                              d2d_fraction=d2d_fraction)
        char = characterize_library(library, tech, cells=usage.names)
        estimate = FullChipLeakageEstimator(
            char, usage, N_CELLS, 4e-3, 4e-3).estimate("integral2d")
        rows.append([f"{d2d_fraction:.2f}",
                     f"{estimate.std * 1e3:.3f}",
                     f"{estimate.cv * 100:.2f}"])
    print()
    print(format_table(
        ["D2D variance fraction", "std [mA]", "CV %"], rows,
        title="Variation-split sensitivity (total sigma fixed)"))
    print("\nA large D2D fraction means most of the chip-level spread is a "
          "per-die offset\nthat binning can screen; WID-dominated spread "
          "cannot be binned away.")


if __name__ == "__main__":
    main()
