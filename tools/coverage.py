#!/usr/bin/env python
"""Zero-dependency line coverage for ``src/repro`` with a ratcheted floor.

Runs the test suite in-process under :func:`sys.settrace` and reports,
per module, the fraction of *executable* lines (from the compiled code
objects' ``co_lines()`` tables) that actually executed. The tracer
installs a local trace function only for frames whose code lives under
``src/repro`` — every other frame is rejected at call time, so numpy /
scipy / pytest internals run untraced.

The checked-in floor (``tools/coverage_floor.json``) is a ratchet: the
gate fails when total coverage drops below it, and intentional
improvements are banked with ``--update-floor``. This keeps the gate
honest without requiring pytest-cov in the image.

Besides ``total_percent``, the floor file may carry a ``packages``
mapping of package prefixes (relative to ``src``, e.g.
``"repro/thermal"``) to their own floors. Package floors stop a
well-covered repo from absorbing an under-tested new subsystem: the
total barely moves, but the package gate fails. ``--update-floor``
re-banks every listed package from the current run; add a package by
writing its key into the file (any value) and running
``--update-floor`` once.

Usage::

    PYTHONPATH=src python tools/coverage.py            # gate vs floor
    PYTHONPATH=src python tools/coverage.py -m "not slow"   # faster run
    PYTHONPATH=src python tools/coverage.py --update-floor  # bank gains
    PYTHONPATH=src python tools/coverage.py --json cov.json # machine out

Pytest arguments pass through verbatim after the tool's own flags.

Limitations (documented, deliberate): subprocesses (the runnable
examples, spawned workers) are not traced, and ``if TYPE_CHECKING:``
bodies count as executable-but-unexecuted. Both depress the number
uniformly over time, which is fine for a ratchet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO, "src")
PACKAGE_ROOT = os.path.join(SRC_ROOT, "repro")
FLOOR_PATH = os.path.join(REPO, "tools", "coverage_floor.json")


def executable_lines(path: str) -> set:
    """Executable line numbers of ``path`` from compiled ``co_lines()``.

    Walks the module code object and every nested code constant
    (functions, classes, comprehensions) so the universe matches what
    the line tracer can possibly report.
    """
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    code_type = type(stack[0])
    while stack:
        code = stack.pop()
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if isinstance(const, code_type):
                stack.append(const)
    return lines


class Collector:
    """Global trace hook recording executed lines under one prefix."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix + os.sep
        self.executed = {}

    def global_trace(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(self.prefix):
            return None  # frame (and its lines) stays untraced
        lines = self.executed.get(filename)
        if lines is None:
            lines = self.executed.setdefault(filename, set())
        lines.add(frame.f_code.co_firstlineno)

        def local_trace(frame, event, arg, add=lines.add):
            if event == "line":
                add(frame.f_lineno)
            return local_trace

        return local_trace

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def measure(pytest_args):
    """Run pytest under the collector; return (exit_code, report)."""
    sys.path.insert(0, SRC_ROOT)
    collector = Collector(PACKAGE_ROOT)
    collector.install()
    try:
        import pytest

        exit_code = pytest.main(list(pytest_args))
    finally:
        collector.uninstall()

    modules = {}
    total_executable = total_executed = 0
    for dirpath, _dirnames, filenames in os.walk(PACKAGE_ROOT):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            universe = executable_lines(path)
            if not universe:
                continue
            hit = collector.executed.get(path, set()) & universe
            name = os.path.relpath(path, SRC_ROOT).replace(os.sep, "/")
            modules[name] = {
                "executable": len(universe),
                "executed": len(hit),
                "percent": 100.0 * len(hit) / len(universe),
            }
            total_executable += len(universe)
            total_executed += len(hit)
    report = {
        "total": {
            "executable": total_executable,
            "executed": total_executed,
            "percent": (100.0 * total_executed / total_executable
                        if total_executable else 0.0),
        },
        "modules": modules,
    }
    return exit_code, report


def package_stats(report, prefix: str):
    """Aggregate (executable, executed, percent) under one package.

    ``prefix`` is relative to ``src`` with forward slashes, e.g.
    ``"repro/thermal"``; a module matches if it *is* the prefix (a
    single-file package) or lives under ``prefix/``.
    """
    executable = executed = 0
    for name, entry in report["modules"].items():
        if name == prefix or name.startswith(prefix + "/"):
            executable += entry["executable"]
            executed += entry["executed"]
    percent = 100.0 * executed / executable if executable else 0.0
    return executable, executed, percent


def render(report, worst: int = 15) -> str:
    rows = sorted(report["modules"].items(),
                  key=lambda item: item[1]["percent"])
    width = max(len(name) for name, _ in rows)
    out = [f"{'module'.ljust(width)}  exec'd/able   %",
           "-" * (width + 20)]
    for name, entry in rows[:worst]:
        out.append(f"{name.ljust(width)}  "
                   f"{entry['executed']:5d}/{entry['executable']:<5d} "
                   f"{entry['percent']:5.1f}")
    total = report["total"]
    out.append("-" * (width + 20))
    out.append(f"{'TOTAL'.ljust(width)}  "
               f"{total['executed']:5d}/{total['executable']:<5d} "
               f"{total['percent']:5.1f}")
    return "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="Unrecognized arguments pass through to pytest.")
    parser.add_argument("--update-floor", action="store_true",
                        help="rewrite the ratchet floor from this run")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the full report as JSON")
    parser.add_argument("--worst", type=int, default=15,
                        help="how many least-covered modules to list")
    args, pytest_args = parser.parse_known_args(argv)

    exit_code, report = measure(pytest_args or ["-q"])
    if exit_code != 0:
        print("coverage: test run failed; not gating", file=sys.stderr)
        return int(exit_code)

    print(render(report, worst=args.worst))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")

    total = report["total"]["percent"]
    previous = {}
    if os.path.exists(FLOOR_PATH):
        with open(FLOOR_PATH, encoding="utf-8") as handle:
            previous = json.load(handle)

    if args.update_floor:
        # Bank to one decimal, rounded *down*: re-running the same
        # suite can never trip the gate it just set. Package floors
        # keep their keys and re-bank from this run.
        floor = {"total_percent": int(total * 10) / 10.0}
        packages = {}
        for prefix in sorted(previous.get("packages", {})):
            _, _, percent = package_stats(report, prefix)
            packages[prefix] = int(percent * 10) / 10.0
        if packages:
            floor["packages"] = packages
        with open(FLOOR_PATH, "w", encoding="utf-8") as handle:
            json.dump(floor, handle, indent=2)
            handle.write("\n")
        print(f"floor updated to {floor['total_percent']:.1f}%")
        for prefix, value in packages.items():
            print(f"  package {prefix}: {value:.1f}%")
        return 0

    if not previous:
        print(f"no floor at {FLOOR_PATH}; run with --update-floor first",
              file=sys.stderr)
        return 1
    failed = False
    floor = previous["total_percent"]
    if total < floor:
        print(f"coverage gate FAILED: {total:.2f}% < floor {floor:.1f}%",
              file=sys.stderr)
        failed = True
    else:
        print(f"coverage gate ok: {total:.2f}% >= floor {floor:.1f}%")
    for prefix, package_floor in sorted(
            previous.get("packages", {}).items()):
        executable, _, percent = package_stats(report, prefix)
        if not executable:
            print(f"coverage gate FAILED: package {prefix} has no "
                  f"modules (floor file stale?)", file=sys.stderr)
            failed = True
        elif percent < package_floor:
            print(f"coverage gate FAILED: package {prefix} "
                  f"{percent:.2f}% < floor {package_floor:.1f}%",
                  file=sys.stderr)
            failed = True
        else:
            print(f"coverage gate ok: package {prefix} "
                  f"{percent:.2f}% >= floor {package_floor:.1f}%")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
