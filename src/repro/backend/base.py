"""The kernel-backend interface and its parity contracts.

A backend owns the handful of numeric kernels the estimators spend
their time in. Every kernel has a *parity contract* against the numpy
reference implementation, declared in :data:`KERNELS`:

* ``rtol == 0.0`` — **bit-compatible**: the kernel is a fixed sequence
  of elementwise IEEE operations with no reductions and no
  transcendentals whose libm/SIMD implementations could differ, so any
  conforming backend must reproduce the reference bit for bit;
* ``rtol > 0.0`` — **tolerance-bounded**: the kernel contains a
  reduction (whose summation order a parallel/JIT backend may
  re-associate) or a transcendental (whose last-ulp behavior differs
  between numpy's SIMD loops and libm), so backends must agree within
  ``rtol`` relative error.

The contracts are asserted by the randomized parity suite in
``tests/backend/`` and re-asserted at the measured sizes inside
``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class KernelSpec:
    """Declared contract of one backend kernel.

    ``rtol`` bounds the allowed relative deviation from the numpy
    reference (``0.0`` means bit-compatible); ``doc`` is a one-line
    description for reports and benches.
    """

    name: str
    rtol: float
    doc: str


#: Every kernel a backend must provide, with its parity contract.
KERNELS: Dict[str, KernelSpec] = {
    spec.name: spec for spec in (
        KernelSpec(
            "rg_covariance_grid", 1e-9,
            "RG mixture pairwise-moment covariance grid (eqs. 8-13); "
            "mixture-pair reduction per grid point"),
        KernelSpec(
            "lag_reduce", 1e-10,
            "fused covariance mapping + multiplicity-weighted lag sum "
            "(eq. 17); full-grid reduction"),
        KernelSpec(
            "weighted_sum", 1e-10,
            "sum(a * b) over aligned arrays (lagsum reduce, eq. 16); "
            "full-grid reduction"),
        KernelSpec(
            "exp_lag_rho", 1e-12,
            "exponential/Gaussian (+D2D floor) correlation at lattice "
            "lags; elementwise with transcendentals"),
        KernelSpec(
            "modulate_noise", 0.0,
            "circulant-embedding spectrum modulation "
            "amplitude * (re + i*im); pure elementwise arithmetic"),
    )
}


class KernelBackend:
    """Interface every registered backend implements.

    Subclasses provide the kernels named in :data:`KERNELS` plus the
    lifecycle hooks below. All array arguments are numpy ndarrays; all
    kernels are pure functions of their inputs.
    """

    #: Registry name (``"numpy"``, ``"numba"``, ...).
    name: str = "abstract"

    # -- kernels ----------------------------------------------------------

    def rg_covariance_grid(self, alphas: np.ndarray, a: np.ndarray,
                           h: np.ndarray, k: np.ndarray, grid: np.ndarray,
                           mean_total: float) -> np.ndarray:
        """RG covariance ``C_XI(rho_L)`` on a grid of ``rho_L`` values.

        For each grid point ``rho``: the alpha-weighted sum of the
        closed-form pairwise cross moments of all mixture-component
        pairs, minus ``mean_total**2`` (paper eqs. 9-10 through the
        standardized ``(a, h, k)`` parameters). Raises
        :class:`~repro.exceptions.MomentExistenceError` when any pair's
        cross moment does not exist at some grid point.
        """
        raise NotImplementedError

    def lag_reduce(self, counts: np.ndarray, rho: np.ndarray,
                   zero_lag: Tuple[int, int], same_site: float,
                   scale: Optional[float],
                   grid: Optional[np.ndarray],
                   values: Optional[np.ndarray]) -> float:
        """Eq. (17): map lag correlations to RG covariances and reduce.

        ``cov = scale * rho`` (simplified model, ``scale`` given) or
        ``cov = interp(rho, grid, values)`` (exact mapping); the
        ``zero_lag`` entry is replaced by ``same_site`` (the eq. 11
        same-site variance); returns ``sum(counts * cov)``.
        """
        raise NotImplementedError

    def weighted_sum(self, weights: np.ndarray,
                     values: np.ndarray) -> float:
        """``sum(weights * values)`` over aligned arrays."""
        raise NotImplementedError

    def exp_lag_rho(self, x: np.ndarray, y: np.ndarray, length: float,
                    floor: float, scale: float,
                    gaussian: bool) -> np.ndarray:
        """Correlation at every ``(x_i, y_j)`` lag for the exponential /
        Gaussian families with an optional D2D floor.

        ``rho[i, j] = floor + scale * f(hypot(x_i, y_j) / length)`` with
        ``f = exp(-u)`` (exponential) or ``exp(-u**2)`` (Gaussian);
        ``floor=0, scale=1`` is the bare WID kernel.
        """
        raise NotImplementedError

    def modulate_noise(self, draws: np.ndarray,
                       amplitude: np.ndarray) -> np.ndarray:
        """Circulant-sampler spectrum modulation.

        ``draws`` is ``(count, 2, p, q)`` (real and imaginary normal
        blocks); returns the complex ``(count, p, q)`` array
        ``amplitude * (draws[:, 0] + 1j * draws[:, 1])``.
        """
        raise NotImplementedError

    # -- lifecycle --------------------------------------------------------

    def warmup(self) -> float:
        """Run every kernel once on a tiny problem; returns seconds.

        For JIT backends this triggers (or loads from cache) the
        compilation of every kernel so the first real request does not
        pay multi-second compile latency. A no-op-sized problem for
        eager backends.
        """
        import time

        start = time.perf_counter()
        alphas = np.array([0.6, 0.4])
        a = np.array([0.01, 0.02])
        h = np.array([0.1, -0.2])
        k = np.array([-1.0, -1.5])
        grid = np.linspace(-1.0, 1.0, 5)
        self.rg_covariance_grid(alphas, a, h, k, grid, 0.5)
        counts = np.arange(1.0, 10.0).reshape(3, 3)
        rho = np.linspace(0.0, 0.9, 9).reshape(3, 3)
        self.lag_reduce(counts, rho, (1, 1), 2.0, 1.5, None, None)
        self.lag_reduce(counts, rho, (1, 1), 2.0, None, grid,
                        np.linspace(-0.5, 0.5, 5))
        self.weighted_sum(counts, rho)
        self.exp_lag_rho(np.linspace(-1e-3, 1e-3, 3),
                         np.linspace(-1e-3, 1e-3, 3), 5e-4, 0.3, 0.7,
                         False)
        self.exp_lag_rho(np.linspace(-1e-3, 1e-3, 3),
                         np.linspace(-1e-3, 1e-3, 3), 5e-4, 0.0, 1.0,
                         True)
        self.modulate_noise(np.zeros((1, 2, 4, 4)), np.ones((4, 4)))
        return time.perf_counter() - start

    def set_threads(self, n_threads: int) -> int:
        """Set the kernel thread count; returns the effective value.

        The numpy backend is single-threaded per kernel call (BLAS
        threading is orthogonal and left alone), so this is a no-op
        there; the numba backend forwards to
        ``numba.set_num_threads``.
        """
        return 1

    def status(self) -> Dict[str, object]:
        """Introspection document for ``repro selfcheck`` and benches."""
        return {"name": self.name, "compiled": False, "threads": 1}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
