"""The numba backend — JIT-compiled, parallel kernels.

Importing this module requires numba (an *optional* dependency); the
registry only calls the factory after its availability probe succeeds,
so a numpy-only install never reaches this file. Kernels are
``@njit(parallel=True, cache=True)``: ``parallel=True`` threads the
outer loops via ``prange`` (thread count settable through
:meth:`NumbaBackend.set_threads`), ``cache=True`` persists compiled
machine code next to this module so only the first process ever pays
compile latency.

Parity: reductions here re-associate summation order across threads and
``exp``/``hypot`` go through libm rather than numpy's SIMD loops, so
every kernel with a reduction or transcendental matches the numpy
reference to the ``rtol`` declared in
:data:`repro.backend.base.KERNELS` rather than bit for bit;
``modulate_noise`` is pure elementwise arithmetic and stays
bit-compatible.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np
from numba import config as _numba_config
from numba import get_num_threads, njit, prange, set_num_threads

from repro.backend.base import KernelBackend
from repro.exceptions import MomentExistenceError


@njit(parallel=True, cache=True)
def _rg_covariance_grid(alphas, a, h, k, grid, mean_total):
    q = alphas.shape[0]
    values = np.empty(grid.shape[0])
    for g in prange(grid.shape[0]):
        rho = grid[g]
        rho_sq = rho * rho
        total = 0.0
        failed = False
        for i in range(q):
            one_i = 1.0 - 2.0 * a[i]
            h_sq_i = h[i] * h[i]
            row = 0.0
            for j in range(q):
                one_j = 1.0 - 2.0 * a[j]
                det = one_i * one_j - 4.0 * rho_sq * a[i] * a[j]
                if det <= 0.0:
                    failed = True
                    break
                p0 = h_sq_i * one_j + h[j] * h[j] * one_i
                p2 = 2.0 * (h_sq_i * a[j] + h[j] * h[j] * a[i])
                p1 = 2.0 * h[i] * h[j]
                quad = (p0 + rho * p1 + rho_sq * p2) / det
                cross = det ** -0.5 * math.exp(k[i] + k[j] + 0.5 * quad)
                row += alphas[j] * cross
            if failed:
                break
            total += alphas[i] * row
        # NaN marks a non-existent moment for the python wrapper (the
        # legitimate value is always finite-or-inf, never NaN).
        values[g] = np.nan if failed else total - mean_total * mean_total
    return values


@njit(parallel=True, cache=True)
def _lag_reduce_scale(counts, rho, zero_i, zero_j, same_site, scale):
    total = 0.0
    for i in prange(counts.shape[0]):
        part = 0.0
        for j in range(counts.shape[1]):
            if i == zero_i and j == zero_j:
                part += counts[i, j] * same_site
            else:
                part += counts[i, j] * (scale * rho[i, j])
        total += part
    return total


@njit(parallel=True, cache=True)
def _lag_reduce_interp(counts, rho, zero_i, zero_j, same_site, grid,
                       values):
    total = 0.0
    for i in prange(counts.shape[0]):
        cov = np.interp(rho[i], grid, values)
        if i == zero_i:
            cov[zero_j] = same_site
        part = 0.0
        for j in range(counts.shape[1]):
            part += counts[i, j] * cov[j]
        total += part
    return total


@njit(parallel=True, cache=True)
def _weighted_sum(weights, values):
    total = 0.0
    for i in prange(weights.shape[0]):
        total += weights[i] * values[i]
    return total


@njit(parallel=True, cache=True)
def _exp_lag_rho(x, y, length, floor, scale, gaussian):
    out = np.empty((x.shape[0], y.shape[0]))
    for i in prange(x.shape[0]):
        xi = x[i]
        for j in range(y.shape[0]):
            u = math.hypot(xi, y[j]) / length
            if gaussian:
                u = u * u
            out[i, j] = floor + scale * math.exp(-u)
    return out


@njit(parallel=True, cache=True)
def _modulate_noise(draws, amplitude):
    count = draws.shape[0]
    p = draws.shape[2]
    q = draws.shape[3]
    out = np.empty((count, p, q), dtype=np.complex128)
    for c in prange(count):
        for i in range(p):
            for j in range(q):
                amp = amplitude[i, j]
                out[c, i, j] = complex(amp * draws[c, 0, i, j],
                                       amp * draws[c, 1, i, j])
    return out


class NumbaBackend(KernelBackend):
    """JIT kernels behind the standard backend interface."""

    name = "numba"

    def rg_covariance_grid(self, alphas: np.ndarray, a: np.ndarray,
                           h: np.ndarray, k: np.ndarray, grid: np.ndarray,
                           mean_total: float) -> np.ndarray:
        values = _rg_covariance_grid(
            np.ascontiguousarray(alphas, dtype=np.float64),
            np.ascontiguousarray(a, dtype=np.float64),
            np.ascontiguousarray(h, dtype=np.float64),
            np.ascontiguousarray(k, dtype=np.float64),
            np.ascontiguousarray(grid, dtype=np.float64),
            float(mean_total))
        missing = np.isnan(values)
        if missing.any():
            bad = int(np.argmax(missing))
            raise MomentExistenceError(
                "pairwise cross moment does not exist at "
                f"rho_L = {grid[bad]:.3f}")
        return values

    def lag_reduce(self, counts: np.ndarray, rho: np.ndarray,
                   zero_lag: Tuple[int, int], same_site: float,
                   scale: Optional[float],
                   grid: Optional[np.ndarray],
                   values: Optional[np.ndarray]) -> float:
        counts = np.ascontiguousarray(counts, dtype=np.float64)
        rho = np.ascontiguousarray(rho, dtype=np.float64)
        zero_i, zero_j = int(zero_lag[0]), int(zero_lag[1])
        if scale is not None:
            return float(_lag_reduce_scale(
                counts, rho, zero_i, zero_j, float(same_site),
                float(scale)))
        return float(_lag_reduce_interp(
            counts, rho, zero_i, zero_j, float(same_site),
            np.ascontiguousarray(grid, dtype=np.float64),
            np.ascontiguousarray(values, dtype=np.float64)))

    def weighted_sum(self, weights: np.ndarray,
                     values: np.ndarray) -> float:
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        return float(_weighted_sum(weights.reshape(-1),
                                   values.reshape(-1)))

    def exp_lag_rho(self, x: np.ndarray, y: np.ndarray, length: float,
                    floor: float, scale: float,
                    gaussian: bool) -> np.ndarray:
        return _exp_lag_rho(
            np.ascontiguousarray(x, dtype=np.float64),
            np.ascontiguousarray(y, dtype=np.float64),
            float(length), float(floor), float(scale), bool(gaussian))

    def modulate_noise(self, draws: np.ndarray,
                       amplitude: np.ndarray) -> np.ndarray:
        return _modulate_noise(
            np.ascontiguousarray(draws, dtype=np.float64),
            np.ascontiguousarray(amplitude, dtype=np.float64))

    def set_threads(self, n_threads: int) -> int:
        limit = int(_numba_config.NUMBA_NUM_THREADS)
        if n_threads <= 0:
            n_threads = limit
        set_num_threads(min(int(n_threads), limit))
        return int(get_num_threads())

    def status(self) -> Dict[str, object]:
        import numba

        return {
            "name": self.name,
            "compiled": True,
            "threads": int(get_num_threads()),
            "max_threads": int(_numba_config.NUMBA_NUM_THREADS),
            "numba": numba.__version__,
            "compile_cache": compile_cache_status(),
        }


def compile_cache_status() -> Dict[str, object]:
    """Report the on-disk ``cache=True`` artifact state for this module.

    ``entries`` counts persisted machine-code files; ``warm`` is True
    once at least one kernel has a cached compilation, meaning future
    processes load instead of compiling.
    """
    cache_dir = Path(__file__).resolve().parent / "__pycache__"
    stem = Path(__file__).stem
    entries = sorted(p.name for p in cache_dir.glob(f"{stem}*.nb[ci]")) \
        if cache_dir.is_dir() else []
    return {"directory": str(cache_dir), "entries": len(entries),
            "warm": any(name.endswith(".nbc") for name in entries)}
