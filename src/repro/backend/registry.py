"""Registry-based backend dispatch.

Backends register a *factory* plus an *availability probe*; nothing is
imported (and no JIT toolchain touched) until a backend is actually
resolved. Resolution order for :func:`get_backend` /
:func:`resolve_backend_name`:

1. the explicit ``backend=...`` argument,
2. a process-wide default installed with :func:`set_default_backend`
   (the CLI ``--backend`` flag uses this),
3. the ``REPRO_BACKEND`` environment variable (read at resolution time,
   not import time, so tests and subprocesses can toggle it),
4. ``"numpy"``.

A registered-but-unavailable request (numba not installed) falls back
to numpy with a one-time log line on the ``repro.backend`` logger — a
missing optional dependency never breaks an entry point. An *unknown*
explicit name raises :class:`~repro.exceptions.ConfigurationError`
(typo protection); an unknown name arriving via the environment only
warns and falls back, so a stale env var cannot brick the CLI.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Callable, Dict, Optional, Tuple, Union

from repro.backend.base import KernelBackend
from repro.exceptions import ConfigurationError

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendUnavailable",
    "available_backends",
    "backend_status",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend_name",
    "set_default_backend",
    "set_threads",
    "warmup_backend",
]

#: Environment variable naming the default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_FALLBACK = "numpy"

logger = logging.getLogger("repro.backend")


class BackendUnavailable(ConfigurationError):
    """Raised by factories/probes when a backend cannot be constructed."""


_lock = threading.Lock()
_factories: Dict[str, Callable[[], KernelBackend]] = {}
_probes: Dict[str, Callable[[], bool]] = {}
_instances: Dict[str, KernelBackend] = {}
_default_override: Optional[str] = None
_warned: set = set()


def register_backend(name: str, factory: Callable[[], KernelBackend],
                     available: Optional[Callable[[], bool]] = None) -> None:
    """Register ``factory`` under ``name``.

    ``available`` is a cheap probe (e.g. an ``importlib`` spec check)
    called before the factory; omitted means always available.
    Re-registering a name replaces it and drops any cached instance.
    """
    with _lock:
        _factories[name] = factory
        _probes[name] = available if available is not None else lambda: True
        _instances.pop(name, None)
        _warned.discard(name)


def registered_backends() -> Tuple[str, ...]:
    """All registered backend names, available or not."""
    with _lock:
        return tuple(sorted(_factories))


def available_backends() -> Tuple[str, ...]:
    """Registered backends whose availability probe passes right now."""
    with _lock:
        names = sorted(_factories)
        probes = dict(_probes)
    return tuple(n for n in names if _probe(probes[n]))


def _probe(probe: Callable[[], bool]) -> bool:
    try:
        return bool(probe())
    except Exception:
        return False


def set_default_backend(name: Optional[str]) -> Optional[str]:
    """Install a process-wide default (``None`` resets to env/numpy).

    Returns the previous override. The name must be registered;
    availability is still checked lazily at resolution so setting
    ``"numba"`` on a numpy-only install keeps the graceful fallback.
    """
    global _default_override
    with _lock:
        if name is not None and name not in _factories:
            raise ConfigurationError(
                f"unknown backend {name!r}; registered: "
                f"{', '.join(sorted(_factories))}")
        previous = _default_override
        _default_override = name
    return previous


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve a request to the backend name that would actually run.

    Applies the documented precedence (argument > process default >
    ``REPRO_BACKEND`` > numpy) *and* the graceful-fallback rule, so the
    returned name is always available. Unknown explicit names raise;
    unknown environment values warn once and fall back.
    """
    explicit = name if name is not None else _default_override
    if explicit is not None:
        if explicit not in _factories:
            raise ConfigurationError(
                f"unknown backend {explicit!r}; registered: "
                f"{', '.join(registered_backends())}")
        requested = explicit
    else:
        env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        if env and env not in _factories:
            _warn_once(
                env,
                f"{BACKEND_ENV_VAR}={env!r} names an unknown backend "
                f"(registered: {', '.join(registered_backends())}); "
                f"using {_FALLBACK!r}")
            return _FALLBACK
        requested = env or _FALLBACK
    if requested != _FALLBACK and not _probe(_probes[requested]):
        _warn_once(
            requested,
            f"backend {requested!r} requested but unavailable "
            f"(optional dependency not installed); falling back to "
            f"{_FALLBACK!r}")
        return _FALLBACK
    return requested


def _warn_once(key: str, message: str) -> None:
    with _lock:
        if key in _warned:
            return
        _warned.add(key)
    logger.warning(message)


def get_backend(
        backend: Optional[Union[str, KernelBackend]] = None) -> KernelBackend:
    """Return a ready :class:`KernelBackend` instance.

    Accepts a backend name, ``None`` (resolve via precedence), or an
    already-constructed instance (returned unchanged — lets plumbing
    resolve once and pass the object down). Instances are cached per
    name; construction failures degrade to numpy with a one-time log.
    """
    if isinstance(backend, KernelBackend):
        return backend
    name = resolve_backend_name(backend)
    with _lock:
        instance = _instances.get(name)
        if instance is not None:
            return instance
        factory = _factories[name]
    try:
        instance = factory()
    except Exception as exc:
        if name == _FALLBACK:
            raise
        _warn_once(name, f"backend {name!r} failed to initialise "
                         f"({exc}); falling back to {_FALLBACK!r}")
        return get_backend(_FALLBACK)
    with _lock:
        instance = _instances.setdefault(name, instance)
    return instance


def set_threads(n_threads: int,
                backend: Optional[Union[str, KernelBackend]] = None) -> int:
    """Set the kernel thread count on the resolved backend.

    Returns the effective count (always 1 on the numpy backend).
    """
    return get_backend(backend).set_threads(n_threads)


def warmup_backend(
        backend: Optional[Union[str, KernelBackend]] = None,
) -> Tuple[str, float]:
    """Resolve a backend and run every kernel once on tiny inputs.

    On the numba backend this triggers JIT compilation (or loads the
    on-disk compile cache), so the first real request never pays it;
    on numpy it costs microseconds. Returns ``(name, seconds)``. The
    HTTP server calls this at bind time and ``repro serve`` reports
    the result.
    """
    instance = get_backend(backend)
    return instance.name, instance.warmup()


def backend_status() -> Dict[str, Dict[str, object]]:
    """Status document for every registered backend.

    Per backend: availability, whether an instance is live, and the
    instance's own :meth:`KernelBackend.status` when constructed. Used
    by ``repro selfcheck`` and the kernel bench.
    """
    with _lock:
        names = sorted(_factories)
        probes = dict(_probes)
        live = dict(_instances)
    active = resolve_backend_name()
    report: Dict[str, Dict[str, object]] = {}
    for name in names:
        entry: Dict[str, object] = {
            "available": _probe(probes[name]),
            "active": name == active,
            "initialised": name in live,
        }
        if name in live:
            entry["status"] = live[name].status()
        report[name] = entry
    return report


def _numpy_factory() -> KernelBackend:
    from repro.backend.numpy_backend import NumpyBackend

    return NumpyBackend()


def _numba_available() -> bool:
    import importlib.util

    return importlib.util.find_spec("numba") is not None


def _numba_factory() -> KernelBackend:
    if not _numba_available():
        raise BackendUnavailable("numba is not installed")
    from repro.backend.numba_backend import NumbaBackend

    return NumbaBackend()


register_backend("numpy", _numpy_factory)
register_backend("numba", _numba_factory, available=_numba_available)
