"""The numpy reference backend — the default, bit-identical to the
historical inline estimator code.

Every kernel here is the exact sequence of array operations the
estimators performed before the backend layer existed (the elementwise
expressions, the ufunc order, the reductions), so routing through this
backend is a pure refactor: all results match the pre-backend code bit
for bit. The one structural change — the Random-Gate covariance grid is
evaluated in batched chunks over the ``rho_L`` grid instead of one
python-loop iteration per point — preserves bit-identity because every
operation stays elementwise over the same operand values and the final
``alphas @ cross @ alphas`` contraction still runs per grid point on a
contiguous ``(q, q)`` slice.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.backend.base import KernelBackend
from repro.exceptions import MomentExistenceError

#: Bound on ``chunk * q * q`` elements per batched covariance-grid
#: temporary (~32 MiB of float64), keeping peak memory flat no matter
#: how fine the rho grid or how large the mixture.
_GRID_CHUNK_ELEMENTS = 1 << 22


class NumpyBackend(KernelBackend):
    """Pure-numpy kernels; the reference for every parity contract."""

    name = "numpy"

    def rg_covariance_grid(self, alphas: np.ndarray, a: np.ndarray,
                           h: np.ndarray, k: np.ndarray, grid: np.ndarray,
                           mean_total: float) -> np.ndarray:
        # Pairwise building blocks, computed once (q x q each) — exactly
        # the precomputation the historical loop hoisted.
        one = 1.0 - 2.0 * a
        d0 = np.outer(one, one)
        aa = np.outer(a, a)
        h_sq = h * h
        p0 = h_sq[:, None] * one[None, :] + h_sq[None, :] * one[:, None]
        p2 = 2.0 * (h_sq[:, None] * a[None, :] + h_sq[None, :] * a[:, None])
        p1 = 2.0 * np.outer(h, h)
        k_sum = k[:, None] + k[None, :]

        q = alphas.shape[0]
        values = np.empty_like(grid)
        chunk = max(1, _GRID_CHUNK_ELEMENTS // max(1, q * q))
        for start in range(0, grid.shape[0], chunk):
            rho = grid[start:start + chunk]
            # (4*rho)*rho == 4*(rho*rho) exactly: scaling by a power of
            # two commutes with IEEE rounding, so the batched form below
            # matches the historical per-scalar "4.0 * rho * rho * aa".
            rho_sq = rho * rho
            det = d0[None] - (4.0 * rho_sq)[:, None, None] * aa[None]
            exists = det > 0
            if not exists.all():
                bad = int(np.argmin(exists.all(axis=(1, 2))))
                raise MomentExistenceError(
                    "pairwise cross moment does not exist at "
                    f"rho_L = {grid[start + bad]:.3f}")
            quad = (p0[None] + rho[:, None, None] * p1[None]
                    + rho_sq[:, None, None] * p2[None]) / det
            cross = det ** -0.5 * np.exp(k_sum[None] + 0.5 * quad)
            for offset in range(rho.shape[0]):
                values[start + offset] = float(
                    alphas @ cross[offset] @ alphas) - mean_total ** 2
        return values

    def lag_reduce(self, counts: np.ndarray, rho: np.ndarray,
                   zero_lag: Tuple[int, int], same_site: float,
                   scale: Optional[float],
                   grid: Optional[np.ndarray],
                   values: Optional[np.ndarray]) -> float:
        rho = np.asarray(rho, dtype=float)
        if scale is not None:
            cov = scale * rho
        else:
            cov = np.interp(rho, grid, values)
        cov[zero_lag] = same_site
        return float(np.sum(counts * cov))

    def weighted_sum(self, weights: np.ndarray,
                     values: np.ndarray) -> float:
        return float((weights * values).sum())

    def exp_lag_rho(self, x: np.ndarray, y: np.ndarray, length: float,
                    floor: float, scale: float,
                    gaussian: bool) -> np.ndarray:
        dx = np.asarray(x, dtype=float)[:, None]
        dy = np.asarray(y, dtype=float)[None, :]
        distance = np.hypot(dx, dy)
        if gaussian:
            base = np.exp(-((distance / length) ** 2))
        else:
            base = np.exp(-distance / length)
        if floor == 0.0 and scale == 1.0:
            return base
        return floor + scale * base

    def modulate_noise(self, draws: np.ndarray,
                       amplitude: np.ndarray) -> np.ndarray:
        noise = draws[:, 0] + 1j * draws[:, 1]
        return amplitude[None] * noise

    def status(self) -> Dict[str, object]:
        return {"name": self.name, "compiled": False, "threads": 1,
                "numpy": np.__version__}
