"""Mapping model objects onto backend kernels.

The ``exp_lag_rho`` kernel covers the exponential / Gaussian WID
families (optionally wrapped in a D2D floor or a constant scale) — the
models every paper experiment uses. :func:`lattice_rho` recognises
those shapes structurally and routes them to the backend; anything else
(composite, anisotropic, user-defined) falls back to the model's own
``evaluate_xy``, which is always correct, just not acceleratable.

Recognition is deliberately exact-type-based: a subclass overriding
``_evaluate`` must not be silently replaced by the stock kernel.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend.base import KernelBackend


def kernel_family(correlation) -> Optional[Tuple[float, float, float, bool]]:
    """``(length, floor, scale, gaussian)`` when ``correlation`` is a
    recognised exponential/Gaussian shape, else ``None``.

    The parameters reproduce the model's own arithmetic exactly:
    ``rho = floor + scale * f(d / length)`` with the same scalar
    ``scale`` the model would multiply by, so the numpy backend stays
    bit-identical to ``evaluate_xy``.
    """
    from repro.process.correlation import (
        ExponentialCorrelation,
        GaussianCorrelation,
        ScaledCorrelation,
        TotalCorrelation,
    )

    kind = type(correlation)
    if kind is ExponentialCorrelation:
        return (correlation.length, 0.0, 1.0, False)
    if kind is GaussianCorrelation:
        return (correlation.length, 0.0, 1.0, True)
    if kind is TotalCorrelation:
        wid = type(correlation.wid)
        if wid is ExponentialCorrelation:
            return (correlation.wid.length, correlation.rho_floor,
                    1.0 - correlation.rho_floor, False)
        if wid is GaussianCorrelation:
            return (correlation.wid.length, correlation.rho_floor,
                    1.0 - correlation.rho_floor, True)
        return None
    if kind is ScaledCorrelation:
        base = type(correlation.base)
        if base is ExponentialCorrelation:
            return (correlation.base.length, 0.0, correlation.scale, False)
        if base is GaussianCorrelation:
            return (correlation.base.length, 0.0, correlation.scale, True)
        return None
    return None


def lattice_rho(backend: KernelBackend, correlation, dx: np.ndarray,
                dy: np.ndarray, dx_axis: int = 0) -> np.ndarray:
    """Correlation at every lattice lag ``(dx_i, dy_j)``.

    ``dx``/``dy`` are the 1-D physical x/y lag arrays; ``dx_axis`` says
    which output axis the x lags vary along (the linear estimator puts
    them on axis 0, the lagsum estimator on axis 1). Routes recognised
    families through ``backend.exp_lag_rho`` — exact regardless of axis
    order because the lag metric is ``hypot``, symmetric in its
    arguments — while other models (e.g. anisotropic) evaluate through
    their own ``evaluate_xy`` broadcast with the axes mapped correctly.
    """
    family = kernel_family(correlation)
    if family is None:
        dx = np.asarray(dx, dtype=float)
        dy = np.asarray(dy, dtype=float)
        if dx_axis == 0:
            return correlation.evaluate_xy(dx[:, None], dy[None, :])
        return correlation.evaluate_xy(dx[None, :], dy[:, None])
    length, floor, scale, gaussian = family
    first, second = (dx, dy) if dx_axis == 0 else (dy, dx)
    return backend.exp_lag_rho(first, second, length, floor, scale,
                               gaussian)
