"""Pluggable compiled-kernel backends for the estimator hot paths.

The numeric kernels that dominate estimation time — the Random-Gate
mixture covariance grid (eqs. 8-13), the lag-weighted reductions of the
linear and fast-exact estimators (eqs. 16-17), and the modulation step
of batched circulant field sampling — live behind a small backend
interface instead of being inlined in the estimators:

* :class:`~repro.backend.numpy_backend.NumpyBackend` (``"numpy"``) —
  the default and the *reference*: a pure refactor of the historical
  inline code, bit-identical to it.
* :class:`~repro.backend.numba_backend.NumbaBackend` (``"numba"``) —
  optional, JIT-compiled ``@njit(parallel=True, cache=True)`` kernels
  with a :func:`set_threads` knob. Reductions re-associate under
  parallelism, so its parity contract is ``rtol``-bounded rather than
  bitwise (see :data:`~repro.backend.base.KERNELS`).

Selection: pass ``backend="numba"`` to ``estimate()`` /
``estimate_sweep()`` / ``exact_moments()``, or set the
``REPRO_BACKEND`` environment variable. Requesting an unavailable
backend falls back to numpy with a one-time log line — a missing
optional dependency never breaks an entry point. Dispatch is
registry-based (:mod:`repro.backend.registry`), so a future GPU or
C-extension backend is a new module plus one ``register_backend``
call, not a refactor.

See ``docs/PERFORMANCE.md`` for selection, threading, expected
speedups, and the per-kernel parity guarantees.
"""

from __future__ import annotations

from repro.backend.base import KERNELS, KernelBackend, KernelSpec
from repro.backend.dispatch import kernel_family, lattice_rho
from repro.backend.registry import (
    BackendUnavailable,
    available_backends,
    backend_status,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend_name,
    set_default_backend,
    set_threads,
    warmup_backend,
)

__all__ = [
    "KERNELS",
    "KernelBackend",
    "KernelSpec",
    "BackendUnavailable",
    "available_backends",
    "backend_status",
    "get_backend",
    "kernel_family",
    "lattice_rho",
    "register_backend",
    "registered_backends",
    "resolve_backend_name",
    "set_default_backend",
    "set_threads",
    "warmup_backend",
]
