"""Installation self-check.

``python -m repro selfcheck`` runs a condensed version of the validation
chain — device physics, solver consistency, moment mathematics,
estimator equivalences, and a miniature end-to-end Monte-Carlo
cross-check — and prints one PASS/FAIL line per property. It takes a few
seconds and requires nothing beyond the installed package; use it to
confirm an environment before trusting real estimates from it.
"""

from __future__ import annotations

import math
import os
from typing import Callable, List, Tuple

import numpy as np


def _selfcheck_pool_task(state, payload):
    """Worker task for the supervisor property (module-level so spawn
    start methods can import it): doubles the value, but dies hard on
    the first delivery of a payload marked ``die``."""
    from repro.parallel import process_worker_context

    if payload.get("die"):
        context = process_worker_context()
        if context is not None and context.attempt <= 1:
            os._exit(17)
    return payload["value"] * 2


def _checks() -> List[Tuple[str, Callable[[], bool]]]:
    from repro.cells import build_library
    from repro.characterization import (
        characterize_library,
        mgf_moments,
        moments_numeric,
    )
    from repro.core import (
        CellUsage,
        FullChipModel,
        RandomGate,
        RGCorrelation,
        expand_mixture,
    )
    from repro.core.estimators import integral2d_variance, linear_variance
    from repro.devices import DeviceModel, NMOS
    from repro.process import synthetic_90nm

    technology = synthetic_90nm(correlation_length=0.5e-3)
    model = DeviceModel(technology)
    library = build_library()
    l_nom = technology.length.nominal

    def check_library() -> bool:
        return len(library) == 62 and library.total_states() > 400

    def check_device_physics() -> bool:
        lengths = np.linspace(0.9, 1.1, 5) * l_nom
        ioff = model.off_current(NMOS, lengths, technology.min_width)
        return bool(np.all(np.diff(ioff) < 0) and np.all(ioff > 0))

    def check_stack_effect() -> bool:
        from repro.spice import state_leakage
        nand = library["NAND2_X1"]
        by_label = {s.label: s for s in nand.states}
        stacked = float(state_leakage(nand.netlist,
                                      by_label["I0=0,I1=0"].nodes, model,
                                      l_nom)[0])
        single = float(state_leakage(nand.netlist,
                                     by_label["I0=1,I1=0"].nodes, model,
                                     l_nom)[0])
        return stacked < 0.5 * single

    characterization = characterize_library(
        library, technology, cells=["INV_X1", "NAND2_X1", "NOR2_X1"])

    def check_moments() -> bool:
        fit = characterization["NAND2_X1"].states[0].fit
        closed = mgf_moments(fit.a, fit.b, fit.c, l_nom,
                             technology.length.sigma)
        numeric = moments_numeric(fit.a, fit.b, fit.c, l_nom,
                                  technology.length.sigma)
        return (abs(closed[0] / numeric[0] - 1) < 1e-6
                and abs(closed[1] / numeric[1] - 1) < 1e-4)

    usage = CellUsage({"INV_X1": 0.4, "NAND2_X1": 0.4, "NOR2_X1": 0.2})
    rg = RandomGate(expand_mixture(characterization, usage, 0.5))
    rgc = RGCorrelation(rg, l_nom, technology.length.sigma)
    correlation = technology.total_correlation

    def check_linear_is_exact() -> bool:
        chip = FullChipModel(n_cells=144, width=6e-5, height=6e-5,
                             rows=12, cols=12)
        positions = chip.site_positions()
        delta = positions[:, None, :] - positions[None, :, :]
        cov = rgc.covariance(
            correlation.evaluate_xy(delta[..., 0], delta[..., 1]))
        np.fill_diagonal(cov, rgc.same_site_covariance)
        brute = float(cov.sum())
        linear = linear_variance(12, 12, chip.pitch_x, chip.pitch_y,
                                 correlation, rgc)
        return abs(linear / brute - 1) < 1e-10

    def check_integral_converges() -> bool:
        side, die = 120, 120 * 2e-6
        linear = linear_variance(side, side, die / side, die / side,
                                 correlation, rgc)
        integral = integral2d_variance(side * side, die, die, correlation,
                                       rgc)
        return abs(math.sqrt(integral) / math.sqrt(linear) - 1) < 0.01

    def check_monte_carlo() -> bool:
        from repro.analysis import chip_monte_carlo, realize_design
        from repro.circuits import grid_placement, random_circuit
        from repro.core import FullChipLeakageEstimator

        rng = np.random.default_rng(7)
        netlist = random_circuit(library, usage, 400, rng=rng)
        grid_placement(netlist, 8e-5, 8e-5, rng=rng)
        realization = realize_design(netlist, characterization, rng=rng)
        mc = chip_monte_carlo(realization, technology, n_samples=1500,
                              rng=rng)
        estimate = FullChipLeakageEstimator(
            characterization, usage, 400, 8e-5, 8e-5).estimate("linear")
        return (abs(estimate.mean / mc.mean - 1) < 0.10
                and abs(estimate.std / mc.std - 1) < 0.25)

    def check_delta_engine() -> bool:
        from repro.core import FullChipLeakageEstimator
        from repro.delta import (
            DELTA_MEAN_RTOL,
            DELTA_STD_RTOL,
            BaseEstimate,
            CellSwapEdit,
            estimate_delta,
        )

        base = BaseEstimate.build(characterization, usage, 400, 8e-5, 8e-5)
        edit = CellSwapEdit(from_cell="INV_X1", to_cell="NOR2_X1",
                            fraction=0.05)
        delta = estimate_delta(base, edit)
        fractions = dict(base.fractions)
        edit.apply(fractions, base.chip.n_cells)
        fresh = FullChipLeakageEstimator(
            characterization, CellUsage(fractions), 400, 8e-5,
            8e-5).estimate("linear")
        return (math.isclose(delta.mean, fresh.mean,
                             rel_tol=DELTA_MEAN_RTOL)
                and math.isclose(delta.std, fresh.std,
                                 rel_tol=DELTA_STD_RTOL)
                and delta.details["delta"]["moments_recomputed"] > 0)

    def check_result_cache() -> bool:
        from repro.service.cache import MISS, TIER_ESTIMATE, ResultCache

        cache = ResultCache(max_entries=4)
        cache.put(TIER_ESTIMATE, "selfcheck",
                  {"mean": 1.0}, payload={"mean": 1.0})
        hit = cache.get(TIER_ESTIMATE, "selfcheck")
        miss = cache.get(TIER_ESTIMATE, "absent")
        stats = cache.stats()[TIER_ESTIMATE]
        return (hit == {"mean": 1.0} and miss is MISS
                and stats["entries"] == 1 and stats["bytes"] > 0
                and stats["hits"] == 1 and stats["misses"] == 1)

    def check_sharded_cache() -> bool:
        import tempfile
        import threading

        from repro.service.cache import TIER_ESTIMATE, ShardedResultCache

        with tempfile.TemporaryDirectory() as root:
            # Two cache instances over one directory stand in for two
            # processes: flock serializes their per-shard writes.
            writers = [ShardedResultCache(max_entries=128, persist_dir=root)
                       for _ in range(2)]
            errors: List[Exception] = []

            def write(cache, offset) -> None:
                try:
                    for i in range(24):
                        n = offset * 24 + i
                        cache.put(TIER_ESTIMATE, f"k{n:03d}", {"value": n},
                                  payload={"value": n})
                except Exception as exc:  # noqa: BLE001 - checked below
                    errors.append(exc)

            threads = [threading.Thread(target=write,
                                        args=(writers[j % 2], j))
                       for j in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # A restarted reader trusts only what rebuild() verified.
            reader = ShardedResultCache(max_entries=128, persist_dir=root)
            report = reader.rebuild()
            good = (not errors and report["valid"] == 96
                    and report["quarantined"] == 0)
            for n in range(96):
                good = good and (reader.get(TIER_ESTIMATE, f"k{n:03d}")
                                 == {"value": n})
            return good

    def check_process_supervisor() -> bool:
        from repro.parallel import ProcessWorkerPool

        pool = ProcessWorkerPool(
            _selfcheck_pool_task, n_workers=1, name="selfcheck-pool",
            heartbeat_interval=0.02, heartbeat_timeout=1.0,
            restart_backoff=0.01, max_backoff=0.1, init_timeout=60.0)
        try:
            before = pool.run({"die": False, "value": 3}, timeout=30.0)
            # The first delivery kills the worker; supervision restarts
            # it and requeues the task, whose second delivery computes.
            killed = pool.run({"die": True, "value": 5}, timeout=60.0)
            after = pool.run({"die": False, "value": 7}, timeout=30.0)
            return (before == 6 and killed == 10 and after == 14
                    and pool.restarts >= 1)
        finally:
            pool.stop()

    def check_backend() -> bool:
        from repro.backend import get_backend, warmup_backend

        name, _ = warmup_backend()
        kernels = get_backend()
        weights = np.array([[1.0, 2.0], [3.0, 4.0]])
        values = np.array([[0.5, -0.25], [0.125, 1.0]])
        reduced = kernels.weighted_sum(weights, values)
        return (kernels.name == name
                and abs(reduced - float((weights * values).sum())) < 1e-12)

    return [
        ("active kernel backend warms up and reduces correctly",
         check_backend),
        ("62-cell library builds with full state coverage", check_library),
        ("device leakage decreases with channel length", check_device_physics),
        ("stack effect suppresses series-OFF leakage", check_stack_effect),
        ("closed-form moments match numerical integration", check_moments),
        ("linear-time transform is exact on site grids", check_linear_is_exact),
        ("constant-time integral converges to the transform",
         check_integral_converges),
        ("estimator agrees with full-chip Monte Carlo", check_monte_carlo),
        ("delta engine matches a fresh estimate within tolerance",
         check_delta_engine),
        ("result cache accounts entries, bytes, and hit/miss traffic",
         check_result_cache),
        ("sharded cache round-trips under concurrent writers",
         check_sharded_cache),
        ("process supervisor restarts a killed worker and requeues",
         check_process_supervisor),
    ]


def _backend_lines() -> List[str]:
    """Human-readable kernel-backend report for the selfcheck header.

    Never fails the selfcheck: a missing optional backend (numba not
    installed) is reported, not treated as an error.
    """
    from repro.backend import backend_status, resolve_backend_name

    lines = [f"kernel backend: {resolve_backend_name()} (active)"]
    for name, entry in sorted(backend_status().items()):
        detail = "available" if entry["available"] else "not installed"
        status = entry.get("status")
        if isinstance(status, dict):
            cache = status.get("compile_cache")
            if isinstance(cache, dict):
                detail += (", compile cache "
                           + ("warm" if cache.get("warm") else "cold")
                           + f" ({cache.get('entries', 0)} entries)")
            threads = status.get("threads")
            if threads is not None:
                detail += f", {threads} thread(s)"
        lines.append(f"  backend {name}: {detail}")
    return lines


def run_selfcheck(verbose: bool = True) -> bool:
    """Run all checks; returns True iff every property holds."""
    if verbose:
        for line in _backend_lines():
            print(line)
    all_good = True
    for label, check in _checks():
        try:
            good = bool(check())
        except Exception as exc:  # a crash is a failure with a reason
            good = False
            label = f"{label} ({type(exc).__name__}: {exc})"
        all_good &= good
        if verbose:
            print(f"[{'PASS' if good else 'FAIL'}] {label}")
    if verbose:
        print("self-check:", "OK" if all_good else "FAILED")
    return all_good
