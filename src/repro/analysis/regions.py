"""Region-level leakage decomposition.

Power-delivery and thermal planning need more than the chip total: they
need the expected leakage *per region* and how regions co-vary (a die
whose left half runs hot leaks more on that half on the same dies). The
Random-Gate machinery yields this directly: partition the site grid into
``by x bx`` equal blocks; block means are proportional to site counts,
and the block-to-block covariance is the same distance-lag sum as the
paper's eq. (17), restricted to site pairs spanning the two blocks.

Because all blocks are congruent and the site grid is uniform, the
covariance depends only on the *block offset*; each distinct offset is a
cross-window lag sum with triangular lag counts — the cross-correlation
of two boxcar windows — so the whole map costs O((bx*by) + offsets *
block_sites), not O(n^2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.chip_model import FullChipModel
from repro.core.random_gate import RandomGate
from repro.core.rg_correlation import RGCorrelation
from repro.exceptions import EstimationError
from repro.process.correlation import SpatialCorrelation


@dataclass(frozen=True)
class RegionLeakageMap:
    """Block decomposition of full-chip leakage statistics.

    Attributes
    ----------
    block_rows / block_cols:
        Grid of blocks (``by`` x ``bx``).
    means:
        Expected block leakage [A], shape ``(by, bx)``.
    covariance:
        Block covariance matrix, shape ``(by*bx, by*bx)`` in row-major
        block order [A^2].
    """

    block_rows: int
    block_cols: int
    means: np.ndarray
    covariance: np.ndarray

    @property
    def stds(self) -> np.ndarray:
        """Per-block standard deviation [A], shape ``(by, bx)``."""
        return np.sqrt(np.diag(self.covariance)).reshape(
            self.block_rows, self.block_cols)

    @property
    def total_mean(self) -> float:
        return float(self.means.sum())

    @property
    def total_std(self) -> float:
        return float(math.sqrt(self.covariance.sum()))

    def correlation_matrix(self) -> np.ndarray:
        """Block-to-block leakage correlation matrix."""
        stds = np.sqrt(np.diag(self.covariance))
        return self.covariance / np.outer(stds, stds)

    def worst_block(self) -> Tuple[int, int]:
        """(row, col) of the block with the largest 3-sigma leakage."""
        corner = self.means + 3.0 * self.stds
        index = int(np.argmax(corner))
        return divmod(index, self.block_cols)

    def sample(self, n_samples: int, rng=None) -> np.ndarray:
        """Joint block-leakage samples, shape ``(n_samples, by*bx)`` [A].

        Draws from the multivariate normal defined by the block means
        and covariance — the joint view that per-block marginals cannot
        give (e.g. "how often does *any* block exceed its budget?").
        """
        if n_samples <= 0:
            raise EstimationError(
                f"n_samples must be positive, got {n_samples!r}")
        rng = np.random.default_rng() if rng is None else rng
        return rng.multivariate_normal(
            self.means.ravel(), self.covariance, size=n_samples,
            method="eigh")

    def hotspot_exceedance(self, block_budget: float,
                           n_samples: int = 20_000, rng=None) -> float:
        """P(max block leakage > block_budget) by joint sampling.

        Because blocks are strongly positively correlated, this is far
        below the union bound of the per-block exceedances — the
        quantity a per-region power budget actually needs.
        """
        if block_budget <= 0:
            raise EstimationError(
                f"block_budget must be positive, got {block_budget!r}")
        samples = self.sample(n_samples, rng)
        return float(np.mean(samples.max(axis=1) > block_budget))


def region_leakage_map(
    chip: FullChipModel,
    random_gate: RandomGate,
    rg_correlation: RGCorrelation,
    correlation: SpatialCorrelation,
    block_rows: int,
    block_cols: int,
) -> RegionLeakageMap:
    """Compute the block-level leakage map of an RG chip model.

    The site grid must divide evenly into the requested blocks.
    """
    if chip.rows % block_rows or chip.cols % block_cols:
        raise EstimationError(
            f"site grid {chip.rows}x{chip.cols} does not divide into "
            f"{block_rows}x{block_cols} blocks")
    sites_y = chip.rows // block_rows
    sites_x = chip.cols // block_cols
    sites_per_block = sites_x * sites_y

    means = np.full((block_rows, block_cols),
                    sites_per_block * random_gate.mean)

    # Lag-count vectors for one pair of blocks at offset (dbx, dby):
    # triangular windows centred at the offset in site units.
    def lag_counts(n_sites: int, block_offset: int) -> np.ndarray:
        center = block_offset * n_sites
        lags = np.arange(center - (n_sites - 1), center + n_sites)
        return lags, np.maximum(0, n_sites - np.abs(lags - center))

    # Covariance per distinct block offset.
    cov_by_offset = {}
    for dby in range(-(block_rows - 1), block_rows):
        lags_y, counts_y = lag_counts(sites_y, dby)
        y = lags_y * chip.pitch_y
        for dbx in range(-(block_cols - 1), block_cols):
            lags_x, counts_x = lag_counts(sites_x, dbx)
            x = lags_x * chip.pitch_x
            cov = rg_correlation.covariance(
                correlation.evaluate_xy(x[:, None], y[None, :]))
            if dbx == 0 and dby == 0:
                zero_x = sites_x - 1
                zero_y = sites_y - 1
                cov[zero_x, zero_y] = rg_correlation.same_site_covariance
            weighted = counts_x[:, None] * counts_y[None, :] * cov
            cov_by_offset[(dbx, dby)] = float(weighted.sum())

    n_blocks = block_rows * block_cols
    covariance = np.empty((n_blocks, n_blocks))
    for a in range(n_blocks):
        ay, ax = divmod(a, block_cols)
        for b in range(n_blocks):
            by, bx = divmod(b, block_cols)
            covariance[a, b] = cov_by_offset[(bx - ax, by - ay)]

    return RegionLeakageMap(block_rows=block_rows, block_cols=block_cols,
                            means=means, covariance=covariance)
