"""Analysis tools: design realization, full-chip Monte Carlo (the golden
reference), error metrics, and table rendering for the benchmarks."""

from repro.analysis.design import (
    DesignRealization,
    ExpectedDesign,
    expected_design,
    realize_design,
)
from repro.analysis.chipmc import chip_monte_carlo, ChipMCResult
from repro.analysis.distribution import (
    LeakageDistribution,
    compare_models,
    parametric_yield,
)
from repro.analysis.metrics import percent_error, signed_percent_error
from repro.analysis.regions import RegionLeakageMap, region_leakage_map
from repro.analysis.report import format_table
from repro.analysis.temperature import TemperaturePoint, temperature_sweep

__all__ = [
    "DesignRealization",
    "ExpectedDesign",
    "expected_design",
    "realize_design",
    "chip_monte_carlo",
    "ChipMCResult",
    "LeakageDistribution",
    "compare_models",
    "parametric_yield",
    "percent_error",
    "signed_percent_error",
    "RegionLeakageMap",
    "region_leakage_map",
    "format_table",
    "TemperaturePoint",
    "temperature_sweep",
]
