"""Full-chip leakage Monte Carlo — the golden reference.

Samples the channel-length surface (a correlated within-die field plus a
shared die-to-die offset), evaluates every gate's fitted leakage model
on its local length, and sums. The empirical mean and standard deviation
of the total validate every analytical estimator end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.analysis.design import DesignRealization
from repro.characterization.moments import lognormal_mean_factor
from repro.core.estimators.fast_exact import detect_grid
from repro.exceptions import EstimationError
from repro.process.field import sample_field
from repro.process.parameters import ProcessParameter
from repro.process.correlation import SpatialCorrelation
from repro.process.technology import Technology


@dataclass(frozen=True)
class ChipMCResult:
    """Empirical full-chip leakage statistics.

    Attributes
    ----------
    samples:
        Total-leakage samples [A], shape ``(n_samples,)``.
    """

    samples: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std(ddof=1))

    @property
    def n_samples(self) -> int:
        return self.samples.shape[0]

    def std_standard_error(self) -> float:
        """Approximate standard error of the reported :attr:`std`.

        Uses the normal-theory formula ``std / sqrt(2 (n - 1))``. The
        exact error bar would additionally scale with the sample excess
        kurtosis, but the harness only needs an order-of-magnitude
        error bar, so the normal-theory value is reported as is.
        """
        n = self.n_samples
        return self.std / np.sqrt(2.0 * (n - 1))


def _sample_wid_field(
    positions: np.ndarray,
    correlation: SpatialCorrelation,
    n_samples: int,
    rng: np.random.Generator,
    grid: Union[str, None, Tuple[int, int]],
) -> np.ndarray:
    """Draw ``(n_samples, n_gates)`` unit-variance WID field samples.

    Dispatches through :func:`repro.process.field.sample_field`: when the
    gate placement sits on a regular lattice (auto-detected, or hinted by
    a ``(rows, cols)`` tuple) the O(n log n) circulant-embedding sampler
    is used on the full lattice and the gate sites are picked out of it;
    otherwise a dense Cholesky factorization over the gate positions is
    performed, whatever their count.
    """
    info = None
    if grid == "auto":
        info = detect_grid(positions)
    elif grid is not None:
        rows, cols = grid
        info = detect_grid(positions, rows=rows, cols=cols)
    if info is not None:
        field = sample_field(
            correlation, n_samples,
            grid=(info.rows, info.cols, info.pitch_x, info.pitch_y),
            rng=rng)
        return field[:, info.row_index * info.cols + info.col_index]
    return sample_field(correlation, n_samples, points=positions, rng=rng,
                        cholesky_limit=max(positions.shape[0], 3000))


def _wid_sampler(
    positions: np.ndarray,
    correlation: SpatialCorrelation,
    grid: Union[str, None, Tuple[int, int]],
):
    """Build the WID sampler once; returns ``draw(count, rng)``.

    The chunked Monte-Carlo path uses this so the expensive setup (the
    circulant embedding eigendecomposition or the Cholesky factor) is
    paid once rather than per chunk, with the same dispatch rules as
    :func:`_sample_wid_field`.
    """
    from repro.process.field import (
        CholeskyFieldSampler,
        CirculantFieldSampler,
        grid_points,
    )

    info = None
    if grid == "auto":
        info = detect_grid(positions)
    elif grid is not None:
        rows, cols = grid
        info = detect_grid(positions, rows=rows, cols=cols)
    if info is not None:
        if info.rows * info.cols > 3000:
            sampler = CirculantFieldSampler(
                info.rows, info.cols, info.pitch_x, info.pitch_y,
                correlation)
        else:
            sampler = CholeskyFieldSampler(
                grid_points(info.rows, info.cols, info.pitch_x,
                            info.pitch_y), correlation)
        index = info.row_index * info.cols + info.col_index
        return lambda count, rng: sampler.sample(count, rng)[:, index]
    point_sampler = CholeskyFieldSampler(
        np.asarray(positions, dtype=float), correlation)
    return lambda count, rng: point_sampler.sample(count, rng)


def chip_monte_carlo(
    realization: DesignRealization,
    technology: Technology,
    n_samples: int = 2000,
    rng: Optional[np.random.Generator] = None,
    include_vt: bool = False,
    wid_correlation: Optional[SpatialCorrelation] = None,
    grid: Union[str, None, Tuple[int, int]] = "auto",
    sample_chunk: Optional[int] = None,
) -> ChipMCResult:
    """Monte-Carlo the total leakage of a realized design.

    Parameters
    ----------
    realization:
        Placed design with per-gate ``(a, b, c)`` fits.
    technology:
        Supplies the L statistics, the WID correlation, and (optionally)
        the Vt RDF sigma.
    include_vt:
        Also sample an independent per-gate RDF factor
        ``exp(-dVt/(n*kT/q))``; demonstrates that Vt contributes to the
        mean but not (for large n) to the variance.
    wid_correlation:
        Override for the technology's WID correlation function.
    grid:
        WID sampling dispatch. ``"auto"`` (default) detects a regular
        placement lattice and, when found, samples through the
        O(n log n) circulant sampler; a ``(rows, cols)`` tuple hints the
        lattice shape; ``None`` disables detection and always uses the
        dense Cholesky sampler over the gate positions.
    sample_chunk:
        ``None`` (default) materializes the full ``(n_samples, n)``
        field and leakage matrices at once — the historical behaviour,
        draw-for-draw identical to earlier releases. A positive value
        processes at most that many samples at a time, bounding peak
        memory at roughly ``5 * sample_chunk * n`` floats while paying
        the sampler setup (circulant eigendecomposition / Cholesky
        factor) exactly once. The chunked path has its own
        deterministic draw order (the D2D offsets are drawn up front,
        then WID and Vt per chunk), so its samples differ from the
        default's for the same ``rng`` seed — but the statistics agree
        within Monte-Carlo error.
    """
    if realization.fits is None:
        raise EstimationError(
            "chip Monte Carlo requires per-gate fits; characterize the "
            "library analytically")
    rng = np.random.default_rng() if rng is None else rng
    length: ProcessParameter = technology.length
    correlation = (technology.wid_correlation if wid_correlation is None
                   else wid_correlation)

    n = realization.n_gates
    a = np.array([fit.a for fit in realization.fits])
    b = np.array([fit.b for fit in realization.fits])
    c = np.array([fit.c for fit in realization.fits])

    log_sigma = 0.0
    if include_vt:
        n_vt = (technology.subthreshold_swing_factor
                * technology.thermal_voltage)
        log_sigma = technology.vt.sigma / n_vt

    def leakage_of(lengths: np.ndarray,
                   vt_draws: Optional[np.ndarray]) -> np.ndarray:
        gate_leakage = a[None, :] * np.exp(b[None, :] * lengths
                                           + c[None, :] * lengths ** 2)
        if vt_draws is not None:
            factors = np.exp(log_sigma * vt_draws)
            factors /= lognormal_mean_factor(log_sigma)
            # Normalized so the factor's mean is 1: include_vt then
            # isolates the *variance* contribution of RDF, the quantity
            # the paper argues is negligible at chip scale.
            gate_leakage = gate_leakage * factors
        return gate_leakage.sum(axis=1)

    if sample_chunk is None:
        if length.sigma_wid > 0:
            wid = _sample_wid_field(realization.positions, correlation,
                                    n_samples, rng, grid) * length.sigma_wid
        else:
            wid = np.zeros((n_samples, n))
        d2d = (rng.standard_normal(n_samples)[:, None] * length.sigma_d2d
               if length.sigma_d2d > 0 else 0.0)
        lengths = length.nominal + wid + d2d
        vt_draws = (rng.standard_normal((n_samples, n)) if include_vt
                    else None)
        return ChipMCResult(samples=leakage_of(lengths, vt_draws))

    if sample_chunk < 1:
        raise EstimationError(
            f"sample_chunk must be positive, got {sample_chunk!r}")
    draw_wid = (_wid_sampler(realization.positions, correlation, grid)
                if length.sigma_wid > 0 else None)
    d2d_offsets = (rng.standard_normal(n_samples) * length.sigma_d2d
                   if length.sigma_d2d > 0 else np.zeros(n_samples))
    samples = np.empty(n_samples)
    for start in range(0, n_samples, sample_chunk):
        count = min(sample_chunk, n_samples - start)
        if draw_wid is not None:
            wid = draw_wid(count, rng) * length.sigma_wid
        else:
            wid = np.zeros((count, n))
        lengths = (length.nominal + wid
                   + d2d_offsets[start:start + count, None])
        vt_draws = (rng.standard_normal((count, n)) if include_vt
                    else None)
        samples[start:start + count] = leakage_of(lengths, vt_draws)
    return ChipMCResult(samples=samples)
