"""Plain-text table rendering for the benchmark harness.

Every benchmark regenerates a table or figure series from the paper;
this helper prints them as aligned text so the harness output is
self-contained and diffable.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)
