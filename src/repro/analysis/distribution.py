"""Full-chip leakage distribution models and parametric yield.

The paper's estimator delivers the exact mean and variance of total
leakage; power sign-off additionally needs quantiles ("with what
probability does the chip exceed its leakage budget?"). Two standard
two-moment models are provided:

* **normal** — justified by the CLT when the within-die correlation is
  short-ranged relative to the die and D2D variation is weak;
* **lognormal** (Wilkinson moment matching) — the usual choice when a
  shared die-to-die component multiplies every gate's exponential
  leakage, which skews the total right.

Both are exactly matched to the estimator's ``(mean, std)``; the test
suite checks their quantiles against full-chip Monte Carlo in the
regimes where each is appropriate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np
from scipy import stats

from repro.core.api import LeakageEstimate
from repro.exceptions import EstimationError

#: Supported model names.
NORMAL = "normal"
LOGNORMAL = "lognormal"


@dataclass(frozen=True)
class LeakageDistribution:
    """A two-moment distribution model of total chip leakage.

    Attributes
    ----------
    mean / std:
        Matched moments [A].
    model:
        ``"normal"`` or ``"lognormal"``.
    """

    mean: float
    std: float
    model: str = LOGNORMAL

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.std <= 0:
            raise EstimationError(
                "leakage mean and std must be positive, got "
                f"mean={self.mean!r}, std={self.std!r}")
        if self.model not in (NORMAL, LOGNORMAL):
            raise EstimationError(
                f"unknown distribution model {self.model!r}")

    @classmethod
    def from_estimate(cls, estimate: LeakageEstimate,
                      model: str = LOGNORMAL,
                      include_vt: bool = False) -> "LeakageDistribution":
        """Build from a :class:`LeakageEstimate`."""
        mean = estimate.mean_with_vt if include_vt else estimate.mean
        return cls(mean=mean, std=estimate.std, model=model)

    @property
    def _lognormal_params(self):
        # Wilkinson: match mean and variance of exp(N(mu_ln, s_ln^2)).
        ratio = 1.0 + (self.std / self.mean) ** 2
        s_ln = math.sqrt(math.log(ratio))
        mu_ln = math.log(self.mean) - 0.5 * math.log(ratio)
        return mu_ln, s_ln

    def cdf(self, x) -> np.ndarray:
        """P(total leakage <= x)."""
        x = np.asarray(x, dtype=float)
        if self.model == NORMAL:
            return stats.norm.cdf(x, loc=self.mean, scale=self.std)
        mu_ln, s_ln = self._lognormal_params
        with np.errstate(divide="ignore"):
            return np.where(
                x > 0,
                stats.norm.cdf((np.log(np.maximum(x, 1e-300)) - mu_ln)
                               / s_ln),
                0.0)

    def quantile(self, q) -> np.ndarray:
        """Inverse CDF."""
        q = np.asarray(q, dtype=float)
        if np.any((q <= 0) | (q >= 1)):
            raise EstimationError("quantiles must be strictly inside (0, 1)")
        if self.model == NORMAL:
            return stats.norm.ppf(q, loc=self.mean, scale=self.std)
        mu_ln, s_ln = self._lognormal_params
        return np.exp(mu_ln + s_ln * stats.norm.ppf(q))

    def exceedance(self, budget: float) -> float:
        """P(total leakage > budget) — the parametric yield loss."""
        if budget <= 0:
            raise EstimationError(f"budget must be positive, got {budget!r}")
        return float(1.0 - self.cdf(budget))

    def sigma_corner(self, k: float) -> float:
        """The ``k``-sigma leakage corner in the model's own metric:
        ``mean + k*std`` for the normal model, the equivalent-probability
        quantile for the lognormal model."""
        if self.model == NORMAL:
            return self.mean + k * self.std
        return float(self.quantile(float(stats.norm.cdf(k))))

    def __repr__(self) -> str:
        return (f"LeakageDistribution({self.model}, mean={self.mean:.3e}, "
                f"std={self.std:.3e})")


def parametric_yield(estimate: Union[LeakageEstimate, LeakageDistribution],
                     budget: float, model: str = LOGNORMAL) -> float:
    """Fraction of dies whose total leakage meets ``budget`` [A]."""
    if isinstance(estimate, LeakageEstimate):
        distribution = LeakageDistribution.from_estimate(estimate, model)
    else:
        distribution = estimate
    return 1.0 - distribution.exceedance(budget)


def compare_models(samples: np.ndarray) -> str:
    """Pick the better-fitting two-moment model for MC samples.

    Compares the log-likelihood of the moment-matched normal and
    lognormal models; returns ``"normal"`` or ``"lognormal"``. A helper
    for diagnostics, not a substitute for looking at the data.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 10:
        raise EstimationError("need a 1-D array of at least 10 samples")
    if np.any(samples <= 0):
        raise EstimationError("leakage samples must be positive")
    mean = float(samples.mean())
    std = float(samples.std(ddof=1))
    normal_ll = float(np.sum(stats.norm.logpdf(samples, mean, std)))
    dist = LeakageDistribution(mean, std, LOGNORMAL)
    mu_ln, s_ln = dist._lognormal_params
    lognormal_ll = float(np.sum(
        stats.lognorm.logpdf(samples, s=s_ln, scale=math.exp(mu_ln))))
    return NORMAL if normal_ll >= lognormal_ll else LOGNORMAL
