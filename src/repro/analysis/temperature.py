"""Temperature sweeps of full-chip leakage.

Subthreshold leakage rises steeply with junction temperature (larger
``kT/q`` softens the exponential *and* the thresholds drop at ~1 mV/K),
so a leakage budget is meaningful only at a stated temperature. This
module re-characterizes the library per temperature point and sweeps the
full-chip estimate — the "leakage vs. temperature" curve every power
spec quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cells.library import StandardCellLibrary
from repro.characterization.characterizer import characterize_library
from repro.core.api import FullChipLeakageEstimator, LeakageEstimate
from repro.core.usage import CellUsage
from repro.exceptions import EstimationError
from repro.process.technology import Technology


@dataclass(frozen=True)
class TemperaturePoint:
    """One point of a leakage-vs-temperature sweep."""

    temperature: float
    estimate: LeakageEstimate

    @property
    def celsius(self) -> float:
        return self.temperature - 273.15


def temperature_sweep(
    library: StandardCellLibrary,
    technology: Technology,
    usage: CellUsage,
    n_cells: int,
    width: float,
    height: float,
    temperatures: Sequence[float],
    signal_probability: float = 0.5,
    method: str = "auto",
) -> List[TemperaturePoint]:
    """Full-chip leakage estimates across junction temperatures [K].

    Each point re-characterizes the (usage-relevant subset of the)
    library at that temperature; the process variation description is
    shared.
    """
    if not temperatures:
        raise EstimationError("provide at least one temperature")
    points = []
    for temperature in temperatures:
        tech_t = technology.at_temperature(float(temperature))
        characterization = characterize_library(library, tech_t,
                                                cells=usage.names)
        estimate = FullChipLeakageEstimator(
            characterization, usage, n_cells, width, height,
            signal_probability=signal_probability).estimate(method)
        points.append(TemperaturePoint(temperature=float(temperature),
                                       estimate=estimate))
    return points
