"""Temperature sweeps of full-chip leakage.

Subthreshold leakage rises steeply with junction temperature (larger
``kT/q`` softens the exponential *and* the thresholds drop at ~1 mV/K),
so a leakage budget is meaningful only at a stated temperature. This
module re-characterizes the library per temperature point and sweeps the
full-chip estimate — the "leakage vs. temperature" curve every power
spec quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cells.library import StandardCellLibrary
from repro.core.api import LeakageEstimate, estimate_sweep
from repro.core.sweep import temperature_axis
from repro.core.usage import CellUsage
from repro.exceptions import EstimationError
from repro.process.technology import Technology


@dataclass(frozen=True)
class TemperaturePoint:
    """One point of a leakage-vs-temperature sweep."""

    temperature: float
    estimate: LeakageEstimate

    @property
    def celsius(self) -> float:
        return self.temperature - 273.15


def temperature_sweep(
    library: StandardCellLibrary,
    technology: Technology,
    usage: CellUsage,
    n_cells: int,
    width: float,
    height: float,
    temperatures: Sequence[float],
    signal_probability: float = 0.5,
    method: str = "auto",
) -> List[TemperaturePoint]:
    """Full-chip leakage estimates across junction temperatures [K].

    Each point re-characterizes the (usage-relevant subset of the)
    library at that temperature; the process variation description is
    shared. Runs through the batched sweep engine
    (:func:`repro.core.api.estimate_sweep`), which evaluates the lag
    geometry and the correlation kernel once for the whole curve —
    temperature only moves the per-state moments, not the placement or
    the correlation — while staying bit-identical to the historical
    per-temperature loop.
    """
    if not temperatures:
        raise EstimationError("provide at least one temperature")
    temperatures = [float(t) for t in temperatures]
    for temperature in temperatures:
        if not temperature > 0.0:
            raise EstimationError(
                f"junction temperatures must be > 0 K, got "
                f"{temperature!r} (absolute kelvin, not celsius)")
    axis = temperature_axis(temperatures, library,
                            technology, cells=usage.names)
    sweep = estimate_sweep(None, usage, n_cells, width, height,
                           axes=[axis],
                           signal_probability=signal_probability,
                           method=method)
    return [TemperaturePoint(temperature=temperature, estimate=estimate)
            for temperature, estimate in zip(axis.values,
                                             sweep.estimates)]
