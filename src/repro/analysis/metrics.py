"""Error metrics used throughout the validation benchmarks."""

from __future__ import annotations


def percent_error(estimate: float, reference: float) -> float:
    """``|estimate - reference| / |reference|`` in percent."""
    if reference == 0:
        raise ZeroDivisionError("reference value is zero")
    return abs(estimate - reference) / abs(reference) * 100.0


def signed_percent_error(estimate: float, reference: float) -> float:
    """``(estimate - reference) / |reference|`` in percent."""
    if reference == 0:
        raise ZeroDivisionError("reference value is zero")
    return (estimate - reference) / abs(reference) * 100.0
