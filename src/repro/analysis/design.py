"""Realized placed designs: per-gate leakage statistic arrays.

A *realization* fixes, for every placed gate, its cell type (from the
netlist) and its input state (drawn from the state distribution under
the applicable signal probabilities). It carries exactly the arrays the
O(n^2) "true leakage" estimator and the chip Monte Carlo need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.characterization.characterizer import LibraryCharacterization
from repro.characterization.fitting import LeakageFit
from repro.circuits.netlist import Netlist
from repro.core.estimators.exact import exact_moments, pair_params_from_fits
from repro.exceptions import EstimationError
from repro.process.correlation import SpatialCorrelation


@dataclass(frozen=True)
class DesignRealization:
    """Per-gate arrays of a placed, state-assigned design.

    Attributes
    ----------
    positions:
        ``(n, 2)`` gate coordinates [m].
    means / stds:
        Per-gate leakage statistics at the realized state [A].
    fits:
        Per-gate ``(a, b, c)`` fits, or ``None`` in Monte-Carlo mode.
    labels:
        ``(cell_name, state_label)`` per gate.
    """

    positions: np.ndarray
    means: np.ndarray
    stds: np.ndarray
    fits: Optional[Tuple[LeakageFit, ...]]
    labels: Tuple[Tuple[str, str], ...]

    @property
    def n_gates(self) -> int:
        return self.positions.shape[0]

    def pair_params(self, mu_l: float, sigma_l: float):
        """Per-gate ``(a, h, k)`` arrays for exact pairwise moments."""
        if self.fits is None:
            raise EstimationError(
                "realization has no fits (Monte-Carlo characterization); "
                "use the simplified correlation model")
        return pair_params_from_fits(self.fits, mu_l, sigma_l)

    def true_moments(
        self,
        correlation: SpatialCorrelation,
        mu_l: Optional[float] = None,
        sigma_l: Optional[float] = None,
        *,
        method: str = "auto",
        n_jobs: int = 1,
        tolerance: float = 0.0,
    ) -> Tuple[float, float]:
        """``(mean, std)`` of the realized design's total leakage.

        Uses the exact per-pair ``f_mn`` moments when ``mu_l``/``sigma_l``
        are given (and fits exist), the simplified ``rho_leak = rho_L``
        model otherwise. ``method``/``n_jobs``/``tolerance`` select the
        fast paths of :func:`repro.core.estimators.exact_moments`.
        """
        pair_params = None
        if mu_l is not None or sigma_l is not None:
            if mu_l is None or sigma_l is None:
                raise EstimationError(
                    "exact pair moments need both mu_l and sigma_l")
            pair_params = self.pair_params(mu_l, sigma_l)
        return exact_moments(
            self.positions, self.means, self.stds, correlation,
            pair_params=pair_params, method=method, n_jobs=n_jobs,
            tolerance=tolerance)


@dataclass(frozen=True)
class ExpectedDesign:
    """Per-gate *expected-state* arrays of a placed design.

    Instead of sampling one concrete input state per gate, each gate
    carries its state-mixture statistics: ``means``/``stds`` are the
    full mixture moments (diagonal terms), while ``corr_stds`` is the
    state-weighted average of per-state sigmas — the *correlatable*
    spread, since input states are independent across gates and their
    selection variance does not couple through the process correlation
    (the same structure as the Random Gate's eq. (11) discontinuity).
    """

    positions: np.ndarray
    means: np.ndarray
    stds: np.ndarray
    corr_stds: np.ndarray

    @property
    def n_gates(self) -> int:
        return self.positions.shape[0]

    def true_moments(
        self,
        correlation: SpatialCorrelation,
        *,
        method: str = "auto",
        n_jobs: int = 1,
        tolerance: float = 0.0,
    ) -> Tuple[float, float]:
        """``(mean, std)`` of the expected-state design's total leakage
        (the late-mode "true leakage" reference), with the eq. (11)
        diagonal/off-diagonal sigma split applied via ``corr_stds``."""
        return exact_moments(
            self.positions, self.means, self.stds, correlation,
            corr_stds=self.corr_stds, method=method, n_jobs=n_jobs,
            tolerance=tolerance)


def expected_design(
    netlist: Netlist,
    characterization: LibraryCharacterization,
    signal_probability: float = 0.5,
    net_probabilities: Optional[Mapping[str, float]] = None,
) -> ExpectedDesign:
    """Expected-state per-gate arrays for a placed netlist.

    This is the deterministic "true leakage" view used for late-mode
    validation (paper Table 1): every gate contributes its expected
    mean, its full state-mixture variance on the diagonal, and its
    correlatable sigma off the diagonal.
    """
    if not netlist.is_placed:
        raise EstimationError(
            f"{netlist.name}: place the netlist before analyzing it")
    positions = netlist.positions()
    n = netlist.n_gates
    means = np.empty(n)
    stds = np.empty(n)
    corr_stds = np.empty(n)
    for k, gate in enumerate(netlist.gates):
        cell_char = characterization[gate.cell_name]
        cell = cell_char.cell
        if net_probabilities is None:
            weights = cell.state_probabilities(signal_probability)
        else:
            pin_probs = {pin: net_probabilities[net]
                         for pin, net in gate.pin_nets.items()}
            weights = cell.state_probabilities_per_pin(pin_probs)
        state_means = np.array([s.mean for s in cell_char.states])
        state_stds = np.array([s.std for s in cell_char.states])
        mean = float(weights @ state_means)
        second = float(weights @ (state_stds ** 2 + state_means ** 2))
        means[k] = mean
        stds[k] = np.sqrt(max(0.0, second - mean * mean))
        corr_stds[k] = float(weights @ state_stds)
    return ExpectedDesign(positions=positions, means=means, stds=stds,
                          corr_stds=corr_stds)


def realize_design(
    netlist: Netlist,
    characterization: LibraryCharacterization,
    rng: Optional[np.random.Generator] = None,
    signal_probability: float = 0.5,
    net_probabilities: Optional[Mapping[str, float]] = None,
) -> DesignRealization:
    """Assign a concrete input state to every gate of a placed netlist.

    States are drawn per gate from the cell's state distribution — under
    the chip-wide ``signal_probability``, or under per-gate pin
    probabilities when a propagated ``net_probabilities`` map is given
    (the late-mode refinement).
    """
    if not netlist.is_placed:
        raise EstimationError(
            f"{netlist.name}: place the netlist before realizing it")
    rng = np.random.default_rng() if rng is None else rng

    positions = netlist.positions()
    means = np.empty(netlist.n_gates)
    stds = np.empty(netlist.n_gates)
    fits = []
    labels = []
    have_fits = characterization.has_fits
    for k, gate in enumerate(netlist.gates):
        cell_char = characterization[gate.cell_name]
        cell = cell_char.cell
        if net_probabilities is None:
            weights = cell.state_probabilities(signal_probability)
        else:
            pin_probs = {pin: net_probabilities[net]
                         for pin, net in gate.pin_nets.items()}
            weights = cell.state_probabilities_per_pin(pin_probs)
        choice = int(rng.choice(len(weights), p=weights))
        state_char = cell_char.states[choice]
        means[k] = state_char.mean
        stds[k] = state_char.std
        labels.append((gate.cell_name, state_char.state_label))
        if have_fits:
            fits.append(state_char.fit)
    return DesignRealization(
        positions=positions,
        means=means,
        stds=stds,
        fits=tuple(fits) if have_fits else None,
        labels=tuple(labels),
    )
