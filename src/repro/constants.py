"""Physical constants and unit helpers used across the library.

All quantities in :mod:`repro` are expressed in SI units:

* lengths in metres (channel length ``L``, die dimensions ``W``/``H``),
* voltages in volts,
* currents in amperes,
* temperatures in kelvin.

Helper constants for common EDA unit conversions are provided so that
user-facing code can write ``45 * NM`` instead of ``45e-9``.
"""

from __future__ import annotations

import math

#: Boltzmann constant [J/K].
BOLTZMANN: float = 1.380649e-23

#: Elementary charge [C].
ELECTRON_CHARGE: float = 1.602176634e-19

#: Default junction temperature used for characterization [K] (25 C).
ROOM_TEMPERATURE: float = 298.15

#: One nanometre [m].
NM: float = 1e-9

#: One micrometre [m].
UM: float = 1e-6

#: One millimetre [m].
MM: float = 1e-3

#: One nanoampere [A].
NA: float = 1e-9

#: One picoampere [A].
PA: float = 1e-12

#: One millivolt [V].
MV: float = 1e-3


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """Return the thermal voltage ``kT/q`` in volts.

    Parameters
    ----------
    temperature:
        Absolute temperature in kelvin. Defaults to room temperature.

    Examples
    --------
    >>> round(thermal_voltage(300.0), 6)
    0.025852
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature!r}")
    return BOLTZMANN * temperature / ELECTRON_CHARGE


def db(ratio: float) -> float:
    """Express a power ratio in decibels (used in diagnostic reports)."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio!r}")
    return 10.0 * math.log10(ratio)
