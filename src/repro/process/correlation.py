"""Within-die spatial correlation functions.

The paper (Section 2) assumes the existence of a spatial correlation
function [Xiong/Zolotov/He, ISPD'06] giving the correlation of the WID
component of a process parameter as a function of the distance between
two devices. This module provides the standard isotropic families used
in the statistical-timing/leakage literature, each of which is a valid
(positive semi-definite on the plane) correlation function:

* :class:`ExponentialCorrelation`  -- ``rho(d) = exp(-d / length)``
* :class:`GaussianCorrelation`     -- ``rho(d) = exp(-(d / length)**2)``
* :class:`LinearCorrelation`       -- ``rho(d) = max(0, 1 - d / dmax)``
  (the triangular / "tent" model; PSD in 1-D and commonly used as a
  simple compact-support model in the leakage literature)
* :class:`SphericalCorrelation`    -- the geostatistical spherical model,
  PSD in up to three dimensions, with compact support ``dmax``.

All correlation callables are vectorized over numpy arrays of distances.

:class:`TotalCorrelation` combines a WID correlation with a D2D floor:

.. math::

   \\rho(d) = \\rho_C + (1 - \\rho_C)\\,\\rho_{wid}(d),
   \\qquad \\rho_C = \\sigma_{dd}^2 / \\sigma^2 .
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.exceptions import CorrelationError
from repro.process.parameters import ProcessParameter


class SpatialCorrelation(abc.ABC):
    """Abstract isotropic spatial correlation function ``rho(d)``.

    Subclasses implement :meth:`_evaluate` on a non-negative float array.
    ``rho(0) == 1`` is enforced by contract and checked in the test suite.
    """

    @abc.abstractmethod
    def _evaluate(self, distance: np.ndarray) -> np.ndarray:
        """Evaluate on a validated non-negative ndarray of distances."""

    @property
    @abc.abstractmethod
    def support(self) -> float:
        """Distance beyond which the correlation is (numerically) zero.

        ``math.inf`` for functions without compact support.
        """

    def effective_support(self, tolerance: float = 1e-4) -> float:
        """Smallest distance ``D`` with ``rho(d) <= tolerance`` for d >= D.

        For compact-support models this is :attr:`support`; for
        infinite-support models it is found by bisection. Used by the
        polar constant-time estimator, which needs a finite upper
        integration limit ``D_max``.
        """
        if math.isfinite(self.support):
            return self.support
        lo, hi = 0.0, 1.0
        while float(self(hi)) > tolerance:
            hi *= 2.0
            if hi > 1e6:
                raise CorrelationError(
                    f"{type(self).__name__}: correlation does not decay below "
                    f"{tolerance} within 1e6 m; cannot truncate")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if float(self(mid)) > tolerance:
                lo = mid
            else:
                hi = mid
        return hi

    @property
    def isotropic(self) -> bool:
        """Whether ``rho`` depends on distance only (not direction).

        The polar single-integral estimator requires isotropy; all other
        machinery works through :meth:`evaluate_xy`.
        """
        return True

    def __call__(self, distance) -> np.ndarray:
        """Evaluate ``rho`` at one or more distances (metres)."""
        d = np.asarray(distance, dtype=float)
        if np.any(d < 0):
            raise CorrelationError("distances must be non-negative")
        return self._evaluate(d)

    def evaluate_xy(self, dx, dy) -> np.ndarray:
        """Evaluate ``rho`` for displacement components (metres).

        Isotropic functions reduce to ``rho(hypot(dx, dy))``; anisotropic
        wrappers override this with their own metric.
        """
        dx = np.asarray(dx, dtype=float)
        dy = np.asarray(dy, dtype=float)
        return self._evaluate(np.hypot(dx, dy))

    def matrix(self, points: np.ndarray) -> np.ndarray:
        """Correlation matrix for an ``(n, 2)`` array of point coordinates."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise CorrelationError(
                f"points must have shape (n, 2), got {pts.shape}")
        delta = pts[:, None, :] - pts[None, :, :]
        return self.evaluate_xy(delta[..., 0], delta[..., 1])


class ExponentialCorrelation(SpatialCorrelation):
    """``rho(d) = exp(-d / length)`` — the Markovian / Ornstein-Uhlenbeck
    family, valid in any dimension."""

    def __init__(self, length: float) -> None:
        if length <= 0:
            raise CorrelationError(f"length must be positive, got {length!r}")
        self.length = float(length)

    def _evaluate(self, distance: np.ndarray) -> np.ndarray:
        return np.exp(-distance / self.length)

    @property
    def support(self) -> float:
        return math.inf

    def __repr__(self) -> str:
        return f"ExponentialCorrelation(length={self.length:g})"


class GaussianCorrelation(SpatialCorrelation):
    """``rho(d) = exp(-(d / length)**2)`` — the squared-exponential family,
    valid in any dimension; very smooth fields."""

    def __init__(self, length: float) -> None:
        if length <= 0:
            raise CorrelationError(f"length must be positive, got {length!r}")
        self.length = float(length)

    def _evaluate(self, distance: np.ndarray) -> np.ndarray:
        return np.exp(-((distance / self.length) ** 2))

    @property
    def support(self) -> float:
        return math.inf

    def __repr__(self) -> str:
        return f"GaussianCorrelation(length={self.length:g})"


class LinearCorrelation(SpatialCorrelation):
    """``rho(d) = max(0, 1 - d / dmax)`` — triangular model with compact
    support ``dmax``.

    This is the simple model sketched in the paper's examples: the
    correlation decays linearly and reaches exactly zero at ``dmax``,
    which makes the polar-coordinate single-integral method (Section
    3.2.2) apply without truncation.
    """

    def __init__(self, dmax: float) -> None:
        if dmax <= 0:
            raise CorrelationError(f"dmax must be positive, got {dmax!r}")
        self.dmax = float(dmax)

    def _evaluate(self, distance: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - distance / self.dmax)

    @property
    def support(self) -> float:
        return self.dmax

    def __repr__(self) -> str:
        return f"LinearCorrelation(dmax={self.dmax:g})"


class SphericalCorrelation(SpatialCorrelation):
    """Geostatistical spherical model with compact support ``dmax``:

    ``rho(d) = 1 - 1.5*(d/dmax) + 0.5*(d/dmax)**3`` for ``d < dmax``,
    zero beyond. Positive semi-definite in dimensions up to three.
    """

    def __init__(self, dmax: float) -> None:
        if dmax <= 0:
            raise CorrelationError(f"dmax must be positive, got {dmax!r}")
        self.dmax = float(dmax)

    def _evaluate(self, distance: np.ndarray) -> np.ndarray:
        u = np.minimum(distance / self.dmax, 1.0)
        return 1.0 - 1.5 * u + 0.5 * u ** 3

    @property
    def support(self) -> float:
        return self.dmax

    def __repr__(self) -> str:
        return f"SphericalCorrelation(dmax={self.dmax:g})"


class CompositeCorrelation(SpatialCorrelation):
    """Convex combination of correlation functions.

    A convex combination of valid correlation functions is itself valid;
    this models multi-scale WID variation (e.g. a short-range litho
    component plus a long-range gradient component).
    """

    def __init__(self, components: Sequence[SpatialCorrelation],
                 weights: Sequence[float]) -> None:
        if len(components) != len(weights) or not components:
            raise CorrelationError(
                "components and weights must be equal-length and non-empty")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0) or not math.isclose(float(w.sum()), 1.0,
                                             rel_tol=0, abs_tol=1e-9):
            raise CorrelationError(
                f"weights must be non-negative and sum to 1, got {weights!r}")
        self.components = tuple(components)
        self.weights = tuple(float(x) for x in w)

    def _evaluate(self, distance: np.ndarray) -> np.ndarray:
        total = np.zeros_like(distance, dtype=float)
        for weight, component in zip(self.weights, self.components):
            total += weight * component._evaluate(distance)
        return total

    @property
    def isotropic(self) -> bool:
        return all(component.isotropic for component in self.components)

    def evaluate_xy(self, dx, dy) -> np.ndarray:
        dx = np.asarray(dx, dtype=float)
        dy = np.asarray(dy, dtype=float)
        total = np.zeros(np.broadcast(dx, dy).shape)
        for weight, component in zip(self.weights, self.components):
            total = total + weight * component.evaluate_xy(dx, dy)
        return total

    @property
    def support(self) -> float:
        return max(component.support for component in self.components)

    def __repr__(self) -> str:
        return (f"CompositeCorrelation(components={list(self.components)!r}, "
                f"weights={list(self.weights)!r})")


class AnisotropicCorrelation(SpatialCorrelation):
    """Direction-dependent correlation via an elliptical metric.

    Wraps an isotropic base function and stretches the coordinate axes:
    ``rho(dx, dy) = base(sqrt((dx/sx)^2 + (dy/sy)^2))``. Axis rescaling
    preserves positive semi-definiteness, so the result is a valid
    correlation model — the standard geometric-anisotropy construction
    for reticle/scan-direction effects.

    ``scale_x > 1`` stretches the correlation along x (slower decay).
    """

    def __init__(self, base: SpatialCorrelation, scale_x: float,
                 scale_y: float) -> None:
        if scale_x <= 0 or scale_y <= 0:
            raise CorrelationError("anisotropy scales must be positive")
        if not base.isotropic:
            raise CorrelationError(
                "AnisotropicCorrelation must wrap an isotropic base")
        self.base = base
        self.scale_x = float(scale_x)
        self.scale_y = float(scale_y)

    @property
    def isotropic(self) -> bool:
        return math.isclose(self.scale_x, self.scale_y)

    def _evaluate(self, distance: np.ndarray) -> np.ndarray:
        # Scalar-distance evaluation is only meaningful when the metric
        # is actually isotropic (equal scales).
        if not self.isotropic:
            raise CorrelationError(
                "anisotropic correlation needs displacement components; "
                "use evaluate_xy(dx, dy)")
        return self.base._evaluate(distance / self.scale_x)

    def evaluate_xy(self, dx, dy) -> np.ndarray:
        dx = np.asarray(dx, dtype=float)
        dy = np.asarray(dy, dtype=float)
        metric = np.sqrt((dx / self.scale_x) ** 2 + (dy / self.scale_y) ** 2)
        return self.base._evaluate(metric)

    @property
    def support(self) -> float:
        return self.base.support * max(self.scale_x, self.scale_y)

    def effective_support(self, tolerance: float = 1e-4) -> float:
        """Truncation radius along the slowest-decaying axis.

        The default bisection needs a scalar-distance evaluation, which
        an anisotropic metric does not define; the base function's
        radius scaled by the larger stretch is a valid (conservative)
        bound for every direction.
        """
        return (self.base.effective_support(tolerance)
                * max(self.scale_x, self.scale_y))

    def __repr__(self) -> str:
        return (f"AnisotropicCorrelation(base={self.base!r}, "
                f"scale_x={self.scale_x:g}, scale_y={self.scale_y:g})")


class TotalCorrelation(SpatialCorrelation):
    """Total (D2D + WID) correlation of a process parameter.

    Combines the WID spatial correlation with the D2D correlation floor
    by the normalization described in Section 2 of the paper:

    ``rho(d) = rho_floor + (1 - rho_floor) * rho_wid(d)``.
    """

    def __init__(self, wid: SpatialCorrelation,
                 parameter: ProcessParameter) -> None:
        self.wid = wid
        self.parameter = parameter
        self.rho_floor = parameter.rho_floor

    def _evaluate(self, distance: np.ndarray) -> np.ndarray:
        return self.rho_floor + (1.0 - self.rho_floor) * self.wid._evaluate(distance)

    @property
    def isotropic(self) -> bool:
        return self.wid.isotropic

    def evaluate_xy(self, dx, dy) -> np.ndarray:
        return (self.rho_floor
                + (1.0 - self.rho_floor) * self.wid.evaluate_xy(dx, dy))

    @property
    def support(self) -> float:
        # The *total* correlation never reaches zero when a D2D floor
        # exists; report the support of the decaying part.
        return self.wid.support

    def effective_support(self, tolerance: float = 1e-4) -> float:
        """Truncation radius of the *decaying* part.

        The total correlation never falls below the D2D floor, so the
        literal "rho <= tolerance" radius does not exist; what every
        truncating consumer (polar estimator, spatial pruning) actually
        needs is the distance beyond which only the floor remains.
        """
        return self.decaying_part().effective_support(tolerance)

    def decaying_part(self) -> "ScaledCorrelation":
        """The compact/decaying component ``rho(d) - rho_floor``.

        Used by the polar estimator's D2D split (paper eq. 26). Note the
        returned object is *not* normalized to one at zero; it scales the
        WID correlation by ``1 - rho_floor``.
        """
        return ScaledCorrelation(self.wid, 1.0 - self.rho_floor)

    def __repr__(self) -> str:
        return (f"TotalCorrelation(wid={self.wid!r}, "
                f"rho_floor={self.rho_floor:.4f})")


class ScaledCorrelation(SpatialCorrelation):
    """A correlation function scaled by a constant in (0, 1].

    Not a correlation function in the strict sense (``rho(0) < 1`` when
    ``scale < 1``); used as the decaying part in the D2D split.
    """

    def __init__(self, base: SpatialCorrelation, scale: float) -> None:
        if not 0.0 < scale <= 1.0:
            raise CorrelationError(f"scale must be in (0, 1], got {scale!r}")
        self.base = base
        self.scale = float(scale)

    def _evaluate(self, distance: np.ndarray) -> np.ndarray:
        return self.scale * self.base._evaluate(distance)

    @property
    def isotropic(self) -> bool:
        return self.base.isotropic

    def evaluate_xy(self, dx, dy) -> np.ndarray:
        return self.scale * self.base.evaluate_xy(dx, dy)

    @property
    def support(self) -> float:
        return self.base.support

    def __repr__(self) -> str:
        return f"ScaledCorrelation(base={self.base!r}, scale={self.scale:g})"
