"""Correlated Gaussian random-field sampling.

Monte-Carlo validation of the full-chip estimators requires sampling the
within-die channel-length variation as a zero-mean, unit-variance
Gaussian field with a prescribed isotropic correlation function, at the
locations of all gates on the die.

Two exact samplers are provided:

* :class:`CholeskyFieldSampler` — works for arbitrary point sets; cost
  ``O(n^3)`` setup, suitable up to a few thousand points.
* :class:`CirculantFieldSampler` — FFT circulant-embedding sampler for
  regular grids (Dietrich & Newsam, 1997); near-linear cost, suitable for
  millions of sites. Exact when the embedding is positive semi-definite;
  small negative embedding eigenvalues are clipped with a recorded
  relative energy loss.

:func:`sample_field` dispatches between them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import CorrelationError
from repro.process.correlation import SpatialCorrelation


class CholeskyFieldSampler:
    """Exact correlated-field sampler for an arbitrary set of points.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of site coordinates [m].
    correlation:
        Isotropic correlation function.
    jitter:
        Diagonal regularization added if the correlation matrix is not
        numerically positive definite.
    """

    def __init__(self, points: np.ndarray, correlation: SpatialCorrelation,
                 jitter: float = 1e-10) -> None:
        self.points = np.asarray(points, dtype=float)
        self.correlation = correlation
        matrix = correlation.matrix(self.points)
        n = matrix.shape[0]
        try:
            self._chol = np.linalg.cholesky(matrix)
        except np.linalg.LinAlgError:
            # Regularize: tiny negative eigenvalues from round-off are
            # expected for smooth kernels (e.g. Gaussian) on dense grids.
            matrix = matrix + jitter * n * np.eye(n)
            try:
                self._chol = np.linalg.cholesky(matrix)
            except np.linalg.LinAlgError as exc:
                raise CorrelationError(
                    "correlation matrix is not positive semi-definite; "
                    "is the correlation function valid?") from exc

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    def sample(self, n_samples: int,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``(n_samples, n_points)`` field realizations."""
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples!r}")
        rng = np.random.default_rng() if rng is None else rng
        white = rng.standard_normal((self.n_points, n_samples))
        return (self._chol @ white).T


class CirculantFieldSampler:
    """FFT circulant-embedding sampler on a regular ``rows x cols`` grid.

    Grid sites are at ``(col * pitch_x, row * pitch_y)``. Each call to
    :meth:`sample` returns realizations flattened in row-major (C) order,
    matching ``numpy.reshape(rows, cols)``.
    """

    def __init__(self, rows: int, cols: int, pitch_x: float, pitch_y: float,
                 correlation: SpatialCorrelation,
                 clip_tolerance: float = 1e-8, backend=None) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        if pitch_x <= 0 or pitch_y <= 0:
            raise ValueError("grid pitches must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.pitch_x = float(pitch_x)
        self.pitch_y = float(pitch_y)
        self.correlation = correlation
        #: Kernel backend name/instance for the spectrum-modulation step
        #: of :meth:`sample` (RNG draws and FFTs stay on numpy: the RNG
        #: stream is part of the reproducibility contract and the FFT
        #: plan is numpy's own).
        self.backend = backend

        # Minimal even embedding; doubling the grid guarantees that every
        # in-grid lag appears in the wrapped base row/column.
        self._p = max(2 * self.rows, 2)
        self._q = max(2 * self.cols, 2)
        row_idx = np.arange(self._p)
        col_idx = np.arange(self._q)
        wrap_rows = np.minimum(row_idx, self._p - row_idx) * self.pitch_y
        wrap_cols = np.minimum(col_idx, self._q - col_idx) * self.pitch_x
        base = correlation.evaluate_xy(wrap_cols[None, :],
                                       wrap_rows[:, None])

        eigenvalues = np.fft.fft2(base).real
        negative = eigenvalues[eigenvalues < 0]
        self.clipped_energy = float(-negative.sum() / np.abs(eigenvalues).sum()) \
            if negative.size else 0.0
        if self.clipped_energy > clip_tolerance:
            # Still proceed — the approximation error is recorded for the
            # caller — but refuse grossly invalid embeddings.
            if self.clipped_energy > 0.05:
                raise CorrelationError(
                    "circulant embedding strongly indefinite "
                    f"(clipped energy {self.clipped_energy:.3%}); increase the "
                    "grid size or use CholeskyFieldSampler")
        self._amplitude = np.sqrt(
            np.maximum(eigenvalues, 0.0) / (self._p * self._q))

    @property
    def n_points(self) -> int:
        return self.rows * self.cols

    def sample(self, n_samples: int,
               rng: Optional[np.random.Generator] = None, *,
               pair_chunk: Optional[int] = None) -> np.ndarray:
        """Draw ``(n_samples, rows*cols)`` field realizations.

        The complex draws and their FFTs run batched, ``pair_chunk``
        sample pairs at a time. The batching is bit-identical to the
        historical one-pair-at-a-time loop: a C-order
        ``(count, 2, p, q)`` normal draw consumes the RNG stream in
        exactly the real-block-then-imaginary-block-per-pair order the
        loop did, and a batched ``fft2`` over the trailing axes
        transforms each slice identically to a standalone call.

        ``pair_chunk=None`` (default) sizes batches so one batch's
        spectra stay within ~2 MiB — large batches of big embeddings
        fall out of cache and get *slower*, while small embeddings gain
        most from amortizing per-call overhead over many pairs.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples!r}")
        if pair_chunk is None:
            pair_chunk = max(1, (2 << 20) // (16 * self._p * self._q))
        elif pair_chunk <= 0:
            raise ValueError(
                f"pair_chunk must be positive, got {pair_chunk!r}")
        from repro.backend import get_backend

        kernels = get_backend(self.backend)
        rng = np.random.default_rng() if rng is None else rng
        out = np.empty((n_samples, self.n_points))
        # Each complex draw yields two independent real fields.
        n_pairs = (n_samples + 1) // 2
        for start in range(0, n_pairs, pair_chunk):
            count = min(pair_chunk, n_pairs - start)
            draws = rng.standard_normal((count, 2, self._p, self._q))
            spectra = np.fft.fft2(
                kernels.modulate_noise(draws, self._amplitude),
                axes=(-2, -1))
            blocks = spectra[:, : self.rows, : self.cols]
            first = 2 * start
            # Even sample indices take the real parts, odd the imaginary;
            # the final pair of an odd n_samples drops its imaginary half.
            out[first:first + 2 * count:2] = \
                blocks.real.reshape(count, self.n_points)
            stop = min(first + 2 * count, n_samples)
            n_im = (stop - first) // 2
            out[first + 1:stop:2] = \
                blocks.imag.reshape(count, self.n_points)[:n_im]
        return out


def grid_points(rows: int, cols: int, pitch_x: float,
                pitch_y: float) -> np.ndarray:
    """Coordinates of a row-major regular grid, shape ``(rows*cols, 2)``.

    Matches the flattening order of :class:`CirculantFieldSampler`.
    """
    cc, rr = np.meshgrid(np.arange(cols), np.arange(rows))
    return np.column_stack([cc.ravel() * pitch_x, rr.ravel() * pitch_y])


def sample_field(
    correlation: SpatialCorrelation,
    n_samples: int,
    *,
    points: Optional[np.ndarray] = None,
    grid: Optional[Tuple[int, int, float, float]] = None,
    rng: Optional[np.random.Generator] = None,
    cholesky_limit: int = 3000,
    backend=None,
) -> np.ndarray:
    """Sample a unit-variance correlated Gaussian field.

    Exactly one of ``points`` (arbitrary ``(n, 2)`` coordinates) or
    ``grid`` (``(rows, cols, pitch_x, pitch_y)``) must be given. Regular
    grids above ``cholesky_limit`` points use the FFT sampler, whose
    spectrum-modulation step runs on the given kernel ``backend``.

    Returns
    -------
    ndarray of shape ``(n_samples, n_points)``.
    """
    if (points is None) == (grid is None):
        raise ValueError("provide exactly one of points= or grid=")
    if grid is not None:
        rows, cols, pitch_x, pitch_y = grid
        if rows * cols > cholesky_limit:
            sampler: object = CirculantFieldSampler(
                rows, cols, pitch_x, pitch_y, correlation, backend=backend)
        else:
            sampler = CholeskyFieldSampler(
                grid_points(rows, cols, pitch_x, pitch_y), correlation)
        return sampler.sample(n_samples, rng)
    pts = np.asarray(points, dtype=float)
    if pts.shape[0] > cholesky_limit:
        raise CorrelationError(
            f"{pts.shape[0]} arbitrary points exceed the Cholesky sampler "
            f"limit ({cholesky_limit}); place the design on a grid and use "
            "grid= instead")
    return CholeskyFieldSampler(pts, correlation).sample(n_samples, rng)
