"""Process corners for leakage sign-off.

Classical corner analysis pins the die-to-die component at a ±k·σ point
(every device on a given die shares it) while the within-die component
keeps varying. In this library's terms a corner is the *conditional*
process given the D2D draw:

* the channel-length nominal shifts by ``k · σ_dd``;
* the D2D variance collapses to zero (it is now pinned);
* the WID statistics are untouched;
* optionally, the thresholds shift and the junction temperature moves
  (the leakage-relevant fast/slow corners pair short-L with low-Vt and
  high temperature).

The leakage estimator then gives the *within-corner* statistics — mean
and residual (WID-driven) spread — which is exactly the corner-report
table power sign-off quotes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.process.parameters import ProcessParameter, VtSpec
from repro.process.technology import Technology

if TYPE_CHECKING:  # higher-layer types; imported lazily at call time
    from repro.cells.library import StandardCellLibrary
    from repro.core.api import LeakageEstimate
    from repro.core.usage import CellUsage


@dataclass(frozen=True)
class ProcessCorner:
    """One named process corner.

    Attributes
    ----------
    name:
        Corner label, e.g. ``"FF"``.
    l_d2d_sigmas:
        Die-to-die channel-length offset in units of ``σ_dd``
        (negative = shorter = leakier).
    vt_shift:
        Deterministic threshold shift [V] applied to both polarities
        (negative = leakier).
    temperature:
        Junction temperature [K], or ``None`` for the characterization
        temperature.
    """

    name: str
    l_d2d_sigmas: float = 0.0
    vt_shift: float = 0.0
    temperature: Optional[float] = None


def leakage_corners(hot: float = 398.15) -> Tuple[ProcessCorner, ...]:
    """The standard leakage corner trio.

    ``FF`` (fast/leaky): L at −3σ_dd, Vt −30 mV, hot.
    ``TT`` (typical): everything nominal.
    ``SS`` (slow/tight): L at +3σ_dd, Vt +30 mV, hot (leakage sign-off
    is quoted at temperature even for the slow corner).
    """
    return (
        ProcessCorner("FF", l_d2d_sigmas=-3.0, vt_shift=-0.030,
                      temperature=hot),
        ProcessCorner("TT", l_d2d_sigmas=0.0, vt_shift=0.0,
                      temperature=None),
        ProcessCorner("SS", l_d2d_sigmas=+3.0, vt_shift=+0.030,
                      temperature=hot),
    )


def corner_technology(technology: Technology,
                      corner: ProcessCorner) -> Technology:
    """The conditional technology at a pinned D2D corner."""
    length = technology.length
    nominal = length.nominal + corner.l_d2d_sigmas * length.sigma_d2d
    if nominal <= 0:
        raise ConfigurationError(
            f"corner {corner.name!r} drives the channel length through zero")
    if length.sigma_wid <= 0:
        raise ConfigurationError(
            "corner analysis pins the D2D component; the technology needs "
            "a non-zero WID component to retain any variation")
    pinned = ProcessParameter(name=length.name, nominal=nominal,
                              sigma_d2d=0.0, sigma_wid=length.sigma_wid)
    vt = technology.vt
    shifted_vt = VtSpec(nominal_n=vt.nominal_n + corner.vt_shift,
                        nominal_p=vt.nominal_p + corner.vt_shift,
                        sigma=vt.sigma)
    result = dataclasses.replace(
        technology, name=f"{technology.name}-{corner.name}",
        length=pinned, vt=shifted_vt)
    if corner.temperature is not None:
        result = result.at_temperature(corner.temperature)
    return result


def corner_report(
    library: "StandardCellLibrary",
    technology: Technology,
    usage: "CellUsage",
    n_cells: int,
    width: float,
    height: float,
    corners: Optional[Sequence[ProcessCorner]] = None,
    signal_probability: float = 0.5,
    method: str = "auto",
) -> "List[Tuple[ProcessCorner, LeakageEstimate]]":
    """Full-chip leakage statistics at each process corner.

    Returns ``(corner, estimate)`` pairs in the given order; each
    estimate's spread is the *residual within-corner* (WID-driven)
    variation.
    """
    # Imported here: corners.py sits in the low-level process package
    # but orchestrates the higher layers.
    from repro.characterization.characterizer import characterize_library
    from repro.core.api import FullChipLeakageEstimator

    if corners is None:
        corners = leakage_corners()
    report = []
    for corner in corners:
        tech_c = corner_technology(technology, corner)
        characterization = characterize_library(library, tech_c,
                                                cells=usage.names)
        estimate = FullChipLeakageEstimator(
            characterization, usage, n_cells, width, height,
            signal_probability=signal_probability).estimate(method)
        report.append((corner, estimate))
    return report
