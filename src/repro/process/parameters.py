"""Process-parameter descriptions with die-to-die / within-die splits.

Following Section 2 of the paper, a varying process parameter (channel
length ``L``, threshold voltage ``Vt``) has two statistically independent
components:

* a **die-to-die (D2D)** component, shared by every device on a die, with
  variance ``sigma_d2d**2``;
* a **within-die (WID)** component, different per device but spatially
  correlated, with variance ``sigma_wid**2``.

The total variance is ``sigma**2 = sigma_d2d**2 + sigma_wid**2`` and the
total spatial correlation between two devices at distance ``d`` is

.. math::

    \\rho(d) = \\frac{\\sigma_{dd}^2 + \\sigma_{wd}^2\\,\\rho_{wid}(d)}
                    {\\sigma_{dd}^2 + \\sigma_{wd}^2}

which never falls below the D2D floor ``rho_floor = sigma_d2d**2 / sigma**2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ProcessParameter:
    """A Gaussian process parameter with a D2D/WID variance split.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"L"``.
    nominal:
        Nominal (mean) value, SI units.
    sigma_d2d:
        Standard deviation of the die-to-die component.
    sigma_wid:
        Standard deviation of the within-die component.
    """

    name: str
    nominal: float
    sigma_d2d: float
    sigma_wid: float

    def __post_init__(self) -> None:
        if self.nominal <= 0:
            raise ConfigurationError(
                f"{self.name}: nominal must be positive, got {self.nominal!r}")
        if self.sigma_d2d < 0 or self.sigma_wid < 0:
            raise ConfigurationError(
                f"{self.name}: standard deviations must be non-negative, got "
                f"sigma_d2d={self.sigma_d2d!r}, sigma_wid={self.sigma_wid!r}")
        if self.sigma_d2d == 0 and self.sigma_wid == 0:
            raise ConfigurationError(
                f"{self.name}: at least one variation component must be non-zero")

    @property
    def variance(self) -> float:
        """Total variance ``sigma_d2d**2 + sigma_wid**2``."""
        return self.sigma_d2d ** 2 + self.sigma_wid ** 2

    @property
    def sigma(self) -> float:
        """Total standard deviation."""
        return math.sqrt(self.variance)

    @property
    def rho_floor(self) -> float:
        """D2D correlation floor ``sigma_d2d**2 / sigma**2`` in [0, 1]."""
        return self.sigma_d2d ** 2 / self.variance

    @property
    def relative_sigma(self) -> float:
        """Total sigma as a fraction of nominal (``3*relative_sigma`` is the
        familiar "3-sigma percent" process corner width)."""
        return self.sigma / self.nominal

    def with_split(self, d2d_fraction: float) -> "ProcessParameter":
        """Return a copy with the same total variance but a different D2D
        variance fraction.

        Parameters
        ----------
        d2d_fraction:
            Fraction of the *variance* assigned to the D2D component,
            in [0, 1].
        """
        if not 0.0 <= d2d_fraction <= 1.0:
            raise ConfigurationError(
                f"d2d_fraction must be in [0, 1], got {d2d_fraction!r}")
        total_var = self.variance
        return ProcessParameter(
            name=self.name,
            nominal=self.nominal,
            sigma_d2d=math.sqrt(d2d_fraction * total_var),
            sigma_wid=math.sqrt((1.0 - d2d_fraction) * total_var),
        )


@dataclass(frozen=True)
class VtSpec:
    """Threshold-voltage random-dopant-fluctuation specification.

    Per Section 2.1 of the paper, ``Vt`` variations here mean *random
    dopant fluctuations only* (the ``Vt`` roll-off contribution is lumped
    into the ``L`` dependence of the device model). RDF-induced ``Vt``
    variations are independent device to device, so they affect the mean
    of total leakage but contribute negligibly to its variance for large
    gate counts.

    Parameters
    ----------
    nominal_n / nominal_p:
        Nominal NMOS / PMOS threshold magnitude [V].
    sigma:
        RDF standard deviation for a reference-size device [V].
    """

    nominal_n: float
    nominal_p: float
    sigma: float

    def __post_init__(self) -> None:
        if self.nominal_n <= 0 or self.nominal_p <= 0:
            raise ConfigurationError(
                "Vt nominal magnitudes must be positive, got "
                f"nominal_n={self.nominal_n!r}, nominal_p={self.nominal_p!r}")
        if self.sigma < 0:
            raise ConfigurationError(
                f"Vt sigma must be non-negative, got {self.sigma!r}")
