"""Technology presets.

A :class:`Technology` bundles everything the device / cell layers need:
supply voltage, nominal device geometry, threshold voltages, subthreshold
model coefficients, and the statistical description of the varying
parameters (channel length ``L`` and RDF ``Vt``).

The default preset, :func:`synthetic_90nm`, is a self-consistent stand-in
for the commercial 90 nm CMOS process used in the paper. Its parameter
values are drawn from published 90 nm-era data (Leff about 45-55 nm,
Vt about 0.22-0.32 V, DIBL about 50-100 mV/V, subthreshold swing about
85-100 mV/dec) so that stack factors, Ioff magnitudes (about 1-100 nA/um)
and leakage spreads under 3-sigma L variation land in realistic ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import constants
from repro.exceptions import ConfigurationError
from repro.process.correlation import (
    ExponentialCorrelation,
    SpatialCorrelation,
    TotalCorrelation,
)
from repro.process.parameters import ProcessParameter, VtSpec


@dataclass(frozen=True)
class Technology:
    """A process technology description.

    Parameters
    ----------
    name:
        Human-readable identifier.
    vdd:
        Nominal supply voltage [V].
    length:
        Channel length :class:`ProcessParameter` (D2D/WID split included).
    vt:
        Threshold-voltage RDF specification.
    wid_correlation:
        WID spatial correlation function for the channel length.
    subthreshold_swing_factor:
        The ideality factor ``n`` in ``I ~ exp(Vgs/(n*kT/q))``; the swing
        is ``n * kT/q * ln 10`` V/decade.
    dibl:
        DIBL coefficient ``eta`` [V/V]: Vt reduction per volt of Vds.
    body_effect:
        Linearized body-effect coefficient [V/V]: Vt increase per volt of
        reverse source-body bias.
    vt_rolloff_delta:
        Magnitude of Vt roll-off [V]: Vt is reduced by
        ``vt_rolloff_delta * exp(-(L - L_nominal)/vt_rolloff_length)``
        relative to the long-channel value (lumped into the L dependence
        of leakage per Section 2.1 of the paper).
    vt_rolloff_length:
        Characteristic length of the roll-off [m].
    i0_per_width:
        Subthreshold current prefactor per unit width at threshold
        (``Vgs = Vt``) for the nominal channel length [A/m].
    min_width:
        Minimum transistor width [m]; library cells express widths as
        multiples of this.
    temperature:
        Characterization temperature [K].
    vt_temp_coefficient:
        Linearized threshold drop per kelvin of heating [V/K]
        (see :meth:`at_temperature`).
    gate_j0_per_area:
        Gate-oxide tunneling current density at full oxide bias [A/m^2]
        (the optional gate-leakage extension; zero disables it).
    gate_v0:
        Exponential slope of the tunneling current vs. oxide voltage [V].
    """

    name: str
    vdd: float
    length: ProcessParameter
    vt: VtSpec
    wid_correlation: SpatialCorrelation
    subthreshold_swing_factor: float = 1.5
    dibl: float = 0.08
    body_effect: float = 0.18
    vt_rolloff_delta: float = 0.40
    vt_rolloff_length: float = 22e-9
    i0_per_width: float = 6.0
    min_width: float = 120e-9
    temperature: float = constants.ROOM_TEMPERATURE
    vt_temp_coefficient: float = 1.0e-3
    gate_j0_per_area: float = 2.0e5
    gate_v0: float = 0.12

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ConfigurationError(f"vdd must be positive, got {self.vdd!r}")
        if self.subthreshold_swing_factor < 1.0:
            raise ConfigurationError(
                "subthreshold_swing_factor must be >= 1 (ideality factor), "
                f"got {self.subthreshold_swing_factor!r}")
        if not 0.0 <= self.dibl < 1.0:
            raise ConfigurationError(f"dibl must be in [0, 1), got {self.dibl!r}")
        if self.body_effect < 0:
            raise ConfigurationError(
                f"body_effect must be non-negative, got {self.body_effect!r}")
        if self.vt_rolloff_length <= 0 or self.vt_rolloff_delta < 0:
            raise ConfigurationError("invalid Vt roll-off parameters")
        if self.i0_per_width <= 0 or self.min_width <= 0:
            raise ConfigurationError("i0_per_width and min_width must be positive")
        if self.temperature <= 0:
            raise ConfigurationError(
                f"temperature must be positive, got {self.temperature!r}")
        if self.vt_temp_coefficient < 0:
            raise ConfigurationError(
                "vt_temp_coefficient must be non-negative, got "
                f"{self.vt_temp_coefficient!r}")
        if self.gate_j0_per_area < 0 or self.gate_v0 <= 0:
            raise ConfigurationError("invalid gate-tunneling parameters")

    @property
    def thermal_voltage(self) -> float:
        """``kT/q`` at the characterization temperature [V]."""
        return constants.thermal_voltage(self.temperature)

    @property
    def total_correlation(self) -> TotalCorrelation:
        """Total (D2D + WID) channel-length correlation function."""
        return TotalCorrelation(self.wid_correlation, self.length)

    def with_correlation(self, wid: SpatialCorrelation) -> "Technology":
        """Copy of this technology with a different WID correlation."""
        return replace(self, wid_correlation=wid)

    def with_length_split(self, d2d_fraction: float) -> "Technology":
        """Copy with the L variance re-split between D2D and WID."""
        return replace(self, length=self.length.with_split(d2d_fraction))

    def with_wid_only(self) -> "Technology":
        """Copy with all L variance assigned to the WID component."""
        return self.with_length_split(0.0)

    def at_temperature(self, temperature: float) -> "Technology":
        """Copy retargeted to a junction temperature [K].

        Besides the thermal voltage, the threshold magnitudes drop by
        ``vt_temp_coefficient`` per kelvin of heating (the standard
        linearized Vt(T) model, ~1 mV/K), which is what makes leakage so
        strongly temperature-dependent.
        """
        if temperature <= 0:
            raise ConfigurationError(
                f"temperature must be positive, got {temperature!r}")
        delta = self.vt_temp_coefficient * (temperature - self.temperature)
        vt_n = self.vt.nominal_n - delta
        vt_p = self.vt.nominal_p - delta
        if vt_n <= 0 or vt_p <= 0:
            raise ConfigurationError(
                f"temperature {temperature} K drives a threshold through "
                "zero; the linearized Vt(T) model does not apply")
        from repro.process.parameters import VtSpec

        return replace(self, temperature=temperature,
                       vt=VtSpec(nominal_n=vt_n, nominal_p=vt_p,
                                 sigma=self.vt.sigma))


def synthetic_90nm(
    correlation_length: float = 1.0 * constants.MM,
    d2d_fraction: float = 0.5,
    relative_sigma_l: float = 0.05,
) -> Technology:
    """Build the default synthetic 90 nm-class technology.

    Parameters
    ----------
    correlation_length:
        Characteristic length of the WID exponential correlation [m].
        Published extractions report correlation lengths from a few
        hundred micrometres to a few millimetres.
    d2d_fraction:
        Fraction of channel-length *variance* assigned to the D2D
        component (an even split is the common assumption).
    relative_sigma_l:
        Total channel-length sigma as a fraction of nominal
        (``0.05`` means the 3-sigma spread is +/-15 %).
    """
    nominal_l = 50e-9
    sigma_l = relative_sigma_l * nominal_l
    length = ProcessParameter(
        name="L",
        nominal=nominal_l,
        sigma_d2d=(d2d_fraction ** 0.5) * sigma_l,
        sigma_wid=((1.0 - d2d_fraction) ** 0.5) * sigma_l,
    )
    vt = VtSpec(nominal_n=0.26, nominal_p=0.28, sigma=0.018)
    return Technology(
        name="synthetic-90nm",
        vdd=1.0,
        length=length,
        vt=vt,
        wid_correlation=ExponentialCorrelation(correlation_length),
    )
