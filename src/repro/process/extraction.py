"""Robust extraction of a valid spatial correlation function from noisy
measurements.

The paper relies on a spatial correlation function being available from
silicon measurements [Xiong, Zolotov & He, ISPD'06]. Raw sample
correlations measured on test structures are noisy and, taken pointwise,
generally do not form a valid (positive semi-definite) correlation
function. Following the spirit of that reference, this module projects
the measurements onto a parametric family that is valid by construction,
by least squares over the family parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Type

import numpy as np
from scipy import optimize

from repro.exceptions import CorrelationError
from repro.process.correlation import (
    ExponentialCorrelation,
    GaussianCorrelation,
    LinearCorrelation,
    SpatialCorrelation,
    SphericalCorrelation,
)

_FAMILIES: Dict[str, Type[SpatialCorrelation]] = {
    "exponential": ExponentialCorrelation,
    "gaussian": GaussianCorrelation,
    "linear": LinearCorrelation,
    "spherical": SphericalCorrelation,
}


@dataclass(frozen=True)
class CorrelationFit:
    """Result of a correlation-function extraction.

    Attributes
    ----------
    model:
        The fitted, valid-by-construction correlation function.
    family:
        Name of the parametric family.
    parameter:
        Fitted scale parameter (correlation length or support) [m].
    rmse:
        Root-mean-square residual of the fit.
    """

    model: SpatialCorrelation
    family: str
    parameter: float
    rmse: float


def _fit_family(family: str, distances: np.ndarray,
                correlations: np.ndarray) -> CorrelationFit:
    ctor = _FAMILIES[family]
    d_max = float(distances.max())

    def sse(parameter: float) -> float:
        model = ctor(parameter)
        residual = model(distances) - correlations
        return float(residual @ residual)

    result = optimize.minimize_scalar(
        sse, bounds=(1e-3 * d_max, 10.0 * d_max), method="bounded")
    parameter = float(result.x)
    model = ctor(parameter)
    rmse = float(np.sqrt(sse(parameter) / distances.size))
    return CorrelationFit(model=model, family=family,
                          parameter=parameter, rmse=rmse)


def extract_correlation(
    distances: Sequence[float],
    correlations: Sequence[float],
    family: Optional[str] = None,
) -> CorrelationFit:
    """Fit a valid correlation function to measured (distance, rho) pairs.

    Parameters
    ----------
    distances:
        Measurement separations [m]; must be positive.
    correlations:
        Sample correlation at each separation; values outside ``[-1, 1]``
        are rejected, values below zero are permitted (noise) but the
        fitted model is non-negative by construction.
    family:
        One of ``"exponential"``, ``"gaussian"``, ``"linear"``,
        ``"spherical"``; if ``None``, all families are tried and the one
        with the smallest RMSE is returned.

    Returns
    -------
    CorrelationFit
        Best valid fit; its ``model`` can be passed directly to
        :class:`repro.process.Technology`.
    """
    d = np.asarray(distances, dtype=float)
    r = np.asarray(correlations, dtype=float)
    if d.ndim != 1 or d.shape != r.shape or d.size < 3:
        raise CorrelationError(
            "distances and correlations must be equal-length 1-D arrays "
            "with at least 3 entries")
    if np.any(d <= 0):
        raise CorrelationError("measurement distances must be positive")
    if np.any(np.abs(r) > 1.0 + 1e-9):
        raise CorrelationError("sample correlations must lie in [-1, 1]")

    if family is not None:
        if family not in _FAMILIES:
            raise CorrelationError(
                f"unknown family {family!r}; choose from {sorted(_FAMILIES)}")
        return _fit_family(family, d, r)

    fits = [_fit_family(name, d, r) for name in sorted(_FAMILIES)]
    return min(fits, key=lambda fit: fit.rmse)
