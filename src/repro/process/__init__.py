"""Process variation models: D2D/WID parameter splits, spatial correlation
functions, technology presets, correlated-field sampling, and robust
correlation extraction.
"""

from repro.process.parameters import ProcessParameter, VtSpec
from repro.process.correlation import (
    AnisotropicCorrelation,
    SpatialCorrelation,
    ExponentialCorrelation,
    GaussianCorrelation,
    LinearCorrelation,
    SphericalCorrelation,
    CompositeCorrelation,
    TotalCorrelation,
)
from repro.process.technology import Technology, synthetic_90nm
from repro.process.field import CholeskyFieldSampler, CirculantFieldSampler, sample_field
from repro.process.extraction import extract_correlation, CorrelationFit
from repro.process.corners import (
    ProcessCorner,
    corner_report,
    corner_technology,
    leakage_corners,
)

__all__ = [
    "ProcessParameter",
    "VtSpec",
    "AnisotropicCorrelation",
    "SpatialCorrelation",
    "ExponentialCorrelation",
    "GaussianCorrelation",
    "LinearCorrelation",
    "SphericalCorrelation",
    "CompositeCorrelation",
    "TotalCorrelation",
    "Technology",
    "synthetic_90nm",
    "CholeskyFieldSampler",
    "CirculantFieldSampler",
    "sample_field",
    "extract_correlation",
    "CorrelationFit",
    "ProcessCorner",
    "corner_report",
    "corner_technology",
    "leakage_corners",
]
