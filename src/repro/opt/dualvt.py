"""Dual-threshold (dual-Vt) leakage recovery.

The canonical application of a full-chip leakage estimator in the
2000s design flow: offer every cell in two flavours — standard-Vt (SVT,
fast, leaky) and high-Vt (HVT, slower, exponentially less leaky) — and
swap non-critical instances to HVT until the chip meets its leakage
budget. This module builds the HVT flavour of the library (a threshold
offset applied at characterization time, exactly how foundries derive
multi-Vt corners), merges both flavours into a single characterized
library, and solves for the HVT fraction that meets a statistical
leakage budget.

Timing is out of scope (the paper's model is leakage-only); the
``max_hvt_fraction`` knob stands in for the timing-imposed limit on how
many instances may be swapped.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.analysis.distribution import LOGNORMAL, LeakageDistribution
from repro.cells.library import StandardCellLibrary
from repro.characterization.characterizer import (
    CellCharacterization,
    LibraryCharacterization,
    StateCharacterization,
    characterize_library,
)
from repro.core.api import FullChipLeakageEstimator, estimate_sweep
from repro.core.sweep import SweepAxis
from repro.core.usage import CellUsage
from repro.exceptions import ConfigurationError, DeltaError, EstimationError
from repro.process.parameters import VtSpec
from repro.process.technology import Technology

#: Suffix appended to HVT flavour cell names.
HVT_SUFFIX = "_HVT"


def hvt_technology(technology: Technology, vt_offset: float = 0.08
                   ) -> Technology:
    """The same process with both thresholds raised by ``vt_offset`` [V].

    An 80 mV offset is typical of a 90 nm SVT/HVT pair (roughly one
    decade of subthreshold leakage).
    """
    if vt_offset <= 0:
        raise ConfigurationError(
            f"vt_offset must be positive, got {vt_offset!r}")
    vt = technology.vt
    return dataclasses.replace(
        technology,
        name=f"{technology.name}-hvt",
        vt=VtSpec(nominal_n=vt.nominal_n + vt_offset,
                  nominal_p=vt.nominal_p + vt_offset,
                  sigma=vt.sigma))


@dataclass(frozen=True)
class DualVtCharacterization:
    """A merged SVT + HVT characterized library.

    ``characterization`` covers both flavours (HVT cells carry the
    :data:`HVT_SUFFIX`); ``hvt_leakage_ratio`` summarizes the average
    HVT/SVT mean-leakage ratio across cells.
    """

    library: StandardCellLibrary
    characterization: LibraryCharacterization
    vt_offset: float
    hvt_leakage_ratio: float

    def hvt_name(self, cell_name: str) -> str:
        return cell_name + HVT_SUFFIX


def build_dual_vt(library: StandardCellLibrary, technology: Technology,
                  vt_offset: float = 0.08) -> DualVtCharacterization:
    """Characterize the library in SVT and HVT flavours and merge them.

    The merged characterization attaches to the base technology (the
    channel-length statistics, which drive the correlation machinery,
    are flavour-independent); the HVT threshold enters through the
    stored per-state moments and fits.
    """
    svt_char = characterize_library(library, technology)
    hvt_char = characterize_library(library, hvt_technology(technology,
                                                            vt_offset))

    merged_cells = list(library.cells)
    table: Dict[str, CellCharacterization] = {
        name: svt_char[name] for name in library.names}
    ratios = []
    for name in library.names:
        hvt_cell = dataclasses.replace(library[name],
                                       name=name + HVT_SUFFIX)
        merged_cells.append(hvt_cell)
        states = tuple(
            StateCharacterization(
                cell_name=hvt_cell.name, state_label=state.state_label,
                mean=state.mean, std=state.std, fit=state.fit)
            for state in hvt_char[name].states)
        table[hvt_cell.name] = CellCharacterization(cell=hvt_cell,
                                                    states=states)
        svt_mean, _ = svt_char[name].moments_at(0.5)
        hvt_mean, _ = hvt_char[name].moments_at(0.5)
        ratios.append(hvt_mean / svt_mean)

    merged_library = StandardCellLibrary(merged_cells)
    merged = LibraryCharacterization(merged_library, technology,
                                     svt_char.mode, table)
    ratio = sum(ratios) / len(ratios)
    return DualVtCharacterization(library=merged_library,
                                  characterization=merged,
                                  vt_offset=vt_offset,
                                  hvt_leakage_ratio=ratio)


def dual_vt_usage(usage: CellUsage,
                  hvt_fraction: Union[float, Mapping[str, float]]
                  ) -> CellUsage:
    """Split a usage histogram between SVT and HVT flavours.

    ``hvt_fraction`` is either one global fraction or a per-cell map;
    each cell's usage mass is split ``(1-f)`` SVT / ``f`` HVT.
    """
    fractions: Dict[str, float] = {}
    for name, mass in usage.items():
        if isinstance(hvt_fraction, Mapping):
            f = float(hvt_fraction.get(name, 0.0))
        else:
            f = float(hvt_fraction)
        if not 0.0 <= f <= 1.0:
            raise ConfigurationError(
                f"HVT fraction for {name!r} must be in [0, 1], got {f!r}")
        if f < 1.0:
            fractions[name] = mass * (1.0 - f)
        if f > 0.0:
            fractions[name + HVT_SUFFIX] = mass * f
    return CellUsage(fractions)


def hvt_fraction_axis(usage: CellUsage,
                      fractions: Sequence[float]) -> SweepAxis:
    """A sweep axis over global HVT fractions of a base usage histogram.

    Each point replaces the usage with :func:`dual_vt_usage` at that
    fraction, so :func:`repro.core.api.estimate_sweep` over this axis is
    bit-identical to estimating each mixed usage in a loop.
    """
    values = tuple(float(f) for f in fractions)
    return SweepAxis(
        name="hvt_fraction",
        values=values,
        overrides=tuple({"usage": dual_vt_usage(usage, f)}
                        for f in values))


def _dyadic_candidates(lo: float, hi: float, depth: int) -> List[float]:
    """Every midpoint bisection over ``(lo, hi)`` can visit within
    ``depth`` iterations.

    Reproduces the solver's literal ``0.5 * (lo + hi)`` arithmetic so
    prefetched fractions compare equal (``==`` on floats) to the ones
    the bisection loop computes.
    """
    if depth <= 0:
        return []
    mid = 0.5 * (lo + hi)
    return ([mid] + _dyadic_candidates(lo, mid, depth - 1)
            + _dyadic_candidates(mid, hi, depth - 1))


def optimize_hvt_fraction(
    dual: DualVtCharacterization,
    usage: CellUsage,
    n_cells: int,
    width: float,
    height: float,
    budget: float,
    percentile: float = 0.99,
    signal_probability: float = 0.5,
    model: str = LOGNORMAL,
    max_hvt_fraction: float = 1.0,
    tolerance: float = 1e-3,
    include_vt: bool = False,
    prefetch_depth: int = 1,
    probe: str = "delta",
) -> Tuple[float, LeakageDistribution]:
    """Smallest global HVT fraction meeting a statistical leakage budget.

    Finds ``f`` such that the ``percentile`` quantile of total leakage is
    at most ``budget`` [A]. ``include_vt`` folds the RDF Vt mean
    multiplier into the distribution (match it to however the budget was
    derived). Returns ``(fraction, distribution)``; raises if even
    ``max_hvt_fraction`` cannot meet the budget (the design needs more
    than Vt-swapping).

    The bracket endpoints plus the first ``prefetch_depth`` levels of
    the bisection tree are evaluated up front through one
    :func:`repro.core.api.estimate_sweep` call, which amortizes the lag
    geometry, the correlation kernel, and (across fractions that share
    it) the RG mixture work; the bisection itself then runs unchanged,
    hitting the prefetched quantiles by exact float lookup.

    Bisection probes *outside* the prefetched set ride the delta
    engine: the HVT fraction moves the mixture weights along a line in
    component space, so a single
    :class:`~repro.delta.engine.DeltaProbe` setup answers every
    subsequent probe in O(grid) instead of one full RG moment build
    each (``docs/API.md``, "Incremental estimation"). Probe quantiles
    carry the delta closeness bound (~1e-8 relative — far below the
    ``tolerance`` of the fraction search); the *returned* distribution
    is always re-evaluated freshly, so the result stays bit-identical
    to the historical one-estimate-per-probe loop. ``probe="fresh"``
    forces full estimates for every probe (the pre-delta behaviour).
    """
    if budget <= 0:
        raise EstimationError(f"budget must be positive, got {budget!r}")
    if not 0.0 < max_hvt_fraction <= 1.0:
        raise EstimationError(
            f"max_hvt_fraction must be in (0, 1], got {max_hvt_fraction!r}")
    if probe not in ("delta", "fresh"):
        raise ConfigurationError(
            f"probe must be 'delta' or 'fresh', got {probe!r}")

    fractions = [0.0, max_hvt_fraction]
    fractions += [f for f in _dyadic_candidates(0.0, max_hvt_fraction,
                                                prefetch_depth)
                  if f not in fractions]
    axis = hvt_fraction_axis(usage, fractions)
    sweep = estimate_sweep(dual.characterization, None, n_cells, width,
                           height, axes=[axis],
                           signal_probability=signal_probability)
    cache: Dict[float, Tuple[float, LeakageDistribution]] = {}
    for f, estimate in zip(axis.values, sweep.estimates):
        distribution = LeakageDistribution.from_estimate(
            estimate, model, include_vt=include_vt)
        cache[f] = (float(distribution.quantile(percentile)), distribution)

    def fresh_quantile(f: float) -> Tuple[float, LeakageDistribution]:
        hit = cache.get(f)
        if hit is not None:
            return hit
        mixed = dual_vt_usage(usage, f)
        estimate = FullChipLeakageEstimator(
            dual.characterization, mixed, n_cells, width, height,
            signal_probability=signal_probability).estimate("auto")
        distribution = LeakageDistribution.from_estimate(
            estimate, model, include_vt=include_vt)
        return float(distribution.quantile(percentile)), distribution

    delta_state: List = [None]  # None = not built, False = unavailable

    def delta_quantile(f: float) -> Tuple[float, LeakageDistribution]:
        """Probe through the delta line; falls back to fresh estimates
        when the scenario is outside the delta engine's regime."""
        hit = cache.get(f)
        if hit is not None:
            return hit
        if delta_state[0] is None and probe == "delta":
            from repro.delta import BaseEstimate, DeltaProbe

            try:
                base = BaseEstimate.build(
                    dual.characterization, usage, n_cells, width, height,
                    signal_probability=signal_probability)
                delta_state[0] = DeltaProbe(
                    base, dual_vt_usage(usage, 1.0))
            except DeltaError:
                delta_state[0] = False
        if not delta_state[0]:
            return fresh_quantile(f)
        estimate = delta_state[0].probe(f)
        distribution = LeakageDistribution.from_estimate(
            estimate, model, include_vt=include_vt)
        return float(distribution.quantile(percentile)), distribution

    probe_at = fresh_quantile if probe == "fresh" else delta_quantile

    q0, dist0 = fresh_quantile(0.0)
    if q0 <= budget:
        return 0.0, dist0
    q_max, dist_max = fresh_quantile(max_hvt_fraction)
    if q_max > budget:
        raise EstimationError(
            f"budget {budget:.3e} A unreachable: even at HVT fraction "
            f"{max_hvt_fraction:g} the {percentile:.0%} leakage is "
            f"{q_max:.3e} A")

    lo, hi = 0.0, max_hvt_fraction
    dist = dist_max
    probed_hi = False
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        q_mid, dist_mid = probe_at(mid)
        if q_mid <= budget:
            hi, dist = mid, dist_mid
            probed_hi = mid not in cache and probe_at is delta_quantile \
                and bool(delta_state[0])
        else:
            lo = mid
    if probed_hi:
        # Pin the returned distribution to the fresh path (bit-identical
        # to the historical loop; the delta probes only steered the
        # search).
        _, dist = fresh_quantile(hi)
    return hi, dist
