"""Leakage optimization on top of the estimation engine."""

from repro.opt.dualvt import (
    DualVtCharacterization,
    build_dual_vt,
    dual_vt_usage,
    hvt_technology,
    optimize_hvt_fraction,
)

__all__ = [
    "DualVtCharacterization",
    "build_dual_vt",
    "dual_vt_usage",
    "hvt_technology",
    "optimize_hvt_fraction",
]
