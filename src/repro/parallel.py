"""Shared-memory worker pools for block-parallel estimators.

The fast exact-leakage engine distributes its pairwise block loop over a
``ProcessPoolExecutor``. The per-gate arrays (positions, sigmas, pair
parameters) are large and strictly read-only for the workers, so they
are published once through ``multiprocessing.shared_memory`` instead of
being pickled into every task. Workers attach the segments in their pool
initializer and receive only small task descriptors per call.

:func:`parallel_map` is the single entry point for data-parallel batch
work: it degrades to a plain in-process loop at ``n_jobs=1`` (no pool,
no copies), and otherwise guarantees that results come back in task
order, so reductions stay deterministic regardless of worker scheduling.

:class:`ThreadWorkerPool` is the long-lived counterpart used by the
estimation service: a fixed set of named daemon threads that each run a
caller-supplied drain loop (e.g. pulling jobs off a scheduler queue)
until the pool is stopped. Threads are the right grain there — the
numpy-heavy estimator kernels release the GIL, and each job can still
fan its inner block loop out over :func:`parallel_map` processes.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Mapping, NamedTuple, Optional, Sequence

import numpy as np

from repro.obs.trace import (Tracer, current_tracer, merge_remote_spans,
                             span, tracing_active)

# Worker-side state, populated by the pool initializer.
_WORKER_ARRAYS: Dict[str, np.ndarray] = {}
_WORKER_PAYLOAD: Any = None
_WORKER_SEGMENTS: List[shared_memory.SharedMemory] = []


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per CPU;
    other positive values are taken literally.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive or -1, got {n_jobs!r}")
    return n_jobs


class ThreadWorkerPool:
    """A supervised pool of long-lived worker threads running one drain loop.

    Parameters
    ----------
    worker_loop:
        ``worker_loop(stop: threading.Event)`` — called once per worker
        thread; expected to loop, polling/waiting for work, until
        ``stop`` is set. Exceptions escaping the loop terminate only
        that worker (they are recorded, not re-raised).
    n_workers:
        Thread count (see :func:`resolve_n_jobs`; ``-1`` for one per
        CPU).
    name:
        Thread-name prefix, for debuggability.
    restart:
        When True, a worker whose loop dies on an exception is replaced
        by a fresh thread (up to ``max_restarts`` total), so one crash
        never permanently shrinks serving capacity.
    on_crash:
        ``on_crash(exc)`` — called *in the dying thread* before the
        replacement starts; the estimation scheduler uses it to requeue
        the job the crashed worker was holding.
    max_restarts:
        Lifetime cap on replacement threads (crash + :meth:`replace`),
        a circuit against tight crash loops. When exhausted the pool
        shrinks and health checks surface it.

    The threads are daemonic so a forgotten pool never blocks
    interpreter shutdown; call :meth:`stop` for an orderly drain.
    """

    def __init__(self, worker_loop: Callable[[threading.Event], None],
                 n_workers: int = 2, name: str = "repro-worker",
                 restart: bool = False,
                 on_crash: Optional[Callable[[BaseException], None]] = None,
                 max_restarts: int = 100) -> None:
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._worker_loop = worker_loop
        self._name = name
        self._restart = restart
        self._on_crash = on_crash
        self._max_restarts = int(max_restarts)
        self.restarts = 0
        self._failures: List[BaseException] = []
        self._threads: List[threading.Thread] = []
        for index in range(resolve_n_jobs(n_workers)):
            thread = threading.Thread(
                target=self._run, args=(worker_loop,),
                name=f"{name}-{index}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _run(self, worker_loop) -> None:
        try:
            worker_loop(self._stop)
        except BaseException as exc:  # noqa: BLE001 - recorded for inspection
            self._failures.append(exc)
            if self._on_crash is not None:
                try:
                    self._on_crash(exc)
                except Exception:  # noqa: BLE001 - crash handler isolation
                    pass
            if self._restart:
                self._spawn_replacement(threading.current_thread())

    def _spawn_replacement(
            self, dead: Optional[threading.Thread]) -> Optional[
            threading.Thread]:
        with self._lock:
            if self._stop.is_set() or self.restarts >= self._max_restarts:
                return None
            if dead is not None:
                try:
                    self._threads.remove(dead)
                except ValueError:
                    return None  # already detached/replaced by someone else
            self.restarts += 1
            thread = threading.Thread(
                target=self._run, args=(self._worker_loop,),
                name=f"{self._name}-r{self.restarts}", daemon=True)
            self._threads.append(thread)
            # Start while still holding the lock: stop() snapshots the
            # thread list under this lock, and joining a registered but
            # never-started thread raises RuntimeError.
            thread.start()
        return thread

    def replace(self, ident: int) -> Optional[threading.Thread]:
        """Detach the (hung) worker with thread id ``ident``, start a fresh one.

        The detached thread is left to finish on its own (it is daemonic
        and no longer tracked, joined, or counted); the replacement
        restores capacity immediately. Returns the new thread, or None
        when ``ident`` is unknown, the pool is stopped, or the restart
        budget is spent.
        """
        with self._lock:
            dead = next((thread for thread in self._threads
                         if thread.ident == ident), None)
        if dead is None:
            return None
        return self._spawn_replacement(dead)

    def ensure_workers(self) -> int:
        """Replace tracked threads that died without a crash callback.

        Belt-and-braces sweep for the supervisor loop; returns how many
        replacements were started.
        """
        if not self._restart or self._stop.is_set():
            return 0
        with self._lock:
            dead = [thread for thread in self._threads
                    if thread.ident is not None and not thread.is_alive()]
        return sum(
            1 for thread in dead if self._spawn_replacement(thread))

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._threads)

    @property
    def alive_count(self) -> int:
        """Tracked workers still running their loop."""
        with self._lock:
            return sum(thread.is_alive() for thread in self._threads)

    @property
    def failures(self) -> List[BaseException]:
        """Exceptions that escaped worker loops (should be empty)."""
        return list(self._failures)

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def stop(self, join: bool = True, timeout: Optional[float] = 5.0) -> None:
        """Signal every worker to finish and (optionally) join them."""
        self._stop.set()
        with self._lock:
            threads = list(self._threads)
        if join:
            for thread in threads:
                thread.join(timeout=timeout)


def _export_arrays(arrays: Mapping[str, np.ndarray]):
    """Copy arrays into fresh shared-memory segments.

    Returns ``(specs, segments)`` where ``specs`` maps each array name to
    ``(segment_name, shape, dtype_str)`` for reconstruction in workers.
    """
    specs = {}
    segments = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        specs[name] = (segment.name, array.shape, array.dtype.str)
        segments.append(segment)
    return specs, segments


def _tracker_pid() -> Optional[int]:
    try:
        from multiprocessing import resource_tracker
        return resource_tracker._resource_tracker._pid
    except Exception:
        return None


def _worker_init(specs, payload, parent_tracker_pid) -> None:
    """Pool initializer: attach the parent's shared segments read-only."""
    _WORKER_ARRAYS.clear()
    _WORKER_PAYLOAD_SET(payload)
    for name, (segment_name, shape, dtype) in specs.items():
        segment = shared_memory.SharedMemory(name=segment_name)
        # Attaching registers the segment with this process's resource
        # tracker, but only the parent may unlink it. Forked workers
        # share the parent's tracker — unregistering there would drop
        # the parent's own registration — so unregister only when this
        # worker runs its own tracker (spawn start method).
        if _tracker_pid() != parent_tracker_pid:
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        _WORKER_SEGMENTS.append(segment)
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        array.flags.writeable = False
        _WORKER_ARRAYS[name] = array


def _WORKER_PAYLOAD_SET(payload) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


class _TracedResult(NamedTuple):
    """Worker result plus its finished span forest (tracing only).

    A distinct type (not a bare tuple) so unwrapping in the parent can
    never mistake a caller's tuple-shaped result for trace plumbing.
    """

    result: Any
    spans: List[Dict[str, Any]]


def _worker_call(item):
    fn, task = item[0], item[1]
    if len(item) > 2 and item[2]:
        # The parent traces: run under a fresh per-call tracer and ship
        # the finished spans home alongside the result. The fn itself is
        # untouched — bit-identity holds because spans only read clocks.
        tracer = Tracer("worker")
        with tracer:
            result = fn(task, _WORKER_ARRAYS, _WORKER_PAYLOAD)
        return _TracedResult(result, tracer.export()["spans"])
    return fn(task, _WORKER_ARRAYS, _WORKER_PAYLOAD)


def parallel_map(
    fn: Callable[[Any, Mapping[str, np.ndarray], Any], Any],
    tasks: Sequence[Any],
    *,
    arrays: Optional[Mapping[str, np.ndarray]] = None,
    payload: Any = None,
    n_jobs: Optional[int] = 1,
) -> List[Any]:
    """Evaluate ``fn(task, arrays, payload)`` for every task.

    Parameters
    ----------
    fn:
        A module-level (picklable) function. It receives the task
        descriptor, the dict of shared read-only arrays, and the payload.
    tasks:
        Task descriptors; kept small — they are pickled per call.
    arrays:
        Named read-only numpy arrays published to workers through shared
        memory (serial mode passes them through directly).
    payload:
        One picklable object shipped to each worker at pool start
        (e.g. a correlation model plus scalar options).
    n_jobs:
        Worker-process count (see :func:`resolve_n_jobs`).

    Returns
    -------
    The list of per-task results, in task order — independent of worker
    scheduling, so floating-point reductions over it are deterministic.

    When a tracer is active in the calling thread, worker processes run
    each task under a private tracer and return their finished spans
    with the result; the parent aggregates them per span name
    (:func:`repro.obs.merge_remote_spans`) and nests them — flagged as
    remote, since their wall time overlaps — under a ``parallel.map``
    span here. Results themselves are untouched either way.
    """
    arrays = dict(arrays or {})
    n_jobs = resolve_n_jobs(n_jobs)
    tasks = list(tasks)
    if n_jobs == 1 or len(tasks) <= 1:
        return [fn(task, arrays, payload) for task in tasks]

    traced = tracing_active()
    specs, segments = _export_arrays(arrays)
    try:
        chunksize = max(1, len(tasks) // (4 * n_jobs))
        with span("parallel.map", n_jobs=n_jobs,
                  n_tasks=len(tasks)) as map_span:
            with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(tasks)),
                    initializer=_worker_init,
                    initargs=(specs, payload, _tracker_pid())) as pool:
                results = list(pool.map(
                    _worker_call,
                    [(fn, task, traced) for task in tasks],
                    chunksize=chunksize))
            if traced:
                map_span.add_remote_children(merge_remote_spans(
                    item.spans for item in results))
                results = [item.result for item in results]
    finally:
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
    return results
