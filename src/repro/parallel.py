"""Shared-memory worker pools for block-parallel estimators.

The fast exact-leakage engine distributes its pairwise block loop over a
``ProcessPoolExecutor``. The per-gate arrays (positions, sigmas, pair
parameters) are large and strictly read-only for the workers, so they
are published once through ``multiprocessing.shared_memory`` instead of
being pickled into every task. Workers attach the segments in their pool
initializer and receive only small task descriptors per call.

:func:`parallel_map` is the single entry point for data-parallel batch
work: it degrades to a plain in-process loop at ``n_jobs=1`` (no pool,
no copies), and otherwise guarantees that results come back in task
order, so reductions stay deterministic regardless of worker scheduling.

:class:`ThreadWorkerPool` is the long-lived counterpart used by the
estimation service: a fixed set of named daemon threads that each run a
caller-supplied drain loop (e.g. pulling jobs off a scheduler queue)
until the pool is stopped. Threads are the right grain there — the
numpy-heavy estimator kernels release the GIL, and each job can still
fan its inner block loop out over :func:`parallel_map` processes.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Mapping, NamedTuple, Optional, Sequence

import numpy as np

from repro.exceptions import PoisonJobError, WorkerCrashedError
from repro.obs.trace import (Tracer, current_tracer, merge_remote_spans,
                             span, tracing_active)

# Worker-side state, populated by the pool initializer.
_WORKER_ARRAYS: Dict[str, np.ndarray] = {}
_WORKER_PAYLOAD: Any = None
_WORKER_SEGMENTS: List[shared_memory.SharedMemory] = []


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per CPU;
    other positive values are taken literally.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive or -1, got {n_jobs!r}")
    return n_jobs


class ThreadWorkerPool:
    """A supervised pool of long-lived worker threads running one drain loop.

    Parameters
    ----------
    worker_loop:
        ``worker_loop(stop: threading.Event)`` — called once per worker
        thread; expected to loop, polling/waiting for work, until
        ``stop`` is set. Exceptions escaping the loop terminate only
        that worker (they are recorded, not re-raised).
    n_workers:
        Thread count (see :func:`resolve_n_jobs`; ``-1`` for one per
        CPU).
    name:
        Thread-name prefix, for debuggability.
    restart:
        When True, a worker whose loop dies on an exception is replaced
        by a fresh thread (up to ``max_restarts`` total), so one crash
        never permanently shrinks serving capacity.
    on_crash:
        ``on_crash(exc)`` — called *in the dying thread* before the
        replacement starts; the estimation scheduler uses it to requeue
        the job the crashed worker was holding.
    max_restarts:
        Lifetime cap on replacement threads (crash + :meth:`replace`),
        a circuit against tight crash loops. When exhausted the pool
        shrinks and health checks surface it.

    The threads are daemonic so a forgotten pool never blocks
    interpreter shutdown; call :meth:`stop` for an orderly drain.
    """

    def __init__(self, worker_loop: Callable[[threading.Event], None],
                 n_workers: int = 2, name: str = "repro-worker",
                 restart: bool = False,
                 on_crash: Optional[Callable[[BaseException], None]] = None,
                 max_restarts: int = 100) -> None:
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._worker_loop = worker_loop
        self._name = name
        self._restart = restart
        self._on_crash = on_crash
        self._max_restarts = int(max_restarts)
        self.restarts = 0
        self._failures: List[BaseException] = []
        self._threads: List[threading.Thread] = []
        for index in range(resolve_n_jobs(n_workers)):
            thread = threading.Thread(
                target=self._run, args=(worker_loop,),
                name=f"{name}-{index}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _run(self, worker_loop) -> None:
        try:
            worker_loop(self._stop)
        except BaseException as exc:  # noqa: BLE001 - recorded for inspection
            self._failures.append(exc)
            if self._on_crash is not None:
                try:
                    self._on_crash(exc)
                except Exception:  # noqa: BLE001 - crash handler isolation
                    pass
            if self._restart:
                self._spawn_replacement(threading.current_thread())

    def _spawn_replacement(
            self, dead: Optional[threading.Thread]) -> Optional[
            threading.Thread]:
        with self._lock:
            if self._stop.is_set() or self.restarts >= self._max_restarts:
                return None
            if dead is not None:
                try:
                    self._threads.remove(dead)
                except ValueError:
                    return None  # already detached/replaced by someone else
            self.restarts += 1
            thread = threading.Thread(
                target=self._run, args=(self._worker_loop,),
                name=f"{self._name}-r{self.restarts}", daemon=True)
            self._threads.append(thread)
            # Start while still holding the lock: stop() snapshots the
            # thread list under this lock, and joining a registered but
            # never-started thread raises RuntimeError.
            thread.start()
        return thread

    def replace(self, ident: int) -> Optional[threading.Thread]:
        """Detach the (hung) worker with thread id ``ident``, start a fresh one.

        The detached thread is left to finish on its own (it is daemonic
        and no longer tracked, joined, or counted); the replacement
        restores capacity immediately. Returns the new thread, or None
        when ``ident`` is unknown, the pool is stopped, or the restart
        budget is spent.
        """
        with self._lock:
            dead = next((thread for thread in self._threads
                         if thread.ident == ident), None)
        if dead is None:
            return None
        return self._spawn_replacement(dead)

    def ensure_workers(self) -> int:
        """Replace tracked threads that died without a crash callback.

        Belt-and-braces sweep for the supervisor loop; returns how many
        replacements were started.
        """
        if not self._restart or self._stop.is_set():
            return 0
        with self._lock:
            dead = [thread for thread in self._threads
                    if thread.ident is not None and not thread.is_alive()]
        return sum(
            1 for thread in dead if self._spawn_replacement(thread))

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._threads)

    @property
    def alive_count(self) -> int:
        """Tracked workers still running their loop."""
        with self._lock:
            return sum(thread.is_alive() for thread in self._threads)

    @property
    def failures(self) -> List[BaseException]:
        """Exceptions that escaped worker loops (should be empty)."""
        return list(self._failures)

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def liveness(self) -> List[Dict[str, Any]]:
        """Per-worker liveness entries, shaped like
        :meth:`ProcessWorkerPool.liveness` (threads share the process
        pid and have no heartbeat or per-slot restart count)."""
        with self._lock:
            threads = list(self._threads)
        pid = os.getpid()
        return [{"worker": thread.name, "pid": pid,
                 "alive": thread.is_alive(), "restarts": None,
                 "heartbeat_age_s": None} for thread in threads]

    def stop(self, join: bool = True, timeout: Optional[float] = 5.0) -> None:
        """Signal every worker to finish and (optionally) join them."""
        self._stop.set()
        with self._lock:
            threads = list(self._threads)
        if join:
            for thread in threads:
                thread.join(timeout=timeout)


def _export_arrays(arrays: Mapping[str, np.ndarray]):
    """Copy arrays into fresh shared-memory segments.

    Returns ``(specs, segments)`` where ``specs`` maps each array name to
    ``(segment_name, shape, dtype_str)`` for reconstruction in workers.
    """
    specs = {}
    segments = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        specs[name] = (segment.name, array.shape, array.dtype.str)
        segments.append(segment)
    return specs, segments


def _tracker_pid() -> Optional[int]:
    try:
        from multiprocessing import resource_tracker
        return resource_tracker._resource_tracker._pid
    except Exception:
        return None


def _worker_init(specs, payload, parent_tracker_pid) -> None:
    """Pool initializer: attach the parent's shared segments read-only."""
    _WORKER_ARRAYS.clear()
    _WORKER_PAYLOAD_SET(payload)
    for name, (segment_name, shape, dtype) in specs.items():
        segment = shared_memory.SharedMemory(name=segment_name)
        # Attaching registers the segment with this process's resource
        # tracker, but only the parent may unlink it. Forked workers
        # share the parent's tracker — unregistering there would drop
        # the parent's own registration — so unregister only when this
        # worker runs its own tracker (spawn start method).
        if _tracker_pid() != parent_tracker_pid:
            try:
                from multiprocessing import resource_tracker
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        _WORKER_SEGMENTS.append(segment)
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        array.flags.writeable = False
        _WORKER_ARRAYS[name] = array


def _WORKER_PAYLOAD_SET(payload) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


class _TracedResult(NamedTuple):
    """Worker result plus its finished span forest (tracing only).

    A distinct type (not a bare tuple) so unwrapping in the parent can
    never mistake a caller's tuple-shaped result for trace plumbing.
    """

    result: Any
    spans: List[Dict[str, Any]]


def _worker_call(item):
    fn, task = item[0], item[1]
    if len(item) > 2 and item[2]:
        # The parent traces: run under a fresh per-call tracer and ship
        # the finished spans home alongside the result. The fn itself is
        # untouched — bit-identity holds because spans only read clocks.
        tracer = Tracer("worker")
        with tracer:
            result = fn(task, _WORKER_ARRAYS, _WORKER_PAYLOAD)
        return _TracedResult(result, tracer.export()["spans"])
    return fn(task, _WORKER_ARRAYS, _WORKER_PAYLOAD)


def parallel_map(
    fn: Callable[[Any, Mapping[str, np.ndarray], Any], Any],
    tasks: Sequence[Any],
    *,
    arrays: Optional[Mapping[str, np.ndarray]] = None,
    payload: Any = None,
    n_jobs: Optional[int] = 1,
) -> List[Any]:
    """Evaluate ``fn(task, arrays, payload)`` for every task.

    Parameters
    ----------
    fn:
        A module-level (picklable) function. It receives the task
        descriptor, the dict of shared read-only arrays, and the payload.
    tasks:
        Task descriptors; kept small — they are pickled per call.
    arrays:
        Named read-only numpy arrays published to workers through shared
        memory (serial mode passes them through directly).
    payload:
        One picklable object shipped to each worker at pool start
        (e.g. a correlation model plus scalar options).
    n_jobs:
        Worker-process count (see :func:`resolve_n_jobs`).

    Returns
    -------
    The list of per-task results, in task order — independent of worker
    scheduling, so floating-point reductions over it are deterministic.

    When a tracer is active in the calling thread, worker processes run
    each task under a private tracer and return their finished spans
    with the result; the parent aggregates them per span name
    (:func:`repro.obs.merge_remote_spans`) and nests them — flagged as
    remote, since their wall time overlaps — under a ``parallel.map``
    span here. Results themselves are untouched either way.
    """
    arrays = dict(arrays or {})
    n_jobs = resolve_n_jobs(n_jobs)
    tasks = list(tasks)
    if n_jobs == 1 or len(tasks) <= 1:
        return [fn(task, arrays, payload) for task in tasks]

    traced = tracing_active()
    specs, segments = _export_arrays(arrays)
    try:
        chunksize = max(1, len(tasks) // (4 * n_jobs))
        with span("parallel.map", n_jobs=n_jobs,
                  n_tasks=len(tasks)) as map_span:
            with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(tasks)),
                    initializer=_worker_init,
                    initargs=(specs, payload, _tracker_pid())) as pool:
                results = list(pool.map(
                    _worker_call,
                    [(fn, task, traced) for task in tasks],
                    chunksize=chunksize))
            if traced:
                map_span.add_remote_children(merge_remote_spans(
                    item.spans for item in results))
                results = [item.result for item in results]
    finally:
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
    return results


# ---------------------------------------------------------------------------
# Supervised process workers (crash-only serving)
# ---------------------------------------------------------------------------

#: Pool-stop sentinel message and child->parent message kinds.
_MSG_TASK = "task"
_MSG_STOP = "stop"
_MSG_READY = "ready"
_MSG_OK = "ok"
_MSG_ERR = "err"
_MSG_INIT_ERR = "init_err"


def _preferred_mp_context():
    """Fork where available (cheap, inherits imports); spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


def _portable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a stand-in.

    Typed library errors (``DeadlineExceeded``, ``UnknownBaseError``,
    ...) cross the process boundary intact so the parent re-raises the
    real thing; exotic unpicklable exceptions degrade to a
    ``RuntimeError`` carrying the repr rather than poisoning the pipe.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickle failure means "wrap it"
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _send_safely(conn, message) -> bool:
    try:
        conn.send(message)
        return True
    except Exception:  # noqa: BLE001 - parent gone / pipe torn: nothing to do
        return False


class WorkerProcessContext:
    """Child-side identity and heartbeat of one pool worker process.

    Available inside worker processes through
    :func:`process_worker_context`; the service's chaos hooks use
    :meth:`stall` to simulate a hard (GIL-held) hang — heartbeats stop,
    so the parent-side monitor must kill and replace the worker.
    """

    def __init__(self, slot: int, generation: int, heartbeat,
                 interval: float) -> None:
        self.slot = int(slot)
        self.generation = int(generation)
        #: Delivery attempt of the task currently running (1 on the
        #: first dispatch, higher after crash requeues) — lets work
        #: functions implement at-most-once side effects.
        self.attempt = 1
        self._heartbeat = heartbeat
        self._interval = float(interval)
        self._paused = threading.Event()

    def start(self) -> None:
        thread = threading.Thread(
            target=self._beat_loop, name="repro-heartbeat", daemon=True)
        thread.start()

    def _beat_loop(self) -> None:
        while True:
            if not self._paused.is_set():
                self._heartbeat.value = time.time()
            time.sleep(self._interval)

    def stall(self, seconds: float) -> None:
        """Stop heartbeating and block, as a truly hung worker would."""
        self._paused.set()
        try:
            time.sleep(seconds)
        finally:
            self._paused.clear()


_PROCESS_WORKER_CONTEXT: Optional[WorkerProcessContext] = None


def process_worker_context() -> Optional[WorkerProcessContext]:
    """The current process's worker context; None outside pool workers."""
    return _PROCESS_WORKER_CONTEXT


def _process_worker_main(conn, heartbeat, init_fn, work_fn, slot: int,
                         generation: int, heartbeat_interval: float) -> None:
    """Child entry point: init once, then serve tasks until stop/EOF."""
    global _PROCESS_WORKER_CONTEXT
    context = WorkerProcessContext(slot, generation, heartbeat,
                                   heartbeat_interval)
    _PROCESS_WORKER_CONTEXT = context
    heartbeat.value = time.time()
    context.start()
    try:
        state = init_fn() if init_fn is not None else None
    except BaseException as exc:  # noqa: BLE001 - shipped to the supervisor
        _send_safely(conn, (_MSG_INIT_ERR, _portable_exception(exc)))
        return
    if not _send_safely(conn, (_MSG_READY, os.getpid())):
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == _MSG_STOP:
            return
        payload, traced = message[1], message[2]
        context.attempt = message[3] if len(message) > 3 else 1
        spans = None
        try:
            if traced:
                tracer = Tracer("procworker")
                with tracer:
                    result = work_fn(state, payload)
                spans = tracer.export()["spans"]
            else:
                result = work_fn(state, payload)
        except BaseException as exc:  # noqa: BLE001 - typed errors ship home
            _send_safely(conn, (_MSG_ERR, _portable_exception(exc), spans))
            continue
        try:
            conn.send((_MSG_OK, result, spans))
        except OSError:
            return  # parent gone
        except Exception as exc:  # noqa: BLE001 - unpicklable result
            _send_safely(conn, (_MSG_ERR, _portable_exception(exc), spans))


class PoolFuture:
    """Handle for one task submitted to a :class:`ProcessWorkerPool`.

    Resolved exactly once by the supervising shepherd thread (requeues
    reuse the same future, so waiters survive worker crashes). ``spans``
    carries the worker's finished span forest when the task was traced.
    """

    __slots__ = ("payload", "key", "timeout", "trace", "attempts",
                 "result_value", "error", "spans", "_done")

    def __init__(self, payload: Any, key: Optional[str],
                 timeout: Optional[float], trace: bool) -> None:
        self.payload = payload
        self.key = key
        self.timeout = timeout
        self.trace = bool(trace)
        self.attempts = 0
        self.result_value: Any = None
        self.error: Optional[BaseException] = None
        self.spans: Optional[List[Dict[str, Any]]] = None
        self._done = threading.Event()

    def done(self) -> bool:
        return self._done.is_set()

    def _resolve(self, result: Any, spans=None) -> None:
        if self._done.is_set():
            return
        self.result_value = result
        self.spans = spans
        self._done.set()

    def _fail(self, error: BaseException, spans=None) -> None:
        if self._done.is_set():
            return
        self.error = error
        self.spans = spans
        self._done.set()

    def cancel(self, error: Optional[BaseException] = None) -> bool:
        """Fail the future if it has not resolved yet (drain path)."""
        if self._done.is_set():
            return False
        self._fail(error or WorkerCrashedError("task cancelled"))
        return True

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError("pool task did not complete in time")
        if self.error is not None:
            raise self.error
        return self.result_value


class _WorkerSlot:
    """Parent-side state for one supervised worker process."""

    __slots__ = ("index", "process", "conn", "heartbeat", "generation",
                 "consecutive_crashes", "pid")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.heartbeat = None
        self.generation = 0
        self.consecutive_crashes = 0
        self.pid: Optional[int] = None


class ProcessWorkerPool:
    """Supervised OS-process workers with heartbeats and crash requeue.

    The crash-only sibling of :class:`ThreadWorkerPool`: each worker is
    a separate process running ``work_fn(state, payload)`` where
    ``state = init_fn()`` is built once per process *after* the fork
    (so no parent locks or file handles are relied on). A shepherd
    thread per slot feeds tasks over a private pipe and supervises:

    - a worker that exits (any reason) or whose heartbeat goes stale
      for ``heartbeat_timeout`` seconds is killed and replaced, with
      exponential backoff (``restart_backoff * 2**crashes``, capped at
      ``max_backoff``) against tight crash loops;
    - the in-flight task is requeued up to ``max_task_retries`` times,
      then failed with :class:`~repro.exceptions.WorkerCrashedError`;
    - a content key that crashes workers ``poison_threshold`` times is
      quarantined — further submissions fail fast with
      :class:`~repro.exceptions.PoisonJobError` instead of crash-looping
      the fleet;
    - a task that overruns its per-task ``timeout`` gets its worker
      killed and fails with ``timeout_error`` (no requeue — deadlines
      are final).

    Traced tasks (``trace=True``) run under a private tracer in the
    worker and ship their finished span forest home on the future,
    exactly like :func:`parallel_map` workers do.
    """

    def __init__(self, work_fn: Callable[[Any, Any], Any],
                 n_workers: int = 2, *,
                 init_fn: Optional[Callable[[], Any]] = None,
                 name: str = "repro-procworker",
                 heartbeat_interval: float = 0.05,
                 heartbeat_timeout: float = 2.0,
                 restart_backoff: float = 0.05,
                 max_backoff: float = 2.0,
                 max_restarts: int = 100,
                 max_task_retries: int = 2,
                 poison_threshold: int = 3,
                 init_timeout: float = 120.0,
                 timeout_error: Optional[Callable[[str], BaseException]] = None,
                 mp_context=None) -> None:
        self._work_fn = work_fn
        self._init_fn = init_fn
        self._name = name
        self._heartbeat_interval = float(heartbeat_interval)
        self._heartbeat_timeout = float(heartbeat_timeout)
        self._restart_backoff = float(restart_backoff)
        self._max_backoff = float(max_backoff)
        self._max_restarts = int(max_restarts)
        self._max_task_retries = int(max_task_retries)
        self._poison_threshold = int(poison_threshold)
        self._init_timeout = float(init_timeout)
        self._timeout_error = timeout_error or (
            lambda detail: WorkerCrashedError(detail))
        self._ctx = mp_context or _preferred_mp_context()
        self._tasks: "queue.Queue[PoolFuture]" = queue.Queue()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self.restarts = 0
        self._failures: List[str] = []
        self._crash_counts: Dict[str, int] = {}
        self._quarantined: Dict[str, int] = {}
        self._slots = [_WorkerSlot(index)
                       for index in range(resolve_n_jobs(n_workers))]
        self._live_shepherds = len(self._slots)
        self._threads: List[threading.Thread] = []
        for slot in self._slots:
            thread = threading.Thread(
                target=self._shepherd_loop, args=(slot,),
                name=f"{name}-shepherd-{slot.index}", daemon=True)
            self._threads.append(thread)
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, payload: Any, *, key: Optional[str] = None,
               timeout: Optional[float] = None,
               trace: bool = False) -> PoolFuture:
        """Queue a task; returns a :class:`PoolFuture` resolved by the pool."""
        future = PoolFuture(payload, key, timeout, trace)
        if self._stop.is_set():
            future._fail(WorkerCrashedError("process pool is stopped"))
            return future
        if key is not None:
            with self._lock:
                crashes = self._quarantined.get(key)
            if crashes is not None:
                future._fail(PoisonJobError(
                    f"request {key[:12]} quarantined after {crashes} "
                    f"worker crashes"))
                return future
        self._tasks.put(future)
        if self._stop.is_set():
            # Raced with stop()/pool retirement past their queue drain:
            # no shepherd will ever pick this up, so fail it now
            # (idempotent if a live shepherd already grabbed it).
            future.cancel(WorkerCrashedError("process pool is stopped"))
        return future

    def run(self, payload: Any, *, key: Optional[str] = None,
            timeout: Optional[float] = None,
            wait: Optional[float] = None) -> Any:
        """Submit and wait; ships worker spans under the caller's tracer."""
        traced = tracing_active()
        future = self.submit(payload, key=key, timeout=timeout, trace=traced)
        result = future.result(wait)
        if traced and future.spans:
            with span("process.task", pool=self._name) as task_span:
                task_span.add_remote_children(
                    merge_remote_spans([future.spans]))
        return result

    # -- supervision -------------------------------------------------------

    def _shepherd_loop(self, slot: _WorkerSlot) -> None:
        try:
            while not self._stop.is_set():
                if slot.process is None or not slot.process.is_alive():
                    if slot.process is not None:
                        self._note_death(slot, "worker exited while idle")
                    if not self._respawn(slot):
                        return  # restart budget spent: slot retires
                    continue
                try:
                    task = self._tasks.get(timeout=0.1)
                except queue.Empty:
                    continue
                if task.done():
                    continue  # cancelled while queued
                self._run_task(slot, task)
        finally:
            self._shutdown_slot(slot)
            self._retire_shepherd()

    def _retire_shepherd(self) -> None:
        """Bookkeeping when a shepherd thread exits.

        When the LAST shepherd retires while the pool is still
        nominally running (every slot spent its restart budget), the
        pool flips to stopped and fails everything queued — otherwise
        queued futures, and submissions racing the flip, would hang
        forever with no worker left to pick them up.
        """
        with self._lock:
            self._live_shepherds -= 1
            last = self._live_shepherds <= 0
        if last and not self._stop.is_set():
            self._stop.set()
            self._drain_queue(
                "process pool retired: restart budget exhausted")

    def _drain_queue(self, detail: str) -> None:
        """Fail every queued task with a typed crash error."""
        while True:
            try:
                task = self._tasks.get_nowait()
            except queue.Empty:
                return
            task.cancel(WorkerCrashedError(detail))

    def _run_task(self, slot: _WorkerSlot, task: PoolFuture) -> None:
        task.attempts += 1
        if not _send_safely(slot.conn,
                            (_MSG_TASK, task.payload, task.trace,
                             task.attempts)):
            self._handle_crash(slot, task, "pipe broken on dispatch")
            return
        started = time.monotonic()
        deadline = (started + task.timeout
                    if task.timeout is not None else None)
        while True:
            try:
                if slot.conn.poll(self._heartbeat_interval):
                    message = slot.conn.recv()
                    if message[0] == _MSG_OK:
                        slot.consecutive_crashes = 0
                        self._forgive(task.key)
                        task._resolve(message[1], message[2])
                    elif message[0] == _MSG_ERR:
                        slot.consecutive_crashes = 0
                        self._forgive(task.key)
                        task._fail(message[1], message[2])
                    else:  # unexpected protocol message: treat as crash
                        self._handle_crash(slot, task,
                                           f"protocol error: {message[0]!r}")
                    return
            except (EOFError, OSError):
                self._handle_crash(slot, task, self._death_reason(slot))
                return
            if not slot.process.is_alive():
                code = slot.process.exitcode
                self._handle_crash(slot, task,
                                   f"worker exited with code {code}")
                return
            if (time.time() - slot.heartbeat.value
                    > self._heartbeat_timeout):
                self._kill_worker(slot)
                self._handle_crash(slot, task, "heartbeat missed")
                return
            if deadline is not None and time.monotonic() > deadline:
                self._kill_worker(slot)
                self._note_death(slot, "killed: task overran its deadline")
                task._fail(self._timeout_error(
                    "worker killed after task overran its deadline"))
                return
            if self._stop.is_set():
                self._kill_worker(slot)
                task._fail(WorkerCrashedError("pool stopped mid-task"))
                return

    def _handle_crash(self, slot: _WorkerSlot, task: PoolFuture,
                      reason: str) -> None:
        self._kill_worker(slot)
        self._note_death(slot, reason)
        if task.done():
            return
        if task.key is not None:
            with self._lock:
                count = self._crash_counts.get(task.key, 0) + 1
                self._crash_counts[task.key] = count
                if count >= self._poison_threshold:
                    self._quarantined[task.key] = count
                    poisoned = True
                else:
                    poisoned = False
            if poisoned:
                task._fail(PoisonJobError(
                    f"request {task.key[:12]} quarantined after {count} "
                    f"worker crashes ({reason})"))
                return
        if task.attempts > self._max_task_retries:
            task._fail(WorkerCrashedError(
                f"task failed after {task.attempts} attempts; "
                f"last worker death: {reason}"))
        else:
            self._tasks.put(task)

    def _forgive(self, key: Optional[str]) -> None:
        """Drop a key's crash count once a task with it completes.

        A key the worker survives (even with a typed error result) is
        not poison: without this, unrelated transient worker deaths
        (OOM, chaos kills) accumulated over a long-lived pool would
        eventually push a healthy key over ``poison_threshold``.
        """
        if key is None:
            return
        with self._lock:
            self._crash_counts.pop(key, None)

    def _death_reason(self, slot: _WorkerSlot) -> str:
        """Best-effort post-mortem when the pipe tears mid-task."""
        process = slot.process
        if process is not None:
            process.join(timeout=0.5)
            if process.exitcode is not None:
                return f"worker exited with code {process.exitcode}"
        return "pipe torn mid-task"

    def _note_death(self, slot: _WorkerSlot, reason: str) -> None:
        slot.consecutive_crashes += 1
        with self._lock:
            self._failures.append(
                f"{self._name}-{slot.index} gen{slot.generation}: {reason}")

    def _kill_worker(self, slot: _WorkerSlot) -> None:
        process = slot.process
        if process is None:
            return
        try:
            if process.is_alive():
                process.kill()
            process.join(timeout=2.0)
        except Exception:  # noqa: BLE001 - already-reaped races
            pass
        if slot.conn is not None:
            try:
                slot.conn.close()
            except Exception:  # noqa: BLE001
                pass
        slot.process = None
        slot.conn = None

    def _respawn(self, slot: _WorkerSlot) -> bool:
        with self._lock:
            if self._stop.is_set():
                return False
            if slot.generation > 0:
                if self.restarts >= self._max_restarts:
                    return False
                self.restarts += 1
        if slot.consecutive_crashes > 0:
            delay = min(
                self._restart_backoff
                * (2 ** (slot.consecutive_crashes - 1)),
                self._max_backoff)
            if self._stop.wait(delay):
                return False
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        heartbeat = self._ctx.Value("d", time.time(), lock=False)
        slot.generation += 1
        process = self._ctx.Process(
            target=_process_worker_main,
            args=(child_conn, heartbeat, self._init_fn, self._work_fn,
                  slot.index, slot.generation, self._heartbeat_interval),
            name=f"{self._name}-{slot.index}-g{slot.generation}",
            daemon=True)
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.heartbeat = heartbeat
        slot.pid = process.pid
        # Handshake: wait for "ready" so tasks never reach a worker that
        # failed to build its state (e.g. a corrupt cache directory).
        ready_by = time.monotonic() + self._init_timeout
        while True:
            try:
                if parent_conn.poll(self._heartbeat_interval):
                    message = parent_conn.recv()
                    if message[0] == _MSG_READY:
                        return True
                    self._kill_worker(slot)
                    self._note_death(
                        slot, f"init failed: {message[1]!r}")
                    return not self._stop.is_set()
            except (EOFError, OSError):
                self._kill_worker(slot)
                self._note_death(slot, "worker died during init")
                return not self._stop.is_set()
            if not process.is_alive():
                self._kill_worker(slot)
                self._note_death(
                    slot, f"worker exited during init "
                          f"(code {process.exitcode})")
                return not self._stop.is_set()
            if time.monotonic() > ready_by:
                self._kill_worker(slot)
                self._note_death(slot, "worker init timed out")
                return not self._stop.is_set()
            if self._stop.is_set():
                self._kill_worker(slot)
                return False

    def _shutdown_slot(self, slot: _WorkerSlot) -> None:
        if slot.conn is not None:
            _send_safely(slot.conn, (_MSG_STOP,))
        process = slot.process
        if process is not None:
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        slot.process = None
        if slot.conn is not None:
            try:
                slot.conn.close()
            except Exception:  # noqa: BLE001
                pass
            slot.conn = None

    # -- introspection -----------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self._slots)

    @property
    def alive_count(self) -> int:
        return sum(1 for slot in self._slots
                   if slot.process is not None and slot.process.is_alive())

    @property
    def failures(self) -> List[str]:
        """Worker-death reasons, oldest first (for diagnostics)."""
        with self._lock:
            return list(self._failures)

    @property
    def quarantined(self) -> Dict[str, int]:
        """Poisoned content keys -> crash count at quarantine time."""
        with self._lock:
            return dict(self._quarantined)

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def is_quarantined(self, key: str) -> bool:
        with self._lock:
            return key in self._quarantined

    def liveness(self) -> List[Dict[str, Any]]:
        """Per-worker liveness snapshot for health checks and metrics.

        Returns one entry per slot: worker name, pid, whether the
        process is currently alive, how many times the slot restarted,
        and the age of its last heartbeat in seconds.
        """
        now = time.time()
        entries = []
        for slot in self._slots:
            process = slot.process
            beat = slot.heartbeat.value if slot.heartbeat is not None else 0.0
            entries.append({
                "worker": f"{self._name}-{slot.index}",
                "pid": slot.pid,
                "alive": bool(process is not None and process.is_alive()),
                "restarts": max(0, slot.generation - 1),
                "heartbeat_age_s": (
                    round(now - beat, 6) if beat else None),
            })
        return entries

    def stop(self, join: bool = True, timeout: Optional[float] = 5.0) -> None:
        """Stop shepherds, fail queued tasks, and reap every worker."""
        self._stop.set()
        self._drain_queue("pool stopped before task ran")
        if join:
            for thread in self._threads:
                thread.join(timeout=timeout)
        for slot in self._slots:
            process = slot.process
            if process is not None and process.is_alive():
                process.kill()
                process.join(timeout=timeout)
                slot.process = None
