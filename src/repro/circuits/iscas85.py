"""ISCAS85-equivalent benchmark circuits.

The paper's Table 1 evaluates the Random-Gate late-mode estimator on the
placed-and-routed ISCAS85 suite. The original netlists are a proprietary
benchmark distribution; what the RG estimator consumes, however, is only
the *extracted high-level characteristics* — gate count, cell histogram,
and layout dimensions — plus a placement for the "true leakage"
reference. We therefore ship synthetic equivalents with the published
gate counts and the classic gate-type tabulations of the suite, mapped
onto this library's cells with a deterministic fan-in/drive split
(documented in DESIGN.md as a substitution).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cells.library import StandardCellLibrary
from repro.circuits.generator import random_circuit
from repro.circuits.netlist import Netlist
from repro.core.usage import CellUsage
from repro.exceptions import NetlistError

#: Published total gate counts and gate-function tabulations of the
#: ISCAS85 suite (functions: NOT, BUF, AND, NAND, OR, NOR, XOR).
ISCAS85_GATE_COUNTS: Dict[str, Dict[str, int]] = {
    "c432": {"NOT": 40, "AND": 4, "NAND": 79, "NOR": 19, "XOR": 18},
    "c499": {"NOT": 40, "AND": 56, "OR": 2, "XOR": 104},
    "c880": {"NOT": 63, "BUF": 26, "AND": 117, "NAND": 87, "OR": 29,
             "NOR": 61},
    "c1355": {"NOT": 40, "AND": 56, "NAND": 416, "OR": 2, "NOR": 32},
    "c1908": {"NOT": 277, "BUF": 162, "AND": 63, "NAND": 377, "NOR": 1},
    "c2670": {"NOT": 321, "BUF": 196, "AND": 333, "NAND": 254, "OR": 77,
              "NOR": 12},
    "c5315": {"NOT": 581, "BUF": 313, "AND": 718, "NAND": 454, "OR": 214,
              "NOR": 27},
    "c6288": {"NOT": 32, "AND": 246, "NOR": 2128},
    "c7552": {"NOT": 876, "BUF": 534, "AND": 776, "NAND": 1028, "OR": 244,
              "NOR": 54},
}

#: Deterministic split of each abstract gate function onto library
#: cells: (cell name, fraction of that function's instances).
_FUNCTION_SPLITS: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "NOT": (("INV_X1", 0.7), ("INV_X2", 0.3)),
    "BUF": (("BUF_X1", 0.6), ("BUF_X2", 0.4)),
    "AND": (("AND2_X1", 0.7), ("AND3_X1", 0.2), ("AND4_X1", 0.1)),
    "NAND": (("NAND2_X1", 0.7), ("NAND3_X1", 0.2), ("NAND4_X1", 0.1)),
    "OR": (("OR2_X1", 0.7), ("OR3_X1", 0.2), ("OR4_X1", 0.1)),
    "NOR": (("NOR2_X1", 0.7), ("NOR3_X1", 0.2), ("NOR4_X1", 0.1)),
    "XOR": (("XOR2_X1", 1.0),),
}


def iscas85_names() -> Tuple[str, ...]:
    """Benchmark names in the paper's Table 1 order."""
    return ("c499", "c1355", "c432", "c1908", "c880", "c2670", "c5315",
            "c7552", "c6288")


def iscas85_cell_counts(name: str) -> Dict[str, int]:
    """Library-cell instance counts for one benchmark.

    Function counts are apportioned across drive/fan-in variants with
    largest-remainder rounding, preserving the published totals exactly.
    """
    if name not in ISCAS85_GATE_COUNTS:
        raise NetlistError(
            f"unknown ISCAS85 circuit {name!r}; choose from "
            f"{sorted(ISCAS85_GATE_COUNTS)}")
    cell_counts: Dict[str, int] = {}
    for function, count in ISCAS85_GATE_COUNTS[name].items():
        splits = _FUNCTION_SPLITS[function]
        raw = [fraction * count for _, fraction in splits]
        base = [int(x) for x in raw]
        deficit = count - sum(base)
        remainders = sorted(range(len(raw)), key=lambda k: -(raw[k] - base[k]))
        for k in remainders[:deficit]:
            base[k] += 1
        for (cell_name, _), amount in zip(splits, base):
            if amount:
                cell_counts[cell_name] = (cell_counts.get(cell_name, 0)
                                          + amount)
    return cell_counts


def iscas85_usage(name: str) -> CellUsage:
    """The benchmark's frequency-of-use histogram."""
    return CellUsage.from_counts(iscas85_cell_counts(name))


def iscas85_circuit(
    name: str,
    library: StandardCellLibrary,
    rng: Optional[np.random.Generator] = None,
) -> Netlist:
    """Build the synthetic ISCAS85-equivalent netlist (unplaced).

    The gate multiset matches the published counts exactly;
    connectivity is randomized (leakage depends on types, states and
    positions, not wiring — see DESIGN.md).
    """
    rng = np.random.default_rng(hash(name) % (2 ** 32)) if rng is None else rng
    counts = iscas85_cell_counts(name)
    n_gates = sum(counts.values())
    netlist = random_circuit(
        library, CellUsage.from_counts(counts), n_gates, rng=rng, name=name,
        exact_histogram=True)
    expected = ISCAS85_GATE_COUNTS[name]
    if n_gates != sum(expected.values()):
        raise NetlistError(f"{name}: gate count drifted")
    return netlist
