"""Structural Verilog netlist reader/writer.

Supports the gate-level structural subset that placement and synthesis
tools exchange::

    module top (a, b, clk, y);
      input a, b, clk;
      output y;
      wire n1, n2;
      NAND2_X1 u1 (.I0(a), .I1(b), .Y(n1));
      DFF_X1  r1 (.D(n1), .CK(clk), .Q(n2));
      INV_X1  u2 (.A(n2), .Y(y));
    endmodule

Instance types must name cells of the target library; named port
connections are required (positional connections are ambiguous for
multi-output cells). Gates may appear in any order — the parser
topologically sorts the combinational cloud and treats sequential-cell
outputs as boundaries, exactly like the ``.bench`` reader.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cells.library import StandardCellLibrary
from repro.circuits.netlist import GateInstance, Netlist
from repro.exceptions import NetlistError

#: Cell families whose outputs are sequential boundaries.
_SEQUENTIAL_FAMILIES = {"DFF", "DFFR", "DFFS", "LATCH", "SRAM6T", "TINV"}

_MODULE_RE = re.compile(
    r"module\s+(?P<name>\w+)\s*\((?P<ports>[^)]*)\)\s*;", re.DOTALL)
_DECL_RE = re.compile(r"^(?P<kind>input|output|wire)\s+(?P<nets>.+)$",
                      re.DOTALL)
_INSTANCE_RE = re.compile(
    r"^(?P<cell>\w+)\s+(?P<inst>\w+)\s*\((?P<conns>.*)\)$", re.DOTALL)
_PORT_RE = re.compile(r"\.(?P<pin>\w+)\s*\(\s*(?P<net>[\w.\[\]]+)\s*\)")


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def parse_verilog(text: str, library: StandardCellLibrary,
                  name: Optional[str] = None) -> Netlist:
    """Parse structural Verilog into a :class:`Netlist`."""
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if not module:
        raise NetlistError("no module declaration found")
    module_name = name or module.group("name")
    body = text[module.end():]
    end = body.find("endmodule")
    if end < 0:
        raise NetlistError(f"{module_name}: missing endmodule")
    body = body[:end]

    inputs: List[str] = []
    raw_instances: List[Tuple[str, str, Dict[str, str]]] = []
    for statement in body.split(";"):
        statement = statement.strip()
        if not statement:
            continue
        decl = _DECL_RE.match(statement)
        if decl:
            nets = [n.strip() for n in decl.group("nets").split(",")
                    if n.strip()]
            if decl.group("kind") == "input":
                inputs.extend(nets)
            continue  # outputs and wires carry no structure we need
        instance = _INSTANCE_RE.match(statement)
        if not instance:
            raise NetlistError(
                f"{module_name}: cannot parse statement: {statement!r}")
        cell_name = instance.group("cell")
        if cell_name not in library:
            raise NetlistError(
                f"{module_name}: unknown cell type {cell_name!r} "
                f"(instance {instance.group('inst')!r})")
        connections = dict(_PORT_RE.findall(instance.group("conns")))
        if not connections:
            raise NetlistError(
                f"{module_name}: instance {instance.group('inst')!r} needs "
                "named port connections (.pin(net))")
        raw_instances.append((instance.group("inst"), cell_name,
                              connections))

    gates: List[GateInstance] = []
    for inst, cell_name, connections in raw_instances:
        cell = library[cell_name]
        pin_nets = {}
        for pin in cell.netlist.inputs:
            if pin not in connections:
                raise NetlistError(
                    f"{module_name}: instance {inst!r} leaves input pin "
                    f"{pin!r} unconnected")
            pin_nets[pin] = connections[pin]
        output_nets = {}
        for pin in cell.outputs:
            if pin in connections:
                output_nets[pin] = connections[pin]
        if not output_nets:
            raise NetlistError(
                f"{module_name}: instance {inst!r} has no connected output")
        unknown = set(connections) - set(cell.netlist.inputs) \
            - set(cell.outputs)
        if unknown:
            raise NetlistError(
                f"{module_name}: instance {inst!r} connects unknown pins "
                f"{sorted(unknown)}")
        gates.append(GateInstance(name=inst, cell_name=cell_name,
                                  pin_nets=pin_nets,
                                  output_nets=output_nets))

    ordered, pseudo = _topological_order(gates, inputs, library,
                                         module_name)
    netlist = Netlist(name=module_name, gates=ordered,
                      primary_inputs=tuple(inputs),
                      pseudo_inputs=tuple(pseudo))
    netlist.validate()
    return netlist


def _topological_order(gates: Sequence[GateInstance],
                       primary_inputs: Sequence[str],
                       library: StandardCellLibrary,
                       name: str) -> Tuple[List[GateInstance], List[str]]:
    """Order gates drivers-first; sequential outputs become boundaries."""
    sequential = [g for g in gates
                  if library[g.cell_name].family in _SEQUENTIAL_FAMILIES]
    combinational = [g for g in gates
                     if library[g.cell_name].family
                     not in _SEQUENTIAL_FAMILIES]
    pseudo = [net for gate in sequential
              for net in gate.output_nets.values()]
    available: Set[str] = set(primary_inputs) | set(pseudo)

    by_output: Dict[str, GateInstance] = {}
    for gate in combinational:
        for net in gate.output_nets.values():
            by_output[net] = gate

    ordered: List[GateInstance] = []
    placed: Set[str] = set()
    visiting: Set[str] = set()

    def visit(gate: GateInstance) -> None:
        if gate.name in placed:
            return
        if gate.name in visiting:
            raise NetlistError(f"{name}: combinational loop through "
                               f"{gate.name!r}")
        visiting.add(gate.name)
        for net in gate.pin_nets.values():
            if net in available:
                continue
            driver = by_output.get(net)
            if driver is None:
                raise NetlistError(f"{name}: net {net!r} read by "
                                   f"{gate.name!r} has no driver")
            visit(driver)
        ordered.append(gate)
        placed.add(gate.name)
        available.update(gate.output_nets.values())
        visiting.discard(gate.name)

    for gate in combinational:
        visit(gate)
    for gate in sequential:
        for net in gate.pin_nets.values():
            if net not in available:
                raise NetlistError(
                    f"{name}: sequential input net {net!r} undriven")
        ordered.append(gate)
    return ordered, pseudo


def write_verilog(netlist: Netlist, library: StandardCellLibrary) -> str:
    """Serialize a netlist to structural Verilog."""
    driven = [net for gate in netlist.gates
              for net in gate.output_nets.values()]
    read = {net for gate in netlist.gates
            for net in gate.pin_nets.values()}
    outputs = sorted(set(driven) - read)
    wires = sorted(set(driven) - set(outputs))
    ports = [*netlist.primary_inputs, *outputs]

    lines = [f"// {netlist.name} — written by repro",
             f"module {netlist.name} ({', '.join(ports)});"]
    if netlist.primary_inputs:
        lines.append(f"  input {', '.join(netlist.primary_inputs)};")
    if outputs:
        lines.append(f"  output {', '.join(outputs)};")
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    for gate in netlist.gates:
        connections = [f".{pin}({net})"
                       for pin, net in gate.pin_nets.items()]
        connections += [f".{pin}({net})"
                        for pin, net in gate.output_nets.items()]
        lines.append(f"  {gate.cell_name} {gate.name} "
                     f"({', '.join(connections)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def load_verilog(path: str, library: StandardCellLibrary,
                 name: Optional[str] = None) -> Netlist:
    """Read a structural Verilog file from disk."""
    with open(path) as handle:
        return parse_verilog(handle.read(), library, name=name)
