"""Late-mode extraction of the high-level design characteristics.

Given a (placed) netlist, extract exactly what the Random-Gate model
needs (paper Fig. 1): the cell usage histogram, the cell count, and the
layout dimensions. This is the paper's footnote-1 step — constant or
linear time in the netlist size.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.cells.library import StandardCellLibrary
from repro.circuits.netlist import Netlist
from repro.circuits.placement import die_dimensions
from repro.core.usage import CellUsage


@dataclass(frozen=True)
class DesignCharacteristics:
    """The four high-level characteristics of a candidate design."""

    usage: CellUsage
    n_cells: int
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height


def extract_state_weights(netlist, library: StandardCellLibrary,
                          net_probabilities) -> dict:
    """Average per-cell-type state distributions (late-mode refinement).

    Given propagated net probabilities, each gate instance has its own
    input-state distribution; averaging them per cell type yields the
    extracted state-weight vectors that refine the Random-Gate mixture
    beyond a single chip-wide signal probability.
    """
    import numpy as np

    sums: dict = {}
    counts: dict = {}
    for gate in netlist.gates:
        cell = library[gate.cell_name]
        pin_probs = {pin: net_probabilities[net]
                     for pin, net in gate.pin_nets.items()}
        weights = cell.state_probabilities_per_pin(pin_probs)
        if gate.cell_name in sums:
            sums[gate.cell_name] = sums[gate.cell_name] + weights
            counts[gate.cell_name] += 1
        else:
            sums[gate.cell_name] = weights.copy()
            counts[gate.cell_name] = 1
    return {name: sums[name] / counts[name] for name in sums}


def extract_characteristics(
    netlist: Netlist,
    library: StandardCellLibrary,
    aspect: float = 1.0,
    utilization: float = 0.7,
) -> DesignCharacteristics:
    """Extract the RG model inputs from a netlist.

    If the netlist is placed, the layout dimensions are the bounding box
    of the placement (plus half a site pitch of margin on each side);
    otherwise they are derived from summed cell areas at the given
    utilization.
    """
    usage = CellUsage.from_counts(netlist.cell_counts())
    n_cells = netlist.n_gates
    if netlist.is_placed:
        positions = netlist.positions()
        span = positions.max(axis=0) - positions.min(axis=0)
        # Positions are site centers; pad by the implied site pitch so
        # the extracted area covers the actual die.
        pitch = span / max(1.0, np.sqrt(n_cells) - 1.0)
        width = float(span[0] + pitch[0])
        height = float(span[1] + pitch[1])
    else:
        width, height = die_dimensions(netlist, library, aspect, utilization)
    return DesignCharacteristics(usage=usage, n_cells=n_cells,
                                 width=width, height=height)
