"""ISCAS ``.bench`` netlist reader/writer.

The ISCAS85/89 benchmark suites circulate in the ``.bench`` format::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = NOT(G10)
    G12 = DFF(G11)

This module parses that format into this library's gate-level
:class:`~repro.circuits.netlist.Netlist` (mapping abstract functions
onto library cells) and writes netlists back out. With it, the
Table-1 flow runs on *real* ISCAS85 netlists whenever the benchmark
files are available, instead of the synthetic equivalents.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.cells.library import StandardCellLibrary
from repro.circuits.netlist import GateInstance, Netlist
from repro.exceptions import NetlistError

#: Default mapping from .bench function names (by fan-in where needed)
#: to library cells. ``None`` fan-in means any.
_DEFAULT_CELL_MAP: Dict[Tuple[str, int], str] = {
    ("NOT", 1): "INV_X1",
    ("BUF", 1): "BUF_X1",
    ("BUFF", 1): "BUF_X1",
    ("AND", 2): "AND2_X1", ("AND", 3): "AND3_X1", ("AND", 4): "AND4_X1",
    ("NAND", 2): "NAND2_X1", ("NAND", 3): "NAND3_X1",
    ("NAND", 4): "NAND4_X1",
    ("OR", 2): "OR2_X1", ("OR", 3): "OR3_X1", ("OR", 4): "OR4_X1",
    ("NOR", 2): "NOR2_X1", ("NOR", 3): "NOR3_X1", ("NOR", 4): "NOR4_X1",
    ("XOR", 2): "XOR2_X1",
    ("XNOR", 2): "XNOR2_X1",
    ("DFF", 1): "DFF_X1",
}

_LINE_RE = re.compile(
    r"^\s*(?P<out>[\w.\[\]]+)\s*=\s*(?P<fn>\w+)\s*\((?P<args>[^)]*)\)\s*$")
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<net>[\w.\[\]]+)\)\s*$",
                    re.IGNORECASE)


def _decompose_wide_gate(function: str, inputs: List[str], out: str,
                         counter: Iterable[int]) -> List[Tuple[str, List[str], str]]:
    """Break a >4-input AND/OR/NAND/NOR into a tree of library-sized gates.

    Returns a list of (function, inputs, output_net) triples in
    topological order. De Morgan-free: an N-wide NAND becomes AND stages
    feeding a final NAND, preserving the boolean function.
    """
    base = {"NAND": "AND", "NOR": "OR"}.get(function, function)
    work = list(inputs)
    stages: List[Tuple[str, List[str], str]] = []
    while len(work) > 4:
        chunk, work = work[:4], work[4:]
        net = f"{out}__t{next(counter)}"
        stages.append((base, chunk, net))
        work.insert(0, net)
    stages.append((function, work, out))
    return stages


def parse_bench(text: str, library: StandardCellLibrary,
                name: str = "bench",
                cell_map: Optional[Mapping[Tuple[str, int], str]] = None
                ) -> Netlist:
    """Parse ``.bench`` text into a placed-ready :class:`Netlist`.

    Gates wider than the library's 4-input cells are decomposed into
    trees. Flip-flop ``CK`` pins are wired to a synthesized global
    ``clk`` primary input. The gate list is returned in topological
    order (computed here; .bench files are not ordered).
    """
    mapping = dict(_DEFAULT_CELL_MAP)
    if cell_map:
        mapping.update(cell_map)

    primary_inputs: List[str] = []
    raw_gates: List[Tuple[str, str, List[str]]] = []  # (out, fn, ins)
    needs_clock = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        io_match = _IO_RE.match(stripped)
        if io_match:
            if io_match.group("kind").upper() == "INPUT":
                primary_inputs.append(io_match.group("net"))
            continue  # OUTPUT declarations carry no structure we need
        gate_match = _LINE_RE.match(stripped)
        if not gate_match:
            raise NetlistError(
                f"{name}: cannot parse .bench line {lineno}: {line!r}")
        function = gate_match.group("fn").upper()
        inputs = [tok.strip() for tok in gate_match.group("args").split(",")
                  if tok.strip()]
        if function == "DFF":
            needs_clock = True
        raw_gates.append((gate_match.group("out"), function, inputs))

    if needs_clock:
        primary_inputs.append("clk")

    # Decompose wide gates, then topologically order.
    counter = iter(range(10 ** 9))
    flat: List[Tuple[str, str, List[str]]] = []
    for out, function, inputs in raw_gates:
        key = (function, len(inputs))
        if key in mapping or function == "DFF":
            flat.append((out, function, inputs))
        elif function in ("AND", "OR", "NAND", "NOR") and len(inputs) > 4:
            for fn, ins, net in _decompose_wide_gate(function, inputs, out,
                                                     counter):
                flat.append((net, fn, ins))
        else:
            raise NetlistError(
                f"{name}: no library cell for {function} with "
                f"{len(inputs)} inputs (net {out!r})")

    by_output = {out: (out, fn, ins) for out, fn, ins in flat}
    # Flip-flop outputs are sequential boundaries: available from the
    # start (pseudo inputs), the flip-flops themselves placed last.
    pseudo_inputs = [out for out, function, _ in flat if function == "DFF"]
    available = set(primary_inputs) | set(pseudo_inputs)
    ordered: List[Tuple[str, str, List[str]]] = []
    visiting: set = set()

    def visit(out: str) -> None:
        if out in available:
            return
        if out in visiting:
            raise NetlistError(f"{name}: combinational loop through {out!r}")
        if out not in by_output:
            raise NetlistError(f"{name}: undriven net {out!r}")
        visiting.add(out)
        _, __, inputs = by_output[out]
        for net in inputs:
            visit(net)
        ordered.append(by_output[out])
        available.add(out)
        visiting.discard(out)

    for out, function, _ in flat:
        if function != "DFF":
            visit(out)
    for out, function, inputs in flat:
        if function == "DFF":
            for net in inputs:
                if net not in available:
                    raise NetlistError(
                        f"{name}: flip-flop input {net!r} undriven")
            ordered.append((out, function, inputs))

    gates: List[GateInstance] = []
    for index, (out, function, inputs) in enumerate(ordered):
        if function == "DFF":
            cell_name = mapping[("DFF", 1)]
            pin_nets = {"D": inputs[0], "CK": "clk"}
        else:
            cell_name = mapping[(function, len(inputs))]
            cell = library[cell_name]
            pin_nets = dict(zip(cell.netlist.inputs, inputs))
        cell = library[cell_name]
        output_pin = cell.outputs[0]
        gates.append(GateInstance(
            name=f"g{index}_{out}", cell_name=cell_name,
            pin_nets=pin_nets, output_nets={output_pin: out}))
    netlist = Netlist(name=name, gates=gates,
                      primary_inputs=tuple(primary_inputs),
                      pseudo_inputs=tuple(pseudo_inputs))
    netlist.validate()
    return netlist


_WRITE_FUNCTION: Dict[str, str] = {
    "INV": "NOT", "BUF": "BUFF", "CLKBUF": "BUFF",
    "NAND2": "NAND", "NAND3": "NAND", "NAND4": "NAND",
    "NOR2": "NOR", "NOR3": "NOR", "NOR4": "NOR",
    "AND2": "AND", "AND3": "AND", "AND4": "AND",
    "OR2": "OR", "OR3": "OR", "OR4": "OR",
    "XOR2": "XOR", "XNOR2": "XNOR", "DFF": "DFF",
}


def write_bench(netlist: Netlist, library: StandardCellLibrary) -> str:
    """Serialize a netlist to ``.bench`` text.

    Only cells with a .bench-expressible function are supported (the
    basic gate families and DFF); complex cells raise.
    """
    lines = [f"# {netlist.name} — written by repro"]
    for net in netlist.primary_inputs:
        lines.append(f"INPUT({net})")
    driven = set()
    for gate in netlist.gates:
        driven.update(gate.output_nets.values())
    read = {net for gate in netlist.gates
            for net in gate.pin_nets.values()}
    for net in sorted(driven - read):
        lines.append(f"OUTPUT({net})")
    for gate in netlist.gates:
        cell = library[gate.cell_name]
        function = _WRITE_FUNCTION.get(cell.family)
        if function is None:
            raise NetlistError(
                f"{netlist.name}: cell family {cell.family!r} has no .bench "
                "equivalent")
        out_net = gate.output_nets[cell.outputs[0]]
        if function == "DFF":
            args = [gate.pin_nets["D"]]
        else:
            args = [gate.pin_nets[pin] for pin in cell.netlist.inputs]
        lines.append(f"{out_net} = {function}({', '.join(args)})")
    return "\n".join(lines) + "\n"


def load_bench(path: str, library: StandardCellLibrary,
               name: Optional[str] = None) -> Netlist:
    """Read a ``.bench`` file from disk."""
    with open(path) as handle:
        text = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return parse_bench(text, library, name=name)
