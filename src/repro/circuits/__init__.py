"""Gate-level circuits: netlists, random circuit generation matching a
usage histogram, placement, ISCAS85-equivalent benchmarks, and
high-level characteristic extraction (the late-mode path)."""

from repro.circuits.netlist import GateInstance, Netlist
from repro.circuits.generator import random_circuit
from repro.circuits.placement import (
    die_dimensions,
    grid_placement,
    clustered_placement,
)
from repro.circuits.iscas85 import ISCAS85_GATE_COUNTS, iscas85_circuit, iscas85_names
from repro.circuits.benchio import load_bench, parse_bench, write_bench
from repro.circuits.verilogio import load_verilog, parse_verilog, write_verilog
from repro.circuits.extraction import (
    DesignCharacteristics,
    extract_characteristics,
    extract_state_weights,
)

__all__ = [
    "GateInstance",
    "Netlist",
    "random_circuit",
    "die_dimensions",
    "grid_placement",
    "clustered_placement",
    "ISCAS85_GATE_COUNTS",
    "iscas85_circuit",
    "iscas85_names",
    "extract_characteristics",
    "extract_state_weights",
    "DesignCharacteristics",
    "load_bench",
    "parse_bench",
    "write_bench",
    "load_verilog",
    "parse_verilog",
    "write_verilog",
]
