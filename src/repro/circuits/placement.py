"""Placement: assigning gates to RG-grid site positions.

The paper's validation places randomly generated and benchmark circuits
and compares their "true leakage" against the RG estimate. The RG model
is placement-agnostic (it only sees dimensions and counts), so the
*style* of placement is exactly what its accuracy depends on:

* :func:`grid_placement` — random assignment of gates to grid sites, the
  behaviour of a typical placer with no leakage-relevant type bias;
* :func:`clustered_placement` — gates of equal type packed together, the
  adversarial case for the RG assumption (used by the placement
  ablation benchmark).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.cells.library import StandardCellLibrary
from repro.circuits.netlist import Netlist
from repro.core.chip_model import FullChipModel
from repro.exceptions import NetlistError


def die_dimensions(netlist: Netlist, library: StandardCellLibrary,
                   aspect: float = 1.0,
                   utilization: float = 0.7) -> Tuple[float, float]:
    """Die ``(width, height)`` [m] from summed cell areas.

    ``utilization`` is the placement density (cell area / die area);
    the remainder models routing and whitespace, consistent with the
    paper's note that a site's pitch includes "the interconnect that may
    be associated with" a cell.
    """
    if not 0.0 < utilization <= 1.0:
        raise NetlistError(f"utilization must be in (0, 1], got {utilization!r}")
    total_area = sum(library[g.cell_name].area for g in netlist.gates)
    die_area = total_area / utilization
    height = math.sqrt(die_area / aspect)
    return aspect * height, height


def grid_placement(netlist: Netlist, width: float, height: float,
                   rng: Optional[np.random.Generator] = None) -> FullChipModel:
    """Place gates at randomly assigned RG-grid site centers.

    Mutates the netlist's gate positions and returns the grid model.
    """
    rng = np.random.default_rng() if rng is None else rng
    chip = FullChipModel.from_design(netlist.n_gates, width, height)
    positions = chip.site_positions()
    order = rng.permutation(chip.n_sites)[: netlist.n_gates]
    for gate, site in zip(netlist.gates, order):
        gate.position = (float(positions[site, 0]), float(positions[site, 1]))
    return chip


def clustered_placement(netlist: Netlist, width: float, height: float,
                        rng: Optional[np.random.Generator] = None
                        ) -> FullChipModel:
    """Place gates grouped by cell type (adversarial for the RG model).

    Gates of the same type occupy contiguous site ranges in row-major
    order, so the spatial correlation couples preferentially to
    same-type pairs.
    """
    rng = np.random.default_rng() if rng is None else rng
    chip = FullChipModel.from_design(netlist.n_gates, width, height)
    positions = chip.site_positions()
    order = sorted(range(netlist.n_gates),
                   key=lambda k: netlist.gates[k].cell_name)
    for site, gate_index in enumerate(order):
        gate = netlist.gates[gate_index]
        gate.position = (float(positions[site, 0]), float(positions[site, 1]))
    return chip
