"""Random circuit generation matching a usage histogram.

Section 3.1.1 of the paper validates the Random-Gate model on "a large
number of circuits randomly generated so as to match a frequency of cell
usage that was specified a priori". This generator reproduces that
construction: the type multiset is the exact largest-remainder
apportionment of the histogram (or an i.i.d. sample of it), gate order
is randomized, and input pins are wired to randomly chosen earlier
outputs so the result is a valid topological DAG.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cells.library import StandardCellLibrary
from repro.circuits.netlist import GateInstance, Netlist
from repro.core.usage import CellUsage
from repro.exceptions import NetlistError


def random_circuit(
    library: StandardCellLibrary,
    usage: CellUsage,
    n_gates: int,
    rng: Optional[np.random.Generator] = None,
    name: str = "random",
    exact_histogram: bool = True,
    n_primary_inputs: Optional[int] = None,
) -> Netlist:
    """Generate a random netlist whose cell mix matches ``usage``.

    Parameters
    ----------
    library:
        Cell library supplying pin names for each type.
    usage:
        Target frequency-of-use distribution.
    n_gates:
        Number of gate instances.
    exact_histogram:
        If true (the paper's construction), instance counts match the
        histogram exactly via largest-remainder apportionment; otherwise
        types are sampled i.i.d. (so the realized histogram fluctuates,
        as it would across members of the RG model's design family).
    n_primary_inputs:
        Number of primary-input nets; defaults to
        ``max(8, n_gates // 10)``.
    """
    if n_gates <= 0:
        raise NetlistError(f"n_gates must be positive, got {n_gates!r}")
    rng = np.random.default_rng() if rng is None else rng
    for cell_name in usage.names:
        if cell_name not in library:
            raise NetlistError(
                f"usage references unknown cell {cell_name!r}")

    if exact_histogram:
        types: List[str] = []
        for cell_name, count in usage.counts_for(n_gates).items():
            types.extend([cell_name] * count)
    else:
        types = list(usage.sample(n_gates, rng))
    rng.shuffle(types)

    if n_primary_inputs is None:
        n_primary_inputs = max(8, n_gates // 10)
    primary_inputs = tuple(f"pi{k}" for k in range(n_primary_inputs))

    gates: List[GateInstance] = []
    available_nets: List[str] = list(primary_inputs)
    for index, cell_name in enumerate(types):
        cell = library[cell_name]
        instance = f"g{index}"
        pin_nets = {}
        for pin in cell.netlist.inputs:
            choice = int(rng.integers(0, len(available_nets)))
            pin_nets[pin] = available_nets[choice]
        output_nets = {}
        for pin in cell.outputs:
            net = f"{instance}_{pin}"
            output_nets[pin] = net
        gates.append(GateInstance(name=instance, cell_name=cell_name,
                                  pin_nets=pin_nets,
                                  output_nets=output_nets))
        available_nets.extend(output_nets.values())

    netlist = Netlist(name=name, gates=gates, primary_inputs=primary_inputs)
    netlist.validate()
    return netlist
