"""Gate-level netlists.

A :class:`Netlist` is an ordered list of :class:`GateInstance` objects
connected by named nets. Gates are stored in topological order for the
combinational core (the generator produces them that way), which the
signal-probability propagation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NetlistError


@dataclass
class GateInstance:
    """One placed gate.

    Attributes
    ----------
    name:
        Instance name, unique within the netlist.
    cell_name:
        Library cell type.
    pin_nets:
        Mapping of input pin name to driving net.
    output_nets:
        Mapping of output pin name to driven net.
    position:
        ``(x, y)`` placement coordinates [m], or ``None`` pre-placement.
    """

    name: str
    cell_name: str
    pin_nets: Dict[str, str] = field(default_factory=dict)
    output_nets: Dict[str, str] = field(default_factory=dict)
    position: Optional[Tuple[float, float]] = None


class Netlist:
    """A gate-level design.

    Parameters
    ----------
    name:
        Design name.
    gates:
        Gate instances in topological order (drivers before loads for
        the combinational portion).
    primary_inputs:
        Net names driven from outside.
    pseudo_inputs:
        Sequential-boundary nets (flip-flop outputs feeding logic that
        precedes the flip-flop in gate order). They are treated as
        available from the start for validation and carry probability
        0.5 during signal propagation until their driver is reached.
    """

    def __init__(self, name: str, gates: Sequence[GateInstance],
                 primary_inputs: Sequence[str] = (),
                 pseudo_inputs: Sequence[str] = ()) -> None:
        if not gates:
            raise NetlistError(f"{name}: empty netlist")
        instance_names = [g.name for g in gates]
        if len(set(instance_names)) != len(instance_names):
            raise NetlistError(f"{name}: duplicate gate instance names")
        self.name = name
        self.gates: List[GateInstance] = list(gates)
        self.primary_inputs: Tuple[str, ...] = tuple(primary_inputs)
        self.pseudo_inputs: Tuple[str, ...] = tuple(pseudo_inputs)

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self):
        return iter(self.gates)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    def cell_counts(self) -> Dict[str, int]:
        """Instance count per library cell type."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.cell_name] = counts.get(gate.cell_name, 0) + 1
        return counts

    def positions(self) -> np.ndarray:
        """Placement coordinates as an ``(n, 2)`` array [m].

        Raises if any gate is unplaced.
        """
        coords = []
        for gate in self.gates:
            if gate.position is None:
                raise NetlistError(
                    f"{self.name}: gate {gate.name!r} is not placed")
            coords.append(gate.position)
        return np.asarray(coords, dtype=float)

    @property
    def is_placed(self) -> bool:
        return all(gate.position is not None for gate in self.gates)

    def driven_nets(self) -> Dict[str, str]:
        """Map of net name to the driving gate's instance name."""
        drivers: Dict[str, str] = {}
        for gate in self.gates:
            for net in gate.output_nets.values():
                if net in drivers:
                    raise NetlistError(
                        f"{self.name}: net {net!r} has multiple drivers "
                        f"({drivers[net]!r} and {gate.name!r})")
                drivers[net] = gate.name
        return drivers

    def validate(self) -> None:
        """Check structural sanity: every input net has a driver or is a
        primary input, and gate order is topological (flip-flop outputs
        registered as pseudo inputs may be read before their driver)."""
        available = set(self.primary_inputs) | set(self.pseudo_inputs)
        for gate in self.gates:
            for pin, net in gate.pin_nets.items():
                if net not in available:
                    raise NetlistError(
                        f"{self.name}: gate {gate.name!r} pin {pin!r} reads "
                        f"net {net!r} before it is driven (order is not "
                        "topological, or the net is undriven)")
            for net in gate.output_nets.values():
                available.add(net)
