"""repro — statistical full-chip leakage estimation with within-die
correlation.

A faithful, self-contained reproduction of Heloue, Azizi & Najm,
"Modeling and Estimation of Full-Chip Leakage Current Considering
Within-Die Correlation" (DAC 2007): a Random-Gate full-chip model that
predicts the mean and variance of total subthreshold leakage from
high-level design characteristics, in O(n) or O(1) time, plus every
substrate the paper relies on (a subthreshold circuit solver, a 62-cell
library, analytical and Monte-Carlo characterization, correlated-field
sampling, circuit generation and placement).

Quickstart::

    from repro import quick_estimate
    estimate = quick_estimate(n_cells=100_000, width=2e-3, height=2e-3)
    print(estimate.mean, estimate.std)
"""

from repro.cells import build_library, StandardCellLibrary
from repro.characterization import characterize_library, LibraryCharacterization
from repro.core import (
    CellUsage,
    FullChipLeakageEstimator,
    FullChipModel,
    LeakageEstimate,
    RandomGate,
    RGCorrelation,
    expand_mixture,
)
from repro.process import Technology, synthetic_90nm

__version__ = "1.0.0"

__all__ = [
    "build_library",
    "StandardCellLibrary",
    "characterize_library",
    "LibraryCharacterization",
    "CellUsage",
    "FullChipLeakageEstimator",
    "FullChipModel",
    "LeakageEstimate",
    "RandomGate",
    "RGCorrelation",
    "expand_mixture",
    "Technology",
    "synthetic_90nm",
    "quick_estimate",
    "ServiceClient",
    "EstimateRequest",
]


def __getattr__(name):
    # The service layer is imported lazily: it pulls in the HTTP stack
    # and reads __version__ from this module at import time, so a plain
    # `import repro` stays light and free of circular imports.
    if name in ("ServiceClient", "EstimateRequest"):
        from repro.service import EstimateRequest, ServiceClient

        return {"ServiceClient": ServiceClient,
                "EstimateRequest": EstimateRequest}[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def quick_estimate(n_cells: int, width: float, height: float,
                   usage: CellUsage = None,
                   technology: Technology = None,
                   signal_probability: float = 0.5,
                   method: str = "auto") -> LeakageEstimate:
    """One-call full-chip leakage estimate with library defaults.

    Builds the synthetic 90 nm technology and 62-cell library,
    characterizes it analytically, and estimates the leakage of a chip
    with ``n_cells`` cells on a ``width x height`` die. For repeated
    estimation construct a :class:`FullChipLeakageEstimator` once
    instead — characterization dominates the cost of this convenience
    wrapper.
    """
    technology = synthetic_90nm() if technology is None else technology
    library = build_library()
    characterization = characterize_library(library, technology)
    if usage is None:
        usage = CellUsage.uniform(library.names)
    estimator = FullChipLeakageEstimator(
        characterization, usage, n_cells, width, height,
        signal_probability=signal_probability)
    return estimator.estimate(method)
