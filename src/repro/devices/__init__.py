"""Transistor-level device models (subthreshold leakage)."""

from repro.devices.mosfet import DeviceModel, NMOS, PMOS

__all__ = ["DeviceModel", "NMOS", "PMOS"]
