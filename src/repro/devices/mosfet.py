"""Subthreshold MOSFET model.

Leakage current is determined primarily by the channel length ``L`` and
the threshold voltage ``Vt`` (Section 2.1 of the paper), so the device
model concentrates on an accurate subthreshold characteristic. The
channel current is written in a *symmetric* forward/reverse-injection
form,

.. math::

   I = I_0 W\\,[E(V_s, V_d) - E(V_d, V_s)], \\qquad
   E(x, y) = \\exp\\frac{V_g - x - V_t^{eff}(x, y)}{n\\,kT/q}

which is exact for a barrier-controlled subthreshold channel, vanishes
smoothly at zero bias, and — crucially for transmission-gate cells — is
correct regardless of which terminal happens to sit at the higher
potential. The effective threshold captures the three mechanisms that
matter for leakage statistics:

* **Vt roll-off** — ``Vt`` drops for short ``L`` as
  ``-delta * exp(-L / l0)``; per the paper this is the component of
  "Vt variation" that is lumped into the ``L`` dependence.
* **DIBL** — ``Vt`` drops by ``eta * Vds``.
* **Body effect** — ``Vt`` rises (linearized) with reverse source-body
  bias, which is what makes stacked OFF transistors leak far less than a
  single OFF transistor (the stack effect).

The same smooth expression is evaluated for ON devices, where the large
exponential makes them behave as near-shorts in the DC solve; this keeps
the cell-leakage Newton solver free of topology special cases.

All functions are vectorized over numpy arrays so that Monte-Carlo
characterization evaluates thousands of samples per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.process.technology import Technology

#: Device polarity markers.
NMOS = "nmos"
PMOS = "pmos"

#: Exponent clamp — keeps intermediate Newton iterates finite without
#: affecting converged leakage values (exp(60) ~ 1e26 >> any real bias).
_EXP_CLAMP = 60.0


def _clamped_exp(x: np.ndarray) -> np.ndarray:
    return np.exp(np.clip(x, -_EXP_CLAMP, _EXP_CLAMP))


@dataclass(frozen=True)
class DeviceModel:
    """Technology-bound MOSFET evaluator.

    Global parameters come from the :class:`~repro.process.Technology`;
    per-device quantities (channel length, RDF threshold shift, width)
    are passed to each call so that samples can be vectorized.
    """

    technology: Technology

    @property
    def _n_vt(self) -> float:
        return (self.technology.subthreshold_swing_factor
                * self.technology.thermal_voltage)

    def rolloff(self, length) -> np.ndarray:
        """Threshold reduction (positive for short channels) due to Vt
        roll-off at channel length ``length`` [V], referenced to zero at
        the nominal length."""
        tech = self.technology
        l_nom = tech.length.nominal
        return tech.vt_rolloff_delta * (
            np.exp(-np.asarray(length, dtype=float) / tech.vt_rolloff_length)
            - np.exp(-l_nom / tech.vt_rolloff_length))

    def nmos_branch(self, vg, vs, vd, length, width,
                    vt_shift=0.0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """NMOS channel current flowing from the drain node to the source
        node, with derivatives w.r.t. the two channel-terminal voltages.

        Node voltages are absolute (body at 0 V). Positive for
        ``vd > vs``; the symmetric form remains correct when the labeled
        terminals are reverse-biased. Returns ``(i, di_dvs, di_dvd)``.
        """
        tech = self.technology
        n_vt = self._n_vt
        gamma, eta = tech.body_effect, tech.dibl
        vg = np.asarray(vg, dtype=float)
        vs = np.asarray(vs, dtype=float)
        vd = np.asarray(vd, dtype=float)

        base = (vg - tech.vt.nominal_n - np.asarray(vt_shift, dtype=float)
                + self.rolloff(length)) / n_vt
        # E(x, y): injection over the barrier at terminal x, with DIBL
        # set by the far terminal y.
        fwd = _clamped_exp(base + (-(1.0 + gamma) * vs + eta * (vd - vs)) / n_vt)
        rev = _clamped_exp(base + (-(1.0 + gamma) * vd + eta * (vs - vd)) / n_vt)
        scale = tech.i0_per_width * np.asarray(width, dtype=float)

        current = scale * (fwd - rev)
        di_dvs = scale * (fwd * (-(1.0 + gamma + eta)) - rev * eta) / n_vt
        di_dvd = scale * (fwd * eta + rev * (1.0 + gamma + eta)) / n_vt
        return current, di_dvs, di_dvd

    def pmos_branch(self, vg, vs, vd, length, width,
                    vt_shift=0.0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """PMOS channel current flowing from the source node to the drain
        node, with derivatives w.r.t. the two channel-terminal voltages.

        Node voltages are absolute (body at VDD). Positive for
        ``vs > vd``. Returns ``(i, di_dvs, di_dvd)``.
        """
        tech = self.technology
        n_vt = self._n_vt
        gamma, eta = tech.body_effect, tech.dibl
        vg = np.asarray(vg, dtype=float)
        vs = np.asarray(vs, dtype=float)
        vd = np.asarray(vd, dtype=float)

        base = (-vg - tech.vt.nominal_p - np.asarray(vt_shift, dtype=float)
                + self.rolloff(length) - gamma * tech.vdd) / n_vt
        fwd = _clamped_exp(base + ((1.0 + gamma) * vs + eta * (vs - vd)) / n_vt)
        rev = _clamped_exp(base + ((1.0 + gamma) * vd + eta * (vd - vs)) / n_vt)
        scale = tech.i0_per_width * np.asarray(width, dtype=float)

        current = scale * (fwd - rev)
        di_dvs = scale * (fwd * (1.0 + gamma + eta) + rev * eta) / n_vt
        di_dvd = scale * (-fwd * eta - rev * (1.0 + gamma + eta)) / n_vt
        return current, di_dvs, di_dvd

    def subthreshold_current(self, kind: str, vgs, vds, vsb,
                             length, width, vt_shift=0.0) -> np.ndarray:
        """Channel current magnitude [A] for gate-source / drain-source
        bias magnitudes ``vgs``/``vds`` and reverse source-body bias
        ``vsb``. Convenience wrapper over the branch evaluators."""
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vsb = np.asarray(vsb, dtype=float)
        if kind == NMOS:
            vs = vsb
            current, _, __ = self.nmos_branch(
                vgs + vs, vs, vs + vds, length, width, vt_shift)
            return current
        if kind == PMOS:
            vs = self.technology.vdd - vsb
            current, _, __ = self.pmos_branch(
                vs - vgs, vs, vs - vds, length, width, vt_shift)
            return current
        raise ValueError(f"kind must be {NMOS!r} or {PMOS!r}, got {kind!r}")

    def off_current(self, kind: str, length, width, vds=None,
                    vt_shift=0.0) -> np.ndarray:
        """Leakage of a single OFF device (``Vgs = 0``, grounded source).

        ``vds`` defaults to the full supply voltage.
        """
        if vds is None:
            vds = self.technology.vdd
        return self.subthreshold_current(
            kind, 0.0, vds, 0.0, length, width, vt_shift)

    def gate_current(self, kind: str, vg, vs, vd, length,
                     width) -> np.ndarray:
        """Gate-oxide tunneling current magnitude [A].

        A simple exponential oxide-field model,
        ``I = J0*W*L * mean(exp((Vox_s - VDD)/v0), exp((Vox_d - VDD)/v0))``
        with ``Vox`` the gate-to-terminal voltage magnitude in the
        tunneling-active polarity (gate high for NMOS, channel high for
        PMOS). Calibrated so a minimum ON device draws ~1 nA at the
        default 90 nm-class ``J0`` — the optional second leakage
        mechanism alongside subthreshold conduction.
        """
        i_gs, i_gd = self.gate_current_split(kind, vg, vs, vd, length, width)
        return i_gs + i_gd

    def gate_current_split(self, kind: str, vg, vs, vd, length,
                           width) -> Tuple[np.ndarray, np.ndarray]:
        """Gate tunneling split per channel terminal.

        Returns ``(i_gate_source, i_gate_drain)`` magnitudes [A]; the
        current flows gate -> terminal for NMOS (tunneling when the gate
        is high) and terminal -> gate for PMOS.
        """
        tech = self.technology
        vg = np.asarray(vg, dtype=float)
        vs = np.asarray(vs, dtype=float)
        vd = np.asarray(vd, dtype=float)
        area = np.asarray(width, dtype=float) * np.asarray(length,
                                                           dtype=float)
        scale = 0.5 * tech.gate_j0_per_area * area
        if kind == NMOS:
            vox_s, vox_d = vg - vs, vg - vd
        elif kind == PMOS:
            vox_s, vox_d = vs - vg, vd - vg
        else:
            raise ValueError(f"kind must be {NMOS!r} or {PMOS!r}, got {kind!r}")
        return (scale * _clamped_exp((vox_s - tech.vdd) / tech.gate_v0),
                scale * _clamped_exp((vox_d - tech.vdd) / tech.gate_v0))

    def effective_vt(self, kind: str, length, vds, vsb, vt_shift=0.0) -> np.ndarray:
        """Effective threshold magnitude [V] at the given bias."""
        tech = self.technology
        vt0 = tech.vt.nominal_n if kind == NMOS else tech.vt.nominal_p
        return (vt0 + np.asarray(vt_shift, dtype=float)
                + tech.body_effect * np.asarray(vsb, dtype=float)
                - tech.dibl * np.asarray(vds, dtype=float)
                - self.rolloff(length))
