"""Pairwise cross-moment algebra for incremental estimation.

The exact RG covariance (paper eqs. 9-13) at a grid point ``rho_g`` is
the quadratic form

``C_g = alpha^T M_g alpha - mu_tot^2``

where ``M_g[m, n] = E[X_m X_n](rho_g)`` is the pairwise cross-moment
matrix — a function of the fitted ``(a, b, c)`` triplets and the process
statistics only, *independent of the mixture weights*. Everything this
module computes exploits that split:

* :func:`component_params` — the per-component ``(a, h, k)`` reduction
  of the fits (the same precomputation
  :meth:`RGCorrelation._exact_covariance_grid` performs);
* :func:`cross_block` — an arbitrary ``rows x cols`` sub-block of
  ``M_g`` over the whole grid, element-for-element identical to the
  entries the numpy backend's :meth:`rg_covariance_grid` builds
  internally (same expression forms, so IEEE results match bit for
  bit);
* :func:`quadratic_products` — the one-pass chunked contraction
  producing everything :class:`~repro.delta.base.BaseEstimate` and
  :class:`~repro.delta.engine.DeltaProbe` snapshot: ``vq_g = a^T M_g
  a``, ``U_g = M_g a``, and optional line coefficients ``b_g = d^T M_g
  a`` / ``c_g = d^T M_g d`` for a probe direction ``d``;
* :class:`CrossMomentTable` — a cached full ``(G, q, q)`` tensor whose
  :meth:`contract` re-runs the backend's final ``alphas @ cross[g] @
  alphas - mu_tot**2`` contraction verbatim, making usage-only rebuilds
  of the covariance grid **bit-identical** to a fresh
  ``rg_covariance_grid`` call.

An edit with support ``S`` (the components whose weight changed) then
updates the quadratic form in ``o(q)``:

``vq' = vq + 2 (U[:, S] @ delta) + delta^T M_SS delta``

with only the ``|S| x |S|`` block ``M_SS`` recomputed; committing the
edit additionally refreshes ``U' = U + M[:, S] @ delta`` so further
edits compose.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import MomentExistenceError

#: Bound on ``chunk * q * q`` elements per batched temporary — the same
#: ~32 MiB float64 budget the numpy backend uses for its covariance
#: grid, keeping peak memory flat for any mixture size.
_CHUNK_ELEMENTS = 1 << 22


def component_params(fits, mu_l: float,
                     sigma_l: float) -> Tuple[np.ndarray, np.ndarray,
                                              np.ndarray]:
    """Per-component ``(a, h, k)`` from the fitted ``(a, b, c)`` triplets.

    Exactly the reduction ``RGCorrelation._exact_covariance_grid``
    performs before handing off to the backend kernel, so cross-moment
    entries built from these parameters match the backend's bit for bit.
    """
    a = np.array([fit.c for fit in fits]) * sigma_l ** 2
    if np.any(1.0 - 2.0 * a <= 0):
        raise MomentExistenceError(
            "a mixture component has c*sigma^2 >= 1/2; its pairwise "
            "moments do not exist")
    h = np.array([(fit.b + 2.0 * fit.c * mu_l) * sigma_l for fit in fits])
    k = np.array([math.log(fit.a) + fit.b * mu_l + fit.c * mu_l ** 2
                  for fit in fits])
    return a, h, k


def _pair_blocks(a_r, h_r, k_r, a_c, h_c, k_c):
    """The rho-independent pairwise building blocks for a sub-block.

    Mirrors the hoisted precomputation in the numpy backend's
    ``rg_covariance_grid`` restricted to ``rows x cols`` index subsets;
    every entry equals the corresponding full-matrix entry exactly
    (elementwise expressions only).
    """
    one_r = 1.0 - 2.0 * a_r
    one_c = 1.0 - 2.0 * a_c
    d0 = np.outer(one_r, one_c)
    aa = np.outer(a_r, a_c)
    h_sq_r = h_r * h_r
    h_sq_c = h_c * h_c
    p0 = h_sq_r[:, None] * one_c[None, :] + h_sq_c[None, :] * one_r[:, None]
    p2 = 2.0 * (h_sq_r[:, None] * a_c[None, :]
                + h_sq_c[None, :] * a_r[:, None])
    p1 = 2.0 * np.outer(h_r, h_c)
    k_sum = k_r[:, None] + k_c[None, :]
    return d0, aa, p0, p1, p2, k_sum


def _chunk(grid: np.ndarray, n_rows: int, n_cols: int) -> int:
    return max(1, _CHUNK_ELEMENTS // max(1, n_rows * n_cols))


def cross_block(a: np.ndarray, h: np.ndarray, k: np.ndarray,
                grid: np.ndarray, rows: np.ndarray,
                cols: np.ndarray) -> np.ndarray:
    """``M_g[rows, cols]`` for every grid point — shape ``(G, R, C)``.

    Entries are bit-identical to the corresponding entries of the full
    cross-moment matrices the numpy backend builds: the expression
    forms (including the ``(4*rho_sq) * aa`` association) are copied
    verbatim, and all operations are elementwise.
    """
    rows = np.asarray(rows, dtype=int)
    cols = np.asarray(cols, dtype=int)
    d0, aa, p0, p1, p2, k_sum = _pair_blocks(
        a[rows], h[rows], k[rows], a[cols], h[cols], k[cols])
    out = np.empty((grid.shape[0], rows.shape[0], cols.shape[0]))
    chunk = _chunk(grid, rows.shape[0], cols.shape[0])
    for start in range(0, grid.shape[0], chunk):
        rho = grid[start:start + chunk]
        rho_sq = rho * rho
        det = d0[None] - (4.0 * rho_sq)[:, None, None] * aa[None]
        exists = det > 0
        if not exists.all():
            bad = int(np.argmin(exists.all(axis=(1, 2))))
            raise MomentExistenceError(
                "pairwise cross moment does not exist at "
                f"rho_L = {grid[start + bad]:.3f}")
        quad = (p0[None] + rho[:, None, None] * p1[None]
                + rho_sq[:, None, None] * p2[None]) / det
        out[start:start + chunk] = det ** -0.5 * np.exp(k_sum[None]
                                                        + 0.5 * quad)
    return out


def quadratic_products(a: np.ndarray, h: np.ndarray, k: np.ndarray,
                       grid: np.ndarray, alphas: np.ndarray,
                       direction: Optional[np.ndarray] = None,
                       want_u: bool = True):
    """One chunked pass over the grid computing the quadratic-form state.

    Returns ``(vq, U, b, c)`` where ``vq_g = alphas^T M_g alphas``,
    ``U_g = M_g alphas`` (``None`` when ``want_u`` is false), and — when
    a probe ``direction`` ``d`` is given — ``b_g = d^T M_g alphas`` and
    ``c_g = d^T M_g d`` (else ``None``). One pass costs the same as a
    backend covariance-grid build; every later edit or probe then works
    from these ``O(G q)`` summaries without touching ``M`` again.
    """
    q = alphas.shape[0]
    idx = np.arange(q)
    n_grid = grid.shape[0]
    vq = np.empty(n_grid)
    u = np.empty((n_grid, q)) if want_u else None
    b = np.empty(n_grid) if direction is not None else None
    c = np.empty(n_grid) if direction is not None else None
    d0, aa, p0, p1, p2, k_sum = _pair_blocks(a[idx], h[idx], k[idx],
                                             a[idx], h[idx], k[idx])
    chunk = _chunk(grid, q, q)
    for start in range(0, n_grid, chunk):
        rho = grid[start:start + chunk]
        rho_sq = rho * rho
        det = d0[None] - (4.0 * rho_sq)[:, None, None] * aa[None]
        exists = det > 0
        if not exists.all():
            bad = int(np.argmin(exists.all(axis=(1, 2))))
            raise MomentExistenceError(
                "pairwise cross moment does not exist at "
                f"rho_L = {grid[start + bad]:.3f}")
        quad = (p0[None] + rho[:, None, None] * p1[None]
                + rho_sq[:, None, None] * p2[None]) / det
        cross = det ** -0.5 * np.exp(k_sum[None] + 0.5 * quad)
        for offset in range(rho.shape[0]):
            g = start + offset
            m_alpha = cross[offset] @ alphas
            vq[g] = float(alphas @ m_alpha)
            if want_u:
                u[g] = m_alpha
            if direction is not None:
                b[g] = float(direction @ m_alpha)
                c[g] = float(direction @ (cross[offset] @ direction))
    return vq, u, b, c


class CrossMomentTable:
    """Cached full cross-moment tensor for usage-only rebuild reuse.

    Holds the ``(G, q, q)`` tensor ``cross[g] = M_g`` for one component
    set (one label tuple + process point + grid). :meth:`contract`
    reproduces the numpy backend's terminal contraction — ``float(alphas
    @ cross[g] @ alphas) - mean_total**2`` per grid point, on a C-order
    contiguous ``(q, q)`` slice — so for any mixture weights over the
    *same* components the produced covariance values are bit-identical
    to a fresh ``rg_covariance_grid`` build. This is what lets
    usage-axis sweep points skip the O(G q^2) moment build and pay only
    the O(G q) contraction.

    ``max_elements`` bounds the cached tensor (default ~128 MiB of
    float64); :meth:`build` returns ``None`` above the bound so callers
    fall back to the normal path.
    """

    def __init__(self, grid: np.ndarray, cross: np.ndarray) -> None:
        self.grid = grid
        self.cross = np.ascontiguousarray(cross)

    @classmethod
    def build(cls, fits, mu_l: float, sigma_l: float, grid: np.ndarray,
              max_elements: int = 1 << 24) -> Optional["CrossMomentTable"]:
        q = len(fits)
        if grid.shape[0] * q * q > max_elements:
            return None
        a, h, k = component_params(fits, mu_l, sigma_l)
        idx = np.arange(q)
        return cls(grid, cross_block(a, h, k, grid, idx, idx))

    @property
    def nbytes(self) -> int:
        return int(self.cross.nbytes)

    def contract(self, alphas: np.ndarray, mean_total: float) -> np.ndarray:
        """Covariance values for mixture ``alphas`` — bit-identical to a
        fresh backend build over the same components."""
        values = np.empty_like(self.grid)
        for g in range(self.grid.shape[0]):
            values[g] = float(alphas @ self.cross[g] @ alphas) \
                - mean_total ** 2
        return values
