"""Incremental estimation: apply typed edits to a base in o(n_affected).

:func:`estimate_delta` is a *pure function* of ``(base, edits)`` — it
never mutates the base, so one artifact serves an arbitrary what-if
storm. Edits fold into one final scenario (usage edits compose into a
final histogram, resizes into a final floorplan), then exactly two
incremental updates run:

* **mixture update** — the quadratic form ``vq_g = alpha^T M_g alpha``
  moves by ``2 (M alpha)[S] . delta + delta^T M_SS delta`` where ``S``
  is the edit support (components whose weight changed); only the
  ``|S| x |S|`` cross-moment block is recomputed, everything else is
  read from the base snapshot (:mod:`repro.delta.moments`);
* **ledger update** — a floorplan change rebuilds only the per-lag
  occupancy ledger (``O(n_lags)``); the per-lag correlation values are
  cropped from the base when the site pitch is unchanged (bit-identical
  — the kernel is a pure function of the lag coordinates) and
  re-kerneled otherwise. The RG moments are *never* rebuilt for a
  geometry-only edit.

Closeness contract
------------------
Where the algebra is exact the delta result *is* the fresh result: a
no-edit call returns the base estimate bit-identically, and a cropped
geometry reuses bit-identical kernel values. Elsewhere two benign
reassociations separate the paths — the base mixture is unpruned (the
fresh path drops and renormalizes components below ``1e-12`` weight)
and the lag reduction runs as ``n * var + w @ values`` instead of
``sum(counts * interp(rho))``. Both are ulp-scale effects; the
documented bounds, asserted in tests and in ``bench_delta.py``, are

* ``|mean_delta / mean_fresh - 1| <= DELTA_MEAN_RTOL`` (1e-8)
* ``|std_delta / std_fresh - 1| <= DELTA_STD_RTOL`` (1e-6)

against a fresh ``estimate("linear")`` on the edited scenario.
Observed deviations are ~1e-12; the bounds leave headroom for large
mixtures (q ~ 500) where the pruning mass compounds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import LeakageEstimate, _json_scalar, resolve_auto_method
from repro.core.chip_model import FullChipModel
from repro.core.estimators.linear import LagGeometry
from repro.delta.base import (
    BaseEstimate,
    _interp_weights,
    _rho_sum,
    cell_components,
)
from repro.delta.edits import (
    USAGE_SUM_TOLERANCE,
    CellSwapEdit,
    FloorplanResizeEdit,
    UsageHistogramEdit,
    edit_from_dict,
)
from repro.delta.moments import component_params, cross_block
from repro.exceptions import (
    ConfigurationError,
    DeltaError,
    DeltaIncompatibleError,
)
from repro.obs import Tracer, span

#: Documented closeness of a delta estimate to a fresh ``linear``
#: estimate of the edited scenario (relative, on the mean).
DELTA_MEAN_RTOL = 1e-8
#: Same, on the standard deviation.
DELTA_STD_RTOL = 1e-6


def _as_edits(edits) -> Tuple[Any, ...]:
    if isinstance(edits, (CellSwapEdit, UsageHistogramEdit,
                          FloorplanResizeEdit, Mapping)):
        edits = (edits,)
    parsed = []
    for edit in edits:
        if isinstance(edit, Mapping):
            edit = edit_from_dict(edit)
        elif not isinstance(edit, (CellSwapEdit, UsageHistogramEdit,
                                   FloorplanResizeEdit)):
            raise ConfigurationError(
                f"not an edit: {type(edit).__name__}")
        parsed.append(edit)
    return tuple(parsed)


def _fold(base: BaseEstimate, edits: Sequence[Any]):
    """Compose all edits into one final scenario."""
    fractions = dict(base.fractions)
    n_cells = base.chip.n_cells
    width, height = base.chip.width, base.chip.height
    usage_edits = 0
    for edit in edits:
        if isinstance(edit, FloorplanResizeEdit):
            n_cells = edit.n_cells if edit.n_cells is not None else n_cells
            width = edit.width if edit.width is not None else width
            height = edit.height if edit.height is not None else height
        else:
            edit.apply(fractions, n_cells)
            usage_edits += 1
    if usage_edits:
        total = sum(fractions.values())
        if abs(total - 1.0) > USAGE_SUM_TOLERANCE:
            raise DeltaError(
                f"folded usage fractions sum to {total!r}; edits must "
                "conserve the histogram mass")
    return fractions, n_cells, width, height


def _extend_components(base: BaseEstimate, new_cells: Sequence[str]):
    """Append component rows for cells absent from the base mixture.

    Returns the extended ``(means, stds, a, h, k, cell_index,
    cell_probs)`` views plus the extension size; base arrays are never
    mutated (the extension lives only for this evaluation).
    """
    means, stds = base.means, base.stds
    a, h, k = base.a, base.h, base.k
    cell_index = dict(base.cell_index)
    cell_probs = dict(base.cell_probs)
    n_new = 0
    for cell_name in new_cells:
        _, probs, cell_means, cell_stds, fits = cell_components(
            base.characterization, cell_name, base.signal_probability)
        start = means.shape[0]
        means = np.concatenate([means, cell_means])
        stds = np.concatenate([stds, cell_stds])
        if not base.simplified:
            if fits is None:
                raise DeltaIncompatibleError(
                    f"cell {cell_name!r} has no (a, b, c) fits; cannot "
                    "extend the exact cross-moment state")
            a_new, h_new, k_new = component_params(fits, base.mu_l,
                                                   base.sigma_l)
            a = np.concatenate([a, a_new])
            h = np.concatenate([h, h_new])
            k = np.concatenate([k, k_new])
        cell_index[cell_name] = np.arange(start, means.shape[0])
        cell_probs[cell_name] = probs
        n_new += means.shape[0] - start
    return means, stds, a, h, k, cell_index, cell_probs, n_new


def _geometry_ledger(base: BaseEstimate, chip: FullChipModel,
                     ledger: Dict[str, Any]):
    """Lag correlation + occupancy ledger for a (possibly new) floorplan.

    Returns ``(geometry, rho, w, s_rho)``. Reuses the base's kernel
    values when the site pitch is unchanged and the new lag range fits
    inside the old one (a center crop — bit-identical, the kernel is a
    pure function of lag coordinates); otherwise re-evaluates the
    kernel, which needs the base's live correlation reference.
    """
    from repro.backend import get_backend

    geometry = LagGeometry(chip.rows, chip.cols, chip.pitch_x, chip.pitch_y)
    base_chip = base.chip
    same_pitch = (chip.pitch_x == base_chip.pitch_x
                  and chip.pitch_y == base_chip.pitch_y)
    if (chip.rows, chip.cols) == (base_chip.rows, base_chip.cols) \
            and same_pitch:
        rho = base.rho
        ledger["lags_reused"] = int(rho.size)
        ledger["lags_recomputed"] = 0
    elif (same_pitch and chip.cols <= base_chip.cols
            and chip.rows <= base_chip.rows):
        dc = base_chip.cols - chip.cols
        dr = base_chip.rows - chip.rows
        rho = base.rho[dc:dc + 2 * chip.cols - 1,
                       dr:dr + 2 * chip.rows - 1]
        ledger["lags_reused"] = int(rho.size)
        ledger["lags_recomputed"] = 0
    else:
        if base.correlation is None:
            raise DeltaIncompatibleError(
                "floorplan edit changes the site pitch and the base has "
                "no correlation model attached to re-evaluate the "
                "kernel")
        rho = geometry.rho(base.correlation, get_backend(base.backend_name))
        ledger["lags_reused"] = 0
        ledger["lags_recomputed"] = int(rho.size)
    if base.simplified:
        return geometry, rho, None, _rho_sum(rho, geometry.counts,
                                             geometry.zero_lag)
    return geometry, rho, _interp_weights(base.grid, rho, geometry.counts,
                                          geometry.zero_lag), None


def _package(base: BaseEstimate, chip: FullChipModel, rg_mean: float,
             rg_variance: float, site_variance: float,
             ledger: Dict[str, Any]) -> LeakageEstimate:
    """Assemble the estimate exactly as the full estimator packages one."""
    scale = chip.n_cells / chip.n_sites
    details = {
        "rows": chip.rows,
        "cols": chip.cols,
        "rg_mean": rg_mean,
        "rg_std": float(np.sqrt(rg_variance)),
        "site_variance": site_variance,
        "simplified_correlation": float(base.simplified),
        "requested_method": "linear",
        "delta": ledger,
    }
    return LeakageEstimate(
        mean=float(chip.n_cells * rg_mean),
        std=float(np.sqrt(site_variance) * scale),
        method="linear",
        n_cells=int(chip.n_cells),
        signal_probability=float(base.signal_probability),
        vt_multiplier=float(base.vt_multiplier),
        details={key: _json_scalar(value)
                 for key, value in details.items()},
    )


def estimate_delta(base: BaseEstimate, edits, *,
                   trace: bool = False) -> LeakageEstimate:
    """Estimate the edited scenario incrementally from a base snapshot.

    ``edits`` is one edit, a sequence of edits, or their ``to_dict``
    documents (the service/CLI wire form); they are folded in order
    onto the base scenario. The result carries a ``details["delta"]``
    ledger recording reused vs recomputed work (edit count, component
    support, lag reuse, mode). See the module docstring for the
    closeness contract; a call with no effective change returns the
    base's own estimate bit-identically (plus the ledger).

    ``trace=True`` profiles the delta path into ``details["trace"]``
    with its own ``delta.*`` stages; numbers are identical either way.
    """
    if not trace:
        return _estimate_delta(base, edits)
    tracer = Tracer("delta/estimate_delta")
    with tracer:
        with tracer.span("delta.estimate"):
            result = _estimate_delta(base, edits)
    return result.with_details(trace=tracer.export())


def _estimate_delta(base: BaseEstimate, edits) -> LeakageEstimate:
    edits = _as_edits(edits)
    with span("delta.fold", edits=len(edits)):
        fractions, n_cells, width, height = _fold(base, edits)

    geometry_changed = (n_cells, width, height) != (
        base.chip.n_cells, base.chip.width, base.chip.height)
    changed_cells = _changed_cells(base, fractions)

    ledger: Dict[str, Any] = {
        "edits": len(edits),
        "mode": "simplified" if base.simplified else "exact",
        "usage_changed": bool(changed_cells),
        "geometry_changed": geometry_changed,
    }

    if not changed_cells and not geometry_changed:
        ledger.update({"support": 0, "lags_reused": int(base.rho.size),
                       "lags_recomputed": 0, "moments_recomputed": 0,
                       "moments_reused": base.n_components})
        return base.estimate.with_details(delta=ledger)

    # -- geometry half -----------------------------------------------------
    if geometry_changed:
        chip = FullChipModel.from_design(n_cells, width, height)
        if resolve_auto_method(chip.n_sites) != "linear":
            raise DeltaIncompatibleError(
                f"edited chip has {chip.n_sites} sites, beyond the "
                "linear-transform regime the delta engine rides")
        with span("delta.geometry"):
            geometry, rho, w, s_rho = _geometry_ledger(base, chip, ledger)
    else:
        chip = base.chip
        w, s_rho = base.w, base.s_rho
        ledger["lags_reused"] = int(base.rho.size)
        ledger["lags_recomputed"] = 0

    # -- mixture half ------------------------------------------------------
    if changed_cells:
        with span("delta.mixture", cells=len(changed_cells)):
            state = _mixture_delta(base, fractions, changed_cells, ledger)
        rg_mean, rg_second, mean_of_stds, values, scale_sq = state
    else:
        rg_mean = base.rg_mean
        rg_second = base.rg_second
        mean_of_stds = base.mean_of_stds
        values = None if base.simplified else base.vq - rg_mean ** 2
        scale_sq = mean_of_stds ** 2
        ledger.update({"support": 0, "moments_recomputed": 0,
                       "moments_reused": base.n_components})

    rg_variance = max(0.0, rg_second - rg_mean ** 2)

    # -- reduce ------------------------------------------------------------
    with span("delta.reduce"):
        if base.simplified:
            site_variance = chip.n_sites * rg_variance + scale_sq * s_rho
        else:
            site_variance = chip.n_sites * rg_variance + float(w @ values)

    with span("delta.package"):
        return _package(base, chip, rg_mean, rg_variance,
                        float(site_variance), ledger)


def _changed_cells(base: BaseEstimate,
                   fractions: Mapping[str, float]) -> List[str]:
    """Cells whose usage fraction differs from the base (float-exact).

    Folding only touches the cells an edit names, so untouched cells
    keep bit-identical fractions and fall out of the support here.
    """
    changed = [name for name, value in fractions.items()
               if base.fractions.get(name) != value]
    changed.extend(name for name in base.fractions
                   if name not in fractions)
    return changed


def _mixture_delta(base: BaseEstimate, fractions: Mapping[str, float],
                   changed_cells: Sequence[str], ledger: Dict[str, Any]):
    """Incremental RG moment update over the edit support.

    Returns ``(mean, second_moment, mean_of_stds, covariance_values,
    simplified_scale)`` for the edited mixture; ``covariance_values``
    is ``None`` in simplified mode.
    """
    new_cells = [name for name in changed_cells
                 if name not in base.cell_index]
    if not base.simplified:
        base.ensure_exact_params()
    (means, stds, a, h, k, cell_index, cell_probs,
     n_new) = _extend_if_needed(base, new_cells)

    # The sparse weight delta over the (possibly extended) space.
    support: List[int] = []
    delta_values: List[float] = []
    for cell_name in changed_cells:
        idx = cell_index[cell_name]
        target = fractions.get(cell_name, 0.0) * cell_probs[cell_name]
        current = (base.alphas[idx] if idx[-1] < base.n_components
                   else np.zeros(idx.shape[0]))
        diff = target - current
        hit = np.nonzero(diff)[0]
        support.extend(int(i) for i in idx[hit])
        delta_values.extend(float(d) for d in diff[hit])
    support_idx = np.asarray(support, dtype=int)
    delta = np.asarray(delta_values)

    ledger["support"] = int(support_idx.shape[0])
    ledger["moments_reused"] = int(base.n_components)
    ledger["new_components"] = int(n_new)

    rg_mean = base.rg_mean + float(delta @ means[support_idx])
    rg_second = base.rg_second + float(
        delta @ (stds[support_idx] ** 2 + means[support_idx] ** 2))
    mean_of_stds = base.mean_of_stds + float(delta @ stds[support_idx])

    if base.simplified:
        ledger["moments_recomputed"] = 0
        return rg_mean, rg_second, mean_of_stds, None, mean_of_stds ** 2

    # Quadratic-form update: vq' = vq + 2 (M alpha)[S] . d + d^T M_SS d.
    grid = base.grid
    with span("delta.moments", support=int(support_idx.shape[0])):
        old_mask = support_idx < base.n_components
        m_alpha_s = np.zeros((grid.shape[0], support_idx.shape[0]))
        if old_mask.any():
            m_alpha_s[:, old_mask] = base.u[:, support_idx[old_mask]]
        if (~old_mask).any():
            new_rows = support_idx[~old_mask]
            block = cross_block(a, h, k, grid, new_rows,
                                np.arange(base.n_components))
            m_alpha_s[:, ~old_mask] = block @ base.alphas
        m_ss = cross_block(a, h, k, grid, support_idx, support_idx)
        vq = (base.vq + 2.0 * (m_alpha_s @ delta)
              + np.einsum("gij,i,j->g", m_ss, delta, delta))
    ledger["moments_recomputed"] = int(support_idx.shape[0])
    return rg_mean, rg_second, mean_of_stds, vq - rg_mean ** 2, None


def _extend_if_needed(base: BaseEstimate, new_cells: Sequence[str]):
    if not new_cells:
        return (base.means, base.stds, base.a, base.h, base.k,
                base.cell_index, base.cell_probs, 0)
    base.ensure_exact_params()
    return _extend_components(base, new_cells)


class DeltaProbe:
    """Precomputed line of scenarios for repeated one-parameter probes.

    Many optimization loops (dual-Vt fraction bisection, usage
    interpolation studies) evaluate scenarios on a *line* in mixture
    space: component weights ``alpha(t) = (1 - t) alpha_0 + t alpha_1``.
    The quadratic form is then a polynomial in ``t``,

    ``vq(t) = vq_0 + 2 t b + t^2 c``,  ``b_g = d^T M_g alpha_0``,
    ``c_g = d^T M_g d``,

    so after one moment pass at construction every :meth:`probe` call
    costs ``O(grid)`` — thousands of probes for the price of one build.

    Parameters
    ----------
    base:
        The base snapshot (defines ``t = 0`` and the floorplan, which
        is fixed along the line).
    target_fractions:
        Usage fractions at ``t = 1`` (a mapping or
        :class:`~repro.core.usage.CellUsage`); cells absent from the
        base mixture are pulled from its characterization.
    """

    def __init__(self, base: BaseEstimate, target_fractions) -> None:
        if hasattr(target_fractions, "items"):
            target = dict(target_fractions.items())
        else:
            target = dict(target_fractions)
        self.base = base
        new_cells = [name for name in target if name not in base.cell_index]
        (means, stds, a, h, k, cell_index, cell_probs,
         _) = _extend_if_needed(base, new_cells)
        q = means.shape[0]
        alpha0 = np.zeros(q)
        alpha0[:base.n_components] = base.alphas
        alpha1 = np.zeros(q)
        for cell_name, fraction in target.items():
            idx = cell_index[cell_name]
            alpha1[idx] = fraction * cell_probs[cell_name]
        self._direction = alpha1 - alpha0
        self._means, self._stds = means, stds
        self._mean0 = float(alpha0 @ means)
        self._second0 = float(alpha0 @ (stds ** 2 + means ** 2))
        self._mos0 = float(alpha0 @ stds)
        self._dmean = float(self._direction @ means)
        self._dsecond = float(self._direction @ (stds ** 2 + means ** 2))
        self._dmos = float(self._direction @ stds)
        if base.simplified:
            self._vq0 = self._b = self._c = None
        else:
            from repro.delta.moments import quadratic_products

            with span("delta.probe_setup", q=q):
                self._vq0, _, self._b, self._c = quadratic_products(
                    a, h, k, base.grid, alpha0,
                    direction=self._direction, want_u=False)

    def probe(self, t: float) -> LeakageEstimate:
        """Estimate the scenario at line position ``t`` (0 = base)."""
        base = self.base
        t = float(t)
        rg_mean = self._mean0 + t * self._dmean
        rg_second = self._second0 + t * self._dsecond
        mean_of_stds = self._mos0 + t * self._dmos
        rg_variance = max(0.0, rg_second - rg_mean ** 2)
        if base.simplified:
            site_variance = (base.chip.n_sites * rg_variance
                             + mean_of_stds ** 2 * base.s_rho)
        else:
            vq = self._vq0 + 2.0 * t * self._b + t * t * self._c
            values = vq - rg_mean ** 2
            site_variance = (base.chip.n_sites * rg_variance
                             + float(base.w @ values))
        ledger = {
            "edits": 1, "mode": ("simplified" if base.simplified
                                 else "exact"),
            "usage_changed": t != 0.0, "geometry_changed": False,
            "support": int(np.count_nonzero(self._direction)),
            "probe_t": t,
            "lags_reused": int(base.rho.size), "lags_recomputed": 0,
            "moments_recomputed": 0,
            "moments_reused": int(self._means.shape[0]),
        }
        return _package(base, base.chip, rg_mean, rg_variance,
                        float(site_variance), ledger)
