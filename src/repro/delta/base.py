"""The :class:`BaseEstimate` artifact — reusable state of a full estimate.

A base snapshots everything a fresh ``estimate("linear")`` computed
that later what-if edits can reuse:

* the **lag geometry** and per-lag correlation values of eq. (16)-(17)
  (pure functions of the floorplan and the correlation model);
* the **occupancy ledgers** those lags reduce through — in exact mode
  the grid-weight vector ``w`` with ``sum_lag n_lag * interp(rho_lag)
  = w @ values`` (``np.interp`` is piecewise linear, so the per-lag hat
  weights aggregate into one usage-independent 65-vector), in
  simplified mode the scalar ``s_rho = sum_lag n_lag * rho_lag``;
* the **RG mixture moments** keyed by (usage, p, weights): the
  *unpruned* component arrays, the quadratic-form summaries
  ``vq_g = alpha^T M_g alpha`` and ``U_g = M_g alpha`` of
  :mod:`repro.delta.moments`, and the per-cell state-probability table
  used to turn edited usage fractions back into component weights.

With these, :func:`repro.delta.engine.estimate_delta` updates mean and
variance in ``o(n_affected)``: a usage edit touches only the ``|S|``
components whose weight changed, a floorplan edit touches only the lag
ledger (``O(n_lags)``, never the RG moments).

Bases export/import through :meth:`to_dict`/:meth:`from_dict`. The
artifact stores every numeric array; the live characterization and
correlation objects are *references*, re-attached at import time —
without them, edits that need new cell characterizations or a re-kerneled
floorplan raise :class:`~repro.exceptions.DeltaIncompatibleError`
(the service maps that to a full-recompute fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.characterization.fitting import LeakageFit
from repro.core.api import (
    FullChipLeakageEstimator,
    LeakageEstimate,
    resolve_auto_method,
)
from repro.core.chip_model import FullChipModel
from repro.core.estimators.linear import LagGeometry
from repro.delta.moments import component_params, quadratic_products
from repro.exceptions import DeltaIncompatibleError, EstimationError
from repro.obs import span

#: Schema version of the exported base artifact.
BASE_SCHEMA_VERSION = 1


def _interp_weights(grid: np.ndarray, rho: np.ndarray,
                    counts: np.ndarray, zero_lag) -> np.ndarray:
    """Aggregate per-lag hat-function weights onto the rho grid.

    ``np.interp(r, grid, values)`` is ``(1-t)*values[i] + t*values[i+1]``
    with ``i`` the bracketing interval; summed against the multiplicity
    table this collapses to one weight per grid node. The zero lag is
    excluded — it carries the full RG variance, accounted separately as
    ``n_sites * variance``.
    """
    flat_rho = np.asarray(rho, dtype=float).ravel()
    flat_counts = np.asarray(counts, dtype=float).ravel().copy()
    flat_counts[np.ravel_multi_index(zero_lag, rho.shape)] = 0.0
    idx = np.clip(np.searchsorted(grid, flat_rho, side="right") - 1,
                  0, grid.shape[0] - 2)
    t = (flat_rho - grid[idx]) / (grid[idx + 1] - grid[idx])
    weights = np.zeros_like(grid)
    np.add.at(weights, idx, flat_counts * (1.0 - t))
    np.add.at(weights, idx + 1, flat_counts * t)
    return weights


def _rho_sum(rho: np.ndarray, counts: np.ndarray, zero_lag) -> float:
    """``sum_lag n_lag * rho_lag`` over distinct-site lags."""
    masked = np.asarray(rho, dtype=float).copy()
    masked[zero_lag] = 0.0
    return float(np.sum(counts * masked))


@dataclass
class BaseEstimate:
    """Snapshot of a full linear-transform estimate, ready for deltas.

    Build with :meth:`build` (scenario parameters) or
    :meth:`from_estimator` (an already-constructed estimator). All
    arrays are private to the artifact — edits never mutate a base, so
    one base serves arbitrarily many what-if evaluations.
    """

    chip: FullChipModel
    estimate: LeakageEstimate
    signal_probability: float
    vt_multiplier: float
    simplified: bool
    mu_l: float
    sigma_l: float
    fractions: Dict[str, float]
    labels: Tuple[Tuple[str, str], ...]
    alphas: np.ndarray
    means: np.ndarray
    stds: np.ndarray
    fits: Optional[Tuple[LeakageFit, ...]]
    cell_index: Dict[str, np.ndarray]
    cell_probs: Dict[str, np.ndarray]
    rho: np.ndarray
    grid: Optional[np.ndarray] = None
    a: Optional[np.ndarray] = None
    h: Optional[np.ndarray] = None
    k: Optional[np.ndarray] = None
    vq: Optional[np.ndarray] = None
    u: Optional[np.ndarray] = None
    w: Optional[np.ndarray] = None
    s_rho: Optional[float] = None
    characterization: Any = None
    correlation: Any = None
    backend_name: str = "numpy"
    extra: Dict[str, Any] = field(default_factory=dict)

    # -- derived scalars ---------------------------------------------------

    @property
    def rg_mean(self) -> float:
        return float(self.alphas @ self.means)

    @property
    def rg_second(self) -> float:
        return float(self.alphas @ (self.stds ** 2 + self.means ** 2))

    @property
    def mean_of_stds(self) -> float:
        return float(self.alphas @ self.stds)

    @property
    def n_components(self) -> int:
        return int(self.alphas.shape[0])

    @property
    def n_lags(self) -> int:
        return int(self.rho.size)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, characterization, usage, n_cells: int, width: float,
              height: float, *, signal_probability: float = 0.5,
              correlation=None, simplified_correlation: Optional[bool] = None,
              state_weights=None, backend=None,
              components=None) -> "BaseEstimate":
        """Run a fresh estimate and snapshot it as a base artifact.

        ``components`` optionally supplies a prebuilt
        :class:`~repro.core.api.RGComponents` bundle (it must match the
        scenario), skipping the mixture expansion of the fresh pass.
        """
        estimator = FullChipLeakageEstimator(
            characterization, usage, n_cells, width, height,
            signal_probability=signal_probability,
            correlation=correlation,
            simplified_correlation=simplified_correlation,
            state_weights=state_weights, backend=backend,
            components=components)
        return cls.from_estimator(estimator, state_weights=state_weights)

    @classmethod
    def from_estimator(cls, estimator: FullChipLeakageEstimator,
                       estimate: Optional[LeakageEstimate] = None,
                       state_weights=None) -> "BaseEstimate":
        """Snapshot an estimator (running ``estimate("linear")`` if no
        fresh estimate is supplied)."""
        from repro.backend import get_backend

        chip = estimator.chip
        if resolve_auto_method(chip.n_sites) != "linear":
            raise DeltaIncompatibleError(
                f"delta estimation rides the eq. (17) lag transform, "
                f"which auto-mode reserves for grids up to 250,000 "
                f"sites; this chip has {chip.n_sites}")
        kernels = get_backend(estimator.backend)
        with span("delta.base_estimate"):
            if estimate is None:
                estimate = estimator.estimate("linear")
            elif estimate.method != "linear":
                raise EstimationError(
                    "base snapshots require a linear-transform estimate, "
                    f"got method={estimate.method!r}")

        technology = estimator.characterization.technology
        mu_l = float(technology.length.nominal)
        sigma_l = float(technology.length.sigma)
        simplified = bool(estimator.rg_correlation.simplified)

        with span("delta.base_mixture"):
            arrays = _expand_unpruned(estimator.characterization,
                                      estimator.usage,
                                      estimator.signal_probability,
                                      state_weights)
            (labels, alphas, means, stds, fits,
             cell_index, cell_probs) = arrays

        grid = a = h = k = vq = u = None
        if not simplified:
            if fits is None:
                raise DeltaIncompatibleError(
                    "exact-mode base requires (a, b, c) fits for every "
                    "mixture component")
            grid = np.array(estimator.rg_correlation.covariance_grid)
            with span("delta.base_moments", q=alphas.shape[0]):
                a, h, k = component_params(fits, mu_l, sigma_l)
                vq, u, _, _ = quadratic_products(a, h, k, grid, alphas)

        with span("delta.base_geometry"):
            geometry = LagGeometry(chip.rows, chip.cols, chip.pitch_x,
                                   chip.pitch_y)
            rho = geometry.rho(estimator.correlation, kernels)
            if simplified:
                w, s_rho = None, _rho_sum(rho, geometry.counts,
                                          geometry.zero_lag)
            else:
                w = _interp_weights(grid, rho, geometry.counts,
                                    geometry.zero_lag)
                s_rho = None

        return cls(
            chip=chip, estimate=estimate,
            signal_probability=float(estimator.signal_probability),
            vt_multiplier=float(estimator.components.vt_multiplier),
            simplified=simplified, mu_l=mu_l, sigma_l=sigma_l,
            fractions=dict(estimator.usage.items()),
            labels=labels, alphas=alphas, means=means, stds=stds,
            fits=fits, cell_index=cell_index, cell_probs=cell_probs,
            rho=rho, grid=grid, a=a, h=h, k=k, vq=vq, u=u, w=w,
            s_rho=s_rho, characterization=estimator.characterization,
            correlation=estimator.correlation, backend_name=kernels.name)

    # -- export / import ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON artifact (arrays as lists, no live references)."""
        def listify(array):
            return None if array is None else np.asarray(array).tolist()

        return {
            "schema_version": BASE_SCHEMA_VERSION,
            "chip": {"n_cells": self.chip.n_cells,
                     "width": self.chip.width, "height": self.chip.height,
                     "rows": self.chip.rows, "cols": self.chip.cols},
            "estimate": self.estimate.to_dict(),
            "signal_probability": self.signal_probability,
            "vt_multiplier": self.vt_multiplier,
            "simplified": self.simplified,
            "mu_l": self.mu_l, "sigma_l": self.sigma_l,
            "fractions": {name: float(value)
                          for name, value in self.fractions.items()},
            "labels": [[cell, state] for cell, state in self.labels],
            "alphas": listify(self.alphas),
            "means": listify(self.means),
            "stds": listify(self.stds),
            "fits": None if self.fits is None else [
                [fit.a, fit.b, fit.c, fit.rms_log_error]
                for fit in self.fits],
            "cell_index": {name: listify(idx)
                           for name, idx in self.cell_index.items()},
            "cell_probs": {name: listify(probs)
                           for name, probs in self.cell_probs.items()},
            "rho": listify(self.rho),
            "grid": listify(self.grid),
            "vq": listify(self.vq),
            "u": listify(self.u),
            "w": listify(self.w),
            "s_rho": self.s_rho,
            "backend": self.backend_name,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any], characterization=None,
                  correlation=None) -> "BaseEstimate":
        """Rebuild a base from :meth:`to_dict` output.

        ``characterization`` / ``correlation`` re-attach the live
        references the artifact cannot carry; without them the base
        still serves usage edits over its existing cells, while edits
        needing new characterizations or correlation re-kernels raise
        :class:`DeltaIncompatibleError`. When a characterization is
        given and no correlation, the technology's total correlation is
        assumed (the estimator default).
        """
        def arr(value):
            return None if value is None else np.asarray(value, dtype=float)

        try:
            version = int(document.get("schema_version", 0))
            if version != BASE_SCHEMA_VERSION:
                raise EstimationError(
                    f"unsupported base artifact schema v{version}")
            chip_doc = document["chip"]
            chip = FullChipModel(n_cells=int(chip_doc["n_cells"]),
                                 width=float(chip_doc["width"]),
                                 height=float(chip_doc["height"]),
                                 rows=int(chip_doc["rows"]),
                                 cols=int(chip_doc["cols"]))
            fits_doc = document.get("fits")
            fits = None if fits_doc is None else tuple(
                LeakageFit(*map(float, entry)) for entry in fits_doc)
            if correlation is None and characterization is not None:
                correlation = \
                    characterization.technology.total_correlation
            return cls(
                chip=chip,
                estimate=LeakageEstimate.from_dict(document["estimate"]),
                signal_probability=float(document["signal_probability"]),
                vt_multiplier=float(document["vt_multiplier"]),
                simplified=bool(document["simplified"]),
                mu_l=float(document["mu_l"]),
                sigma_l=float(document["sigma_l"]),
                fractions={str(name): float(value) for name, value
                           in document["fractions"].items()},
                labels=tuple((str(cell), str(state))
                             for cell, state in document["labels"]),
                alphas=arr(document["alphas"]),
                means=arr(document["means"]),
                stds=arr(document["stds"]),
                fits=fits,
                cell_index={str(name): np.asarray(idx, dtype=int)
                            for name, idx
                            in document["cell_index"].items()},
                cell_probs={str(name): arr(probs) for name, probs
                            in document["cell_probs"].items()},
                rho=arr(document["rho"]),
                grid=arr(document.get("grid")),
                a=None, h=None, k=None,
                vq=arr(document.get("vq")),
                u=arr(document.get("u")),
                w=arr(document.get("w")),
                s_rho=(None if document.get("s_rho") is None
                       else float(document["s_rho"])),
                characterization=characterization,
                correlation=correlation,
                backend_name=str(document.get("backend", "numpy")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EstimationError(
                f"not a serialized BaseEstimate: {exc}") from exc

    def ensure_exact_params(self) -> None:
        """Recompute ``(a, h, k)`` after an import dropped them."""
        if self.simplified or self.a is not None:
            return
        if self.fits is None:
            raise DeltaIncompatibleError(
                "imported base lacks component fits; cannot extend the "
                "exact cross-moment state")
        self.a, self.h, self.k = component_params(self.fits, self.mu_l,
                                                  self.sigma_l)


def _expand_unpruned(characterization, usage, p: float, state_weights):
    """Expand the usage histogram keeping *every* component.

    Mirrors :func:`repro.core.random_gate.expand_mixture` but skips the
    negligible-weight prune: delta updates need zero-weight components
    addressable (an edit may raise their weight), and the pruned mass
    (``<= 1e-12`` per component) is far inside the documented delta
    tolerance.
    """
    labels, alphas, means, stds, fits = [], [], [], [], []
    cell_index: Dict[str, np.ndarray] = {}
    cell_probs: Dict[str, np.ndarray] = {}
    all_fits = True
    for cell_name, fraction in usage.items():
        if cell_name not in characterization:
            raise EstimationError(
                f"usage references uncharacterized cell {cell_name!r}")
        cell_char = characterization[cell_name]
        if state_weights is not None and cell_name in state_weights:
            state_probs = np.asarray(state_weights[cell_name], dtype=float)
        else:
            state_probs = cell_char.cell.state_probabilities(p)
        start = len(labels)
        for state_char, prob in zip(cell_char.states, state_probs):
            labels.append((cell_name, state_char.state_label))
            alphas.append(fraction * prob)
            means.append(state_char.mean)
            stds.append(state_char.std)
            if state_char.fit is None:
                all_fits = False
            else:
                fits.append(state_char.fit)
        cell_index[cell_name] = np.arange(start, len(labels))
        cell_probs[cell_name] = np.asarray(state_probs, dtype=float)
    return (tuple(labels), np.array(alphas), np.array(means),
            np.array(stds), tuple(fits) if all_fits else None,
            cell_index, cell_probs)


def cell_components(characterization, cell_name: str, p: float):
    """Component rows for a cell *not* in the base mixture.

    Returns ``(state_labels, probs, means, stds, fits)`` pulled from the
    characterization — the extension a :class:`CellSwapEdit` to a new
    cell type appends to the base arrays.
    """
    if characterization is None:
        raise DeltaIncompatibleError(
            f"edit introduces cell {cell_name!r} not in the base "
            "mixture, and the base has no characterization attached")
    if cell_name not in characterization:
        raise EstimationError(
            f"edit references uncharacterized cell {cell_name!r}")
    cell_char = characterization[cell_name]
    probs = cell_char.cell.state_probabilities(p)
    state_labels = tuple(state.state_label for state in cell_char.states)
    means = np.array([state.mean for state in cell_char.states])
    stds = np.array([state.std for state in cell_char.states])
    fits = tuple(state.fit for state in cell_char.states)
    if any(fit is None for fit in fits):
        fits = None
    return state_labels, np.asarray(probs, dtype=float), means, stds, fits
