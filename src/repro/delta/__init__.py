"""Incremental (delta) estimation for interactive what-if traffic.

The paper's eq. (16)-(17) multiplicity transform is linear in site
occupancy, and the exact RG covariance is a quadratic form in the
mixture weights — so a localized chip edit changes the full-chip
mean/variance by an exactly composable delta. This package snapshots
the reusable state of a full estimate (:class:`BaseEstimate`), models
edits as typed, serializable objects (:class:`CellSwapEdit`,
:class:`UsageHistogramEdit`, :class:`FloorplanResizeEdit`), and applies
them in ``o(n_affected)`` (:func:`estimate_delta`, :class:`DeltaProbe`).

See ``docs/API.md`` ("Incremental estimation") for the closeness
contract and ``docs/SERVICE.md`` for the HTTP ``base=`` protocol.
"""

from repro.delta.base import BASE_SCHEMA_VERSION, BaseEstimate
from repro.delta.edits import (
    CellSwapEdit,
    FloorplanResizeEdit,
    UsageHistogramEdit,
    edit_from_dict,
    edits_from_documents,
)
from repro.delta.engine import (
    DELTA_MEAN_RTOL,
    DELTA_STD_RTOL,
    DeltaProbe,
    estimate_delta,
)
from repro.delta.moments import CrossMomentTable

__all__ = [
    "BASE_SCHEMA_VERSION",
    "BaseEstimate",
    "CellSwapEdit",
    "CrossMomentTable",
    "DELTA_MEAN_RTOL",
    "DELTA_STD_RTOL",
    "DeltaProbe",
    "FloorplanResizeEdit",
    "UsageHistogramEdit",
    "edit_from_dict",
    "edits_from_documents",
    "estimate_delta",
]
