"""Typed chip edits for incremental (delta) estimation.

An edit is a small, serializable description of a what-if change to a
chip scenario. Edits are *folded* onto a base scenario by
:func:`repro.delta.engine.estimate_delta`: usage-type edits compose
into one final usage histogram (so a sequence of edits costs one
incremental update), and floorplan edits compose into one final
geometry.

Three edit types cover the interactive ECO loop:

* :class:`CellSwapEdit` — replace some share of one cell type with
  another, specified as a usage fraction, an instance count, a die
  region, or an explicit cell-id set. Under the paper's homogeneous
  Random-Gate model sites are exchangeable, so *which* instances swap
  only determines the count — the region/id forms are conveniences that
  reduce to a fraction of the usage mass (documented, not hidden).
* :class:`UsageHistogramEdit` — replace the usage histogram outright.
* :class:`FloorplanResizeEdit` — change the cell count and/or die
  dimensions.

Every edit round-trips through ``to_dict``/:func:`edit_from_dict` — the
wire format the service's ``base=`` protocol and the ``repro whatif``
CLI use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Sum drift tolerated on a folded usage histogram before the delta
#: path refuses it. Swaps move mass exactly (one subtract, one add per
#: edit), so drift stays within a few ulp; renormalizing instead would
#: perturb *every* cell's fraction and blow the edit support up to the
#: whole mixture.
USAGE_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class CellSwapEdit:
    """Swap a share of ``from_cell`` instances to ``to_cell``.

    Exactly one of the share specifiers may be given:

    ``fraction``
        Share of the *total* cell count to move (0..1].
    ``count``
        Number of instances to move (converted to a fraction of the
        base scenario's ``n_cells``).
    ``region``
        ``(x0, y0, x1, y1)`` in die-fraction coordinates; the moved
        share is ``area(region) * usage[from_cell]`` — the expected
        ``from_cell`` population of the region under the model's
        uniform placement.
    ``cell_ids``
        Explicit instance ids; only ``len(cell_ids)`` matters to the
        homogeneous model (equivalent to ``count=len(cell_ids)``).

    With no specifier, the edit swaps *all* ``from_cell`` usage. The
    moved share is clipped to the ``from_cell`` mass actually present.
    """

    from_cell: str
    to_cell: str
    fraction: Optional[float] = None
    count: Optional[int] = None
    region: Optional[Tuple[float, float, float, float]] = None
    cell_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.from_cell == self.to_cell:
            raise ConfigurationError(
                f"cell swap must change the cell type, got "
                f"{self.from_cell!r} -> {self.to_cell!r}")
        given = [spec for spec in (self.fraction, self.count, self.region,
                                   self.cell_ids) if spec is not None]
        if len(given) > 1:
            raise ConfigurationError(
                "give at most one of fraction/count/region/cell_ids")
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"swap fraction must be in (0, 1], got {self.fraction!r}")
        if self.count is not None and self.count <= 0:
            raise ConfigurationError(
                f"swap count must be positive, got {self.count!r}")
        if self.region is not None:
            x0, y0, x1, y1 = self.region
            if not (0.0 <= x0 < x1 <= 1.0 and 0.0 <= y0 < y1 <= 1.0):
                raise ConfigurationError(
                    "region must be (x0, y0, x1, y1) die fractions with "
                    f"x0 < x1 and y0 < y1, got {self.region!r}")
        if self.cell_ids is not None and not self.cell_ids:
            raise ConfigurationError("cell_ids must be non-empty")

    def moved_fraction(self, from_share: float, n_cells: int) -> float:
        """The usage mass this edit moves, given the current
        ``from_cell`` share and the scenario cell count."""
        if self.fraction is not None:
            moved = float(self.fraction)
        elif self.count is not None:
            moved = self.count / n_cells
        elif self.cell_ids is not None:
            moved = len(self.cell_ids) / n_cells
        elif self.region is not None:
            x0, y0, x1, y1 = self.region
            moved = (x1 - x0) * (y1 - y0) * from_share
        else:
            moved = from_share
        return min(moved, from_share)

    def apply(self, fractions: Dict[str, float], n_cells: int) -> None:
        """Fold this swap into a mutable usage-fraction dict in place."""
        from_share = fractions.get(self.from_cell, 0.0)
        if from_share <= 0.0:
            raise ConfigurationError(
                f"cell swap source {self.from_cell!r} has no usage in "
                "the edited scenario")
        moved = self.moved_fraction(from_share, n_cells)
        remaining = from_share - moved
        if remaining > 0.0:
            fractions[self.from_cell] = remaining
        else:
            fractions.pop(self.from_cell)
        fractions[self.to_cell] = fractions.get(self.to_cell, 0.0) + moved

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"type": "cell_swap",
                               "from_cell": self.from_cell,
                               "to_cell": self.to_cell}
        if self.fraction is not None:
            doc["fraction"] = float(self.fraction)
        if self.count is not None:
            doc["count"] = int(self.count)
        if self.region is not None:
            doc["region"] = [float(v) for v in self.region]
        if self.cell_ids is not None:
            doc["cell_ids"] = [int(v) for v in self.cell_ids]
        return doc


@dataclass(frozen=True)
class UsageHistogramEdit:
    """Replace the usage histogram with ``fractions`` (normalized)."""

    fractions: Tuple[Tuple[str, float], ...]

    def __init__(self, fractions: Mapping[str, float]) -> None:
        if not fractions:
            raise ConfigurationError("usage histogram must be non-empty")
        items = tuple(sorted((str(name), float(value))
                             for name, value in fractions.items()))
        total = sum(value for _, value in items)
        if any(value < 0 for _, value in items) or total <= 0:
            raise ConfigurationError(
                "usage fractions must be non-negative with positive sum")
        # Normalize here, once, so folding never renormalizes and later
        # swaps keep their o(edited) support.
        object.__setattr__(self, "fractions", tuple(
            (name, value / total) for name, value in items if value > 0))

    def apply(self, fractions: Dict[str, float], n_cells: int) -> None:
        fractions.clear()
        fractions.update(self.fractions)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "usage_histogram",
                "fractions": {name: value for name, value in self.fractions}}


@dataclass(frozen=True)
class FloorplanResizeEdit:
    """Change cell count and/or die dimensions (``None`` keeps a value)."""

    n_cells: Optional[int] = None
    width: Optional[float] = None
    height: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.n_cells is None and self.width is None
                and self.height is None):
            raise ConfigurationError(
                "floorplan resize must change at least one dimension")
        if self.n_cells is not None and self.n_cells <= 0:
            raise ConfigurationError(
                f"n_cells must be positive, got {self.n_cells!r}")
        for label, value in (("width", self.width), ("height", self.height)):
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{label} must be positive, got {value!r}")

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"type": "floorplan_resize"}
        if self.n_cells is not None:
            doc["n_cells"] = int(self.n_cells)
        if self.width is not None:
            doc["width"] = float(self.width)
        if self.height is not None:
            doc["height"] = float(self.height)
        return doc


_EDIT_TYPES = {
    "cell_swap": CellSwapEdit,
    "usage_histogram": UsageHistogramEdit,
    "floorplan_resize": FloorplanResizeEdit,
}


def edit_from_dict(document: Mapping[str, Any]):
    """Rebuild an edit from its ``to_dict`` wire form."""
    if not isinstance(document, Mapping):
        raise ConfigurationError(
            f"edit document must be a mapping, got {type(document).__name__}")
    doc = dict(document)
    kind = doc.pop("type", None)
    cls = _EDIT_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown edit type {kind!r}; choose one of "
            f"{sorted(_EDIT_TYPES)}")
    try:
        if cls is UsageHistogramEdit:
            return UsageHistogramEdit(doc.pop("fractions"))
        if cls is CellSwapEdit:
            region = doc.get("region")
            if region is not None:
                doc["region"] = tuple(float(v) for v in region)
            cell_ids = doc.get("cell_ids")
            if cell_ids is not None:
                doc["cell_ids"] = tuple(int(v) for v in cell_ids)
        return cls(**doc)
    except TypeError as exc:
        raise ConfigurationError(f"invalid {kind!r} edit: {exc}") from exc


def edits_from_documents(documents: Sequence[Mapping[str, Any]]):
    """Parse a sequence of edit documents (the service/CLI wire form)."""
    if not documents:
        raise ConfigurationError("what-if request needs at least one edit")
    return tuple(edit_from_dict(doc) for doc in documents)
