"""Random-Gate leakage covariance (paper Section 2.2.3).

For two RGs at distinct locations, the covariance of their leakages is
the usage-weighted average over all gate-type pairs (eq. 9):

``C_XI(rho_L) = sum_mn alpha_m alpha_n [E[X_m X_n](rho_L) - mu_m mu_n]``

evaluated through the leakage-correlation mapping ``f_mn`` (eq. 10). At
the *same* location the covariance is the full RG variance (eq. 11) —
note the discontinuity: ``C_XI(rho_L -> 1) < sigma_XI^2`` because gate
*selection* at two distinct sites is independent even when the process
correlation is perfect.

Two evaluation modes:

* **exact** — the closed-form pairwise cross moment from the fitted
  ``(a, b, c)`` triplets, precomputed on a dense grid of ``rho_L`` and
  linearly interpolated (the mapping is smooth and nearly linear);
* **simplified** — the paper's Section 3.1.2 assumption
  ``rho_mn = rho_L`` for all pairs, giving
  ``C_XI(rho_L) = rho_L * (sum_i alpha_i sigma_i)^2``. This is the only
  option when cells were characterized by Monte Carlo (no triplets).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.random_gate import RandomGate
from repro.exceptions import EstimationError, MomentExistenceError


class RGCorrelation:
    """Distance-free RG covariance as a function of length correlation.

    Parameters
    ----------
    random_gate:
        The RG whose mixture defines the covariance.
    mu_l / sigma_l:
        Channel-length mean and *total* standard deviation.
    simplified:
        Force the simplified ``rho_mn = rho_L`` assumption. Defaults to
        exact when fits are available, simplified otherwise.
    n_grid:
        Grid resolution for the precomputed exact mapping on [-1, 1].
    backend:
        Kernel backend (name or instance) used to build the exact grid;
        resolved through :func:`repro.backend.get_backend`. The backend
        is only used during construction — the built object holds no
        reference to it, so instances stay picklable.
    """

    def __init__(self, random_gate: RandomGate, mu_l: float, sigma_l: float,
                 simplified: Optional[bool] = None, n_grid: int = 65,
                 backend=None) -> None:
        mixture = random_gate.mixture
        if simplified is None:
            simplified = not mixture.has_fits
        if not simplified and not mixture.has_fits:
            raise EstimationError(
                "exact RG correlation requires (a, b, c) fits; characterize "
                "the library in analytical mode or set simplified=True")
        self.random_gate = random_gate
        self.simplified = bool(simplified)
        self.variance = random_gate.variance

        if self.simplified:
            self._scale = random_gate.mean_of_stds ** 2
            self._grid = None
            self._values = None
        else:
            self._grid = np.linspace(-1.0, 1.0, n_grid)
            self._values = self._exact_covariance_grid(
                mixture, mu_l, sigma_l, self._grid, backend=backend)
            self._scale = None

    @classmethod
    def from_values(cls, random_gate: RandomGate, grid: np.ndarray,
                    values: np.ndarray) -> "RGCorrelation":
        """Exact-mode instance from a precomputed covariance mapping.

        ``grid``/``values`` must be the exact mapping for this random
        gate's mixture (e.g. produced by a cached
        :class:`repro.delta.moments.CrossMomentTable` contraction,
        which is bit-identical to a fresh backend build). Skips the
        O(grid x q^2) moment pass entirely.
        """
        instance = cls.__new__(cls)
        instance.random_gate = random_gate
        instance.simplified = False
        instance.variance = random_gate.variance
        instance._scale = None
        instance._grid = np.asarray(grid, dtype=float)
        instance._values = np.asarray(values, dtype=float)
        return instance

    @staticmethod
    def _exact_covariance_grid(mixture, mu_l: float, sigma_l: float,
                               grid: np.ndarray, backend=None) -> np.ndarray:
        from repro.backend import get_backend

        alphas = mixture.alphas
        a = np.array([fit.c for fit in mixture.fits]) * sigma_l ** 2
        if np.any(1.0 - 2.0 * a <= 0):
            raise MomentExistenceError(
                "a mixture component has c*sigma^2 >= 1/2; its pairwise "
                "moments do not exist")
        h = np.array([(fit.b + 2.0 * fit.c * mu_l) * sigma_l
                      for fit in mixture.fits])
        k = np.array([math.log(fit.a) + fit.b * mu_l + fit.c * mu_l ** 2
                      for fit in mixture.fits])
        mean_total = float(alphas @ mixture.means)
        return get_backend(backend).rg_covariance_grid(
            alphas, a, h, k, grid, mean_total)

    @property
    def covariance_scale(self) -> Optional[float]:
        """Simplified-mode slope ``(sum_i alpha_i sigma_i)^2``, or
        ``None`` in exact mode. With :attr:`covariance_grid` /
        :attr:`covariance_values` this exposes the covariance mapping in
        the exact representation kernel backends consume."""
        return self._scale

    @property
    def covariance_grid(self) -> Optional[np.ndarray]:
        """Exact-mode ``rho_L`` interpolation grid, or ``None``."""
        return self._grid

    @property
    def covariance_values(self) -> Optional[np.ndarray]:
        """Exact-mode ``C_XI`` values on :attr:`covariance_grid`."""
        return self._values

    def covariance(self, rho_l) -> np.ndarray:
        """``C_XI`` between two *distinct* sites with length correlation
        ``rho_l`` (scalar or array)."""
        rho_l = np.asarray(rho_l, dtype=float)
        if np.any(np.abs(rho_l) > 1.0 + 1e-12):
            raise EstimationError("length correlation must lie in [-1, 1]")
        if self.simplified:
            return self._scale * rho_l
        return np.interp(rho_l, self._grid, self._values)

    def rho(self, rho_l) -> np.ndarray:
        """Normalized RG leakage correlation ``C_XI(rho_l) / sigma_XI^2``
        (the ``rho_XI`` entering eqs. (15)-(26)) for distinct sites."""
        if self.variance <= 0:
            raise EstimationError("random gate has zero variance")
        return self.covariance(rho_l) / self.variance

    @property
    def same_site_covariance(self) -> float:
        """Covariance at the same site: the RG variance (eq. 11)."""
        return self.variance

    @property
    def selection_gap(self) -> float:
        """``sigma_XI^2 - C_XI(1)``: the covariance discontinuity due to
        independent gate selection at distinct sites."""
        return float(self.variance - self.covariance(1.0))
