"""The full-chip model: a rectangular array of Random-Gate sites
(paper Section 2.2.1, Fig. 4).

The array's dimensions equal the candidate design's layout dimensions,
and the number of sites equals the number of cells; each site's pitch is
therefore the average cell-plus-routing footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FullChipModel:
    """A ``rows x cols`` RG site grid over a ``width x height`` die.

    ``rows * cols`` may differ slightly from ``n_cells`` when the cell
    count does not factor nicely; estimators compute grid statistics on
    the ``n_sites`` array and rescale to ``n_cells`` (mean linearly,
    variance quadratically — both exact in the large-``n`` regime the
    model targets).
    """

    n_cells: int
    width: float
    height: float
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.n_cells <= 0:
            raise ConfigurationError(
                f"n_cells must be positive, got {self.n_cells!r}")
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("die dimensions must be positive")
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("grid dimensions must be positive")

    @classmethod
    def from_design(cls, n_cells: int, width: float,
                    height: float) -> "FullChipModel":
        """Build the site grid matching a die's dimensions and cell count.

        Rows and columns are chosen so sites are as close to square as
        the aspect ratio allows and ``rows * cols`` is as close to
        ``n_cells`` as possible.
        """
        if n_cells <= 0:
            raise ConfigurationError(
                f"n_cells must be positive, got {n_cells!r}")
        if width <= 0 or height <= 0:
            raise ConfigurationError("die dimensions must be positive")
        rows = max(1, round(math.sqrt(n_cells * height / width)))
        cols = max(1, math.ceil(n_cells / rows))
        return cls(n_cells=n_cells, width=width, height=height,
                   rows=rows, cols=cols)

    @classmethod
    def from_area(cls, n_cells: int, avg_cell_area: float,
                  aspect: float = 1.0) -> "FullChipModel":
        """Build from an average cell area and die aspect ratio
        (``width / height``) — the early-mode path where only the
        floorplan budget is known."""
        if avg_cell_area <= 0:
            raise ConfigurationError("avg_cell_area must be positive")
        if aspect <= 0:
            raise ConfigurationError("aspect must be positive")
        area = n_cells * avg_cell_area
        height = math.sqrt(area / aspect)
        return cls.from_design(n_cells, aspect * height, height)

    @property
    def n_sites(self) -> int:
        return self.rows * self.cols

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def pitch_x(self) -> float:
        """Site width ``Delta W``."""
        return self.width / self.cols

    @property
    def pitch_y(self) -> float:
        """Site height ``Delta H``."""
        return self.height / self.rows

    @property
    def site_area(self) -> float:
        return self.pitch_x * self.pitch_y

    def site_positions(self):
        """Site-center coordinates, row-major ``(n_sites, 2)`` [m]."""
        import numpy as np

        cc, rr = np.meshgrid(np.arange(self.cols), np.arange(self.rows))
        x = (cc.ravel() + 0.5) * self.pitch_x
        y = (rr.ravel() + 0.5) * self.pitch_y
        return np.column_stack([x, y])

    def __repr__(self) -> str:
        return (f"FullChipModel(n_cells={self.n_cells}, grid={self.rows}x"
                f"{self.cols}, die={self.width * 1e3:.2f}x"
                f"{self.height * 1e3:.2f} mm)")
