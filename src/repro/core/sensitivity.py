"""Leakage attribution: which cell types drive the chip's mean and
spread.

A planner acting on an estimate needs to know *where* the leakage comes
from. The Random-Gate mixture makes attribution analytic:

* **mean share** of component ``i``: ``alpha_i * mu_i / mu_XI`` —
  total mean is linear in the mixture (eq. 7);
* **spread share**: with the (near-exact) simplified correlation model
  the correlated part of the chip variance is proportional to
  ``(sum_i alpha_i sigma_i)^2``, so component ``i`` owns the fraction
  ``alpha_i sigma_i / sum_j alpha_j sigma_j`` of the chip's *standard
  deviation* — the quantity that actually adds linearly across fully
  correlated contributors.

Components are (cell, state) pairs; per-cell aggregation sums them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.random_gate import RandomGate
from repro.exceptions import EstimationError


@dataclass(frozen=True)
class AttributionRow:
    """Per-cell attribution of chip leakage statistics."""

    cell_name: str
    usage_fraction: float
    mean_share: float
    std_share: float


def leakage_attribution(random_gate: RandomGate) -> List[AttributionRow]:
    """Per-cell shares of the chip's mean leakage and leakage spread.

    Shares each sum to one; rows are sorted by descending mean share.
    """
    mixture = random_gate.mixture
    mean_total = float(mixture.alphas @ mixture.means)
    corr_sigma_total = float(mixture.alphas @ mixture.stds)
    if mean_total <= 0 or corr_sigma_total <= 0:
        raise EstimationError("random gate has degenerate statistics")

    by_cell: Dict[str, List[float]] = {}
    for (cell_name, _), alpha, mean, std in zip(
            mixture.labels, mixture.alphas, mixture.means, mixture.stds):
        record = by_cell.setdefault(cell_name, [0.0, 0.0, 0.0])
        record[0] += float(alpha)
        record[1] += float(alpha * mean)
        record[2] += float(alpha * std)

    rows = [AttributionRow(
        cell_name=name,
        usage_fraction=usage,
        mean_share=mean_mass / mean_total,
        std_share=sigma_mass / corr_sigma_total,
    ) for name, (usage, mean_mass, sigma_mass) in by_cell.items()]
    rows.sort(key=lambda row: -row.mean_share)
    return rows


def usage_gradient(random_gate: RandomGate) -> List[Tuple[str, float]]:
    """Marginal mean leakage per cell type [A per gate].

    The derivative of the chip mean w.r.t. shifting one gate of usage
    into type ``i`` (at fixed ``n``) is ``mu_i(p) - mu_XI``: positive
    for leakier-than-average types. Sorted descending — the first
    entries are the best candidates to swap *away from*; the last, the
    best to swap *to*.
    """
    mixture = random_gate.mixture
    by_cell: Dict[str, List[float]] = {}
    for (cell_name, _), alpha, mean in zip(
            mixture.labels, mixture.alphas, mixture.means):
        record = by_cell.setdefault(cell_name, [0.0, 0.0])
        record[0] += float(alpha)
        record[1] += float(alpha * mean)
    gradient = [(name, mass / usage - random_gate.mean)
                for name, (usage, mass) in by_cell.items() if usage > 0]
    gradient.sort(key=lambda item: -item[1])
    return gradient
