"""High-level full-chip leakage estimation API.

Ties together the whole pipeline of the paper's Fig. 1: process info +
characterized cell library + high-level design characteristics (usage
histogram, cell count, die dimensions) -> mean and standard deviation of
full-chip leakage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.characterization.characterizer import LibraryCharacterization
from repro.characterization.vt import vt_mean_multiplier
from repro.core.chip_model import FullChipModel
from repro.core.estimators.exact import exact_moments
from repro.core.estimators.integral2d import integral2d_variance
from repro.core.estimators.linear import linear_variance
from repro.core.estimators.polar import polar_variance
from repro.core.random_gate import RandomGate, expand_mixture
from repro.core.rg_correlation import RGCorrelation
from repro.core.usage import CellUsage
from repro.exceptions import EstimationError
from repro.process.correlation import SpatialCorrelation

#: Grid-size threshold below which ``method="auto"`` uses the exact
#: linear-time transform rather than integration (the paper recommends
#: the O(n) route for small designs where integral granularity error
#: exceeds 1%, Fig. 7).
_AUTO_LINEAR_LIMIT = 250_000


@dataclass(frozen=True)
class LeakageEstimate:
    """Full-chip leakage statistics.

    Attributes
    ----------
    mean:
        Expected total leakage [A] (without the Vt mean multiplier).
    std:
        Standard deviation of total leakage [A].
    method:
        Variance algorithm used (``linear``, ``integral2d``, ``polar``).
    n_cells:
        Cell count the estimate is for.
    signal_probability:
        Signal probability at which cells were weighted.
    vt_multiplier:
        Multiplicative mean correction for RDF Vt variation.
    details:
        Diagnostic values (grid shape, RG statistics, ...).
    """

    mean: float
    std: float
    method: str
    n_cells: int
    signal_probability: float
    vt_multiplier: float
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_with_vt(self) -> float:
        """Mean total leakage including the Vt mean multiplier [A]."""
        return self.mean * self.vt_multiplier

    @property
    def cv(self) -> float:
        """Coefficient of variation ``std / mean``."""
        return self.std / self.mean

    def __repr__(self) -> str:
        return (f"LeakageEstimate(mean={self.mean:.4e} A, "
                f"std={self.std:.4e} A, cv={self.cv:.3f}, "
                f"method={self.method!r}, n={self.n_cells})")


class FullChipLeakageEstimator:
    """The paper's estimation engine (Fig. 1).

    Parameters
    ----------
    characterization:
        Characterized standard-cell library.
    usage:
        Frequency-of-use histogram — *extracted* (late mode) or
        *expected* (early mode).
    n_cells:
        Number of cells in the design.
    width / height:
        Layout dimensions [m].
    signal_probability:
        Primary-input signal probability used to weight cell states
        (use :func:`repro.signalprob.maximize_mean_leakage` for the
        conservative maximizing setting).
    correlation:
        Total channel-length correlation; defaults to the technology's
        D2D + WID combination.
    simplified_correlation:
        Force (or forbid) the ``rho_leak = rho_L`` assumption; defaults
        to exact when fits exist, simplified otherwise (Section 3.1.2).
    """

    def __init__(
        self,
        characterization: LibraryCharacterization,
        usage: CellUsage,
        n_cells: int,
        width: float,
        height: float,
        signal_probability: float = 0.5,
        correlation: Optional[SpatialCorrelation] = None,
        simplified_correlation: Optional[bool] = None,
        state_weights=None,
    ) -> None:
        self.characterization = characterization
        self.usage = usage
        self.signal_probability = float(signal_probability)
        technology = characterization.technology
        self.correlation = (technology.total_correlation
                            if correlation is None else correlation)
        self.chip = FullChipModel.from_design(n_cells, width, height)
        mixture = expand_mixture(characterization, usage,
                                 self.signal_probability,
                                 state_weights=state_weights)
        self.random_gate = RandomGate(mixture)
        self.rg_correlation = RGCorrelation(
            self.random_gate,
            mu_l=technology.length.nominal,
            sigma_l=technology.length.sigma,
            simplified=simplified_correlation,
        )
        self._vt_multiplier = vt_mean_multiplier(technology)

    def estimate(self, method: str = "auto", *, n_jobs: int = 1,
                 tolerance: float = 0.0) -> LeakageEstimate:
        """Estimate full-chip leakage mean and standard deviation.

        ``method`` is one of ``"auto"``, ``"linear"``, ``"integral2d"``,
        ``"polar"``, or ``"exact"`` — the last runs the placed-site
        pairwise engine (lag-deduplicated on the RG grid; see
        :func:`repro.core.estimators.exact_moments`) and serves as an
        independent cross-check of the eq. (17) transform. ``n_jobs``
        and ``tolerance`` are forwarded to that engine.
        """
        chip = self.chip
        if method == "auto":
            method = ("linear" if chip.n_sites <= _AUTO_LINEAR_LIMIT
                      else "integral2d")

        if method == "linear":
            site_variance = linear_variance(
                chip.rows, chip.cols, chip.pitch_x, chip.pitch_y,
                self.correlation, self.rg_correlation)
        elif method == "integral2d":
            site_variance = integral2d_variance(
                chip.n_sites, chip.width, chip.height,
                self.correlation, self.rg_correlation)
        elif method == "polar":
            site_variance = polar_variance(
                chip.n_sites, chip.width, chip.height,
                self.correlation, self.rg_correlation)
        elif method == "exact":
            site_variance = self._exact_site_variance(
                n_jobs=n_jobs, tolerance=tolerance)
        else:
            raise EstimationError(
                f"unknown method {method!r}; choose auto, linear, "
                "integral2d, polar, or exact")

        return self._package(method, site_variance)

    def _exact_site_variance(self, n_jobs: int = 1,
                             tolerance: float = 0.0) -> float:
        """Site-grid variance through the placed-design pairwise engine.

        Every site carries the Random Gate: the full RG sigma on the
        diagonal and the correlatable mean-of-stds off it — the eq. (11)
        split that :func:`exact_moments` expresses via ``corr_stds``.
        Only the simplified (``rho_leak = rho_L``) covariance has this
        per-site product form, so the exact ``f_mn`` mode must go
        through ``estimate("linear")`` instead.
        """
        if not self.rg_correlation.simplified:
            raise EstimationError(
                "method='exact' maps the RG covariance onto per-site "
                "sigmas, which requires the simplified correlation "
                "model; use simplified_correlation=True or "
                "method='linear'")
        chip = self.chip
        n_sites = chip.n_sites
        rg = self.random_gate
        _, site_std = exact_moments(
            chip.site_positions(),
            np.full(n_sites, rg.mean),
            np.full(n_sites, rg.std),
            self.correlation,
            corr_stds=np.full(n_sites, rg.mean_of_stds),
            method="lagsum",
            grid=(chip.rows, chip.cols),
            n_jobs=n_jobs,
            tolerance=tolerance,
        )
        return site_std ** 2

    def _package(self, method: str, site_variance: float) -> LeakageEstimate:
        chip = self.chip
        # Grid statistics are for n_sites gates; rescale to the actual
        # cell count (mean ~ n, std ~ n for strongly correlated sums).
        scale = chip.n_cells / chip.n_sites
        mean = chip.n_cells * self.random_gate.mean
        std = math.sqrt(site_variance) * scale
        return LeakageEstimate(
            mean=mean,
            std=std,
            method=method,
            n_cells=chip.n_cells,
            signal_probability=self.signal_probability,
            vt_multiplier=self._vt_multiplier,
            details={
                "rows": chip.rows,
                "cols": chip.cols,
                "rg_mean": self.random_gate.mean,
                "rg_std": self.random_gate.std,
                "site_variance": site_variance,
                "simplified_correlation":
                    float(self.rg_correlation.simplified),
            },
        )
