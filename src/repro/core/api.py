"""High-level full-chip leakage estimation API.

Ties together the whole pipeline of the paper's Fig. 1: process info +
characterized cell library + high-level design characteristics (usage
histogram, cell count, die dimensions) -> mean and standard deviation of
full-chip leakage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.characterization.characterizer import LibraryCharacterization
from repro.characterization.vt import vt_mean_multiplier
from repro.core.chip_model import FullChipModel
from repro.core.estimators.exact import exact_moments
from repro.core.estimators.integral2d import integral2d_variance
from repro.core.estimators.linear import linear_variance
from repro.core.estimators.polar import polar_variance
from repro.core.random_gate import RandomGate, expand_mixture
from repro.core.rg_correlation import RGCorrelation
from repro.core.usage import CellUsage
from repro.exceptions import EstimationError
from repro.obs import Tracer, span
from repro.process.correlation import SpatialCorrelation

#: Grid-size threshold below which ``method="auto"`` uses the exact
#: linear-time transform rather than integration (the paper recommends
#: the O(n) route for small designs where integral granularity error
#: exceeds 1%, Fig. 7).
AUTO_LINEAR_LIMIT = 250_000

# Backward-compatible alias (pre-service releases used the private name).
_AUTO_LINEAR_LIMIT = AUTO_LINEAR_LIMIT


def resolve_auto_method(n_sites: int) -> str:
    """The exact ``method="auto"`` selection rule of :meth:`estimate`.

    ``"linear"`` — the O(n) eq. (17) transform — whenever the RG site
    grid has at most :data:`AUTO_LINEAR_LIMIT` (250,000) sites, where it
    is both exact on the grid and fast; ``"integral2d"`` — the O(1)
    eq. (20) integral — above that, where the integral's granularity
    error is negligible (Fig. 7). ``"polar"`` and ``"exact"`` are never
    chosen automatically: the former is an accuracy/speed study variant,
    and the latter is the pairwise cross-check engine (whose *own*
    ``method="auto"`` sub-rule is documented at
    :func:`repro.core.estimators.exact.exact_moments` — dense at
    ``tolerance=0, n_jobs=1`` with no grid hint for bit compatibility,
    otherwise lag deduplication on lattices, spatial pruning for
    scattered placements whose correlation truncation radius is under
    half the die extent, dense as the fallback).
    """
    return "linear" if n_sites <= AUTO_LINEAR_LIMIT else "integral2d"


def _json_scalar(value: Any) -> Any:
    """Coerce a scalar to a plain JSON-serializable Python type.

    Numpy integers/floats/bools (which ``json`` refuses) become their
    native equivalents; zero-dimensional arrays are unwrapped first.
    """
    if isinstance(value, np.ndarray) and value.ndim == 0:
        value = value[()]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return value


@dataclass(frozen=True)
class LeakageEstimate:
    """Full-chip leakage statistics.

    Attributes
    ----------
    mean:
        Expected total leakage [A] (without the Vt mean multiplier).
    std:
        Standard deviation of total leakage [A].
    method:
        Variance algorithm used (``linear``, ``integral2d``, ``polar``).
    n_cells:
        Cell count the estimate is for.
    signal_probability:
        Signal probability at which cells were weighted.
    vt_multiplier:
        Multiplicative mean correction for RDF Vt variation.
    details:
        Diagnostic values (grid shape, RG statistics, the requested
        method before ``auto`` resolution, ...) — always plain JSON
        scalars so the estimate serializes via :meth:`to_dict`.
    """

    mean: float
    std: float
    method: str
    n_cells: int
    signal_probability: float
    vt_multiplier: float
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def mean_with_vt(self) -> float:
        """Mean total leakage including the Vt mean multiplier [A]."""
        return self.mean * self.vt_multiplier

    @property
    def cv(self) -> float:
        """Coefficient of variation ``std / mean``."""
        return self.std / self.mean

    @property
    def degraded(self) -> bool:
        """True when this is a fallback answer, not the requested method.

        The estimation service substitutes the O(1) Random-Gate closed
        form for a failed or deadline-bound ``exact`` run (within ~2% on
        std per Table 1 of the paper); such results are flagged in
        ``details["degraded"]`` with the cause in
        :attr:`degradation_reason`.
        """
        return bool(self.details.get("degraded", False))

    @property
    def degradation_reason(self) -> Optional[str]:
        """Why a degraded result was substituted (``None`` when not)."""
        reason = self.details.get("degradation_reason")
        return None if reason is None else str(reason)

    def with_details(self, **extra: Any) -> "LeakageEstimate":
        """A copy with ``extra`` merged into :attr:`details`.

        Values are coerced to plain JSON scalars, preserving the
        :meth:`to_dict` round-trip guarantee.
        """
        details = dict(self.details)
        details.update({str(key): _json_scalar(value)
                        for key, value in extra.items()})
        return replace(self, details=details)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (stable service/cache wire format).

        Every field is coerced to a native Python scalar, so the result
        round-trips through ``json.dumps``/``loads`` *bit-exactly*
        (Python's ``repr``-based float serialization is shortest
        round-trip): ``from_dict(json.loads(json.dumps(e.to_dict())))``
        compares equal to ``e`` field by field.
        """
        return {
            "mean": float(self.mean),
            "std": float(self.std),
            "method": str(self.method),
            "n_cells": int(self.n_cells),
            "signal_probability": float(self.signal_probability),
            "vt_multiplier": float(self.vt_multiplier),
            "details": {str(key): _json_scalar(value)
                        for key, value in self.details.items()},
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "LeakageEstimate":
        """Rebuild an estimate from :meth:`to_dict` output."""
        try:
            return cls(
                mean=float(document["mean"]),
                std=float(document["std"]),
                method=str(document["method"]),
                n_cells=int(document["n_cells"]),
                signal_probability=float(document["signal_probability"]),
                vt_multiplier=float(document["vt_multiplier"]),
                details=dict(document.get("details", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EstimationError(
                f"not a serialized LeakageEstimate: {exc}") from exc

    def __repr__(self) -> str:
        return (f"LeakageEstimate(mean={self.mean:.4e} A, "
                f"std={self.std:.4e} A, cv={self.cv:.3f}, "
                f"method={self.method!r}, n={self.n_cells})")


@dataclass(frozen=True)
class RGComponents:
    """The chip-independent half of the estimation engine.

    Bundles the Random Gate, its leakage correlation model, and the Vt
    mean multiplier — everything eqs. (6)–(11) derive from the
    characterized library, the usage histogram, and the signal
    probability, before any die geometry enters. Building this is the
    second-most expensive stage of an estimate (after characterization),
    and it is *reusable across chips*: the estimation service caches it
    per (library, usage, signal probability) so sweeps over cell count,
    die size, or estimator method hit a warm path.
    """

    random_gate: RandomGate
    rg_correlation: RGCorrelation
    vt_multiplier: float
    signal_probability: float

    @classmethod
    def build(
        cls,
        characterization: LibraryCharacterization,
        usage: CellUsage,
        signal_probability: float = 0.5,
        simplified_correlation: Optional[bool] = None,
        state_weights=None,
        backend=None,
    ) -> "RGComponents":
        """Derive the RG bundle from a characterized library + usage.

        ``backend`` names the kernel backend for the exact RG covariance
        grid (the hot part of this stage); the built bundle itself is
        backend-free and picklable.
        """
        technology = characterization.technology
        signal_probability = float(signal_probability)
        with span("api.rg_build"):
            mixture = expand_mixture(characterization, usage,
                                     signal_probability,
                                     state_weights=state_weights)
            random_gate = RandomGate(mixture)
            rg_correlation = RGCorrelation(
                random_gate,
                mu_l=technology.length.nominal,
                sigma_l=technology.length.sigma,
                simplified=simplified_correlation,
                backend=backend,
            )
            return cls(random_gate=random_gate,
                       rg_correlation=rg_correlation,
                       vt_multiplier=vt_mean_multiplier(technology),
                       signal_probability=signal_probability)


class FullChipLeakageEstimator:
    """The paper's estimation engine (Fig. 1).

    Parameters
    ----------
    characterization:
        Characterized standard-cell library.
    usage:
        Frequency-of-use histogram — *extracted* (late mode) or
        *expected* (early mode).
    n_cells:
        Number of cells in the design.
    width / height:
        Layout dimensions [m].
    signal_probability:
        Primary-input signal probability used to weight cell states
        (use :func:`repro.signalprob.maximize_mean_leakage` for the
        conservative maximizing setting).
    correlation:
        Total channel-length correlation; defaults to the technology's
        D2D + WID combination.
    simplified_correlation:
        Force (or forbid) the ``rho_leak = rho_L`` assumption; defaults
        to exact when fits exist, simplified otherwise (Section 3.1.2).
    components:
        A prebuilt :class:`RGComponents` bundle (e.g. from a service
        cache). When given it is used verbatim — the
        ``signal_probability`` / ``simplified_correlation`` /
        ``state_weights`` arguments must have produced it — and the
        mixture expansion is skipped entirely.
    backend:
        Default kernel backend (name or instance) for this estimator's
        numeric hot paths; individual :meth:`estimate` calls may
        override it. ``None`` defers to the process default
        (``REPRO_BACKEND`` env var, else numpy). See
        ``docs/PERFORMANCE.md``.
    """

    def __init__(
        self,
        characterization: LibraryCharacterization,
        usage: CellUsage,
        n_cells: int,
        width: float,
        height: float,
        signal_probability: float = 0.5,
        correlation: Optional[SpatialCorrelation] = None,
        simplified_correlation: Optional[bool] = None,
        state_weights=None,
        components: Optional[RGComponents] = None,
        backend=None,
    ) -> None:
        self.characterization = characterization
        self.usage = usage
        self.backend = backend
        # Kept for stages that re-expand the mixture at solver-chosen
        # operating points (the thermal anchor characterizations).
        self.state_weights = state_weights
        technology = characterization.technology
        self.correlation = (technology.total_correlation
                            if correlation is None else correlation)
        with span("api.chip_model", n_cells=int(n_cells)):
            self.chip = FullChipModel.from_design(n_cells, width, height)
        if components is None:
            components = RGComponents.build(
                characterization, usage, signal_probability,
                simplified_correlation=simplified_correlation,
                state_weights=state_weights, backend=backend)
        self.components = components
        self.signal_probability = components.signal_probability
        self.random_gate = components.random_gate
        self.rg_correlation = components.rg_correlation
        self._vt_multiplier = components.vt_multiplier

    def estimate(self, method: str = "auto", *, n_jobs: int = 1,
                 tolerance: float = 0.0, trace: bool = False,
                 backend=None, thermal=None) -> LeakageEstimate:
        """Estimate full-chip leakage mean and standard deviation.

        ``method`` is one of ``"auto"``, ``"linear"``, ``"integral2d"``,
        ``"polar"``, or ``"exact"`` — the last runs the placed-site
        pairwise engine (lag-deduplicated on the RG grid; see
        :func:`repro.core.estimators.exact_moments`) and serves as an
        independent cross-check of the eq. (17) transform. ``n_jobs``
        and ``tolerance`` are forwarded to that engine.

        ``"auto"`` resolves through :func:`resolve_auto_method`: the
        O(n) ``"linear"`` transform up to :data:`AUTO_LINEAR_LIMIT`
        sites, the O(1) ``"integral2d"`` estimator above. The returned
        estimate's ``method`` field always names the *concrete* method
        that ran (never ``"auto"``), and ``details["requested_method"]``
        preserves what was asked for — service metrics use the former to
        label latency by algorithm. ``method="exact"`` additionally
        records ``details["exact_engine"]`` (always ``"lagsum"``: the RG
        site grid is a lattice, so the engine takes the FFT lag
        transform).

        ``backend`` selects the kernel backend for this call (falling
        back to the estimator-level default, then the process default).
        Backend choice never changes *what* is computed — the numpy
        backend is bit-identical to the historical inline code, and
        compiled backends agree within the per-kernel parity contracts
        of :data:`repro.backend.KERNELS`.

        ``trace=True`` profiles the run: the estimate's
        ``details["trace"]`` carries the span tree and per-stage wall
        times (``docs/OBSERVABILITY.md``). Numeric results are
        bit-identical with tracing on or off — spans only read clocks.

        ``thermal`` — a :class:`repro.thermal.ThermalConfig` (or its
        dict form) — runs the self-consistent power–thermal solve
        instead of the isothermal estimate: leakage-driven power heats
        the die, temperature re-characterizes the leakage, iterated to
        a fixed point whose diagnostics land in ``details["thermal"]``
        (``docs/THERMAL.md``).
        """
        from repro.backend import get_backend

        kernels = get_backend(backend if backend is not None
                              else self.backend)
        if thermal is not None:
            from repro.thermal import ThermalConfig, solve_coupled

            thermal = ThermalConfig.from_dict(thermal)
            if not trace:
                return solve_coupled(self, method, thermal, kernels,
                                     n_jobs=n_jobs, tolerance=tolerance)
            tracer = Tracer("core/api.estimate")
            with tracer:
                with tracer.span("core/api.estimate", method=method,
                                 backend=kernels.name, thermal=True):
                    result = solve_coupled(self, method, thermal,
                                           kernels, n_jobs=n_jobs,
                                           tolerance=tolerance)
            return result.with_details(trace=tracer.export())
        if not trace:
            return self._estimate(method, n_jobs=n_jobs,
                                  tolerance=tolerance, kernels=kernels)
        tracer = Tracer("core/api.estimate")
        with tracer:
            with tracer.span("core/api.estimate", method=method,
                             backend=kernels.name):
                result = self._estimate(method, n_jobs=n_jobs,
                                        tolerance=tolerance,
                                        kernels=kernels)
        return result.with_details(trace=tracer.export())

    def _estimate(self, method: str, *, n_jobs: int, tolerance: float,
                  kernels=None) -> LeakageEstimate:
        chip = self.chip
        requested = method
        if method == "auto":
            method = resolve_auto_method(chip.n_sites)

        with span("api.variance", method=method):
            if method == "linear":
                site_variance = linear_variance(
                    chip.rows, chip.cols, chip.pitch_x, chip.pitch_y,
                    self.correlation, self.rg_correlation,
                    backend=kernels)
            elif method == "integral2d":
                site_variance = integral2d_variance(
                    chip.n_sites, chip.width, chip.height,
                    self.correlation, self.rg_correlation)
            elif method == "polar":
                site_variance = polar_variance(
                    chip.n_sites, chip.width, chip.height,
                    self.correlation, self.rg_correlation)
            elif method == "exact":
                site_variance = self._exact_site_variance(
                    n_jobs=n_jobs, tolerance=tolerance, kernels=kernels)
            else:
                raise EstimationError(
                    f"unknown method {method!r}; choose auto, linear, "
                    "integral2d, polar, or exact")

        extra = {"requested_method": requested}
        if method == "exact":
            # The RG site grid is a regular lattice, so the pairwise
            # engine always runs its FFT lag-deduplication path here.
            extra["exact_engine"] = "lagsum"
        return self._package(method, site_variance, extra)

    def _exact_site_variance(self, n_jobs: int = 1,
                             tolerance: float = 0.0,
                             kernels=None) -> float:
        """Site-grid variance through the placed-design pairwise engine.

        Every site carries the Random Gate: the full RG sigma on the
        diagonal and the correlatable mean-of-stds off it — the eq. (11)
        split that :func:`exact_moments` expresses via ``corr_stds``.
        Only the simplified (``rho_leak = rho_L``) covariance has this
        per-site product form, so the exact ``f_mn`` mode must go
        through ``estimate("linear")`` instead.
        """
        if not self.rg_correlation.simplified:
            raise EstimationError(
                "method='exact' maps the RG covariance onto per-site "
                "sigmas, which requires the simplified correlation "
                "model; use simplified_correlation=True or "
                "method='linear'")
        chip = self.chip
        n_sites = chip.n_sites
        rg = self.random_gate
        with span("api.site_arrays", n_sites=n_sites):
            positions = chip.site_positions()
            site_means = np.full(n_sites, rg.mean)
            site_stds = np.full(n_sites, rg.std)
            site_corr_stds = np.full(n_sites, rg.mean_of_stds)
        _, site_std = exact_moments(
            positions,
            site_means,
            site_stds,
            self.correlation,
            corr_stds=site_corr_stds,
            method="lagsum",
            grid=(chip.rows, chip.cols),
            n_jobs=n_jobs,
            tolerance=tolerance,
            backend=kernels,
        )
        return site_std ** 2

    def _package(self, method: str, site_variance: float,
                 extra: Optional[Dict[str, Any]] = None) -> LeakageEstimate:
        with span("api.package"):
            return self._package_inner(method, site_variance, extra)

    def _package_inner(self, method: str, site_variance: float,
                       extra: Optional[Dict[str, Any]]) -> LeakageEstimate:
        chip = self.chip
        # Grid statistics are for n_sites gates; rescale to the actual
        # cell count (mean ~ n, std ~ n for strongly correlated sums).
        scale = chip.n_cells / chip.n_sites
        mean = chip.n_cells * self.random_gate.mean
        std = math.sqrt(site_variance) * scale
        details = {
            "rows": chip.rows,
            "cols": chip.cols,
            "rg_mean": self.random_gate.mean,
            "rg_std": self.random_gate.std,
            "site_variance": site_variance,
            "simplified_correlation":
                float(self.rg_correlation.simplified),
        }
        details.update(extra or {})
        return LeakageEstimate(
            mean=float(mean),
            std=float(std),
            method=method,
            n_cells=int(chip.n_cells),
            signal_probability=float(self.signal_probability),
            vt_multiplier=float(self._vt_multiplier),
            details={key: _json_scalar(value)
                     for key, value in details.items()},
        )


def estimate_sweep(
    characterization: Optional[LibraryCharacterization],
    usage: Optional[CellUsage],
    n_cells: int,
    width: float,
    height: float,
    *,
    axes,
    signal_probability: float = 0.5,
    method: str = "auto",
    correlation: Optional[SpatialCorrelation] = None,
    simplified_correlation: Optional[bool] = None,
    state_weights=None,
    n_jobs: int = 1,
    tolerance: float = 0.0,
    trace: bool = False,
    backend: Optional[str] = None,
    thermal=None,
):
    """Evaluate a grid of estimation scenarios with shared precomputation.

    ``axes`` is a sequence of :class:`repro.core.sweep.SweepAxis`
    objects (built with the ``*_axis`` factories in
    :mod:`repro.core.sweep`); the full cartesian product of their points
    is evaluated and returned as a
    :class:`~repro.core.sweep.SweepResult` in C (row-major) grid order.
    The non-axis arguments are the base scenario every point starts
    from; an axis may override the characterization (temperature), the
    usage mix, the correlation model, the signal probability, or the
    geometry (``n_cells``, die size). ``characterization``/``usage``
    may be ``None`` only when an axis supplies them for every point.

    **Bit-identical guarantee**: every grid point equals — to the last
    bit of ``mean``, ``std``, and every ``details`` entry — the
    single-point call

    ``FullChipLeakageEstimator(characterization, usage, n_cells, width,
    height, signal_probability=p, correlation=c,
    simplified_correlation=..., state_weights=...).estimate(method,
    tolerance=...)``

    with that point's parameters substituted. The speedup comes only
    from *sharing* work across points, never from reformulating it: the
    lag histogram of the placement is computed once per floorplan, the
    correlation kernel once per distinct model (family-batched along
    correlation axes), and the RG mixture moments once per distinct
    (characterization, usage, signal probability). Axes that change the
    floorplan fan out through :func:`repro.parallel.parallel_map` when
    ``n_jobs > 1``; the returned grid order is independent of worker
    scheduling.

    ``trace=True`` profiles the sweep (shared-precompute vs per-point
    stages, worker spans aggregated per stage) into
    ``SweepResult.trace``; every estimate stays bit-identical to the
    untraced run.

    ``backend`` names the kernel backend every point (and every worker)
    uses; with the numpy default and with any other backend the sweep
    stays bit-identical to the corresponding single-point loop on that
    same backend.

    ``thermal`` — a :class:`repro.thermal.ThermalConfig` — makes every
    point a self-consistent power–thermal solve at that base config;
    the ``ambient_temperature_axis`` / ``power_scale_axis`` factories
    sweep its ambient and power scale per point (and cross freely).
    Coupled points run the full ``estimate(..., thermal=...)`` path
    verbatim, so they keep the bit-identical guarantee trivially.
    """
    from repro.core.sweep import run_sweep

    return run_sweep(
        characterization, usage, n_cells, width, height, axes=axes,
        signal_probability=signal_probability, method=method,
        correlation=correlation,
        simplified_correlation=simplified_correlation,
        state_weights=state_weights, n_jobs=n_jobs, tolerance=tolerance,
        trace=trace, backend=backend, thermal=thermal)


# -- incremental (delta) estimation ----------------------------------------


def build_base(
    characterization: LibraryCharacterization,
    usage: CellUsage,
    n_cells: int,
    width: float,
    height: float,
    *,
    signal_probability: float = 0.5,
    correlation: Optional[SpatialCorrelation] = None,
    simplified_correlation: Optional[bool] = None,
    state_weights=None,
    backend=None,
):
    """Run a fresh linear-transform estimate and snapshot it as a
    :class:`~repro.delta.BaseEstimate` for incremental what-if edits.

    The returned base holds the fresh estimate (``base.estimate``) plus
    every reusable artifact — lag geometry and kernel values, the
    eq. (16)-(17) occupancy ledger, and the RG mixture's cross-moment
    summaries — so :func:`estimate_delta` can answer edited scenarios
    in ``o(n_affected)``. See ``docs/API.md`` ("Incremental
    estimation").
    """
    from repro.delta import BaseEstimate

    return BaseEstimate.build(
        characterization, usage, n_cells, width, height,
        signal_probability=signal_probability, correlation=correlation,
        simplified_correlation=simplified_correlation,
        state_weights=state_weights, backend=backend)


def estimate_delta(base, edits, *, trace: bool = False) -> LeakageEstimate:
    """Estimate an edited scenario incrementally from a base snapshot.

    ``base`` is a :class:`~repro.delta.BaseEstimate` (from
    :func:`build_base` or :func:`import_base`); ``edits`` is one edit,
    a sequence, or their dict wire forms
    (:mod:`repro.delta.edits`). The result matches a fresh
    ``estimate("linear")`` of the edited scenario within the documented
    bounds (``DELTA_MEAN_RTOL`` / ``DELTA_STD_RTOL`` in
    :mod:`repro.delta.engine`; exact where the algebra is exact) and
    records reused vs recomputed work in ``details["delta"]``.
    """
    from repro.delta import estimate_delta as _delta

    return _delta(base, edits, trace=trace)


def export_base(base) -> Dict[str, Any]:
    """Serialize a base artifact to its plain-JSON document form."""
    return base.to_dict()


def import_base(document: Mapping[str, Any],
                characterization: Optional[LibraryCharacterization] = None,
                correlation: Optional[SpatialCorrelation] = None):
    """Rebuild a base artifact from :func:`export_base` output.

    Pass the characterization (and optionally a correlation model) to
    re-attach the live references the document cannot carry; without
    them, edits that need new cell characterizations or a re-kerneled
    floorplan raise
    :class:`~repro.exceptions.DeltaIncompatibleError`.
    """
    from repro.delta import BaseEstimate

    return BaseEstimate.from_dict(document, characterization=characterization,
                                  correlation=correlation)
