"""The Random Gate (RG) abstraction — paper Section 2.2.2.

A Random Gate is "a gate picked at random from the library according to
the frequency-of-use distribution". Here the mixture runs over
*(cell, input-state)* pairs: the cell type is drawn from the usage
histogram (eq. 6) and the state from the cell's state distribution under
the chip's signal probability ``p``. This is exactly the paper's
construction — its cells are "characterized for every input state" and
the state dimension averages out chip-wide (Section 2.1.4) — made
explicit as a single flat mixture, so eqs. (7)-(8) apply unchanged:

* mean:     ``mu_XI = sum_i alpha_i * mu_i``            (eq. 7)
* 2nd mom.: ``E[XI^2] = sum_i alpha_i (sigma_i^2 + mu_i^2)``  (eq. 8)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.characterization.characterizer import LibraryCharacterization
from repro.characterization.fitting import LeakageFit
from repro.core.usage import CellUsage
from repro.exceptions import EstimationError


@dataclass(frozen=True)
class GateMixture:
    """Flat mixture of (cell, state) leakage components.

    Attributes
    ----------
    labels:
        ``(cell_name, state_label)`` per component.
    alphas:
        Mixture weights (usage fraction x state probability); sum to 1.
    means / stds:
        Per-component leakage statistics [A].
    fits:
        Per-component ``(a, b, c)`` fits, or ``None`` when the
        characterization ran in Monte-Carlo mode.
    """

    labels: Tuple[Tuple[str, str], ...]
    alphas: np.ndarray
    means: np.ndarray
    stds: np.ndarray
    fits: Optional[Tuple[LeakageFit, ...]]

    def __post_init__(self) -> None:
        n = len(self.labels)
        if not (self.alphas.shape == self.means.shape == self.stds.shape
                == (n,)):
            raise EstimationError("mixture arrays must be aligned")
        if n == 0:
            raise EstimationError("mixture must be non-empty")
        if abs(float(self.alphas.sum()) - 1.0) > 1e-9:
            raise EstimationError(
                f"mixture weights must sum to 1, got {self.alphas.sum()!r}")

    @property
    def has_fits(self) -> bool:
        return self.fits is not None

    def prune(self, tolerance: float = 1e-12) -> "GateMixture":
        """Drop negligible-weight components and renormalize."""
        keep = self.alphas > tolerance
        if keep.all():
            return self
        alphas = self.alphas[keep]
        fits = None if self.fits is None else tuple(
            fit for fit, k in zip(self.fits, keep) if k)
        return GateMixture(
            labels=tuple(lbl for lbl, k in zip(self.labels, keep) if k),
            alphas=alphas / alphas.sum(),
            means=self.means[keep],
            stds=self.stds[keep],
            fits=fits,
        )


def expand_mixture(characterization: LibraryCharacterization,
                   usage: CellUsage, p: float = 0.5,
                   state_weights=None) -> GateMixture:
    """Expand a usage histogram into the flat (cell, state) mixture.

    Parameters
    ----------
    characterization:
        Characterized library (must cover every cell in ``usage``).
    usage:
        Frequency-of-use distribution.
    p:
        Primary signal probability weighting the cell states.
    state_weights:
        Optional mapping of cell name to a state-probability vector that
        overrides the chip-wide ``p`` for that cell — the late-mode
        refinement where per-cell state distributions are extracted from
        the netlist's propagated signal probabilities.
    """
    labels: List[Tuple[str, str]] = []
    alphas: List[float] = []
    means: List[float] = []
    stds: List[float] = []
    fits: List[LeakageFit] = []
    all_fits = True
    for cell_name, fraction in usage.items():
        if cell_name not in characterization:
            raise EstimationError(
                f"usage references uncharacterized cell {cell_name!r}")
        cell_char = characterization[cell_name]
        if state_weights is not None and cell_name in state_weights:
            state_probs = np.asarray(state_weights[cell_name], dtype=float)
            if state_probs.shape != (len(cell_char.states),) or \
                    abs(float(state_probs.sum()) - 1.0) > 1e-6:
                raise EstimationError(
                    f"invalid state weights for cell {cell_name!r}")
        else:
            state_probs = cell_char.cell.state_probabilities(p)
        for state_char, prob in zip(cell_char.states, state_probs):
            labels.append((cell_name, state_char.state_label))
            alphas.append(fraction * prob)
            means.append(state_char.mean)
            stds.append(state_char.std)
            if state_char.fit is None:
                all_fits = False
            else:
                fits.append(state_char.fit)
    mixture = GateMixture(
        labels=tuple(labels),
        alphas=np.array(alphas),
        means=np.array(means),
        stds=np.array(stds),
        fits=tuple(fits) if all_fits else None,
    )
    return mixture.prune()


class RandomGate:
    """Random Gate leakage statistics (paper eqs. (7)-(8))."""

    def __init__(self, mixture: GateMixture) -> None:
        self.mixture = mixture
        self._mean = float(mixture.alphas @ mixture.means)
        second = float(mixture.alphas
                       @ (mixture.stds ** 2 + mixture.means ** 2))
        self._variance = max(0.0, second - self._mean ** 2)

    @property
    def mean(self) -> float:
        """``mu_XI`` — eq. (7)."""
        return self._mean

    @property
    def variance(self) -> float:
        """``sigma_XI^2`` — from eq. (8)."""
        return self._variance

    @property
    def std(self) -> float:
        return math.sqrt(self._variance)

    @property
    def mean_of_stds(self) -> float:
        """``sum_i alpha_i * sigma_i`` — the coefficient of the simplified
        covariance ``F(rho) = rho * (sum alpha_i sigma_i)^2``."""
        return float(self.mixture.alphas @ self.mixture.stds)

    def __repr__(self) -> str:
        return (f"RandomGate(mean={self.mean:.3e} A, "
                f"std={self.std:.3e} A, "
                f"components={len(self.mixture.labels)})")
