"""Design planning on top of the estimator: budgets and inverse problems.

The point of an *early* leakage estimator (the paper's motivation:
"given the need to budget for power constraints") is to answer planning
questions before a netlist exists:

* how much leakage will ``n`` cells draw, at a given yield percentile?
* how many cells fit under a leakage budget?
* which usage-mix adjustments buy the most leakage headroom?
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.analysis.distribution import LOGNORMAL, LeakageDistribution
from repro.characterization.characterizer import LibraryCharacterization
from repro.core.api import (FullChipLeakageEstimator, RGComponents,
                            estimate_sweep)
from repro.core.sweep import usage_axis
from repro.core.usage import CellUsage
from repro.exceptions import ConfigurationError, DeltaError, EstimationError


def leakage_at_percentile(
    characterization: LibraryCharacterization,
    usage: CellUsage,
    n_cells: int,
    site_area: float,
    percentile: float = 0.99,
    aspect: float = 1.0,
    signal_probability: float = 0.5,
    model: str = LOGNORMAL,
    include_vt: bool = True,
    components: Optional[RGComponents] = None,
) -> float:
    """Total leakage [A] not exceeded by ``percentile`` of dies.

    The die grows with the design at fixed density: its area is
    ``n_cells * site_area`` with the given aspect ratio. ``components``
    optionally supplies a prebuilt :class:`RGComponents` bundle (it must
    match ``characterization``/``usage``/``signal_probability``); the
    inverse solvers below use it to pay for the mixture expansion once
    across their many probes.
    """
    if not 0.0 < percentile < 1.0:
        raise EstimationError(
            f"percentile must be in (0, 1), got {percentile!r}")
    if site_area <= 0:
        raise EstimationError(f"site_area must be positive, got {site_area!r}")
    height = math.sqrt(n_cells * site_area / aspect)
    estimator = FullChipLeakageEstimator(
        characterization, usage, n_cells, aspect * height, height,
        signal_probability=signal_probability, components=components)
    estimate = estimator.estimate("auto")
    distribution = LeakageDistribution.from_estimate(
        estimate, model=model, include_vt=include_vt)
    return float(distribution.quantile(percentile))


def max_cells_for_budget(
    characterization: LibraryCharacterization,
    usage: CellUsage,
    budget: float,
    site_area: float,
    percentile: float = 0.99,
    aspect: float = 1.0,
    signal_probability: float = 0.5,
    model: str = LOGNORMAL,
    include_vt: bool = True,
    n_max: int = 100_000_000,
    probe: str = "delta",
) -> int:
    """Largest cell count whose ``percentile`` leakage stays within
    ``budget`` [A], at fixed placement density.

    Bisects on the cell count; the percentile leakage is monotone in
    ``n`` (mean scales ~n, std ~n for correlated variation), so the
    answer is exact to the integer.

    Probes in the linear-estimator regime run through the delta engine:
    the first such probe snapshots a
    :class:`~repro.delta.base.BaseEstimate` and every later cell count
    becomes a :class:`~repro.delta.edits.FloorplanResizeEdit` against
    it, reusing the RG mixture moments and (when the resize crops)
    the correlation kernel (``docs/API.md``, "Incremental estimation").
    Probes outside the delta regime — small counts the auto policy
    sends to the exact estimator — fall back to fresh estimates, as
    does ``probe="fresh"``.
    """
    if budget <= 0:
        raise EstimationError(f"budget must be positive, got {budget!r}")
    if site_area <= 0:
        raise EstimationError(f"site_area must be positive, got {site_area!r}")
    if probe not in ("delta", "fresh"):
        raise ConfigurationError(
            f"probe must be 'delta' or 'fresh', got {probe!r}")

    # The RG mixture is geometry-independent: build it once and share
    # it across every probe of the search (bit-identical to rebuilding,
    # since the estimator uses a prebuilt bundle verbatim).
    components = RGComponents.build(characterization, usage,
                                    signal_probability)

    delta_state: List = [None]  # lazily built BaseEstimate

    def delta_leakage(n: int) -> Optional[float]:
        from repro.delta import BaseEstimate, FloorplanResizeEdit
        from repro.delta import estimate_delta as delta_estimate

        height = math.sqrt(n * site_area / aspect)
        width = aspect * height
        try:
            if delta_state[0] is None:
                delta_state[0] = BaseEstimate.build(
                    characterization, usage, n, width, height,
                    signal_probability=signal_probability,
                    components=components)
                estimate = delta_state[0].estimate
            else:
                estimate = delta_estimate(
                    delta_state[0],
                    FloorplanResizeEdit(n_cells=n, width=width,
                                        height=height))
        except DeltaError:
            # This count is outside the linear (delta-capable) regime;
            # retry delta at the next probe rather than disabling it.
            return None
        distribution = LeakageDistribution.from_estimate(
            estimate, model=model, include_vt=include_vt)
        return float(distribution.quantile(percentile))

    def percentile_leakage(n: int) -> float:
        if probe == "delta":
            quantile = delta_leakage(n)
            if quantile is not None:
                return quantile
        return leakage_at_percentile(
            characterization, usage, n, site_area, percentile, aspect,
            signal_probability, model, include_vt, components=components)

    if percentile_leakage(1) > budget:
        return 0
    lo, hi = 1, 2
    while hi < n_max and percentile_leakage(hi) <= budget:
        lo, hi = hi, hi * 4
    if hi >= n_max:
        raise EstimationError(
            f"budget {budget!r} A admits more than n_max={n_max} cells")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if percentile_leakage(mid) <= budget:
            lo = mid
        else:
            hi = mid
    return lo


def leakage_headroom(
    characterization: LibraryCharacterization,
    baseline: CellUsage,
    candidate: CellUsage,
    n_cells: int,
    width: float,
    height: float,
    signal_probability: float = 0.5,
) -> dict:
    """Compare two usage mixes at the same floorplan.

    Returns a dict with the mean/std of both mixes and the relative
    savings of ``candidate`` over ``baseline`` — the what-if a planner
    runs when trading drive strengths or architectural alternatives.
    Both mixes run through one :func:`repro.core.api.estimate_sweep`
    call, sharing the lag geometry and kernel evaluation (bit-identical
    to two standalone estimates).
    """
    axis = usage_axis([baseline, candidate],
                      values=("baseline", "candidate"))
    sweep = estimate_sweep(characterization, None, n_cells, width, height,
                           axes=[axis],
                           signal_probability=signal_probability)
    results = dict(zip(axis.values, sweep.estimates))
    base = results["baseline"]
    cand = results["candidate"]
    return {
        "baseline": base,
        "candidate": cand,
        "mean_saving": 1.0 - cand.mean / base.mean,
        "std_saving": 1.0 - cand.std / base.std,
    }
