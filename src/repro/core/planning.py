"""Design planning on top of the estimator: budgets and inverse problems.

The point of an *early* leakage estimator (the paper's motivation:
"given the need to budget for power constraints") is to answer planning
questions before a netlist exists:

* how much leakage will ``n`` cells draw, at a given yield percentile?
* how many cells fit under a leakage budget?
* which usage-mix adjustments buy the most leakage headroom?
"""

from __future__ import annotations

import math
from repro.analysis.distribution import LOGNORMAL, LeakageDistribution
from repro.characterization.characterizer import LibraryCharacterization
from repro.core.api import FullChipLeakageEstimator
from repro.core.usage import CellUsage
from repro.exceptions import EstimationError


def leakage_at_percentile(
    characterization: LibraryCharacterization,
    usage: CellUsage,
    n_cells: int,
    site_area: float,
    percentile: float = 0.99,
    aspect: float = 1.0,
    signal_probability: float = 0.5,
    model: str = LOGNORMAL,
    include_vt: bool = True,
) -> float:
    """Total leakage [A] not exceeded by ``percentile`` of dies.

    The die grows with the design at fixed density: its area is
    ``n_cells * site_area`` with the given aspect ratio.
    """
    if not 0.0 < percentile < 1.0:
        raise EstimationError(
            f"percentile must be in (0, 1), got {percentile!r}")
    if site_area <= 0:
        raise EstimationError(f"site_area must be positive, got {site_area!r}")
    height = math.sqrt(n_cells * site_area / aspect)
    estimator = FullChipLeakageEstimator(
        characterization, usage, n_cells, aspect * height, height,
        signal_probability=signal_probability)
    estimate = estimator.estimate("auto")
    distribution = LeakageDistribution.from_estimate(
        estimate, model=model, include_vt=include_vt)
    return float(distribution.quantile(percentile))


def max_cells_for_budget(
    characterization: LibraryCharacterization,
    usage: CellUsage,
    budget: float,
    site_area: float,
    percentile: float = 0.99,
    aspect: float = 1.0,
    signal_probability: float = 0.5,
    model: str = LOGNORMAL,
    include_vt: bool = True,
    n_max: int = 100_000_000,
) -> int:
    """Largest cell count whose ``percentile`` leakage stays within
    ``budget`` [A], at fixed placement density.

    Bisects on the cell count; the percentile leakage is monotone in
    ``n`` (mean scales ~n, std ~n for correlated variation), so the
    answer is exact to the integer.
    """
    if budget <= 0:
        raise EstimationError(f"budget must be positive, got {budget!r}")

    def percentile_leakage(n: int) -> float:
        return leakage_at_percentile(
            characterization, usage, n, site_area, percentile, aspect,
            signal_probability, model, include_vt)

    if percentile_leakage(1) > budget:
        return 0
    lo, hi = 1, 2
    while hi < n_max and percentile_leakage(hi) <= budget:
        lo, hi = hi, hi * 4
    if hi >= n_max:
        raise EstimationError(
            f"budget {budget!r} A admits more than n_max={n_max} cells")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if percentile_leakage(mid) <= budget:
            lo = mid
        else:
            hi = mid
    return lo


def leakage_headroom(
    characterization: LibraryCharacterization,
    baseline: CellUsage,
    candidate: CellUsage,
    n_cells: int,
    width: float,
    height: float,
    signal_probability: float = 0.5,
) -> dict:
    """Compare two usage mixes at the same floorplan.

    Returns a dict with the mean/std of both mixes and the relative
    savings of ``candidate`` over ``baseline`` — the what-if a planner
    runs when trading drive strengths or architectural alternatives.
    """
    results = {}
    for label, usage in (("baseline", baseline), ("candidate", candidate)):
        estimate = FullChipLeakageEstimator(
            characterization, usage, n_cells, width, height,
            signal_probability=signal_probability).estimate("auto")
        results[label] = estimate
    base = results["baseline"]
    cand = results["candidate"]
    return {
        "baseline": base,
        "candidate": cand,
        "mean_saving": 1.0 - cand.mean / base.mean,
        "std_saving": 1.0 - cand.std / base.std,
    }
