"""The O(1) constant-time variance by 2-D integration (paper eq. 20).

For large ``n`` the lag sum of eq. (18) is a Riemann sum of

.. math::

   \\sigma^2_{I_T} \\approx 4\\,\\sigma^2_{X_I} \\frac{n^2}{A^2}
   \\int_0^W \\int_0^H (W - x)(H - y)\\,
   \\rho_{X_I}\\big(\\sqrt{x^2 + y^2}\\big)\\, dy\\, dx

whose cost is independent of the gate count.
"""

from __future__ import annotations

import math
import warnings

from scipy import integrate

from repro.core.rg_correlation import RGCorrelation
from repro.exceptions import EstimationError
from repro.process.correlation import SpatialCorrelation


def integral2d_variance(
    n_cells: int,
    width: float,
    height: float,
    correlation: SpatialCorrelation,
    rg_correlation: RGCorrelation,
    epsabs: float = 0.0,
    epsrel: float = 1e-7,
    diagonal_correction: bool = False,
) -> float:
    """Total-leakage variance by rectangular-coordinate integration.

    Parameters
    ----------
    n_cells:
        Number of cells on the die (enters as ``n^2 / A^2``).
    width / height:
        Die dimensions ``W`` / ``H`` [m].
    correlation:
        Total channel-length correlation function.
    rg_correlation:
        The RG covariance structure.
    epsabs / epsrel:
        Quadrature tolerances forwarded to the quadrature routine.
    diagonal_correction:
        Extension beyond the paper's eq. (20): add the self-pair excess
        ``n * (sigma_XI^2 - C_XI(1))`` that the continuous kernel cannot
        represent (the same-site covariance discontinuity of eq. (11)).
        Negligible at large ``n`` but removes most of the small-``n``
        granularity error reported in Fig. 7.
    """
    if n_cells <= 0:
        raise EstimationError("n_cells must be positive")
    if width <= 0 or height <= 0:
        raise EstimationError("die dimensions must be positive")

    def integrand(y: float, x: float) -> float:
        rho = float(correlation.evaluate_xy(x, y))
        return ((width - x) * (height - y)
                * float(rg_correlation.covariance(rho)))

    opts = {"epsabs": epsabs, "epsrel": epsrel, "limit": 200}
    with warnings.catch_warnings():
        # Kinked kernels (compact-support correlations, interpolated RG
        # covariance) trip quadpack's roundoff heuristic long after the
        # requested accuracy is reached; the convergence tests pin the
        # actual error.
        warnings.simplefilter("ignore", integrate.IntegrationWarning)
        integral, _ = integrate.nquad(
            integrand, [(0.0, height), (0.0, width)], opts=[opts, opts])
    area = width * height
    # covariance() already contains sigma_XI^2 * rho_XI, so eq. (20)'s
    # sigma_XI^2 factor is folded into the integrand.
    variance = 4.0 * (n_cells ** 2 / area ** 2) * integral
    if diagonal_correction:
        variance += n_cells * rg_correlation.selection_gap
    return variance
