"""The O(1) variance by 1-D polar integration (paper eqs. 21-26).

When the within-die correlation reaches (numerically) zero at some
``D_max <= min(W, H)``, the 2-D integral of eq. (20) separates: the
angular integral has the closed form (eq. 24)

``g(r) = 0.5*r**2 - (W + H)*r + (pi/2)*W*H``

leaving a single radial integral (eq. 25). With die-to-die variation the
total correlation has a floor ``rho_C`` that never decays; splitting it
off (eq. 26) adds the term ``sigma_XI^2 * n^2 * rho_C`` (in covariance
form, ``n^2 * C_floor``) and integrates only the decaying remainder.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional

from scipy import integrate

from repro.core.rg_correlation import RGCorrelation
from repro.exceptions import EstimationError
from repro.process.correlation import SpatialCorrelation, TotalCorrelation


def angular_kernel(r: float, width: float, height: float) -> float:
    """``g(r)`` of eq. (24): the analytic angular integral."""
    return 0.5 * r * r - (width + height) * r + 0.5 * math.pi * width * height


def polar_variance(
    n_cells: int,
    width: float,
    height: float,
    correlation: SpatialCorrelation,
    rg_correlation: RGCorrelation,
    dmax: Optional[float] = None,
    support_tolerance: float = 1e-4,
    epsrel: float = 1e-9,
    diagonal_correction: bool = False,
) -> float:
    """Total-leakage variance by the polar single integral — eqs. 25-26.

    Parameters
    ----------
    n_cells:
        Number of cells on the die.
    width / height:
        Die dimensions [m].
    correlation:
        Total channel-length correlation. If it is a
        :class:`~repro.process.correlation.TotalCorrelation`, its D2D
        floor is split off per eq. (26); otherwise the floor is taken as
        the correlation's value at ``dmax``.
    rg_correlation:
        The RG covariance structure.
    dmax:
        Radius beyond which the decaying part is treated as zero.
        Defaults to the correlation's (effective) support. Must not
        exceed ``min(W, H)`` — the applicability condition of
        Section 3.2.2.
    support_tolerance:
        Tolerance used when deriving ``dmax`` for infinite-support
        correlation families.
    epsrel:
        Quadrature relative tolerance.
    diagonal_correction:
        Add the self-pair excess ``n * (sigma_XI^2 - C_XI(1))`` (see
        :func:`repro.core.estimators.integral2d.integral2d_variance`).
    """
    if n_cells <= 0:
        raise EstimationError("n_cells must be positive")
    if width <= 0 or height <= 0:
        raise EstimationError("die dimensions must be positive")
    if not correlation.isotropic:
        raise EstimationError(
            "the polar single-integral method requires an isotropic "
            "correlation; use the 2-D integral for anisotropic models")

    if isinstance(correlation, TotalCorrelation):
        rho_floor_l = correlation.rho_floor
        decay_support = correlation.wid.effective_support(support_tolerance)
    else:
        rho_floor_l = 0.0
        decay_support = correlation.effective_support(support_tolerance)

    if dmax is None:
        dmax = decay_support
    if dmax > min(width, height) * (1.0 + 1e-9):
        raise EstimationError(
            f"polar method requires D_max <= min(W, H); D_max = "
            f"{dmax:.3e} m exceeds {min(width, height):.3e} m — use the "
            "2-D integral instead")

    if isinstance(correlation, TotalCorrelation) and rho_floor_l > 0.0:
        cov_floor = float(rg_correlation.covariance(rho_floor_l))
    elif rho_floor_l == 0.0 and not math.isfinite(correlation.support):
        # Infinite-support WID-only correlation truncated at dmax: treat
        # the residual beyond dmax as the floor so truncation error is
        # second order.
        cov_floor = float(rg_correlation.covariance(float(correlation(dmax))))
    else:
        cov_floor = float(rg_correlation.covariance(0.0))

    def integrand(r: float) -> float:
        cov = float(rg_correlation.covariance(float(correlation(r))))
        return (cov - cov_floor) * r * angular_kernel(r, width, height)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", integrate.IntegrationWarning)
        integral, _ = integrate.quad(integrand, 0.0, dmax,
                                     epsrel=epsrel, limit=400)
    area = width * height
    variance = (4.0 * (n_cells ** 2 / area ** 2) * integral
                + n_cells ** 2 * cov_floor)
    if diagonal_correction:
        variance += n_cells * rg_correlation.selection_gap
    return variance
